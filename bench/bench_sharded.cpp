// Distributed-sharding bench: the same Monte-Carlo yield job run single-
// process and sharded across an in-process relsimd worker fleet, with a
// chaos section that stops one worker mid-run. Reports wall time, the
// coordinator's fault counters, and — the headline check — that every
// configuration lands the SAME values CRC.
//
// Flags: --smoke (shrink load for CI),
//        --workers N (fleet size, default 4),
//        --sharded-json PATH (dump measured numbers as an artifact).
#include <unistd.h>
#include <sys/stat.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/coordinator.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/table.h"

namespace relsim {
namespace {

using service::CoordinatorOptions;
using service::CoordinatorResult;
using service::JobKind;
using service::JobSpec;
using service::Server;
using service::ServerOptions;
using service::WorkerEndpoint;

constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace
}  // namespace relsim

int main(int argc, char** argv) {
  using namespace relsim;
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string json_path = bench::arg_value(argc, argv, "--sharded-json");
  const std::size_t worker_count =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "--workers", 4));

  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = kDivider;
  spec.constraints.push_back({"d", 0.55, 0.75});
  spec.seed = 99;
  spec.n = smoke ? 20000 : 200000;
  spec.keep_values = true;
  spec.eval_mode = McEvalMode::kPerSample;  // real per-sample solver cost
  spec.threads = 2;
  spec.checkpoint_every = 1024;

  const std::string dir =
      "/tmp/bench_sharded_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);

  std::vector<std::unique_ptr<Server>> fleet;
  std::vector<WorkerEndpoint> endpoints;
  for (std::size_t i = 0; i < worker_count; ++i) {
    ServerOptions options;
    options.socket_path = dir + "/w" + std::to_string(i) + ".sock";
    options.executors = 2;
    options.worker_name = "w" + std::to_string(i);
    fleet.push_back(std::make_unique<Server>(std::move(options)));
    fleet.back()->start();
    WorkerEndpoint ep;
    ep.socket_path = fleet.back()->options().socket_path;
    ep.name = "w" + std::to_string(i);
    endpoints.push_back(ep);
  }

  // -- Reference: one process, all threads ------------------------------
  bench::banner("single-process reference");
  auto t0 = std::chrono::steady_clock::now();
  const McResult direct = service::run_job(spec, nullptr);
  const double direct_s = seconds_since(t0);
  const std::uint32_t direct_crc = service::values_crc32(direct);

  // -- Sharded, healthy fleet -------------------------------------------
  bench::banner("sharded across the fleet");
  CoordinatorOptions options;
  options.workers = endpoints;
  options.shards = worker_count;
  options.checkpoint_dir = dir;
  t0 = std::chrono::steady_clock::now();
  const CoordinatorResult healthy = service::run_sharded(spec, options);
  const double healthy_s = seconds_since(t0);

  // -- Sharded with one worker stopped mid-run --------------------------
  bench::banner("sharded, one worker lost mid-run");
  JobSpec chaos_spec = spec;
  chaos_spec.label = "chaos";
  std::thread killer([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(0.25 * healthy_s));
    fleet[1]->stop();
  });
  t0 = std::chrono::steady_clock::now();
  const CoordinatorResult chaos = service::run_sharded(chaos_spec, options);
  const double chaos_s = seconds_since(t0);
  killer.join();

  {
    TablePrinter t({"config", "wall_s", "crc", "reissues", "inproc"});
    t.add_row({"single-process", direct_s,
               static_cast<long long>(direct_crc), 0LL, 0LL});
    t.add_row({"sharded-healthy", healthy_s,
               static_cast<long long>(service::values_crc32(healthy.result)),
               static_cast<long long>(healthy.reissues),
               static_cast<long long>(healthy.shards_inprocess)});
    t.add_row({"sharded-chaos", chaos_s,
               static_cast<long long>(service::values_crc32(chaos.result)),
               static_cast<long long>(chaos.reissues),
               static_cast<long long>(chaos.shards_inprocess)});
    t.print(std::cout);
  }

  checks.check("healthy sharded run matches the single-process CRC",
               service::values_crc32(healthy.result) == direct_crc);
  checks.check("chaos sharded run matches the single-process CRC",
               service::values_crc32(chaos.result) == direct_crc);
  checks.check("every sample completed in every configuration",
               direct.completed == spec.n &&
                   healthy.result.completed == spec.n &&
                   chaos.result.completed == spec.n);
  checks.check("healthy fleet needed no re-issues", healthy.reissues == 0);

  json.add("sharded",
           {{"n", double(spec.n)},
            {"workers", double(worker_count)},
            {"single_process_seconds", direct_s},
            {"sharded_seconds", healthy_s},
            {"sharded_chaos_seconds", chaos_s},
            {"speedup", healthy_s > 0 ? direct_s / healthy_s : 0.0},
            {"chaos_reissues", double(chaos.reissues)},
            {"chaos_inprocess_shards", double(chaos.shards_inprocess)}});

  for (auto& s : fleet) s->stop();

  if (!json_path.empty() && !json.write(json_path)) {
    std::cerr << "failed to write " << json_path << '\n';
    return 1;
  }
  return checks.finish();
}
