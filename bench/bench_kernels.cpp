// E12 — supporting micro-benchmarks (google-benchmark): the kernels the
// reproduction spends its time in. Also the evidence behind DESIGN.md's
// dense-LU-over-sparse choice at MNA sizes of a few dozen unknowns.
#include <benchmark/benchmark.h>

#include <memory>

#include "aging/nbti.h"
#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "rng/distributions.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"
#include "variability/pelgrom.h"
#include "variability/sampler.h"

namespace relsim {
namespace {

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a(n, n);
  Vector b(n);
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>(splitmix64(seed) % 1000) / 500.0 - 1.0;
      rowsum += std::abs(a(i, j));
    }
    a(i, i) = rowsum + 1.0;
    b[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Sparse counterpart on an MNA-like banded pattern of the same sizes:
// shows where the cached-symbolic refactor overtakes the dense kernel
// (bench_sparse_solver covers the larger circuit-level sizes).
void BM_SparseRefactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SparsityPattern pattern;
  pattern.add_diagonal(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pattern.add(static_cast<int>(i), static_cast<int>(i + 1));
    pattern.add(static_cast<int>(i + 1), static_cast<int>(i));
  }
  SparseMatrix a(n, pattern);
  Vector b(n);
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      const auto j = static_cast<std::size_t>(a.col_ind()[p]);
      if (j == i) continue;
      const double v =
          static_cast<double>(splitmix64(seed) % 1000) / 500.0 - 1.0;
      a.add_at(i, j, v);
      rowsum += std::abs(v);
    }
    a.add_at(i, i, rowsum + 1.0);
    b[i] = static_cast<double>(i);
  }
  SparseLuFactorization lu(a);
  for (auto _ : state) {
    lu.refactor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseRefactorSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MosfetEvaluate(benchmark::State& state) {
  spice::Mosfet m("M1", 1, 2, 3, 4,
                  spice::make_mos_params(tech_65nm(), 2.0, 0.1, false));
  double vd = 0.3;
  for (auto _ : state) {
    vd = vd > 1.0 ? 0.1 : vd + 1e-4;
    benchmark::DoNotOptimize(m.evaluate(vd, 1.0, 0.0, 0.0));
  }
}
BENCHMARK(BM_MosfetEvaluate);

void BM_DcOperatingPoint_Inverter(benchmark::State& state) {
  const auto& tech = tech_65nm();
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, spice::kGround, tech.vdd);
  c.add_vsource("VIN", in, spice::kGround, 0.5 * tech.vdd);
  c.add_mosfet("MN", out, in, spice::kGround, spice::kGround,
               spice::make_mos_params(tech, 1.0, 0.1, false));
  c.add_mosfet("MP", out, in, vdd, vdd,
               spice::make_mos_params(tech, 2.0, 0.1, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(c));
  }
}
BENCHMARK(BM_DcOperatingPoint_Inverter);

void BM_TransientRcStep(benchmark::State& state) {
  spice::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, spice::kGround,
                std::make_unique<spice::SineWaveform>(0.0, 1.0, 1e6));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, spice::kGround, 1e-9);
  spice::TransientOptions opt;
  opt.dt = 1e-8;
  opt.t_stop = 1e-5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::transient_analysis(c, opt, {out}));
  }
}
BENCHMARK(BM_TransientRcStep);

void BM_MismatchSampling(benchmark::State& state) {
  const PelgromModel model(PelgromParams::from_tech(tech_65nm()));
  const MismatchSampler sampler(model, 1.0, 0.1);
  Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_pair(rng, 100.0));
  }
}
BENCHMARK(BM_MismatchSampling);

void BM_NbtiClosedForm(benchmark::State& state) {
  const aging::NbtiModel model;
  const auto stress = aging::DeviceStress::dc(true, 1.1, 0.0, 1.8, 398.0);
  double t = 1.0;
  for (auto _ : state) {
    t = t > 1e9 ? 1.0 : t * 1.0001;
    benchmark::DoNotOptimize(model.delta_vt(stress, t));
  }
}
BENCHMARK(BM_NbtiClosedForm);

}  // namespace
}  // namespace relsim

BENCHMARK_MAIN();
