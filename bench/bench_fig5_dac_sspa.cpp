// E9 — Fig. 5 / Sec. 5.1: SSPA post-fabrication calibration of a 14-bit
// current-steering DAC [9].
//
// Fig. 5 itself is a chip photograph; its quantitative content is:
//  - INL < 0.5 LSB reached through calibration (not intrinsic sizing),
//  - the analog area is ~6% of an intrinsic-accuracy DAC's,
//  - the only extra analog block is a current comparator,
//  - (total chip 3 mm^2, analog part 0.28 mm^2 on the silicon).
//
// Method: Monte Carlo over virtual DAC fabrications at 0.18um-class
// matching. The intrinsic design sizes its unit cells for INL<0.5LSB at
// 3 sigma; the calibrated design uses far smaller (noisier) cells and
// recovers linearity by reordering the unary switching sequence.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "calibration/dac.h"
#include "calibration/sspa.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "variability/mc_session.h"
#include "variability/pelgrom.h"

using namespace relsim;
using namespace relsim::calibration;

namespace {

struct YieldRow {
  double sigma_unit;
  double inl_p50_raw = 0.0, inl_p50_cal = 0.0;
  double yield_raw = 0.0, yield_cal = 0.0;
};

YieldRow run_mc(const DacConfig& cfg, int samples, std::uint64_t seed) {
  YieldRow row;
  row.sigma_unit = cfg.sigma_unit_rel;
  // One McSession per sigma point; each sample fabricates, measures raw
  // INL into a side array (distinct indices: safe under parallel workers)
  // and returns the calibrated INL as the session metric.
  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<double> raw(n, 0.0);
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.chunk = 16;
  const McResult res =
      McSession(req).run_metric([&](Xoshiro256& rng, std::size_t i) {
        CurrentSteeringDac dac(cfg, rng);
        raw[i] = dac.linearity().inl_max_abs;
        calibrate_sspa(dac, /*sigma_meas=*/1e-4, rng);
        return dac.linearity().inl_max_abs;
      });
  const std::vector<double>& cal = res.values;
  int pass_raw = 0, pass_cal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (raw[i] < 0.5) ++pass_raw;
    if (cal[i] < 0.5) ++pass_cal;
  }
  row.inl_p50_raw = median(raw);
  row.inl_p50_cal = median(cal);
  row.yield_raw = static_cast<double>(pass_raw) / samples;
  row.yield_cal = static_cast<double>(pass_cal) / samples;
  return row;
}

}  // namespace

int main() {
  bench::ShapeChecks checks;
  DacConfig cfg;
  cfg.total_bits = 14;
  cfg.unary_bits = 6;

  const double sigma_intrinsic = required_unit_sigma_intrinsic(14, 0.5, 3.0);
  std::cout << "14-bit segmented DAC (6 unary MSBs + 8 binary LSBs)\n"
            << "intrinsic-accuracy unit sigma for INL<0.5LSB @3sigma: "
            << sigma_intrinsic * 100 << " %\n";

  // --- INL yield vs unit-cell sigma, raw vs SSPA-calibrated ------------------
  bench::banner("INL<0.5LSB yield: intrinsic sizing vs SSPA calibration "
                "(300 MC fabrications each)");
  TablePrinter table({"sigma_unit_pct", "sigma/intrinsic", "INL_p50_raw",
                      "INL_p50_sspa", "yield_raw_pct", "yield_sspa_pct"});
  table.set_precision(4);
  double sigma_calibrated = sigma_intrinsic;  // largest sigma with cal yield >= 99%
  double extreme_sigma_yield = 1.0;
  std::uint64_t seed = 2024;
  // SSPA covers the unary MSB array only; the binary LSB section (1.6% of
  // the cell count) stays intrinsically sized, as on the silicon of [9].
  cfg.sigma_unit_binary_rel = sigma_intrinsic;
  for (double mult : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 48.0}) {
    cfg.sigma_unit_rel = mult * sigma_intrinsic;
    const YieldRow row = run_mc(cfg, 300, seed++);
    table.add_row({row.sigma_unit * 100, mult, row.inl_p50_raw,
                   row.inl_p50_cal, 100.0 * row.yield_raw,
                   100.0 * row.yield_cal});
    if (row.yield_cal >= 0.98) {
      sigma_calibrated = std::max(sigma_calibrated, row.sigma_unit);
    }
    if (mult == 48.0) extreme_sigma_yield = row.yield_cal;
  }
  table.print(std::cout);

  // --- area comparison ---------------------------------------------------------
  bench::banner("Analog-area comparison (Pelgrom sizing, 0.18um node)");
  const PelgromModel pelgrom(PelgromParams::from_tech(technology("0.18um")));
  const auto cmp = compare_analog_area(cfg, pelgrom, sigma_intrinsic,
                                       sigma_calibrated, sigma_intrinsic);
  TablePrinter area({"design", "unit_sigma_pct", "analog_area_mm2"});
  area.set_precision(4);
  area.add_row({std::string("intrinsic accuracy"), sigma_intrinsic * 100,
                cmp.area_intrinsic_mm2});
  area.add_row({std::string("SSPA calibrated (cells)"),
                sigma_calibrated * 100, cmp.area_calibrated_mm2});
  area.add_row({std::string("  + current comparator"), 0.0,
                cmp.comparator_overhead_mm2});
  area.print(std::cout);
  std::cout << "\ncalibrated analog area = " << 100.0 * cmp.area_ratio()
            << " % of the intrinsic design (paper: ~6%)\n";

  // --- the measured-vs-ideal sequence matters ------------------------------------
  bench::banner("Comparator measurement-noise sensitivity (unary sigma at "
                "the calibrated operating point)");
  cfg.sigma_unit_rel = sigma_calibrated;
  TablePrinter noise({"sigma_meas_pct", "yield_sspa_pct"});
  noise.set_precision(4);
  double clean_yield = 0.0, blind_yield = 0.0;
  for (double sm : {0.0, 0.05, 0.2, 1.0, 5.0}) {
    McRequest nreq;
    nreq.seed = 777;
    nreq.n = 200;
    nreq.chunk = 16;
    const McResult res =
        McSession(nreq).run_yield([&](Xoshiro256& rng, std::size_t) {
          CurrentSteeringDac dac(cfg, rng);
          calibrate_sspa(dac, sm * 1e-2, rng);
          return dac.linearity().inl_max_abs < 0.5;
        });
    const double y = res.estimate.yield();
    noise.add_row({sm, 100.0 * y});
    if (sm == 0.0) clean_yield = y;
    if (sm == 5.0) blind_yield = y;
  }
  noise.print(std::cout);

  std::cout << "\nFig. 5 shape claims:\n";
  checks.check("SSPA reaches INL<0.5LSB where intrinsic sizing fails",
               sigma_calibrated >= 3.0 * sigma_intrinsic);
  checks.check("calibrated analog area is a single-digit % of intrinsic",
               cmp.area_ratio() > 0.001 && cmp.area_ratio() < 0.12);
  checks.check("random errors are only PARTIALLY cancelled (yield<100% at "
               "extreme sigma)",
               extreme_sigma_yield < 1.0);
  checks.check("calibration quality degrades with comparator noise",
               clean_yield > blind_yield);
  return checks.finish();
}
