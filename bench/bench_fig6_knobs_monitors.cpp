// E10 — Fig. 6 / Sec. 5.2: knobs & monitors.
//
// System under test: a 5-stage ring oscillator (65nm) whose frequency is
// the monitored performance; the knob is the supply voltage. NBTI+HCI slow
// the ring down over a 10-year mission; the control loop re-tunes the
// supply to keep the frequency spec met, trading a slightly larger power
// consumption for guaranteed correct operation — while a classic
// overdesigned system burns the worst-case power from day one.
#include <cmath>
#include <iostream>
#include <memory>

#include "adaptive/system.h"
#include "aging/engine.h"
#include "aging/hci.h"
#include "aging/nbti.h"
#include "bench_util.h"
#include "spice/analysis.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/units.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

constexpr int kStages = 5;

std::unique_ptr<Circuit> build_ring(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  std::vector<NodeId> nodes;
  for (int i = 0; i < kStages; ++i) {
    nodes.push_back(c->node("n" + std::to_string(i)));
  }
  for (int i = 0; i < kStages; ++i) {
    const NodeId in = nodes[static_cast<std::size_t>(i)];
    const NodeId out = nodes[static_cast<std::size_t>((i + 1) % kStages)];
    c->add_mosfet("inv" + std::to_string(i) + "_n", out, in, kGround, kGround,
                  spice::make_mos_params(tech, 1.0, 0.1, false));
    c->add_mosfet("inv" + std::to_string(i) + "_p", out, in, vdd, vdd,
                  spice::make_mos_params(tech, 2.0, 0.1, true));
    c->add_capacitor("cl" + std::to_string(i), out, kGround, 5e-15);
  }
  return c;
}

spice::TransientOptions ring_transient(const TechNode& tech) {
  spice::TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 4e-9;
  opt.use_initial_conditions = true;
  for (int i = 0; i < kStages; ++i) {
    opt.initial_conditions[i + 2] = (i % 2 == 0) ? 0.0 : tech.vdd;
  }
  opt.initial_conditions[1] = tech.vdd;  // vdd rail node id
  return opt;
}

double measure_frequency(Circuit& c, const TechNode& tech) {
  const auto opt = ring_transient(tech);
  const NodeId probe = c.find_node("n0");
  const auto res = spice::transient_analysis(c, opt, {probe});
  return spice::estimate_frequency(res.time(), res.node(probe), 1.5e-9,
                                   opt.t_stop);
}

}  // namespace

int main() {
  const TechNode& tech = tech_65nm();
  bench::ShapeChecks checks;

  // Age the ring over the mission with a real switching-stress workload and
  // record the drift timeline.
  auto circuit = build_ring(tech);
  const double f_fresh = measure_frequency(*circuit, tech);
  std::cout << "fresh ring frequency at nominal VDD: " << f_fresh / 1e9
            << " GHz\n";
  const double f_spec = 0.95 * f_fresh;

  aging::AgingEngine engine;
  engine.add_model(std::make_unique<aging::NbtiModel>());
  engine.add_model(std::make_unique<aging::HciModel>());
  aging::AgingOptions aopt;
  aopt.mission.years = 10.0;
  aopt.mission.temp_k = 398.0;
  aopt.mission.epochs = 6;
  const aging::StressRunner runner = [&](Circuit& c) {
    c.enable_stress_recording();
    spice::transient_analysis(c, ring_transient(tech), {});
  };
  const auto report = engine.age(*circuit, aopt, runner);

  // Replay the drift epoch by epoch, comparing open loop, closed loop and
  // the overdesign alternative.
  const std::vector<double> vdd_settings{tech.vdd, 1.05 * tech.vdd,
                                         1.10 * tech.vdd, 1.16 * tech.vdd,
                                         1.22 * tech.vdd};
  auto apply_drift = [&](Circuit& c, const aging::EpochRecord& epoch) {
    for (spice::Mosfet* m : c.mosfets()) {
      m->set_degradation(
          epoch.device_drift.at(m->name()).to_degradation());
    }
  };
  auto set_vdd = [&](Circuit& c, double v) {
    c.device_as<spice::VoltageSource>("VDD").set_dc(v);
  };
  // Power proxy: C V^2 f (relative units).
  auto power_proxy = [&](double vdd, double f) { return vdd * vdd * f / 1e9; };

  bench::banner("Fig. 6 - ring oscillator over a 10-year mission");
  TablePrinter table({"t_years", "f_open_GHz", "open_in_spec", "knob_VDD_V",
                      "f_adaptive_GHz", "adaptive_in_spec", "P_adaptive",
                      "P_overdesign"});
  table.set_precision(4);

  bool open_fails_eventually = false;
  bool adaptive_always_in_spec = true;
  bool knob_monotone = true;
  int prev_knob = 0;
  double energy_adaptive = 0.0, energy_overdesign = 0.0;
  const double overdesign_vdd = vdd_settings.back();

  auto replay = build_ring(tech);
  for (const auto& epoch : report.epochs) {
    apply_drift(*replay, epoch);

    // Open loop at nominal supply.
    set_vdd(*replay, tech.vdd);
    const double f_open = measure_frequency(*replay, tech);
    if (f_open < f_spec) open_fails_eventually = true;

    // Closed loop: pick the cheapest supply meeting the spec (the control
    // algorithm of Fig. 6 over the one-knob space).
    int chosen = static_cast<int>(vdd_settings.size()) - 1;
    double f_adapt = 0.0;
    for (std::size_t s = 0; s < vdd_settings.size(); ++s) {
      set_vdd(*replay, vdd_settings[s]);
      const double f = measure_frequency(*replay, tech);
      if (f >= f_spec) {
        chosen = static_cast<int>(s);
        f_adapt = f;
        break;
      }
      f_adapt = f;
    }
    if (f_adapt < f_spec) adaptive_always_in_spec = false;
    if (chosen < prev_knob) knob_monotone = false;
    prev_knob = chosen;

    // Overdesign alternative: worst-case supply from day one.
    set_vdd(*replay, overdesign_vdd);
    const double f_over = measure_frequency(*replay, tech);

    const double p_adapt = power_proxy(vdd_settings[
        static_cast<std::size_t>(chosen)], f_adapt);
    const double p_over = power_proxy(overdesign_vdd, f_over);
    energy_adaptive += p_adapt;
    energy_overdesign += p_over;

    table.add_row({epoch.t_years, f_open / 1e9,
                   std::string(f_open >= f_spec ? "yes" : "NO"),
                   vdd_settings[static_cast<std::size_t>(chosen)],
                   f_adapt / 1e9,
                   std::string(f_adapt >= f_spec ? "yes" : "NO"), p_adapt,
                   p_over});
  }
  table.print(std::cout);
  std::cout << "\nmission-average power: adaptive = "
            << energy_adaptive / static_cast<double>(report.epochs.size())
            << ", overdesign = "
            << energy_overdesign / static_cast<double>(report.epochs.size())
            << " (relative units)\n";

  std::cout << "\nFig. 6 shape claims:\n";
  checks.check("uncompensated system drifts out of spec within the mission",
               open_fails_eventually);
  checks.check("knobs+monitors keep the system in spec over the whole life",
               adaptive_always_in_spec);
  checks.check("the knob only ever moves toward stronger settings",
               knob_monotone);
  checks.check(
      "compensation costs some power, but less than permanent overdesign",
      energy_adaptive < energy_overdesign);
  return checks.finish();
}
