// Ablation benches for the design choices DESIGN.md calls out:
//  A1 - MOSFET subthreshold smoothing (ss_v): Newton robustness vs model
//       sharpness (the reason the level-1 model is C1-smoothed);
//  A2 - transient integrator: backward Euler vs trapezoidal accuracy as a
//       function of step size (why TRAP is the default);
//  A3 - Monte-Carlo sample count: Wilson-interval shrinkage (what the
//       benches' N=150..5000 choices buy).
// (A4, dense-vs-sparse LU, is timed in bench_kernels.)
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/mathx.h"
#include "variability/mc_session.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

// Sums Newton iterations over a forced-current sweep into a diode-connected
// device — the bias point walks straight through the subthreshold knee,
// which is where a sharp (near-abrupt) model hurts.
int bias_sweep_iterations(double ss_v, bool* converged) {
  const TechNode& tech = tech_65nm();
  Circuit c;
  const NodeId d = c.node("d");
  auto& ib = c.add_isource("IB", kGround, d, 1e-12);
  auto n = spice::make_mos_params(tech, 1.0, 0.1, false);
  n.ss_v = ss_v;
  c.add_mosfet("M1", d, d, kGround, kGround, n);
  int total = 0;
  *converged = true;
  spice::DcOptions opt;
  opt.allow_gmin_stepping = false;  // measure plain Newton only
  opt.allow_source_stepping = false;
  for (double i : logspace(1e-12, 1e-4, 17)) {
    ib.set_dc(i);
    try {
      total += spice::dc_operating_point(c, opt).iterations();
    } catch (const Error&) {
      *converged = false;
      total += 1000;  // penalty
    }
  }
  return total;
}

// Steady-state amplitude error of a sine through RC against the analytic
// transfer — the ICs are consistent (DC op), so this isolates the
// integrator's local truncation behaviour.
double rc_sine_amplitude_error(spice::Integrator integrator,
                               int steps_per_cycle) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double f = 1e6;
  c.add_vsource("V1", in, kGround,
                std::make_unique<spice::SineWaveform>(0.0, 1.0, f));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, kGround, 1e-9);
  spice::TransientOptions opt;
  opt.dt = 1.0 / f / steps_per_cycle;
  opt.t_stop = 10.0 / f;
  opt.integrator = integrator;
  const auto res = spice::transient_analysis(c, opt, {out});
  const double amp =
      0.5 * spice::peak_to_peak(res.time(), res.node(out), 7.0 / f, 10.0 / f);
  const double fc = 1.0 / (2 * std::numbers::pi * 1e3 * 1e-9);
  const double expected = 1.0 / std::sqrt(1.0 + std::pow(f / fc, 2));
  return std::abs(amp - expected);
}

}  // namespace

namespace {

// Effective subthreshold swing (mV/decade) of the smoothed model: the
// gate-voltage gap between I_D = 10 pA and 100 pA (deep in the exponential
// tail, where the swing is ln(10)*ss).
double subthreshold_swing_mv_per_dec(double ss_v) {
  auto params = spice::make_mos_params(tech_65nm(), 1.0, 0.1, false);
  params.ss_v = ss_v;
  spice::Mosfet m("M1", 1, 2, 3, 4, params);
  auto vgs_at = [&](double target) {
    double lo = -0.5, hi = 1.2;
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      (m.evaluate(1.0, mid, 0.0, 0.0).id < target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  return (vgs_at(1e-10) - vgs_at(1e-11)) * 1e3;
}

}  // namespace

int main() {
  bench::ShapeChecks checks;

  // --- A1: subthreshold smoothing ------------------------------------------
  bench::banner("A1 - MOSFET overdrive smoothing vs Newton robustness "
                "(forced-current sweep through the subthreshold knee)");
  TablePrinter a1({"ss_v_mV", "subthreshold_mV_per_dec", "total_iterations",
                   "all_converged"});
  a1.set_precision(4);
  double swing_default = 0.0, swing_sharp = 0.0;
  bool all_ok = true;
  int worst_iters = 0;
  for (double ss : {78e-3, 40e-3, 20e-3, 10e-3, 2e-3, 0.5e-3}) {
    bool ok = true;
    const int iters = bias_sweep_iterations(ss, &ok);
    const double swing = subthreshold_swing_mv_per_dec(ss);
    a1.add_row({ss * 1e3, swing, static_cast<long long>(iters),
                std::string(ok ? "yes" : "NO")});
    if (ss == 78e-3) swing_default = swing;
    if (ss == 0.5e-3) swing_sharp = swing;
    all_ok = all_ok && ok;
    worst_iters = std::max(worst_iters, iters);
  }
  a1.print(std::cout);

  // --- A2: integrator accuracy ---------------------------------------------
  bench::banner("A2 - integrator accuracy: steady-state sine amplitude "
                "error vs step size");
  TablePrinter a2({"steps_per_cycle", "err_backward_euler",
                   "err_trapezoidal", "BE/TRAP"});
  a2.set_precision(4);
  double be_order = 0.0, trap_order = 0.0;
  double prev_be = 0.0, prev_trap = 0.0;
  for (int spc : {25, 50, 100, 200}) {
    const double be =
        rc_sine_amplitude_error(spice::Integrator::kBackwardEuler, spc);
    const double trap =
        rc_sine_amplitude_error(spice::Integrator::kTrapezoidal, spc);
    a2.add_row({static_cast<long long>(spc), be, trap, be / trap});
    if (prev_be > 0.0) {
      be_order = std::log2(prev_be / be);
      trap_order = std::log2(prev_trap / trap);
    }
    prev_be = be;
    prev_trap = trap;
  }
  a2.print(std::cout);
  std::cout << "observed convergence order: BE ~ " << be_order
            << ", TRAP ~ " << trap_order << "\n";

  // --- A3: MC sample count --------------------------------------------------
  bench::banner("A3 - yield-estimate confidence vs Monte-Carlo samples");
  TablePrinter a3({"samples", "estimate", "wilson_lo", "wilson_hi",
                   "ci_width"});
  a3.set_precision(4);
  const auto coin85 = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.85;
  };
  double width_small = 0.0, width_large = 0.0;
  for (std::size_t n : {50u, 200u, 800u, 3200u}) {
    McRequest req;
    req.seed = 99;
    req.n = n;
    const auto est = McSession(req).run_yield(coin85).estimate;
    const double width = est.interval.hi - est.interval.lo;
    a3.add_row({static_cast<long long>(n), est.yield(), est.interval.lo,
                est.interval.hi, width});
    if (n == 50u) width_small = width;
    if (n == 3200u) width_large = width;
  }
  a3.print(std::cout);

  // --- A3b: sequential early stopping ----------------------------------------
  bench::banner("A3b - samples an early-stopped session needs to hit a "
                "Wilson half-width target (vs the fixed-N table above)");
  TablePrinter a3b({"target_halfwidth", "samples_used", "of_budget",
                    "estimate", "stop_reason"});
  a3b.set_precision(4);
  std::size_t used_at_005 = 0;
  for (double hw : {0.10, 0.05, 0.02}) {
    McRequest req;
    req.seed = 99;
    req.n = 20000;  // generous budget; the stopping rule decides
    req.stopping.ci_half_width = hw;
    const McResult res = McSession(req).run_yield(coin85);
    a3b.add_row({hw, static_cast<long long>(res.completed),
                 static_cast<double>(res.completed) / res.requested,
                 res.estimate.yield(), std::string(to_string(res.stop_reason()))});
    if (hw == 0.05) used_at_005 = res.completed;
  }
  a3b.print(std::cout);

  std::cout << "\nablation claims:\n";
  checks.check(
      "the default ss=78mV reproduces a physical subthreshold swing "
      "(80-110 mV/dec); a near-abrupt model is unphysical (<10 mV/dec)",
      swing_default > 80.0 && swing_default < 110.0 && swing_sharp < 10.0);
  checks.check(
      "plain Newton stays bounded through the subthreshold knee at every "
      "smoothness setting",
      all_ok && worst_iters < 600);
  checks.check("trapezoidal is consistently more accurate than BE",
               prev_trap < prev_be);
  checks.check(
      "TRAP's advantage grows as the step shrinks (higher order: BE ~1, "
      "TRAP measured > 1.3)",
      be_order > 0.8 && be_order < 1.4 && trap_order > 1.3);
  checks.check("Wilson interval shrinks ~sqrt(n): 64x samples ~ 8x tighter",
               width_small / width_large > 4.0 &&
                   width_small / width_large < 16.0);
  checks.check(
      "early stopping hits the 0.05 half-width target with a fraction of "
      "the 20000-sample budget",
      used_at_005 > 0 && used_at_005 < 2000);
  return checks.finish();
}
