// Fault-tolerance bench (mc_session.h + testing/fault_injection.h): the
// acceptance scenario of the fault-tolerant Monte-Carlo layer, run as
// shape checks.
//
//  - kSkip: a 1000-sample run with injected singular pivots, injected
//    non-convergence AND NaN-poisoned metrics completes, and the
//    surviving-sample values are bit-identical across 1/4/8 workers and
//    to a fault-free run;
//  - kRetryThenSkip: when every fault is transient (first attempt only),
//    the retry ladder recovers every sample and the run equals the
//    fault-free run bit for bit — again for 1/4/8 workers;
//  - disarmed overhead: with no rules armed the injection points are a
//    relaxed atomic load each, and a default-policy (kAbort) run is
//    bit-identical to the same run under kSkip;
//  - checkpoint rot: a bit-flipped checkpoint is caught by its CRC-32 and,
//    under kDiscardCorrupt, the restarted run still matches a fresh one.
//
// Flags: --smoke (shrink sample counts for CI),
//        --mc-json PATH (dump the measured series as a flat JSON artifact),
//        --manifest PATH (run manifest, rewritten per run; final wins).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testing/fault_injection.h"
#include "util/error.h"
#include "variability/mc_session.h"

using namespace relsim;
using testing::FaultRule;
using testing::FaultScope;
using testing::FaultSite;

namespace {

double smooth_metric(Xoshiro256& rng, std::size_t) {
  return 1.0 + 0.25 * rng.uniform01();
}

/// Arms the three per-sample fault kinds on disjoint residue classes
/// (singular on i%13==3, non-convergence on i%17==5, NaN on i%19==7).
/// `max_attempt` bounds the attempts that fail: INT_MAX = every attempt
/// (the kSkip scenario), 1 = first attempt only (the transient scenario).
void arm_sample_faults(int max_attempt) {
  FaultRule singular;
  singular.sample_modulus = 13;
  singular.sample_remainder = 3;
  singular.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalThrowSingular, singular);

  FaultRule nonconv;
  nonconv.sample_modulus = 17;
  nonconv.sample_remainder = 5;
  nonconv.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalThrowConvergence, nonconv);

  FaultRule nan;
  nan.sample_modulus = 19;
  nan.sample_remainder = 7;
  nan.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalNan, nan);
}

std::size_t expected_faulted(std::size_t n) {
  std::size_t faulted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 13 == 3 || i % 17 == 5 || i % 19 == 7) ++faulted;
  }
  return faulted;
}

/// Element-wise equality where censored NaN entries compare equal (IEEE
/// NaN != NaN would otherwise hide that two runs agree).
bool same_values(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::set<std::size_t> failed_indices(const McResult& r) {
  std::set<std::size_t> idx;
  for (const McFailedSample& f : r.failed_samples()) idx.insert(f.index);
  return idx;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string mc_json = bench::arg_value(argc, argv, "--mc-json");
  const std::string manifest_path = bench::arg_value(argc, argv, "--manifest");

  const std::size_t n = 1000;  // the acceptance scenario is fixed at 1000
  const std::vector<unsigned> worker_counts{1, 4, 8};

  // --- kSkip: chaos run, bit-identical for any worker count -----------------
  bench::banner("kSkip: 1000 samples, singular + non-convergence + NaN "
                "faults, 1/4/8 workers");
  std::vector<McResult> skip_runs;
  for (unsigned threads : worker_counts) {
    FaultScope scope;
    arm_sample_faults(std::numeric_limits<int>::max());
    McRequest req;
    req.seed = 99;
    req.n = n;
    req.threads = threads;
    req.chunk = 16;
    req.failure_policy = McFailurePolicy::kSkip;
    req.manifest_path = manifest_path;
    req.run_label = "bench_faults.skip_w" + std::to_string(threads);
    skip_runs.push_back(McSession(req).run_metric(smooth_metric));
  }
  McRequest clean_req;
  clean_req.seed = 99;
  clean_req.n = n;
  clean_req.threads = 4;
  clean_req.chunk = 16;
  const McResult clean = McSession(clean_req).run_metric(smooth_metric);

  TablePrinter skip_t({"workers", "elapsed_s", "completed", "failed",
                       "survivors_match"});
  skip_t.set_precision(3);
  bool skip_identical = true;
  bool skip_failed_agree = true;
  for (std::size_t w = 0; w < skip_runs.size(); ++w) {
    const McResult& r = skip_runs[w];
    const bool match = same_values(r.values, skip_runs[0].values);
    skip_identical = skip_identical && match;
    skip_failed_agree = skip_failed_agree &&
                        failed_indices(r) == failed_indices(skip_runs[0]);
    skip_t.add_row({static_cast<long long>(worker_counts[w]),
                    r.elapsed_seconds(), static_cast<long long>(r.completed),
                    static_cast<long long>(r.run.failed_total),
                    std::string(match ? "yes" : "NO")});
    json.add("skip_w" + std::to_string(worker_counts[w]),
             {{"elapsed_s", r.elapsed_seconds()},
              {"failed", static_cast<double>(r.run.failed_total)}});
  }
  skip_t.print(std::cout);

  // Surviving samples of the chaos run vs the fault-free run: only the
  // censored entries (NaN) may differ.
  bool survivors_clean = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(skip_runs[0].values[i])) continue;
    survivors_clean = survivors_clean &&
                      skip_runs[0].values[i] == clean.values[i];
  }
  const std::size_t want_failed = expected_faulted(n);
  checks.check("all three fault kinds fired (failed == " +
                   std::to_string(want_failed) + " residue-class samples)",
               skip_runs[0].run.failed_total == want_failed);
  checks.check("kSkip values (survivors AND censored slots) bit-identical "
               "across 1/4/8 workers",
               skip_identical);
  checks.check("failed-sample indices agree across 1/4/8 workers",
               skip_failed_agree);
  checks.check("surviving samples equal the fault-free run bit-exactly",
               survivors_clean);
  checks.check("every failed sample carries a replay seed and a reason",
               [&] {
                 for (const McFailedSample& f :
                      skip_runs[0].failed_samples()) {
                   if (f.seed == 0 || f.reason.empty()) return false;
                 }
                 return !skip_runs[0].failed_samples().empty();
               }());

  // --- kRetryThenSkip: transient faults recovered ---------------------------
  bench::banner("kRetryThenSkip: same faults, first attempt only — the "
                "retry ladder recovers every sample");
  std::vector<McResult> retry_runs;
  for (unsigned threads : worker_counts) {
    FaultScope scope;
    arm_sample_faults(/*max_attempt=*/1);
    McRequest req;
    req.seed = 99;
    req.n = n;
    req.threads = threads;
    req.chunk = 16;
    req.failure_policy = McFailurePolicy::kRetryThenSkip;
    req.max_retries = 2;
    req.manifest_path = manifest_path;
    req.run_label = "bench_faults.retry_w" + std::to_string(threads);
    retry_runs.push_back(McSession(req).run_metric(smooth_metric));
  }

  TablePrinter retry_t({"workers", "elapsed_s", "retried", "recovered",
                        "failed"});
  retry_t.set_precision(3);
  bool retry_identical = true;
  for (std::size_t w = 0; w < retry_runs.size(); ++w) {
    const McResult& r = retry_runs[w];
    retry_identical = retry_identical && r.values == clean.values;
    retry_t.add_row({static_cast<long long>(worker_counts[w]),
                     r.elapsed_seconds(),
                     static_cast<long long>(r.run.retried_total),
                     static_cast<long long>(r.run.recovered_total),
                     static_cast<long long>(r.run.failed_total)});
    json.add("retry_w" + std::to_string(worker_counts[w]),
             {{"elapsed_s", r.elapsed_seconds()},
              {"recovered", static_cast<double>(r.run.recovered_total)}});
  }
  retry_t.print(std::cout);

  checks.check("retry ladder recovers all " + std::to_string(want_failed) +
                   " transiently-faulted samples (failed == 0)",
               retry_runs[0].run.failed_total == 0 &&
                   retry_runs[0].run.recovered_total == want_failed);
  checks.check("recovered runs are bit-identical to the fault-free run "
               "across 1/4/8 workers",
               retry_identical);

  // --- disarmed overhead ----------------------------------------------------
  bench::banner("Disarmed harness: default kAbort vs kSkip on a fault-free "
                "run (policies must agree bit-exactly)");
  const std::size_t n_clean = smoke ? 50000 : 200000;
  McRequest fast;
  fast.seed = 5;
  fast.n = n_clean;
  fast.threads = 4;
  fast.keep_values = true;
  fast.run_label = "bench_faults.overhead";
  auto coin = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.9;
  };
  const McResult legacy = McSession(fast).run_yield(coin);
  fast.failure_policy = McFailurePolicy::kSkip;
  const McResult guarded = McSession(fast).run_yield(coin);

  TablePrinter ov({"policy", "elapsed_s", "passed", "total"});
  ov.set_precision(4);
  ov.add_row({std::string("abort (legacy)"), legacy.elapsed_seconds(),
              static_cast<long long>(legacy.estimate.passed),
              static_cast<long long>(legacy.estimate.total)});
  ov.add_row({std::string("skip (guarded)"), guarded.elapsed_seconds(),
              static_cast<long long>(guarded.estimate.passed),
              static_cast<long long>(guarded.estimate.total)});
  ov.print(std::cout);

  checks.check("fault-free kSkip run is bit-identical to the legacy kAbort "
               "run (values and interval)",
               legacy.values == guarded.values &&
                   legacy.estimate.interval.lo ==
                       guarded.estimate.interval.lo &&
                   legacy.estimate.interval.hi ==
                       guarded.estimate.interval.hi);
  json.add("overhead", {{"abort_s", legacy.elapsed_seconds()},
                        {"skip_s", guarded.elapsed_seconds()},
                        {"n", static_cast<double>(n_clean)}});

  // --- checkpoint rot -------------------------------------------------------
  bench::banner("Checkpoint rot: CRC-32 catches a flipped byte; "
                "kDiscardCorrupt restarts to the bit-exact clean result");
  const std::string ckpt = "bench_faults_rot.ckpt";
  std::remove(ckpt.c_str());
  McRequest cr;
  cr.seed = 13;
  cr.n = smoke ? 300 : 1000;
  cr.threads = 4;
  cr.checkpoint_path = ckpt;
  cr.run_label = "bench_faults.checkpoint_rot";
  {
    FaultScope scope;
    FaultRule rot;
    rot.nth = 1;  // flip one byte of the first checkpoint image written
    testing::arm(FaultSite::kCheckpointCorrupt, rot);
    McSession(cr).run_metric(smooth_metric);
  }
  bool detected = false;
  try {
    McSession(cr).run_metric(smooth_metric);  // kThrow (default)
  } catch (const Error&) {
    detected = true;
  }
  cr.checkpoint_recovery = McCheckpointRecovery::kDiscardCorrupt;
  cr.manifest_path = manifest_path;
  const McResult recovered = McSession(cr).run_metric(smooth_metric);
  std::remove(ckpt.c_str());

  McRequest fresh_req;
  fresh_req.seed = 13;
  fresh_req.n = cr.n;
  fresh_req.threads = 4;
  const McResult fresh = McSession(fresh_req).run_metric(smooth_metric);

  std::cout << "corrupt checkpoint: detected=" << (detected ? "yes" : "NO")
            << " discarded=" << (recovered.run.checkpoint_discarded ? "yes"
                                                                    : "NO")
            << " resumed=" << recovered.resumed << "/" << cr.n << "\n";
  checks.check("bit-flipped checkpoint is rejected by CRC-32 under kThrow",
               detected);
  checks.check("kDiscardCorrupt restarts cleanly (0 samples resumed, "
               "discard recorded)",
               recovered.resumed == 0 && recovered.run.checkpoint_discarded);
  checks.check("restarted run equals a fresh run bit-exactly",
               same_values(recovered.values, fresh.values) &&
                   recovered.metric.mean() == fresh.metric.mean());
  json.add("checkpoint_rot",
           {{"detected", detected ? 1.0 : 0.0},
            {"resumed", static_cast<double>(recovered.resumed)}});

  if (!mc_json.empty()) {
    checks.check("fault telemetry artifact written to " + mc_json,
                 json.write(mc_json));
  }
  return checks.finish();
}
