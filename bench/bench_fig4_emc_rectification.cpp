// E8 — Figs. 3 + 4 / Sec. 4, EMC:
// interference on the current-reference input shifts the mean output
// current DOWN; the error grows with amplitude and depends on frequency;
// the gate filter capacitor is what makes this topology susceptible
// (Fig. 3's caption: "filtering harms the EMC behaviour").
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "emc/circuits.h"
#include "emc/emi.h"
#include "tech/tech.h"
#include "util/mathx.h"

using namespace relsim;
using emc::EmiAnalyzer;
using emc::Observable;

int main() {
  const TechNode& tech = tech_65nm();
  bench::ShapeChecks checks;
  emc::EmiOptions opt;
  opt.settle_cycles = 12;
  opt.measure_cycles = 20;
  opt.steps_per_cycle = 48;

  const auto bench_ckt = emc::build_current_reference(tech);
  EmiAnalyzer analyzer(*bench_ckt.circuit, bench_ckt.emi_source,
                       Observable::source_current(bench_ckt.output_monitor));
  const double i0 = analyzer.baseline();
  std::cout << "current reference: I_REF = " << bench_ckt.i_ref * 1e6
            << " uA, quiet I_OUT = " << i0 * 1e6 << " uA\n";

  // --- Fig. 4: mean output current vs interference amplitude -----------------
  bench::banner("Fig. 4 - mean I_OUT shift vs EMI amplitude (100 MHz)");
  TablePrinter amp({"amplitude_V", "mean_IOUT_uA", "shift_uA", "shift_pct"});
  amp.set_precision(4);
  bool all_down = true, monotone = true;
  double prev_shift = 0.0, worst_shift_pct = 0.0;
  for (double a : {0.0, 0.2, 0.4, 0.8, 1.2, 1.6}) {
    if (a == 0.0) {
      amp.add_row({a, i0 * 1e6, 0.0, 0.0});
      continue;
    }
    const auto p = analyzer.measure(a, 100e6, opt);
    amp.add_row({a, p.with_emi * 1e6, p.shift() * 1e6,
                 100.0 * p.shift_rel()});
    if (p.shift() > 0.0) all_down = false;
    if (p.shift() > prev_shift + 1e-9) monotone = false;
    prev_shift = p.shift();
    worst_shift_pct = std::min(worst_shift_pct, 100.0 * p.shift_rel());
  }
  amp.print(std::cout);

  // --- frequency dependence ---------------------------------------------------
  bench::banner("Fig. 4 - shift vs interference frequency (amplitude 1 V)");
  TablePrinter freq({"f_MHz", "shift_uA", "shift_pct", "gate_ripple_pp_mV"});
  freq.set_precision(4);
  double lo_shift = 0.0, hi_shift = 0.0;
  EmiAnalyzer gate_an(*bench_ckt.circuit, bench_ckt.emi_source,
                      Observable::node_voltage(bench_ckt.gate));
  for (double f : {2e6, 10e6, 50e6, 200e6, 1000e6}) {
    const auto p = analyzer.measure(1.0, f, opt);
    const auto g = gate_an.measure(1.0, f, opt);
    freq.add_row({f / 1e6, p.shift() * 1e6, 100.0 * p.shift_rel(),
                  g.ripple_pp * 1e3});
    if (f == 2e6) lo_shift = std::abs(p.shift());
    if (f == 200e6) hi_shift = std::abs(p.shift());
  }
  freq.print(std::cout);

  // --- Fig. 3's point: the filter is the culprit -------------------------------
  // Moderate amplitude so the filtered cases stay below full collapse.
  bench::banner("Fig. 3 - filter-capacitor ablation (0.3 V, 100 MHz)");
  TablePrinter filt({"filter_cap_pF", "shift_uA", "shift_pct"});
  filt.set_precision(4);
  double no_filter_shift = 0.0, big_filter_shift = 0.0;
  for (double cf_pf : {0.0, 5.0, 20.0, 80.0}) {
    emc::CurrentReferenceOptions copt;
    copt.filter_cap_f = cf_pf * 1e-12;
    const auto b = emc::build_current_reference(tech, copt);
    EmiAnalyzer a(*b.circuit, b.emi_source,
                  Observable::source_current(b.output_monitor));
    // The filtered gate settles with tau = RF*CF; wait ~6 tau.
    emc::EmiOptions fopt = opt;
    fopt.settle_cycles = std::max(
        fopt.settle_cycles,
        static_cast<int>(6.0 * copt.filter_r_ohm * copt.filter_cap_f * 100e6) +
            1);
    const auto p = a.measure(0.3, 100e6, fopt);
    filt.add_row({cf_pf, p.shift() * 1e6, 100.0 * p.shift_rel()});
    if (cf_pf == 0.0) no_filter_shift = std::abs(p.shift());
    if (cf_pf == 80.0) big_filter_shift = std::abs(p.shift());
  }
  filt.print(std::cout);

  // --- immunity threshold (DPI-style result) -----------------------------------
  bench::banner("Immunity threshold: max amplitude for <5% shift");
  TablePrinter imm({"f_MHz", "max_amplitude_V"});
  imm.set_precision(4);
  for (double f : {10e6, 100e6, 500e6}) {
    imm.add_row(
        {f / 1e6,
         analyzer.immunity_threshold(f, 0.05 * bench_ckt.i_ref, 2.0, opt)});
  }
  imm.print(std::cout);

  std::cout << "\nFigs. 3-4 shape claims:\n";
  checks.check("mean output current is pumped to a LOWER value", all_down);
  checks.check("|shift| grows monotonically with amplitude", monotone);
  checks.check("shift reaches tens of percent at large amplitude",
               worst_shift_pct < -10.0);
  checks.check("error depends on frequency (capacitive coupling path)",
               hi_shift > 3.0 * lo_shift);
  checks.check("the gate filter causes the rectified shift (Fig. 3 caption)",
               big_filter_shift > 2.0 * no_filter_shift);
  return checks.finish();
}
