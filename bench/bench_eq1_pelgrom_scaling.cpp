// E2 — Eq. 1: sigma^2(dVT) = A_VT^2/(W L) + S_VT^2 D^2, plus the
// narrow/short-channel extension terms of nanometer technologies.
//
// Regenerates the area-scaling and distance-scaling series, comparing the
// closed form with a Monte-Carlo re-extraction, and shows where the
// extension terms dominate.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "rng/rng.h"
#include "stats/summary.h"
#include "stats/regression.h"
#include "tech/tech.h"
#include "variability/pelgrom.h"
#include "variability/sampler.h"

using namespace relsim;

namespace {

double mc_sigma_pair(const PelgromModel& model, double w, double l, double d,
                     std::uint64_t seed) {
  const MismatchSampler sampler(model, w, l);
  Xoshiro256 rng(seed);
  RunningStats diff;
  for (int i = 0; i < 20000; ++i) {
    const auto [a, b] = sampler.sample_pair(rng, d);
    diff.add(a.dvt - b.dvt);
  }
  return diff.stddev();
}

}  // namespace

int main() {
  const TechNode& tech = tech_65nm();
  const PelgromModel model(PelgromParams::from_tech(tech));
  bench::ShapeChecks checks;

  // --- area scaling: sigma vs 1/sqrt(WL) ---------------------------------
  bench::banner("Eq. 1 area term: sigma(dVT) vs device area (65nm node)");
  TablePrinter area({"W_um", "L_um", "1/sqrt(WL)", "sigma_mV_closed",
                     "sigma_mV_mc", "mc/closed"});
  area.set_precision(4);
  std::vector<double> inv_sqrt_area, sigmas;
  bool mc_matches = true;
  std::uint64_t sid = 0;
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double w = 1.0 * scale, l = 0.5 * scale;
    const double closed = model.sigma_dvt_pair(w, l);
    const double mc = mc_sigma_pair(model, w, l, 0.0, derive_seed(7, {sid++}));
    area.add_row({w, l, 1.0 / std::sqrt(w * l), closed * 1e3, mc * 1e3,
                  mc / closed});
    inv_sqrt_area.push_back(1.0 / std::sqrt(w * l));
    sigmas.push_back(closed * 1e3);
    if (std::abs(mc / closed - 1.0) > 0.03) mc_matches = false;
  }
  area.print(std::cout);
  // For large devices the extension terms vanish: sigma ~ A_VT/sqrt(WL).
  const LinearFit fit = fit_line(inv_sqrt_area, sigmas);
  std::cout << "\nfitted slope (=> A_VT) = " << fit.slope
            << " mV*um, node A_VT = " << tech.avt_mv_um << " mV*um\n";

  // --- distance term ------------------------------------------------------
  bench::banner("Eq. 1 distance term: sigma(dVT) vs mutual distance D");
  TablePrinter dist({"D_um", "sigma_mV_closed", "sigma_mV_mc",
                     "gradient_share_pct"});
  dist.set_precision(4);
  bool distance_grows = true;
  double prev = 0.0;
  for (double d : {0.0, 100.0, 300.0, 1000.0, 3000.0}) {
    const double closed = model.sigma_dvt_pair(2.0, 0.5, d);
    const double mc = mc_sigma_pair(model, 2.0, 0.5, d, derive_seed(9, {sid++}));
    const double base = model.sigma_dvt_pair(2.0, 0.5, 0.0);
    const double share =
        100.0 * (1.0 - (base * base) / (closed * closed));
    dist.add_row({d, closed * 1e3, mc * 1e3, share});
    if (closed < prev) distance_grows = false;
    prev = closed;
  }
  dist.print(std::cout);

  // --- extension terms ----------------------------------------------------
  bench::banner("Short/narrow-channel extension terms (same area, different "
                "aspect)");
  TablePrinter ext({"W_um", "L_um", "sigma_mV_eq1_only", "sigma_mV_extended",
                    "extension_pct"});
  ext.set_precision(4);
  PelgromParams plain = PelgromParams::from_tech(tech);
  plain.asc_mv_um15 = 0.0;
  plain.anc_mv_um15 = 0.0;
  const PelgromModel plain_model(plain);
  double short_channel_excess = 0.0, square_excess = 0.0;
  for (const auto& [w, l] : std::vector<std::pair<double, double>>{
           {4.0, 0.065}, {1.0, 0.26}, {1.0, 1.0}, {0.065, 4.0}}) {
    const double base = plain_model.sigma_dvt_pair(w, l);
    const double full = model.sigma_dvt_pair(w, l);
    const double pct = 100.0 * (full / base - 1.0);
    ext.add_row({w, l, base * 1e3, full * 1e3, pct});
    if (l < 0.1) short_channel_excess = pct;
    if (std::abs(w - l) < 1e-9) square_excess = pct;
  }
  ext.print(std::cout);

  std::cout << "\nEq. 1 shape claims:\n";
  checks.check("MC sigma matches the closed form within 3% everywhere",
               mc_matches);
  checks.check("fitted area slope recovers the node A_VT within 5%",
               std::abs(fit.slope / tech.avt_mv_um - 1.0) < 0.05);
  checks.check("distance term adds in quadrature and grows with D",
               distance_grows);
  checks.check(
      "short-channel devices need the extension terms (excess > square "
      "devices)",
      short_channel_excess > 4.0 * std::max(square_excess, 0.5));
  return checks.finish();
}
