// High-sigma yield bench (variability/sample_strategy.h + mc_session.h):
// the acceptance scenario of the variance-reduction sampling subsystem on
// a DAC-INL-style tail metric, run as shape checks.
//
// The metric is the worst-case INL of a binary-weighted DAC linearized as
// y = 0.8 z0 + (0.6/sqrt(15)) (z1 + ... + z15) with zi iid standard
// normals (unit total variance), and the "failure" is the tail event
// y > tau. The exact tail probability Phi(-tau) gives every estimator a
// ground truth to be checked against.
//
//  - importance sampling: a mean-shift proposal (shift tau/2 along the
//    INL gradient) estimates the tail probability with >= 10x fewer
//    samples than plain Monte-Carlo needs for the same CI half-width;
//  - bit identity: the weighted run's estimate, interval and power sums
//    are bit-identical across 1/4/8 workers and chunk sizes 8/64;
//  - kill/resume: a run killed mid-flight by an injected exception resumes
//    from its checkpoint to the bit-exact uninterrupted result (the
//    likelihood-ratio weights ride in the RSMCKPT image);
//  - stratified sampling: oversampling a rare u0-stratum tightens the
//    post-stratified CI well below the plain Wilson CI at equal n;
//  - quasi-MC: LHS and scrambled Sobol' cut the integration error of a
//    smooth 8-dimensional mean far below the pseudo-random error.
//
// Flags: --smoke (tail p = 1e-3 and smaller n for CI),
//        --mc-json PATH (dump the measured series as a flat JSON artifact),
//        --manifest PATH (run manifest of the headline importance run).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stats/summary.h"
#include "util/error.h"
#include "variability/mc_session.h"

using namespace relsim;

namespace {

constexpr unsigned kInlDims = 16;  // z0 + 15 secondary mismatch terms
constexpr double kPrimary = 0.8;
const double kSecondary = 0.6 / std::sqrt(15.0);

/// The linearized DAC INL metric: unit-variance weighted sum of the
/// tracked normals, dominated by z0 (64% of the variance).
double inl(McSamplePoint& p) {
  double y = kPrimary * p.normal(0);
  for (unsigned d = 1; d < kInlDims; ++d) y += kSecondary * p.normal(d);
  return y;
}

/// Mean shift mu along the INL gradient (the unit vector of coefficients):
/// E[y] under the proposal is mu. mu = tau/2 keeps the likelihood-ratio
/// weights tame (full tilt mu = tau inflates the weight variance past the
/// plain-MC one).
std::vector<double> inl_shift(double mu) {
  std::vector<double> s(kInlDims, mu * kSecondary);
  s[0] = mu * kPrimary;
  return s;
}

double half_width(const ProportionInterval& iv) {
  return 0.5 * (iv.hi - iv.lo);
}

/// Plain-MC sample count that reaches half-width h on a proportion p at z.
double plain_mc_equivalent(double p, double h, double z = 1.959963984540054) {
  return z * z * p * (1.0 - p) / (h * h);
}

bool same_weighted(const McResult& a, const McResult& b) {
  return a.completed == b.completed &&
         a.estimate.interval.estimate == b.estimate.interval.estimate &&
         a.estimate.interval.lo == b.estimate.interval.lo &&
         a.estimate.interval.hi == b.estimate.interval.hi &&
         a.weighted.sums.w == b.weighted.sums.w &&
         a.weighted.sums.w2 == b.weighted.sums.w2 &&
         a.weighted.sums.wx == b.weighted.sums.wx &&
         a.weighted.ess == b.weighted.ess;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string mc_json = bench::arg_value(argc, argv, "--mc-json");
  const std::string manifest_path = bench::arg_value(argc, argv, "--manifest");

  // Smoke: a 3.1-sigma tail (p = 1e-3); full: a 3.7-sigma tail (p = 1e-4).
  const double p_tail = smoke ? 1e-3 : 1e-4;
  const double tau = normal_quantile(1.0 - p_tail);
  const double p_exact = normal_cdf(-tau);
  const std::size_t n_is = smoke ? 2000 : 6000;
  const std::size_t n_plain = smoke ? 100000 : 2000000;

  const auto tail_event = [tau](McSamplePoint& p) { return inl(p) > tau; };

  SampleStrategyConfig importance;
  importance.kind = McSampleStrategy::kImportance;
  importance.shift = inl_shift(0.5 * tau);

  // --- importance sampling vs plain MC --------------------------------------
  bench::banner("Importance sampling: P[INL > " + std::to_string(tau) +
                "] (exact " + std::to_string(p_exact) + ")");

  McRequest plain_req;
  plain_req.seed = 2026;
  plain_req.n = n_plain;
  plain_req.threads = 4;
  plain_req.run_label = "bench_highsigma.plain";
  const McResult plain = McSession(plain_req).run_yield(tail_event);

  McRequest is_req;
  is_req.seed = 2026;
  is_req.n = n_is;
  is_req.threads = 4;
  is_req.chunk = 16;
  is_req.strategy = importance;
  is_req.run_label = "bench_highsigma.importance";
  is_req.manifest_path = manifest_path;
  const McResult is = McSession(is_req).run_yield(tail_event);

  const double h_is = half_width(is.estimate.interval);
  const double h_plain = half_width(plain.estimate.interval);
  const double n_equiv = plain_mc_equivalent(is.estimate.yield(), h_is);
  const double reduction = n_equiv / static_cast<double>(n_is);

  TablePrinter is_t({"estimator", "n", "estimate", "ci_half_width", "ess"});
  is_t.set_precision(6);
  is_t.add_row({std::string("plain MC"), static_cast<long long>(n_plain),
                plain.estimate.yield(), h_plain,
                static_cast<double>(n_plain)});
  is_t.add_row({std::string("importance"), static_cast<long long>(n_is),
                is.estimate.yield(), h_is, is.weighted.ess});
  is_t.print(std::cout);
  std::printf("plain-MC samples for the importance CI: %.0f (%.1fx fewer "
              "with IS)\n",
              n_equiv, reduction);

  checks.check("importance estimate within 3 half-widths of the exact tail "
               "probability",
               std::abs(is.estimate.yield() - p_exact) <= 3.0 * h_is);
  checks.check("plain-MC estimate within 3 half-widths of the exact tail "
               "probability",
               std::abs(plain.estimate.yield() - p_exact) <= 3.0 * h_plain);
  checks.check("importance sampling needs >= 10x fewer samples than plain "
               "MC at equal CI half-width",
               reduction >= 10.0);
  checks.check("ESS diagnostic is positive and below the sample count",
               is.weighted.enabled && is.weighted.ess > 0.0 &&
                   is.weighted.ess < static_cast<double>(n_is));
  json.add("importance", {{"n", static_cast<double>(n_is)},
                          {"estimate", is.estimate.yield()},
                          {"ci_half_width", h_is},
                          {"ess", is.weighted.ess},
                          {"exact", p_exact},
                          {"plain_equivalent_n", n_equiv},
                          {"sample_reduction", reduction}});
  json.add("plain", {{"n", static_cast<double>(n_plain)},
                     {"estimate", plain.estimate.yield()},
                     {"ci_half_width", h_plain}});

  // --- bit identity across workers and chunk sizes --------------------------
  bench::banner("Bit identity: importance run across 1/4/8 workers x chunk "
                "8/64");
  bool identical = true;
  for (unsigned threads : {1u, 4u, 8u}) {
    for (std::size_t chunk : {std::size_t{8}, std::size_t{64}}) {
      McRequest req = is_req;
      req.threads = threads;
      req.chunk = chunk;
      req.manifest_path.clear();
      req.run_label = "bench_highsigma.bits";
      const McResult r = McSession(req).run_yield(tail_event);
      const bool match = same_weighted(r, is);
      identical = identical && match;
      std::printf("  workers=%u chunk=%zu estimate=%.12g %s\n", threads,
                  chunk, r.estimate.yield(), match ? "match" : "MISMATCH");
    }
  }
  checks.check("weighted estimate, interval and power sums bit-identical "
               "across 1/4/8 workers and chunk 8/64",
               identical);
  json.add("bit_identity", {{"identical", identical ? 1.0 : 0.0}});

  // --- kill/resume mid-run --------------------------------------------------
  bench::banner("Kill/resume: importance run killed mid-flight resumes from "
                "its checkpoint to the bit-exact result");
  const std::string ckpt = "bench_highsigma.ckpt";
  std::remove(ckpt.c_str());
  McRequest kr = is_req;
  kr.manifest_path.clear();
  kr.checkpoint_path = ckpt;
  kr.checkpoint_every = 256;
  kr.run_label = "bench_highsigma.resume";
  const std::size_t kill_index = 3 * n_is / 4;
  bool killed = false;
  try {
    McSession(kr).run_yield([&](McSamplePoint& p) {
      if (p.index() == kill_index) {
        throw Error("bench kill switch at sample " +
                    std::to_string(kill_index));
      }
      return tail_event(p);
    });
  } catch (const Error&) {
    killed = true;
  }
  const McResult resumed = McSession(kr).run_yield(tail_event);
  std::remove(ckpt.c_str());
  std::printf("  killed=%s resumed=%zu/%zu estimate=%.12g\n",
              killed ? "yes" : "NO", resumed.resumed, n_is,
              resumed.estimate.yield());
  checks.check("kill switch aborted the first attempt", killed);
  checks.check("second run resumed committed samples from the checkpoint",
               resumed.resumed > 0 && resumed.resumed < n_is);
  checks.check("resumed importance run is bit-identical to the "
               "uninterrupted run (weights ride in the checkpoint)",
               same_weighted(resumed, is));
  json.add("resume", {{"resumed", static_cast<double>(resumed.resumed)},
                      {"identical", same_weighted(resumed, is) ? 1.0 : 0.0}});

  // --- stratified sampling --------------------------------------------------
  bench::banner("Stratified sampling: oversampling the rare u0 stratum vs "
                "plain MC at equal n");
  // Failures live in the top 1% of u0 and half of those survive the second
  // screen: p_fail = 0.005, yield 0.995.
  const auto screened = [](McSamplePoint& p) {
    const double u0 = p.uniform(0);
    const double z = p.normal(1);
    return !(u0 > 0.99 && z > 0.0);
  };
  const double strat_yield_exact = 1.0 - 0.01 * 0.5;
  const std::size_t n_strat = smoke ? 20000 : 100000;

  McRequest sp_req;
  sp_req.seed = 77;
  sp_req.n = n_strat;
  sp_req.threads = 4;
  sp_req.run_label = "bench_highsigma.strat_plain";
  const McResult sp = McSession(sp_req).run_yield(screened);

  McRequest st_req = sp_req;
  st_req.strategy.kind = McSampleStrategy::kStratified;
  st_req.strategy.strata = {{"bulk", 0.90, 0.3},
                            {"shoulder", 0.09, 0.3},
                            {"tail", 0.01, 0.4}};
  st_req.run_label = "bench_highsigma.stratified";
  const McResult st = McSession(st_req).run_yield(screened);

  const double h_sp = half_width(sp.estimate.interval);
  const double h_st = half_width(st.estimate.interval);
  TablePrinter st_t({"stratum", "weight", "samples", "passed", "estimate"});
  st_t.set_precision(4);
  for (const McStratumResult& s : st.strata) {
    st_t.add_row({s.label, s.weight, static_cast<long long>(s.samples),
                  static_cast<long long>(s.passed), s.interval.estimate});
  }
  st_t.print(std::cout);
  std::printf("plain Wilson half-width %.3g vs post-stratified %.3g "
              "(%.1fx tighter)\n",
              h_sp, h_st, h_sp / h_st);

  checks.check("post-stratified estimate within 3 half-widths of the exact "
               "yield",
               std::abs(st.estimate.yield() - strat_yield_exact) <=
                   3.0 * h_st);
  checks.check("post-stratified CI at least 3x tighter than the plain "
               "Wilson CI at equal n",
               h_st > 0.0 && h_sp / h_st >= 3.0);
  checks.check("every declared stratum received its sample share",
               st.strata.size() == 3 && st.strata[0].samples > 0 &&
                   st.strata[1].samples > 0 &&
                   st.strata[2].samples >= n_strat / 3);
  json.add("stratified", {{"n", static_cast<double>(n_strat)},
                          {"plain_half_width", h_sp},
                          {"strat_half_width", h_st},
                          {"tightening", h_sp / h_st}});

  // --- quasi-MC: LHS and Sobol' ---------------------------------------------
  bench::banner("Quasi-MC: mean of sum(u0..u7) (exact 4.0), n = 4096");
  const auto smooth = [](McSamplePoint& p) {
    double s = 0.0;
    for (unsigned d = 0; d < 8; ++d) s += p.uniform(d);
    return s;
  };
  McRequest q_req;
  q_req.seed = 11;
  q_req.n = 4096;
  q_req.threads = 4;
  q_req.run_label = "bench_highsigma.qmc";
  const double err_plain =
      std::abs(McSession(q_req).run_metric(smooth).metric.mean() - 4.0);
  McRequest lhs_req = q_req;
  lhs_req.strategy.kind = McSampleStrategy::kLatinHypercube;
  lhs_req.strategy.dimensions = 8;
  const double err_lhs =
      std::abs(McSession(lhs_req).run_metric(smooth).metric.mean() - 4.0);
  McRequest sob_req = q_req;
  sob_req.strategy.kind = McSampleStrategy::kSobol;
  sob_req.strategy.dimensions = 8;
  const double err_sobol =
      std::abs(McSession(sob_req).run_metric(smooth).metric.mean() - 4.0);

  TablePrinter q_t({"sampler", "abs_error"});
  q_t.set_precision(8);
  q_t.add_row({std::string("pseudo-random"), err_plain});
  q_t.add_row({std::string("latin-hypercube"), err_lhs});
  q_t.add_row({std::string("sobol"), err_sobol});
  q_t.print(std::cout);

  checks.check("LHS mean error below the pseudo-random error",
               err_lhs < err_plain);
  checks.check("Sobol mean error below the pseudo-random error",
               err_sobol < err_plain);
  json.add("qmc", {{"err_plain", err_plain},
                   {"err_lhs", err_lhs},
                   {"err_sobol", err_sobol}});

  if (!mc_json.empty()) {
    checks.check("high-sigma telemetry artifact written to " + mc_json,
                 json.write(mc_json));
  }
  return checks.finish();
}
