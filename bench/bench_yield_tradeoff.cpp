// E11 — Sec. 2 + Sec. 5: yield as "the proportion of fabricated circuits
// which meet the design specifications", and the overdesign-vs-calibration
// trade-off the paper motivates ("intrinsic robustness by overdesign ...
// introduce[s] an unacceptable power and area penalty").
//
// Vehicle: a 1:1 NMOS current mirror with a +/-5% output-accuracy spec.
//  - overdesign sweep: yield vs device area (Eq. 1 lever);
//  - lifetime yield: the same circuit after a 10-year mission;
//  - calibration alternative: a one-shot output trim (post-fabrication
//    calibration of Sec. 5.1, applied behaviourally) recovers yield at a
//    fraction of the area.
#include <cmath>
#include <iostream>
#include <memory>
#include <optional>

#include "bench_util.h"
#include "core/reliability_sim.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "tech/tech.h"
#include "util/units.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

std::unique_ptr<Circuit> mirror(const TechNode& tech, double w, double l) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  const NodeId meas = c->node("meas");
  const NodeId out = c->node("out");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, 50e-6);
  const auto p = spice::make_mos_params(tech, w, l, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  c->add_mosfet("M2", out, ref, kGround, kGround, p);
  c->add_vsource("VB", meas, kGround, 0.5 * tech.vdd);
  c->add_vsource("VMEAS", meas, out, 0.0);
  return c;
}

double output_current(Circuit& c) {
  const auto r = spice::dc_operating_point(c);
  return c.device_as<spice::VoltageSource>("VMEAS").current(r.x());
}

}  // namespace

int main(int argc, char** argv) {
  const TechNode& tech = tech_65nm();
  bench::ShapeChecks checks;
  // --samples N shrinks the MC runs (CI smoke mode); --mc-json PATH dumps
  // the per-run orchestration telemetry as a flat JSON artifact;
  // --trace PATH records a Chrome trace_event timeline of every MC run;
  // --manifest PATH writes the run manifest (seed, stop reason, metrics
  // snapshot) after each MC run — the final file covers the whole bench;
  // --threads N pins the worker count (0 = auto).
  const std::size_t samples =
      static_cast<std::size_t>(bench::arg_long(argc, argv, "--samples", 150));
  const std::string mc_json = bench::arg_value(argc, argv, "--mc-json");
  const std::string trace_path = bench::arg_value(argc, argv, "--trace");
  const std::string manifest_path = bench::arg_value(argc, argv, "--manifest");
  const long threads = bench::arg_long(argc, argv, "--threads", 0);
  std::optional<obs::TraceSession> trace;
  if (!trace_path.empty()) trace.emplace(trace_path);
  bench::BenchJson json;

  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.years = 10.0;
  cfg.mission.epochs = 3;
  cfg.enable_tddb = false;  // keep this experiment deterministic-drift only
  cfg.seed = 31337;
  const ReliabilitySimulator sim(cfg);

  // --- overdesign sweep -------------------------------------------------------
  bench::banner("Yield vs device area (overdesign lever), +/-5% output spec");
  TablePrinter table({"W_um", "L_um", "rel_area", "yield_t0_pct",
                      "yield_10y_pct", "yield_cal_t0_pct"});
  table.set_precision(4);

  struct Geometry {
    double w, l;
  };
  const std::vector<Geometry> geoms{{0.4, 0.08}, {0.8, 0.16}, {1.6, 0.16},
                                    {2.4, 0.24}, {8.0, 0.8}};
  const double base_area = geoms.front().w * geoms.front().l;

  // All three MC runs per geometry go through one McSession request shape:
  // auto worker count, work-stealing chunks sized for short runs.
  McRequest req;
  req.n = samples;
  req.chunk = 8;
  req.threads = static_cast<unsigned>(threads);
  req.manifest_path = manifest_path;

  auto record = [&](const std::string& name, const McResult& r) {
    if (mc_json.empty()) return;
    double busy = 0.0;
    for (const auto& w : r.workers()) busy += w.busy_seconds;
    json.add(name,
             {{"requested", static_cast<double>(r.requested)},
              {"completed", static_cast<double>(r.completed)},
              {"yield", r.estimate.yield()},
              {"workers", static_cast<double>(r.workers().size())},
              {"elapsed_s", r.elapsed_seconds()},
              {"busy_s", busy},
              {"samples_per_s",
               r.elapsed_seconds() > 0.0 ? r.completed / r.elapsed_seconds()
                                         : 0.0}});
  };

  std::vector<double> t0_yields, eol_yields, cal_yields, areas;
  for (const auto& g : geoms) {
    auto factory = [&] { return mirror(tech, g.w, g.l); };
    auto nominal_circuit = factory();
    const double nominal = output_current(*nominal_circuit);
    auto pass = [&, nominal](Circuit& c) {
      return std::abs(output_current(c) / nominal - 1.0) < 0.05;
    };
    // Post-fabrication calibration alternative: a one-shot gain trim with
    // 1% step resolution measured at test time (Sec. 5.1 applied to this
    // block). Behaviourally: the residual error after trim is the part
    // below the trim resolution.
    auto pass_calibrated = [&, nominal](Circuit& c) {
      const double err = output_current(c) / nominal - 1.0;
      const double residual = std::fmod(err, 0.01);
      return std::abs(residual) < 0.05;
    };
    const std::string tag =
        "mirror_w" + std::to_string(g.w) + "_l" + std::to_string(g.l);
    const McResult t0 = sim.run_yield(factory, pass, req);
    const McResult eol = sim.run_lifetime_yield(factory, pass, req);
    const McResult cal = sim.run_yield(factory, pass_calibrated, req);
    record(tag + "_t0", t0);
    record(tag + "_10y", eol);
    record(tag + "_cal", cal);
    table.add_row({g.w, g.l, g.w * g.l / base_area,
                   100.0 * t0.estimate.yield(), 100.0 * eol.estimate.yield(),
                   100.0 * cal.estimate.yield()});
    t0_yields.push_back(t0.estimate.yield());
    eol_yields.push_back(eol.estimate.yield());
    cal_yields.push_back(cal.estimate.yield());
    areas.push_back(g.w * g.l / base_area);
  }
  table.print(std::cout);

  std::cout << "\nYield-definition shape claims:\n";
  checks.check("yield rises monotonically with device area (Eq. 1)",
               t0_yields.front() < t0_yields.back() &&
                   t0_yields.back() > 0.95);
  checks.check("lifetime yield <= time-zero yield at every area point",
               [&] {
                 for (std::size_t i = 0; i < t0_yields.size(); ++i) {
                   if (eol_yields[i] > t0_yields[i] + 0.03) return false;
                 }
                 return true;
               }());
  checks.check(
      "calibration recovers small-area yield (beats overdesign on area)",
      cal_yields.front() > t0_yields.front() + 0.2);
  checks.check("the smallest calibrated block beats the 4x-area raw block",
               cal_yields.front() >= t0_yields[2] - 0.02);
  if (!mc_json.empty()) {
    checks.check("MC telemetry artifact written to " + mc_json,
                 json.write(mc_json));
  }
  return checks.finish();
}
