// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the regenerated series as aligned tables and
// (b) a list of SHAPE CHECKS — the qualitative claims of the paper's
// figure (who wins, direction of trends, where crossovers fall) evaluated
// as PASS/FAIL. Absolute numbers are not expected to match the authors'
// silicon; the shape is (see EXPERIMENTS.md).
#pragma once

#include <iostream>
#include <string>

#include "util/table.h"

namespace relsim::bench {

class ShapeChecks {
 public:
  void check(const std::string& claim, bool pass) {
    std::cout << (pass ? "  [PASS] " : "  [FAIL] ") << claim << '\n';
    ++total_;
    if (pass) ++passed_;
  }

  /// Prints the summary line and returns the process exit code.
  int finish() const {
    std::cout << "\nshape checks: " << passed_ << "/" << total_ << " passed\n";
    return passed_ == total_ ? 0 : 1;
  }

 private:
  int total_ = 0;
  int passed_ = 0;
};

inline void banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace relsim::bench
