// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the regenerated series as aligned tables and
// (b) a list of SHAPE CHECKS — the qualitative claims of the paper's
// figure (who wins, direction of trends, where crossovers fall) evaluated
// as PASS/FAIL. Absolute numbers are not expected to match the authors'
// silicon; the shape is (see EXPERIMENTS.md).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.h"
#include "util/table.h"

namespace relsim::bench {

class ShapeChecks {
 public:
  void check(const std::string& claim, bool pass) {
    std::cout << (pass ? "  [PASS] " : "  [FAIL] ") << claim << '\n';
    ++total_;
    if (pass) ++passed_;
  }

  /// Prints the summary line and returns the process exit code.
  int finish() const {
    std::cout << "\nshape checks: " << passed_ << "/" << total_ << " passed\n";
    return passed_ == total_ ? 0 : 1;
  }

 private:
  int total_ = 0;
  int passed_ = 0;
};

inline void banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

/// Value of `--flag v` / `--flag=v` in argv, or empty when absent.
inline std::string arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
  }
  return {};
}

inline long arg_long(int argc, char** argv, const std::string& flag,
                     long fallback) {
  const std::string v = arg_value(argc, argv, flag);
  return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
}

inline bool arg_present(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// JSON array-of-flat-objects writer for bench telemetry artifacts
/// (e.g. BENCH_mc.json — the Monte-Carlo perf trajectory CI records per
/// commit). Serialization is delegated to obs::JsonWriter, the same
/// emitter behind traces, metrics snapshots, and run manifests.
class BenchJson {
 public:
  void add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& fields) {
    rows_.push_back({name, fields});
  }

  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    obs::JsonWriter w(os, 2);
    w.begin_array();
    for (const auto& row : rows_) {
      w.begin_object();
      w.kv("name", row.name);
      for (const auto& [key, value] : row.fields) w.kv(key, value);
      w.end_object();
    }
    w.end_array();
    w.complete();
    os << '\n';
    return bool(os);
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::vector<Row> rows_;
};

}  // namespace relsim::bench
