// Service throughput bench: sustained jobs/sec and latency percentiles of
// relsimd's core under synthetic many-client load, plus the compiled-
// circuit cache's reuse guarantee (one pattern build per unique netlist,
// no matter how many jobs share it).
//
// Runs an in-process Server on a scratch Unix socket and drives it with
// real Client connections, so everything from frame parsing to the
// fair-share queue to McSession is on the measured path.
//
// Flags: --smoke (shrink load for CI),
//        --clients N --jobs M (override the load shape),
//        --service-json PATH (dump the measured numbers as an artifact).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/server.h"
#include "util/table.h"

namespace relsim {
namespace {

using service::Client;
using service::JobKind;
using service::JobSpec;
using service::Server;
using service::ServerOptions;

constexpr const char* kDividerA = R"(mos divider A
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

constexpr const char* kDividerB = R"(mos divider B
.tech 65nm
VDD vdd 0 1.1
VB g 0 0.6
M1 d g 0 0 nmos W=0.2u L=0.06u
RD vdd d 5k
)";

/// Client-observed latency quantile through the same log-bucketed
/// histogram + obs::histogram_quantile math the daemon's exporter uses.
double percentile(const std::vector<double>& values, double p) {
  obs::Histogram h;
  for (double v : values) h.observe(v);
  return obs::histogram_quantile(h.snapshot(), p);
}

struct LoadResult {
  std::size_t done = 0;
  std::size_t submitted = 0;
  double wall_seconds = 0.0;
  double p50 = 0.0, p99 = 0.0;  // client-observed submit->wait latency
};

/// `clients` threads, each its own connection, each submitting `jobs`
/// copies of `base` (seed varied) and waiting for every result.
LoadResult drive(const std::string& socket_path, const JobSpec& base,
                 int clients, int jobs) {
  std::mutex mu;
  std::vector<double> latencies;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect_unix(socket_path);
      const std::string tenant = "tenant" + std::to_string(c);
      for (int j = 0; j < jobs; ++j) {
        JobSpec spec = base;
        spec.seed = base.seed + static_cast<std::uint64_t>(c * jobs + j);
        const auto s0 = std::chrono::steady_clock::now();
        const std::uint64_t id = client.submit(tenant, 0, spec);
        const bool ok = client.wait(id).get_string("state", "") == "done";
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - s0;
        std::lock_guard<std::mutex> lock(mu);
        if (ok) latencies.push_back(dt.count());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.submitted = static_cast<std::size_t>(clients) * jobs;
  r.done = latencies.size();
  r.p50 = percentile(latencies, 0.50);
  r.p99 = percentile(latencies, 0.99);
  return r;
}

}  // namespace
}  // namespace relsim

int main(int argc, char** argv) {
  using namespace relsim;
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string json_path = bench::arg_value(argc, argv, "--service-json");
  const int clients =
      static_cast<int>(bench::arg_long(argc, argv, "--clients", 8));
  const int jobs = static_cast<int>(
      bench::arg_long(argc, argv, "--jobs", smoke ? 8 : 64));

  ServerOptions options;
  options.socket_path =
      "/tmp/bench_service_" + std::to_string(::getpid()) + ".sock";
  options.executors = 4;
  Server server(std::move(options));
  server.start();
  const std::string socket_path = server.options().socket_path;

  // -- Synthetic load: queue/protocol/schedule overhead, no solver cost --
  bench::banner("synthetic many-client load");
  JobSpec synthetic;
  synthetic.kind = JobKind::kSynthetic;
  synthetic.n = smoke ? 512 : 4096;
  synthetic.seed = 7;
  // A live subscriber rides along with the load: the stream must deliver
  // events while never slowing the measured path — drop-oldest isolation
  // is the contract under test here. The target stays well under the
  // per-subscriber queue depth so it is reachable even if every later
  // event collapses into a synthesized "dropped" record.
  const std::size_t event_target = std::min<std::size_t>(
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(jobs),
      64);
  std::atomic<std::size_t> events_seen{0};
  std::thread subscriber([&] {
    try {
      Client sub = Client::connect_unix(socket_path);
      sub.subscribe(0, [&](const obs::JsonValue&) {
        return events_seen.fetch_add(1) + 1 < event_target;
      });
    } catch (...) {
    }
  });
  const LoadResult syn = drive(socket_path, synthetic, clients, jobs);
  subscriber.join();
  const double syn_rate =
      syn.wall_seconds > 0 ? static_cast<double>(syn.done) / syn.wall_seconds
                           : 0.0;
  {
    TablePrinter t({"clients", "jobs", "wall_s", "jobs_per_s", "p50_ms",
                    "p99_ms"});
    t.add_row({static_cast<long long>(clients),
               static_cast<long long>(syn.submitted), syn.wall_seconds,
               syn_rate, 1e3 * syn.p50, 1e3 * syn.p99});
    t.print(std::cout);
  }
  checks.check("every synthetic job completes", syn.done == syn.submitted);
  checks.check("sustained throughput is positive", syn_rate > 0.0);
  checks.check("p50 <= p99 (sane latency distribution)", syn.p50 <= syn.p99);
  checks.check("subscriber streamed events during load",
               events_seen.load() >= event_target);
  json.add("service_synthetic",
           {{"clients", double(clients)},
            {"jobs", double(syn.submitted)},
            {"jobs_per_sec", syn_rate},
            {"latency_p50_seconds", syn.p50},
            {"latency_p99_seconds", syn.p99}});

  // -- dc_yield load over TWO unique netlists: compile-once reuse --------
  bench::banner("dc_yield load, 2 unique netlists");
  JobSpec yield_a;
  yield_a.kind = JobKind::kDcYield;
  yield_a.netlist = kDividerA;
  yield_a.constraints.push_back({"d", 0.55, 0.75});
  yield_a.n = smoke ? 256 : 2048;
  yield_a.seed = 11;
  JobSpec yield_b = yield_a;
  yield_b.netlist = kDividerB;
  yield_b.constraints = {{"d", 0.35, 0.75}};
  yield_b.seed = 13;

  const int yield_jobs = smoke ? 4 : 16;
  LoadResult ya, yb;
  {
    std::thread ta([&] { ya = drive(socket_path, yield_a, 2, yield_jobs); });
    std::thread tb([&] { yb = drive(socket_path, yield_b, 2, yield_jobs); });
    ta.join();
    tb.join();
  }
  const std::size_t yield_done = ya.done + yb.done;
  const std::size_t yield_submitted = ya.submitted + yb.submitted;
  const auto builds_a =
      server.cache().get(kDividerA).compiled->compile_stats().pattern_builds;
  const auto builds_b =
      server.cache().get(kDividerB).compiled->compile_stats().pattern_builds;
  {
    TablePrinter t({"netlist", "jobs", "pattern_builds"});
    t.add_row({std::string("A"), static_cast<long long>(ya.submitted),
               static_cast<long long>(builds_a)});
    t.add_row({std::string("B"), static_cast<long long>(yb.submitted),
               static_cast<long long>(builds_b)});
    t.print(std::cout);
  }
  checks.check("every dc_yield job completes", yield_done == yield_submitted);
  checks.check("netlist A compiled exactly once across all its jobs",
               builds_a == 1);
  checks.check("netlist B compiled exactly once across all its jobs",
               builds_b == 1);

  // Daemon-side latency histogram (covers both phases).
  const obs::Histogram::Snapshot job_hist =
      obs::metrics().histogram("service.job_seconds").snapshot();
  std::cout << "\nservice.job_seconds: count=" << job_hist.count
            << "  p50>=" << obs::histogram_quantile(job_hist, 0.50)
            << "s  p99>=" << obs::histogram_quantile(job_hist, 0.99) << "s\n";
  checks.check("daemon observed every finished job in service.job_seconds",
               static_cast<std::size_t>(job_hist.count) >=
                   syn.done + yield_done);

  json.add("service_dc_yield_cache",
           {{"jobs", double(yield_submitted)},
            {"unique_netlists", 2.0},
            {"pattern_builds_a", double(builds_a)},
            {"pattern_builds_b", double(builds_b)},
            {"cache_hits", double(server.cache().hits())},
            {"cache_misses", double(server.cache().misses())},
            {"job_seconds_p50", obs::histogram_quantile(job_hist, 0.50)},
            {"job_seconds_p99", obs::histogram_quantile(job_hist, 0.99)}});

  server.stop();

  if (!json_path.empty() && !json.write(json_path)) {
    std::cerr << "failed to write " << json_path << '\n';
    return 1;
  }
  return checks.finish();
}
