// E7 — Eq. 4 / Sec. 3.4, electromigration:
//   MTTF = A J^-2 exp(Ea/kT)                     (Black [6])
// Series: J and T dependence; Blech-length immunity [7]; the bamboo effect
// [25]; reservoir/via effect [30]; and the EM-aware sizing flow [25].
#include <cmath>
#include <iostream>

#include "aging/em.h"
#include "bench_util.h"
#include "em_layout/planner.h"
#include "stats/regression.h"
#include "tech/tech.h"
#include "util/mathx.h"
#include "util/units.h"

using namespace relsim;
using aging::EmModel;
using aging::WireStress;

namespace {

WireStress wire(double j_a_cm2, double width_um, double length_um,
                double temp_k, const EmModel& em) {
  WireStress s;
  s.width_um = width_um;
  s.length_um = length_um;
  s.thickness_um = em.tech().metal_thickness_um;
  s.dc_current_a = j_a_cm2 * width_um * 1e-4 * s.thickness_um * 1e-4;
  s.rms_current_a = s.dc_current_a;
  s.temp_k = temp_k;
  return s;
}

}  // namespace

int main() {
  const EmModel em(tech_65nm().em);
  bench::ShapeChecks checks;

  // --- Black's law: MTTF vs J ----------------------------------------------
  bench::banner("Eq. 4: MTTF vs current density (copper, 378K, long wire)");
  TablePrinter jt({"J_MA_per_cm2", "MTTF_years"});
  jt.set_precision(4);
  std::vector<double> js, mttfs;
  for (double j : {0.3e6, 0.5e6, 1e6, 2e6, 4e6}) {
    const double mttf =
        em.mttf_s(wire(j, 1.0, 1e5, 378.0, em)) / units::kSecondsPerYear;
    jt.add_row({j / 1e6, mttf});
    js.push_back(j);
    mttfs.push_back(mttf);
  }
  jt.print(std::cout);
  const auto jfit = fit_power_law(js, mttfs);
  std::cout << "fitted current exponent n = " << -jfit.slope << "\n";

  // --- Arrhenius temperature dependence -------------------------------------
  bench::banner("Thermal activation: MTTF vs temperature (J = 1 MA/cm2)");
  TablePrinter ttab({"T_K", "MTTF_years"});
  ttab.set_precision(4);
  std::vector<double> inv_t, ln_mttf;
  for (double t : {328.0, 353.0, 378.0, 403.0, 428.0}) {
    const double mttf =
        em.mttf_s(wire(1e6, 1.0, 1e5, t, em)) / units::kSecondsPerYear;
    ttab.add_row({t, mttf});
    inv_t.push_back(1.0 / t);
    ln_mttf.push_back(std::log(mttf));
  }
  ttab.print(std::cout);
  const auto tfit = fit_line(inv_t, ln_mttf);
  const double ea_fit = tfit.slope * units::kBoltzmannEv;
  std::cout << "fitted activation energy = " << ea_fit
            << " eV (configured " << em.tech().activation_ev << " eV)\n";

  // --- Blech length -----------------------------------------------------------
  bench::banner("Blech immunity: j*L product sweep (J = 1 MA/cm2)");
  TablePrinter blech({"L_um", "jL_A_per_cm", "immune", "MTTF_years"});
  blech.set_precision(4);
  bool short_immune = false, long_mortal = false;
  for (double len : {5.0, 10.0, 20.0, 50.0, 100.0, 500.0}) {
    const auto w = wire(1e6, 1.0, len, 378.0, em);
    const bool immune = em.blech_immune(w);
    const double mttf = em.mttf_s(w) / units::kSecondsPerYear;
    blech.add_row({len, 1e6 * len * 1e-4,
                   std::string(immune ? "yes" : "no"),
                   std::isinf(mttf) ? -1.0 : mttf});
    if (len <= 20.0 && immune) short_immune = true;
    if (len >= 100.0 && !immune) long_mortal = true;
  }
  blech.print(std::cout);

  // --- Bamboo effect -----------------------------------------------------------
  bench::banner("Bamboo effect: MTTF vs wire width at fixed J = 2 MA/cm2");
  TablePrinter bam({"width_um", "bamboo_factor", "MTTF_years"});
  bam.set_precision(4);
  std::vector<double> widths{0.05, 0.1, 0.2, 0.3, 0.6, 1.2};
  double narrowest_mttf = 0.0, at_grain_mttf = 0.0;
  for (double w : widths) {
    const double mttf =
        em.mttf_s(wire(2e6, w, 1e5, 378.0, em)) / units::kSecondsPerYear;
    bam.add_row({w, em.bamboo_factor(w), mttf});
    if (w == widths.front()) narrowest_mttf = mttf;
    if (w == 0.3) at_grain_mttf = mttf;
  }
  bam.print(std::cout);

  // --- Reservoir effect ---------------------------------------------------------
  bench::banner("Via reservoir effect [30]");
  auto good = wire(1e6, 1.0, 1e5, 378.0, em);
  auto bad = good;
  bad.good_via_reservoir = false;
  std::cout << "good via: " << em.mttf_s(good) / units::kSecondsPerYear
            << " years, poor via: "
            << em.mttf_s(bad) / units::kSecondsPerYear << " years\n";

  // --- EM-aware sizing flow ------------------------------------------------------
  bench::banner("EM-aware design flow: widths for a 10-year life at 378K");
  const em_layout::EmAwarePlanner planner(em, 10.0);
  TablePrinter plan({"I_mA", "width_um_solid", "width_um_slotted_x16",
                     "metal_saved_pct"});
  plan.set_precision(4);
  for (double i_ma : {1.0, 5.0, 20.0}) {
    em_layout::WireRequest req;
    req.current_a = i_ma * 1e-3;
    req.length_um = 1e4;
    req.temp_k = 378.0;
    const auto solid = planner.plan(req);
    const auto slotted = planner.plan_slotted(req, 16);
    plan.add_row({i_ma, solid.width_um, slotted.width_um,
                  100.0 * (1.0 - slotted.width_um / solid.width_um)});
  }
  plan.print(std::cout);

  std::cout << "\nEq. 4 / EM shape claims:\n";
  checks.check("MTTF ~ J^-2 (fitted exponent within 1%)",
               std::abs(-jfit.slope - 2.0) < 0.02);
  checks.check("Arrhenius temperature dependence recovers Ea",
               std::abs(ea_fit / em.tech().activation_ev - 1.0) < 0.02);
  checks.check("short wires are Blech-immune, long wires are not",
               short_immune && long_mortal);
  checks.check("narrow (bamboo) wires live longer than grain-size wires [25]",
               narrowest_mttf > 5.0 * at_grain_mttf);
  checks.check("poor via reservoir halves the lifetime [30]",
               std::abs(em.mttf_s(good) / em.mttf_s(bad) - 2.0) < 1e-9);
  return checks.finish();
}
