// Dense-vs-sparse solver trajectory on parameterized MNA netlists.
//
// Two circuit families sized by the benchmark argument:
//   * resistor ladder (linear; one factorization per solve dominates)
//   * ring-oscillator-style inverter chain (nonlinear; transient Newton
//     iterations exercise the numeric-refactor fast path)
// Each runs through the full newton_solve/transient machinery with the
// solver forced dense and forced sparse, so the reported ratio IS the
// speedup the Monte-Carlo yield loops see. Raw factorization kernels are
// benchmarked too (dense LU vs sparse symbolic vs sparse refactor).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"

namespace relsim {
namespace {

spice::NewtonOptions solver_options(bool sparse) {
  spice::NewtonOptions o;
  o.sparse_min_unknowns = sparse ? 1 : (1 << 28);
  return o;
}

/// Resistor ladder with `stages` nodes: series R chain with shunt R to
/// ground at every node, driven by a 1 V source.
void build_ladder(spice::Circuit& c, int stages) {
  spice::NodeId prev = c.node("n0");
  c.add_vsource("V1", prev, spice::kGround, 1.0);
  for (int i = 1; i <= stages; ++i) {
    const spice::NodeId node = c.node("n" + std::to_string(i));
    c.add_resistor("Rs" + std::to_string(i), prev, node, 100.0);
    c.add_resistor("Rg" + std::to_string(i), node, spice::kGround, 10e3);
    prev = node;
  }
}

/// `stages`-stage ring oscillator (odd stages), every stage loaded.
void build_ring_oscillator(spice::Circuit& c, int stages) {
  const auto& tech = tech_65nm();
  const spice::NodeId vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, spice::kGround, tech.vdd);
  spice::NodeId in = c.node("s" + std::to_string(stages - 1));
  for (int i = 0; i < stages; ++i) {
    const spice::NodeId out = c.node("s" + std::to_string(i));
    c.add_mosfet("MN" + std::to_string(i), out, in, spice::kGround,
                 spice::kGround, spice::make_mos_params(tech, 1.0, 0.1, false));
    c.add_mosfet("MP" + std::to_string(i), out, in, vdd, vdd,
                 spice::make_mos_params(tech, 2.0, 0.1, true));
    c.add_capacitor("CL" + std::to_string(i), out, spice::kGround, 2e-15);
    in = out;
  }
}

void BM_DcLadder(benchmark::State& state, bool sparse) {
  spice::Circuit c;
  build_ladder(c, static_cast<int>(state.range(0)));
  spice::DcOptions opt;
  opt.newton = solver_options(sparse);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(c, opt));
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}
void BM_DcLadder_Dense(benchmark::State& state) { BM_DcLadder(state, false); }
void BM_DcLadder_Sparse(benchmark::State& state) { BM_DcLadder(state, true); }
BENCHMARK(BM_DcLadder_Dense)->Arg(50)->Arg(100)->Arg(200)->Arg(400);
BENCHMARK(BM_DcLadder_Sparse)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_TransientRingOscillator(benchmark::State& state, bool sparse) {
  spice::Circuit c;
  const int stages = static_cast<int>(state.range(0));
  build_ring_oscillator(c, stages);
  spice::TransientOptions opt;
  opt.newton = solver_options(sparse);
  opt.dt = 20e-12;
  opt.t_stop = 2e-9;
  opt.use_initial_conditions = true;
  opt.initial_conditions[c.find_node("s0")] = tech_65nm().vdd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::transient_analysis(c, opt));
  }
}
void BM_TranRo_Dense(benchmark::State& state) {
  BM_TransientRingOscillator(state, false);
}
void BM_TranRo_Sparse(benchmark::State& state) {
  BM_TransientRingOscillator(state, true);
}
BENCHMARK(BM_TranRo_Dense)->Arg(31)->Arg(101);
BENCHMARK(BM_TranRo_Sparse)->Arg(31)->Arg(101);

// ---------------------------------------------------------------------------
// Raw factorization kernels on the assembled ladder Jacobian.

SparseMatrix ladder_jacobian(int stages) {
  spice::Circuit c;
  build_ladder(c, stages);
  spice::DcOptions opt;
  opt.newton = solver_options(true);
  spice::dc_operating_point(c, opt);  // assembles the cached sparse matrix
  return c.solver_cache().matrix;
}

void BM_LadderFactor_DenseLu(benchmark::State& state) {
  const Matrix a = ladder_jacobian(static_cast<int>(state.range(0))).to_dense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LuFactorization(a));
  }
}
BENCHMARK(BM_LadderFactor_DenseLu)->Arg(100)->Arg(200)->Arg(400);

void BM_LadderFactor_SparseSymbolic(benchmark::State& state) {
  const SparseMatrix a = ladder_jacobian(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseLuFactorization(a));
  }
}
BENCHMARK(BM_LadderFactor_SparseSymbolic)->Arg(100)->Arg(200)->Arg(400);

void BM_LadderFactor_SparseRefactor(benchmark::State& state) {
  const SparseMatrix a = ladder_jacobian(static_cast<int>(state.range(0)));
  SparseLuFactorization lu(a);
  for (auto _ : state) {
    lu.refactor(a);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_LadderFactor_SparseRefactor)->Arg(100)->Arg(200)->Arg(400);

}  // namespace
}  // namespace relsim

BENCHMARK_MAIN();
