// E4 — TDDB (Sec. 3.1): Weibull-distributed time to breakdown, the
// SBD/PBD/HBD mode sequence versus oxide thickness, and the post-BD gate
// current evolution.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "aging/tddb.h"
#include "bench_util.h"
#include "rng/rng.h"
#include "stats/weibull_fit.h"
#include "util/mathx.h"
#include "util/units.h"

using namespace relsim;
using aging::BdMode;
using aging::BreakdownTimeline;
using aging::DeviceStress;
using aging::TddbModel;

namespace {

const char* mode_name(BdMode mode) {
  switch (mode) {
    case BdMode::kNone:
      return "none";
    case BdMode::kSoft:
      return "SBD";
    case BdMode::kProgressive:
      return "PBD";
    case BdMode::kHard:
      return "HBD";
  }
  return "?";
}

}  // namespace

int main() {
  const TddbModel model;
  bench::ShapeChecks checks;

  // --- Weibull probability plot across oxide thicknesses ------------------
  bench::banner("TDDB Weibull plot: ln(-ln(1-F)) vs ln(t), 5000 samples/t_ox");
  TablePrinter plot({"tox_nm", "stress_V", "beta_config", "beta_fit",
                     "eta_config_s", "eta_fit_s", "fit_r2"});
  plot.set_precision(4);
  std::vector<double> betas;
  double min_r2 = 1.0;
  std::uint64_t sid = 0;
  for (const auto& [tox, vstress] :
       std::vector<std::pair<double, double>>{{1.2, 1.6}, {2.5, 2.8},
                                              {5.0, 5.8}}) {
    const auto stress =
        DeviceStress::dc(false, vstress, 0.0, tox, 398.0, 1.0, 0.1);
    Xoshiro256 rng(derive_seed(11, {sid++}));
    std::vector<double> times;
    times.reserve(5000);
    for (int i = 0; i < 5000; ++i) {
      times.push_back(model.sample_timeline(stress, rng).t_sbd_s);
    }
    const auto est = fit_weibull_rank_regression(times);
    plot.add_row({tox, vstress, model.weibull_shape(tox), est.shape,
                  model.weibull_scale_s(stress), est.scale, est.r_squared});
    betas.push_back(est.shape);
    min_r2 = std::min(min_r2, est.r_squared);
  }
  plot.print(std::cout);

  // --- Field acceleration --------------------------------------------------
  bench::banner("Field acceleration of the 63.2% life (2nm oxide, 398K)");
  TablePrinter accel({"Eox_V_per_nm", "eta_s", "eta_years"});
  accel.set_precision(4);
  std::vector<double> etas;
  for (double vg : {1.0, 1.4, 1.8, 2.2, 2.6}) {
    const auto stress = DeviceStress::dc(false, vg, 0.0, 2.0, 398.0, 1.0, 0.1);
    const double eta = model.weibull_scale_s(stress);
    accel.add_row({vg / 2.0, eta, eta / units::kSecondsPerYear});
    etas.push_back(eta);
  }
  accel.print(std::cout);

  // --- Breakdown mode sequence vs t_ox -------------------------------------
  bench::banner("Breakdown-mode sequence vs oxide thickness");
  TablePrinter modes({"tox_nm", "has_SBD", "has_PBD", "t_first_bd_over_eta",
                      "t_hbd_over_t_sbd"});
  modes.set_precision(4);
  Xoshiro256 mode_rng(99);
  bool thick_direct_hbd = false, mid_sbd_no_pbd = false, thin_full_seq = false;
  for (double tox : {7.0, 4.0, 1.5}) {
    const auto stress =
        DeviceStress::dc(false, tox * 1.15, 0.0, tox, 398.0, 1.0, 0.1);
    const auto tl = model.sample_timeline(stress, mode_rng);
    modes.add_row({tox, std::string(tl.has_sbd_phase ? "yes" : "no"),
                   std::string(tl.has_pbd_phase ? "yes" : "no"),
                   tl.t_sbd_s / model.weibull_scale_s(stress),
                   tl.t_hbd_s / tl.t_sbd_s});
    if (tox > 5.0 && !tl.has_sbd_phase) thick_direct_hbd = true;
    if (tox > 2.5 && tox <= 5.0 && tl.has_sbd_phase && !tl.has_pbd_phase) {
      mid_sbd_no_pbd = true;
    }
    if (tox <= 2.5 && tl.has_sbd_phase && tl.has_pbd_phase) {
      thin_full_seq = true;
    }
  }
  modes.print(std::cout);

  // --- Post-BD gate current trace (PBD: slow increase to HBD) -------------
  bench::banner("Gate leak vs time across SBD -> PBD -> HBD (1.5nm oxide)");
  BreakdownTimeline tl;
  tl.t_sbd_s = 1e6;
  tl.has_sbd_phase = true;
  tl.has_pbd_phase = true;
  tl.t_hbd_s =
      1e6 + 0.5e6 * std::sqrt(model.params().hbd_gleak_s /
                              model.params().sbd_gleak_s - 1.0);
  TablePrinter trace({"t_over_tsbd", "mode", "g_leak_S", "I_gate_at_1V_mA"});
  trace.set_precision(4);
  bool leak_monotone = true;
  double prev_leak = -1.0;
  for (double f : {0.5, 0.99, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double t = f * tl.t_sbd_s;
    const double g = model.gate_leak_at(tl, t);
    trace.add_row({f, std::string(mode_name(model.mode_at(tl, t))), g,
                   g * 1.0 * 1e3});
    if (g < prev_leak) leak_monotone = false;
    prev_leak = g;
  }
  trace.print(std::cout);

  std::cout << "\nTDDB shape claims:\n";
  checks.check("time-to-BD follows a Weibull distribution (rank fit r2>0.97)",
               min_r2 > 0.97);
  checks.check("Weibull slope shrinks with oxide thickness (wider spread)",
               betas[0] < betas[1] && betas[1] < betas[2]);
  checks.check("field acceleration: each field step shortens eta by decades",
               etas.front() > 1e4 * etas.back());
  checks.check("thick oxide (>5nm): direct HBD", thick_direct_hbd);
  checks.check("2.5-5nm: SBD precedes HBD, no PBD", mid_sbd_no_pbd);
  checks.check("ultra-thin (<2.5nm): SBD -> progressive BD -> HBD",
               thin_full_seq);
  checks.check("gate current grows slowly through PBD (monotone), mA at HBD",
               leak_monotone && prev_leak >= 1e-3);
  return checks.finish();
}
