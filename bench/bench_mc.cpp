// Monte-Carlo orchestration bench (mc_session.h): quantifies what the
// McSession machinery buys over the legacy drivers.
//
//  - scheduling: work-stealing chunks vs the legacy static block partition
//    on an IMBALANCED workload (aged/failing samples cost far more than
//    fresh ones — here the expensive samples are clustered at the front,
//    exactly the layout that stalls the first static block);
//  - early stopping: a clearly-passing design decided against a spec-yield
//    threshold with a fraction of the fixed-N budget, same verdict;
//  - checkpoint/resume: a run killed mid-flight resumes to the bit-exact
//    uninterrupted result without redoing finished samples.
//
// Sample cost is simulated with sleeps so the SCHEDULER is measured
// independently of host core count (sleeping workers overlap even on a
// single hardware thread); the circuit benches time real solves.
//
// Flags: --smoke (shrink the scheduling comparison for CI),
//        --mc-json PATH (dump the measured series as a flat JSON artifact),
//        --trace PATH (Chrome trace_event timeline of every MC run),
//        --manifest PATH (run manifest, rewritten per run; final wins).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "bench_util.h"
#include "obs/trace.h"
#include "util/error.h"
#include "variability/mc_session.h"

using namespace relsim;

namespace {

/// Imbalanced workload: the first `heavy` samples cost `heavy_us`, the rest
/// `light_us` (plus a deterministic pass/fail draw to keep the yield path
/// honest). With a static partition the whole expensive cluster lands in
/// worker 0's block.
McPredicate imbalanced_predicate(std::size_t heavy, int heavy_us,
                                 int light_us) {
  return [heavy, heavy_us, light_us](Xoshiro256& rng, std::size_t i) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(i < heavy ? heavy_us : light_us));
    return rng.uniform01() < 0.9;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string mc_json = bench::arg_value(argc, argv, "--mc-json");
  const std::string trace_path = bench::arg_value(argc, argv, "--trace");
  const std::string manifest_path = bench::arg_value(argc, argv, "--manifest");
  std::optional<obs::TraceSession> trace;
  if (!trace_path.empty()) trace.emplace(trace_path);

  // --- scheduling: static blocks vs work stealing ---------------------------
  bench::banner("Work-stealing vs static block partition, 8 workers, "
                "expensive samples clustered in one block");
  const std::size_t n = smoke ? 128 : 256;
  const std::size_t heavy = n / 8;        // one worker's whole static block
  const int heavy_us = smoke ? 4000 : 8000;
  const int light_us = smoke ? 500 : 1000;
  const McPredicate work = imbalanced_predicate(heavy, heavy_us, light_us);

  McRequest sched;
  sched.seed = 42;
  sched.n = n;
  sched.threads = 8;
  sched.chunk = 4;
  sched.manifest_path = manifest_path;
  sched.run_label = "bench_mc.scheduling";

  McRequest blocks = sched;
  blocks.partition = McPartition::kStaticBlocks;
  const McResult r_static = McSession(blocks).run_yield(work);

  const McResult r_steal = McSession(sched).run_yield(work);

  TablePrinter t({"scheduler", "elapsed_s", "chunks_moved", "speedup"});
  t.set_precision(3);
  std::size_t stolen = 0;
  for (const auto& w : r_steal.workers()) stolen += w.chunks;
  const double speedup =
      r_static.elapsed_seconds() / r_steal.elapsed_seconds();
  t.add_row({std::string("static blocks"), r_static.elapsed_seconds(),
             static_cast<long long>(r_static.workers().size()), 1.0});
  t.add_row({std::string("work stealing"), r_steal.elapsed_seconds(),
             static_cast<long long>(stolen), speedup});
  t.print(std::cout);

  checks.check("schedulers agree bit-exactly on the estimate",
               r_steal.estimate.passed == r_static.estimate.passed &&
                   r_steal.estimate.total == r_static.estimate.total);
  checks.check("work stealing beats the static partition by >= 1.5x on the "
               "imbalanced workload",
               speedup >= 1.5);
  json.add("scheduler_static", {{"elapsed_s", r_static.elapsed_seconds()},
                                {"n", static_cast<double>(n)}});
  json.add("scheduler_stealing", {{"elapsed_s", r_steal.elapsed_seconds()},
                                  {"n", static_cast<double>(n)},
                                  {"speedup", speedup}});

  // --- early stopping -------------------------------------------------------
  bench::banner("Early stopping: clearly-passing design (p~0.995) decided "
                "against a 95% spec-yield threshold");
  auto good_design = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.995;
  };
  McRequest full;
  full.seed = 7;
  full.n = 20000;
  full.threads = 4;
  full.manifest_path = manifest_path;
  full.run_label = "bench_mc.early_stopping";
  const McResult fixed = McSession(full).run_yield(good_design);

  McRequest adaptive = full;
  adaptive.stopping.yield_threshold = 0.95;
  const McResult stopped = McSession(adaptive).run_yield(good_design);

  TablePrinter es({"run", "samples", "yield_pct", "verdict"});
  es.set_precision(3);
  es.add_row({std::string("fixed N"), static_cast<long long>(fixed.completed),
              100.0 * fixed.estimate.yield(),
              std::string(fixed.estimate.interval.lo > 0.95 ? "pass" : "?")});
  es.add_row({std::string("early stop"),
              static_cast<long long>(stopped.completed),
              100.0 * stopped.estimate.yield(),
              std::string(to_string(stopped.stop_reason()))});
  es.print(std::cout);

  const double reduction =
      static_cast<double>(fixed.completed) /
      static_cast<double>(std::max<std::size_t>(1, stopped.completed));
  std::cout << "sample reduction: " << reduction << "x\n";
  checks.check("early stop reaches the same verdict (threshold passed)",
               stopped.stop_reason() == McStopReason::kThresholdPassed &&
                   fixed.estimate.interval.lo > 0.95);
  checks.check("early stopping cuts the sample budget by >= 3x",
               reduction >= 3.0);
  json.add("early_stopping", {{"fixed_n", static_cast<double>(fixed.completed)},
                              {"stopped_n",
                               static_cast<double>(stopped.completed)},
                              {"reduction", reduction}});

  // --- checkpoint / resume --------------------------------------------------
  bench::banner("Checkpoint/resume: killed run resumes bit-exactly");
  const std::string ckpt = "bench_mc_resume.ckpt";
  std::remove(ckpt.c_str());
  McRequest cr;
  cr.seed = 13;
  cr.n = 2000;
  cr.threads = 4;
  cr.manifest_path = manifest_path;
  cr.run_label = "bench_mc.checkpoint_resume";
  const McPredicate coin = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.8;
  };
  const McResult uninterrupted = McSession(cr).run_yield(coin);

  cr.checkpoint_path = ckpt;
  cr.checkpoint_every = 100;
  bool killed = false;
  try {
    McSession(cr).run_yield([&coin](Xoshiro256& rng, std::size_t i) {
      if (i == 1500) throw Error("simulated kill");
      return coin(rng, i);
    });
  } catch (const Error&) {
    killed = true;
  }
  std::atomic<std::size_t> reevaluated{0};
  const McResult resumed =
      McSession(cr).run_yield([&](Xoshiro256& rng, std::size_t i) {
        reevaluated.fetch_add(1, std::memory_order_relaxed);
        return coin(rng, i);
      });
  std::remove(ckpt.c_str());

  std::cout << "restored " << resumed.resumed << "/" << cr.n
            << " samples from the checkpoint; re-evaluated "
            << reevaluated.load() << "\n";
  checks.check("first attempt was killed mid-run and left a checkpoint",
               killed && resumed.resumed > 0);
  checks.check("resume skips the finished samples",
               reevaluated.load() + resumed.resumed == cr.n);
  checks.check("resumed estimate equals the uninterrupted run bit-exactly",
               resumed.estimate.passed == uninterrupted.estimate.passed &&
                   resumed.estimate.interval.lo ==
                       uninterrupted.estimate.interval.lo &&
                   resumed.estimate.interval.hi ==
                       uninterrupted.estimate.interval.hi);
  json.add("checkpoint_resume",
           {{"resumed", static_cast<double>(resumed.resumed)},
            {"reevaluated", static_cast<double>(reevaluated.load())}});

  if (!mc_json.empty()) {
    checks.check("MC telemetry artifact written to " + mc_json,
                 json.write(mc_json));
  }
  return checks.finish();
}
