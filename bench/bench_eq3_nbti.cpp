// E6 — Eq. 3 / Sec. 3.3, NBTI:
//   dVT = A exp(Eox/E0) exp(-Ea/kT) t^n
// Series: DC power law; field and temperature acceleration; the log(t)
// relaxation spanning microseconds to days; the permanent/recoverable
// split; the AC duty-cycle dependence; and the epoch-feedback ablation of
// the aging engine (DESIGN.md design choice).
#include <cmath>
#include <iostream>

#include "aging/engine.h"
#include "aging/nbti.h"
#include "bench_util.h"
#include "spice/analysis.h"
#include "stats/regression.h"
#include "tech/tech.h"
#include "util/mathx.h"
#include "util/units.h"

using namespace relsim;
using aging::DeviceStress;
using aging::NbtiModel;

int main() {
  const NbtiModel model;
  bench::ShapeChecks checks;
  const TechNode& tech = tech_65nm();
  const double ten_y = 10.0 * units::kSecondsPerYear;

  auto pstress = [&](double vgs, double temp, double duty = 1.0) {
    auto s = DeviceStress::dc(true, vgs, 0.0, tech.tox_nm, temp);
    s.duty = duty;
    return s;
  };

  // --- DC power law ---------------------------------------------------------
  bench::banner("Eq. 3 DC stress: dVT(t), pMOS |Vgs|=1.1V, 398K, 1.8nm");
  TablePrinter tt({"t_s", "dVT_mV"});
  tt.set_precision(4);
  std::vector<double> ts, dvs;
  for (double t : logspace(1.0, 3.2e8, 9)) {
    const double dvt = model.delta_vt(pstress(1.1, 398.0), t);
    tt.add_row({t, dvt * 1e3});
    ts.push_back(t);
    dvs.push_back(dvt);
  }
  tt.print(std::cout);
  const auto fit = fit_power_law(ts, dvs);
  std::cout << "fitted exponent n = " << fit.slope << "\n";

  // --- field & temperature acceleration -------------------------------------
  bench::banner("Field and temperature acceleration of the 10-year dVT");
  TablePrinter acc({"|Vgs|_V", "T_K", "dVT_mV_10y"});
  acc.set_precision(4);
  for (double vgs : {0.9, 1.1, 1.3}) {
    for (double temp : {300.0, 348.0, 398.0}) {
      acc.add_row({vgs, temp, model.delta_vt(pstress(vgs, temp), ten_y) * 1e3});
    }
  }
  acc.print(std::cout);

  // --- relaxation -----------------------------------------------------------
  bench::banner("Relaxation after stress removal (log t, us -> days) [29],[34]");
  const double dvt_end = model.delta_vt(pstress(1.1, 398.0), ten_y);
  TablePrinter rel({"t_relax", "remaining_dVT_mV", "relaxed_pct_of_recoverable"});
  rel.set_precision(4);
  const double recoverable = model.params().recoverable_frac * dvt_end;
  const double permanent = dvt_end - recoverable;
  std::vector<double> lg_t, relaxed_amount;
  for (double tr : logspace(1e-6, 86400.0 * 10.0, 9)) {
    const double rem = model.relaxed_delta_vt(dvt_end, tr);
    rel.add_row({tr, rem * 1e3, 100.0 * (dvt_end - rem) / recoverable});
    lg_t.push_back(std::log10(tr));
    relaxed_amount.push_back(dvt_end - rem);
  }
  rel.print(std::cout);
  // Logarithmic relaxation: the relaxed amount is linear in log10(t).
  const auto rel_fit = fit_line(lg_t, relaxed_amount);
  std::cout << "relaxed-vs-log10(t) linearity r2 = " << rel_fit.r_squared
            << ", permanent component = " << permanent * 1e3 << " mV\n";

  // --- AC duty dependence -----------------------------------------------------
  bench::banner("AC stress: 10-year dVT vs duty cycle [15]");
  TablePrinter duty({"duty", "dVT_mV_10y", "vs_DC_pct"});
  duty.set_precision(4);
  bool duty_monotone = true;
  double prev = -1.0, half_duty_ratio = 0.0;
  for (double d : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double dvt = model.delta_vt(pstress(1.1, 398.0, d), ten_y);
    duty.add_row({d, dvt * 1e3, 100.0 * dvt / dvt_end});
    if (dvt < prev) duty_monotone = false;
    prev = dvt;
    if (d == 0.5) half_duty_ratio = dvt / dvt_end;
  }
  duty.print(std::cout);

  // --- measurement-delay artifact [34] ----------------------------------------
  bench::banner(
      "Measure-stress-measure artifact: reported dVT vs readout delay "
      "(fast VT-measurements of [34])");
  TablePrinter meas({"t_measure_delay_s", "reported_dVT_mV",
                     "underestimation_pct"});
  meas.set_precision(4);
  bool delay_monotone = true;
  double prev_rep = dvt_end + 1e-12;
  double slow_meas_underestimate = 0.0;
  for (double delay : {1e-6, 1e-3, 1.0, 100.0}) {
    const double rep =
        model.apparent_delta_vt(pstress(1.1, 398.0), ten_y, delay);
    meas.add_row({delay, rep * 1e3, 100.0 * (1.0 - rep / dvt_end)});
    if (rep > prev_rep) delay_monotone = false;
    prev_rep = rep;
    if (delay == 1.0) slow_meas_underestimate = 1.0 - rep / dvt_end;
  }
  meas.print(std::cout);

  // --- engine ablation: epoch feedback on/off --------------------------------
  bench::banner("Ablation: stress-feedback epochs (diode-connected pMOS)");
  auto build = [&]() {
    auto c = std::make_unique<spice::Circuit>();
    const auto vdd = c->node("vdd");
    const auto d = c->node("d");
    c->add_vsource("VDD", vdd, spice::kGround, tech.vdd);
    c->add_resistor("R1", d, spice::kGround, 20e3);
    c->add_mosfet("MP", d, d, vdd, vdd,
                  spice::make_mos_params(tech, 2.0, 0.2, true));
    return c;
  };
  TablePrinter abl({"mode", "dVT_mV_10y"});
  abl.set_precision(4);
  double dvt_fb = 0.0, dvt_nofb = 0.0;
  for (bool feedback : {true, false}) {
    aging::AgingEngine engine;
    engine.add_model(std::make_unique<NbtiModel>());
    aging::AgingOptions opt;
    opt.mission.years = 10.0;
    opt.mission.epochs = 10;
    opt.refresh_stress_each_epoch = feedback;
    auto c = build();
    const auto report = engine.age(*c, opt);
    const double dvt = report.final_drift("MP").dvt;
    abl.add_row({std::string(feedback ? "feedback (10 epochs)"
                                      : "frozen initial stress"),
                 dvt * 1e3});
    (feedback ? dvt_fb : dvt_nofb) = dvt;
  }
  abl.print(std::cout);

  std::cout << "\nEq. 3 / NBTI shape claims:\n";
  checks.check("dVT follows a t^n power law",
               std::abs(fit.slope / model.params().n - 1.0) < 0.01);
  checks.check("10-year DC shift in the tens-of-mV range",
               dvt_end > 0.02 && dvt_end < 0.15);
  checks.check("relaxation is logarithmic in time (r2 > 0.98)",
               rel_fit.r_squared > 0.98);
  checks.check("a permanent component never relaxes [15]",
               model.relaxed_delta_vt(dvt_end, 1e15) >= permanent - 1e-15);
  checks.check("AC degradation grows monotonically with duty", duty_monotone);
  checks.check("50% duty stress gives a fraction (not all) of DC damage",
               half_duty_ratio > 0.3 && half_duty_ratio < 0.9);
  checks.check("epoch feedback changes the lifetime prediction (ablation)",
               std::abs(dvt_fb - dvt_nofb) > 1e-5);
  checks.check(
      "slow measurements underestimate NBTI (1s readout misses >10% of the "
      "shift) — why ultra-fast VT measurement matters [34]",
      delay_monotone && slow_meas_underestimate > 0.10);
  return checks.finish();
}
