// E1 — Fig. 1: mismatch parameter A_VT versus gate-oxide thickness.
//
// Paper claim: A_VT tracks Tuinhout's 1 mV*um/nm benchmark (dashed line)
// for thick oxides, but below ~10 nm the benchmark no longer holds — the
// matching becomes only slightly better over time (measured A_VT sits above
// the forecast).
//
// Method: for every technology generation, draw N large nMOS device pairs
// through the Monte-Carlo sampler and re-extract A_VT from the measured
// sigma(dVT)*sqrt(WL), exactly how a test-structure characterization would;
// then compare the extracted value against the benchmark line.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "rng/rng.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "variability/pelgrom.h"
#include "variability/sampler.h"

using namespace relsim;

namespace {

// Extracts A_VT (mV*um) from sampled pairs of W x L devices.
double extract_avt(const PelgromModel& model, double w_um, double l_um,
                   int pairs, std::uint64_t seed) {
  const MismatchSampler sampler(model, w_um, l_um);
  Xoshiro256 rng(seed);
  RunningStats diff;
  for (int i = 0; i < pairs; ++i) {
    const auto [a, b] = sampler.sample_pair(rng);
    diff.add(a.dvt - b.dvt);
  }
  return diff.stddev() * 1e3 * std::sqrt(w_um * l_um);  // V -> mV*um
}

}  // namespace

int main() {
  bench::banner("Fig. 1 - A_VT vs gate-oxide thickness (Tuinhout benchmark)");
  std::cout <<
      "Large devices (W=L=10um), 2000 sampled pairs per node; A_VT is\n"
      "re-extracted from the MC population like a test-structure study.\n\n";

  TablePrinter table({"node", "tox_nm", "A_VT_model", "A_VT_extracted",
                      "benchmark_1mV/nm", "ratio_vs_benchmark"});
  table.set_precision(4);

  bench::ShapeChecks checks;
  bool thick_tracks = true;       // tox >= 10nm: ratio ~ 1
  bool thin_above = true;         // tox < 5nm: ratio clearly > 1
  bool monotone_improving = true; // A_VT keeps falling with scaling
  double prev_avt = 1e9;
  std::uint64_t node_id = 0;

  for (const TechNode& node : technology_table()) {
    const PelgromModel model(PelgromParams::from_tech(node));
    const double extracted =
        extract_avt(model, 10.0, 10.0, 2000, derive_seed(42, {node_id++}));
    const double benchmark = tuinhout_benchmark_avt(node.tox_nm);
    const double ratio = extracted / benchmark;
    table.add_row({node.name, node.tox_nm, node.avt_mv_um, extracted,
                   benchmark, ratio});
    if (node.tox_nm >= 10.0 && std::abs(ratio - 1.0) > 0.15) {
      thick_tracks = false;
    }
    if (node.tox_nm < 5.0 && ratio < 1.2) thin_above = false;
    if (extracted >= prev_avt) monotone_improving = false;
    prev_avt = extracted;
  }
  table.print(std::cout);

  std::cout << "\nFig. 1 shape claims:\n";
  checks.check("thick oxides (>=10nm) track the 1 mV*um/nm benchmark",
               thick_tracks);
  checks.check("below ~5nm the benchmark no longer holds (A_VT above line)",
               thin_above);
  checks.check("matching still improves with scaling, only more slowly",
               monotone_improving);
  return checks.finish();
}
