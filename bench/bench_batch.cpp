// Batched cross-sample evaluation bench (spice/compiled_circuit.h).
//
// Measures what compiling the topology buys a Monte-Carlo yield run:
//
//   rebuild    — the classic path: per sample, build the circuit, capture
//                the stamp pattern, symbolic-factorize, Newton-solve;
//   compiled   — shared pattern + symbolic LU, value-only restamping,
//                scalar device kernel;
//   compiled+simd — same, MOSFET lanes evaluated by the dispatched
//                (AVX2 where available) batched kernel.
//
// Vehicles: the paper's 1:1 current mirror (small; dense-solver regime on
// the classic path) and a 16-output mirror bank (~70 unknowns; sparse
// regime, where the per-sample symbolic cost dominates). The headline
// claim checked: compiled throughput >= 5x rebuild on the bank.
//
// Flags: --smoke (shrink sample counts for CI),
//        --batch-json PATH (dump measured throughput as a JSON artifact).
#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "spice/compiled_circuit.h"
#include "tech/tech.h"
#include "util/table.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

constexpr double kIRef = 50e-6;

/// 1:1 NMOS current mirror with `outputs` mirrored branches. outputs=1 is
/// the paper's running example; outputs=16 pushes the unknown count into
/// the sparse-solver regime (~70 unknowns).
std::unique_ptr<Circuit> mirror_bank(const TechNode& tech, int outputs) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, kIRef);
  const auto p = spice::make_mos_params(tech, 1.0, 0.1, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  for (int k = 0; k < outputs; ++k) {
    const std::string id = std::to_string(k);
    const NodeId out = c->node("out" + id);
    const NodeId meas = c->node("meas" + id);
    c->add_mosfet("M2_" + id, out, ref, kGround, kGround, p);
    c->add_vsource("VB_" + id, meas, kGround, 0.5 * tech.vdd);
    c->add_vsource("VMEAS_" + id, meas, out, 0.0);
  }
  return c;
}

/// Spec: every mirrored branch within +/-tol of IREF. The single mirror
/// uses the paper's 5%; the 16-output bank takes the worst of 16 draws, so
/// 15% keeps its yield away from 0 (a degenerate pass/fail tells the bench
/// nothing about path agreement).
bool bank_spec(const Circuit& c, const Vector& x, int outputs, double tol) {
  for (int k = 0; k < outputs; ++k) {
    const double i_out =
        c.device_as<spice::VoltageSource>("VMEAS_" + std::to_string(k))
            .current(x);
    if (std::abs(i_out - kIRef) > tol * kIRef) return false;
  }
  return true;
}

struct Measured {
  double seconds = 0.0;
  std::size_t passed = 0;
  std::size_t total = 0;
  double per_s() const { return seconds > 0.0 ? total / seconds : 0.0; }
};

/// Best-of-2: the runs are deterministic, so the faster repetition is the
/// better estimate of the path's cost (scheduler noise only ever adds time).
template <typename F>
Measured timed(F run) {
  Measured m;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const McResult r = run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || s < m.seconds) m.seconds = s;
    m.passed = r.estimate.passed;
    m.total = r.estimate.total;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string json_path = bench::arg_value(argc, argv, "--batch-json");

  const auto& tech = tech_65nm();
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.seed = 97;
  const ReliabilitySimulator sim(cfg);

  struct Vehicle {
    const char* name;
    int outputs;
    std::size_t n;
    double spec_tol;
  };
  const Vehicle vehicles[] = {
      {"mirror", 1, smoke ? 400u : 4000u, 0.05},
      // Smoke keeps enough bank samples to amortise the one-off compile
      // (nominal solve + workspace setup), or the 5x check is meaningless.
      {"mirror_bank16", 16, smoke ? 240u : 600u, 0.15},
  };

  for (const Vehicle& v : vehicles) {
    bench::banner(std::string("batched MC yield: ") + v.name + " (" +
                  std::to_string(v.n) + " samples)");
    const auto factory = [&] { return mirror_bank(tech, v.outputs); };
    const auto spec = [&](const Circuit& c, const Vector& x) {
      return bank_spec(c, x, v.outputs, v.spec_tol);
    };
    McRequest req;
    req.n = v.n;
    req.threads = 1;  // isolate per-sample cost from scheduling

    const Measured rebuild = timed([&] {
      return sim.run_yield(
          factory,
          [&](Circuit& c) {
            const auto r = spice::dc_operating_point(c);
            return bank_spec(c, r.x(), v.outputs, v.spec_tol);
          },
          req);
    });

    YieldSpec batched_spec;
    batched_spec.factory = factory;
    batched_spec.solution_pass = spec;
    batched_spec.compile.simd_level = simd::SimdLevel::kScalar;
    McRequest batched_req = req;
    batched_req.eval_mode = McEvalMode::kBatched;
    const Measured scalar =
        timed([&] { return sim.run_yield(batched_spec, batched_req); });

    batched_spec.compile = {};
    const Measured simd =
        timed([&] { return sim.run_yield(batched_spec, batched_req); });

    TablePrinter t({"path", "samples_per_s", "speedup", "passed"});
    const auto row = [&](const char* path, const Measured& m) {
      t.add_row({std::string(path), m.per_s(), m.per_s() / rebuild.per_s(),
                 std::to_string(m.passed) + "/" + std::to_string(m.total)});
    };
    row("rebuild", rebuild);
    row("compiled", scalar);
    row("compiled+simd", simd);
    t.print(std::cout);

    checks.check(std::string(v.name) + ": batched yield equals classic yield",
                 scalar.passed == rebuild.passed &&
                     simd.passed == rebuild.passed &&
                     scalar.total == rebuild.total);
    if (v.outputs > 1) {
      // The acceptance headline: compiling the topology (shared symbolic
      // LU + slot restamping) must be worth >= 5x in the sparse regime.
      checks.check(std::string(v.name) + ": compiled >= 5x rebuild",
                   scalar.per_s() >= 5.0 * rebuild.per_s());
    } else {
      checks.check(std::string(v.name) + ": compiled beats rebuild",
                   scalar.per_s() > rebuild.per_s());
    }

    json.add(std::string("batch_") + v.name + "_rebuild",
             {{"samples_per_s", rebuild.per_s()}, {"n", double(v.n)}});
    json.add(std::string("batch_") + v.name + "_compiled",
             {{"samples_per_s", scalar.per_s()},
              {"speedup", scalar.per_s() / rebuild.per_s()}});
    json.add(std::string("batch_") + v.name + "_compiled_simd",
             {{"samples_per_s", simd.per_s()},
              {"speedup", simd.per_s() / rebuild.per_s()},
              {"simd_level", double(static_cast<int>(simd::active_simd_level()))}});
  }

  if (!json_path.empty() && !json.write(json_path)) {
    std::cerr << "failed to write " << json_path << '\n';
    return 1;
  }
  return checks.finish();
}
