// E3 — Fig. 2: I_DS-V_DS characteristic of a fresh MOS transistor (solid
// line in the paper) compared to a degraded device (dashed line).
//
// Method: a 65nm nMOS is stressed for 10 years at worst-case DC conditions
// through the NBTI+HCI models; the resulting parameter drift (VT shift,
// mobility degradation, r_o change) is installed in the device and the
// output characteristic re-swept at several gate voltages.
#include <iostream>

#include "aging/device_stress.h"
#include "aging/hci.h"
#include "aging/nbti.h"
#include "bench_util.h"
#include "spice/mosfet.h"
#include "tech/tech.h"
#include "util/mathx.h"
#include "util/units.h"

using namespace relsim;

int main() {
  const TechNode& tech = tech_65nm();
  const double mission_s = 10.0 * units::kSecondsPerYear;

  spice::MosParams params = spice::make_mos_params(tech, 2.0, 0.1, false);
  spice::Mosfet fresh("fresh", 1, 2, 3, 4, params);
  spice::Mosfet aged("aged", 1, 2, 3, 4, params);

  // Worst-case DC stress at elevated temperature.
  const auto stress = aging::DeviceStress::dc(
      /*is_pmos=*/false, tech.vdd, tech.vdd, tech.tox_nm, 398.0,
      params.w_um, params.l_um, tech.vt0_nmos);
  const aging::NbtiModel nbti;
  const aging::HciModel hci;
  aging::ParameterDrift drift;
  drift.combine(nbti.drift_from_dvt(nbti.delta_vt(stress, mission_s)));
  drift.combine(hci.drift_from_dvt(hci.delta_vt(stress, mission_s)));
  aged.set_degradation(drift.to_degradation());

  bench::banner("Fig. 2 - I_DS-V_DS, fresh vs 10-year degraded 65nm nMOS");
  std::cout << "installed drift: dVT = " << drift.dvt * 1e3
            << " mV, beta_factor = " << drift.beta_factor
            << ", lambda_factor = " << drift.lambda_factor << "\n\n";

  TablePrinter table({"VGS_V", "VDS_V", "ID_fresh_uA", "ID_aged_uA",
                      "degradation_pct"});
  table.set_precision(4);

  bool aged_below = true;
  bool sat_current_drops = false;
  double worst_sat_drop = 0.0;
  double low_vgs_drop = 0.0, high_vgs_drop = 0.0;
  for (double vgs : {0.6, 0.8, 1.1}) {
    for (double vds : linspace(0.0, tech.vdd, 12)) {
      const double i_fresh = fresh.evaluate(vds, vgs, 0.0, 0.0).id;
      const double i_aged = aged.evaluate(vds, vgs, 0.0, 0.0).id;
      const double pct =
          i_fresh > 1e-12 ? 100.0 * (1.0 - i_aged / i_fresh) : 0.0;
      table.add_row({vgs, vds, i_fresh * 1e6, i_aged * 1e6, pct});
      if (i_aged > i_fresh + 1e-12) aged_below = false;
      if (vds > 0.9 * tech.vdd) {
        worst_sat_drop = std::max(worst_sat_drop, pct);
        if (vgs == 0.6) low_vgs_drop = pct;
        if (vgs == 1.1) high_vgs_drop = pct;
      }
    }
  }
  sat_current_drops = worst_sat_drop > 5.0;
  table.print(std::cout);

  // Output-resistance comparison at a saturated bias point.
  const auto op_f = fresh.evaluate(1.0, 0.8, 0.0, 0.0);
  const auto op_a = aged.evaluate(1.0, 0.8, 0.0, 0.0);
  std::cout << "\nr_o at VGS=0.8, VDS=1.0: fresh = " << 1.0 / op_f.gds / 1e3
            << " kOhm, aged = " << 1.0 / op_a.gds / 1e3 << " kOhm\n";

  std::cout << "\nFig. 2 shape claims:\n";
  bench::ShapeChecks checks;
  checks.check("degraded curve lies below the fresh curve everywhere",
               aged_below);
  checks.check("saturation current visibly reduced (>5%) after 10 years",
               sat_current_drops);
  checks.check("threshold shift dominates at low VGS (larger relative drop)",
               low_vgs_drop > high_vgs_drop);
  checks.check("output conductance degrades (r_o drops)",
               op_a.gds / op_a.id > op_f.gds / op_f.id);
  return checks.finish();
}
