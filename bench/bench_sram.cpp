// SRAM 6T high-sigma yield bench (workloads/sram.h): the acceptance
// scenario of the SRAM workload suite, run as shape checks.
//
// The cell is the 65 nm 6T bitcell with per-transistor Pelgrom mismatch
// on all 12 (dVT, dbeta) dimensions. The certified metric is the
// loop-broken read-disturb margin, and the bench runs two estimators
// against it:
//
//  - the LINEARIZED pin: a central-difference linearization of the margin
//    around the nominal cell makes the failure probability at threshold
//    nominal - tau*sigma EXACTLY Phi(-tau). Importance sampling with the
//    matching mean shift must land within its CI of that ground truth at
//    tau = 5 — a 2.9e-7 tail no plain-MC run of this size can even see —
//    with >= 10x fewer samples than plain MC would need at equal CI;
//  - the FULL cell at the same threshold: the margin response is concave
//    (the sense inverter slams), so the true tail is orders of magnitude
//    fatter than the linearized model predicts. Plain MC can measure it
//    (p ~ 1e-2), and a moderately shifted importance run must agree —
//    the classic high-sigma caveat, reproduced: linearization
//    UNDERESTIMATES SRAM failure.
//
// Plus the session contracts on a real circuit workload: per-sample
// values CRC bit-identical across 1/4/8 workers x chunk 8/64, and a
// kill/resume that lands on the bit-exact uninterrupted result.
//
// Flags: --smoke (smaller n for CI),
//        --mc-json PATH (dump the measured series as a flat JSON artifact),
//        --manifest PATH (run manifest of the headline importance run).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/protocol.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "util/error.h"
#include "variability/mc_session.h"
#include "workloads/sram.h"

using namespace relsim;
using namespace relsim::workloads;

namespace {

double half_width(const ProportionInterval& iv) {
  return 0.5 * (iv.hi - iv.lo);
}

/// Plain-MC sample count that reaches half-width h on a proportion p at z.
double plain_mc_equivalent(double p, double h, double z = 1.959963984540054) {
  return z * z * p * (1.0 - p) / (h * h);
}

bool same_weighted(const McResult& a, const McResult& b) {
  return a.completed == b.completed &&
         a.estimate.interval.estimate == b.estimate.interval.estimate &&
         a.estimate.interval.lo == b.estimate.interval.lo &&
         a.estimate.interval.hi == b.estimate.interval.hi &&
         a.weighted.sums.w == b.weighted.sums.w &&
         a.weighted.sums.w2 == b.weighted.sums.w2 &&
         a.weighted.sums.wx == b.weighted.sums.wx &&
         a.weighted.sums.log_scale == b.weighted.sums.log_scale &&
         a.weighted.ess == b.weighted.ess;
}

SampleStrategyConfig importance_config(std::vector<double> shift) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kImportance;
  c.shift = std::move(shift);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ShapeChecks checks;
  bench::BenchJson json;
  const bool smoke = bench::arg_present(argc, argv, "--smoke");
  const std::string mc_json = bench::arg_value(argc, argv, "--mc-json");
  const std::string manifest_path = bench::arg_value(argc, argv, "--manifest");

  Sram6TParams params;
  params.tech = &tech_65nm();

  // --- the cell at a glance -------------------------------------------------
  bench::banner("SRAM 6T bitcell, 65 nm: nominal metrics");
  const double snm = read_snm(params);
  const double wm = write_margin(params);
  const double t_acc = access_time(params);
  const double rd = read_disturb_margin(params);
  TablePrinter cell_t({"metric", "value", "unit"});
  cell_t.set_precision(4);
  cell_t.add_row({std::string("read SNM"), snm * 1e3, std::string("mV")});
  cell_t.add_row({std::string("write margin"), wm, std::string("V")});
  cell_t.add_row({std::string("access time"), t_acc * 1e12,
                  std::string("ps")});
  cell_t.add_row({std::string("read-disturb margin"), rd, std::string("V")});
  cell_t.print(std::cout);
  checks.check("nominal cell is healthy (positive margins, finite access "
               "time)",
               snm > 0.0 && wm > 0.0 && rd > 0.0 && std::isfinite(t_acc) &&
                   t_acc > 0.0);
  json.add("cell", {{"read_snm_v", snm},
                    {"write_margin_v", wm},
                    {"access_time_s", t_acc},
                    {"read_disturb_v", rd}});

  // --- linearization --------------------------------------------------------
  const Sram6TLinearization lin =
      linearize(params, Sram6TMetric::kReadDisturb);
  const double tau = 5.0;
  const double threshold = lin.nominal - tau * lin.sigma;
  const double p_exact = lin.failure_probability(threshold);
  std::printf("linearized margin: nominal %.4g V, mismatch sigma %.4g mV, "
              "pin at %.4g V (tau = %.1f, exact Phi(-tau) = %.4g)\n",
              lin.nominal, lin.sigma * 1e3, threshold, tau, p_exact);
  checks.check("linearization sees the mismatch (sigma > 0)",
               lin.sigma > 0.0);
  json.add("linearization", {{"nominal", lin.nominal},
                             {"sigma", lin.sigma},
                             {"tau", tau},
                             {"threshold", threshold},
                             {"exact", p_exact}});

  // --- the 5-sigma pin: importance sampling vs exact Phi(-tau) --------------
  char exact_str[32];
  std::snprintf(exact_str, sizeof exact_str, "%.4g", p_exact);
  bench::banner("Linearized pin: P[margin < nominal - 5 sigma] by importance "
                "sampling (exact " + std::string(exact_str) + ")");
  const std::size_t n_is = smoke ? 2000 : 6000;
  const McPointPredicate lin_pass =
      sram6t_linearized_predicate(lin, threshold);

  McRequest is_req;
  is_req.seed = 2026;
  is_req.n = n_is;
  is_req.threads = 4;
  is_req.chunk = 16;
  is_req.strategy = importance_config(lin.is_shift(threshold));
  is_req.run_label = "bench_sram.importance";
  is_req.manifest_path = manifest_path;
  const McResult is = McSession(is_req).run_yield(lin_pass);

  const double p_is = 1.0 - is.estimate.yield();
  const double h_is = half_width(is.estimate.interval);
  const double n_equiv = plain_mc_equivalent(p_is, h_is);
  const double reduction = n_equiv / static_cast<double>(n_is);
  std::printf("  importance: p_fail = %.4g +- %.3g (n = %zu, ESS %.1f)\n",
              p_is, h_is, n_is, is.weighted.ess);
  std::printf("  plain-MC samples for the same CI: %.3g (%.0fx fewer with "
              "IS)\n",
              n_equiv, reduction);
  checks.check("importance estimate within 3 half-widths of the exact "
               "Phi(-5) tail",
               h_is > 0.0 && std::abs(p_is - p_exact) <= 3.0 * h_is);
  checks.check("importance sampling needs >= 10x fewer samples than plain "
               "MC at equal CI half-width",
               reduction >= 10.0);
  checks.check("ESS diagnostic is positive and below the sample count",
               is.weighted.enabled && is.weighted.ess > 0.0 &&
                   is.weighted.ess < static_cast<double>(n_is));
  json.add("importance", {{"n", static_cast<double>(n_is)},
                          {"estimate", p_is},
                          {"ci_half_width", h_is},
                          {"ess", is.weighted.ess},
                          {"exact", p_exact},
                          {"plain_equivalent_n", n_equiv},
                          {"sample_reduction", reduction}});

  // --- the full cell at the same threshold ----------------------------------
  bench::banner("Full cell at the same threshold: the concave margin "
                "response fattens the tail");
  const McPointPredicate cell_pass =
      sram6t_point_predicate(params, Sram6TMetric::kReadDisturb, threshold);

  McRequest plain_req;
  plain_req.seed = 9;
  plain_req.n = smoke ? 8000 : 40000;
  plain_req.threads = 8;
  plain_req.chunk = 64;
  plain_req.run_label = "bench_sram.cell_plain";
  const McResult plain = McSession(plain_req).run_yield(cell_pass);
  const double p_plain = 1.0 - plain.estimate.yield();
  const double h_plain = half_width(plain.estimate.interval);

  McRequest cell_req;
  cell_req.seed = 2027;
  cell_req.n = smoke ? 1500 : 4000;
  cell_req.threads = 4;
  cell_req.chunk = 16;
  // A moderate tilt: the REAL failure boundary sits far closer than the
  // linearized tau = 5 (that is the point of this section), so a quarter
  // tilt keeps the proposal near it without blowing up the weights.
  cell_req.strategy = importance_config(lin.is_shift(threshold, 0.25));
  cell_req.run_label = "bench_sram.cell_importance";
  const McResult cell = McSession(cell_req).run_yield(cell_pass);
  const double p_cell = 1.0 - cell.estimate.yield();
  const double h_cell = half_width(cell.estimate.interval);

  TablePrinter nl_t({"estimator", "n", "p_fail", "ci_half_width"});
  nl_t.set_precision(6);
  nl_t.add_row({std::string("linearized (exact)"), 0LL, p_exact, 0.0});
  nl_t.add_row({std::string("plain MC"),
                static_cast<long long>(plain_req.n), p_plain, h_plain});
  nl_t.add_row({std::string("importance"),
                static_cast<long long>(cell_req.n), p_cell, h_cell});
  nl_t.print(std::cout);
  std::printf("  tail inflation vs the linearized model: %.3gx\n",
              p_plain / p_exact);
  checks.check("plain MC sees the full cell's tail (> 0 failures)",
               p_plain > 0.0);
  checks.check("full-cell tail is at least 10x fatter than the linearized "
               "prediction (concave margin response)",
               p_plain > 10.0 * p_exact);
  checks.check("importance estimate agrees with plain MC within their "
               "combined CIs",
               std::abs(p_cell - p_plain) <= 3.0 * (h_cell + h_plain));
  json.add("full_cell", {{"n_plain", static_cast<double>(plain_req.n)},
                         {"p_plain", p_plain},
                         {"plain_half_width", h_plain},
                         {"n_importance", static_cast<double>(cell_req.n)},
                         {"p_importance", p_cell},
                         {"importance_half_width", h_cell},
                         {"ess", cell.weighted.ess},
                         {"tail_inflation", p_plain / p_exact}});

  // --- bit identity across workers ------------------------------------------
  bench::banner("Bit identity: full-cell importance run across 1/4/8 workers "
                "x chunk 8/64 (values CRC)");
  McRequest id_req = cell_req;
  id_req.n = smoke ? 256 : 512;
  id_req.keep_values = true;
  id_req.run_label = "bench_sram.bits";
  McResult id_ref;
  std::uint32_t crc_ref = 0;
  bool identical = true;
  bool first = true;
  for (unsigned threads : {1u, 4u, 8u}) {
    for (std::size_t chunk : {std::size_t{8}, std::size_t{64}}) {
      McRequest req = id_req;
      req.threads = threads;
      req.chunk = chunk;
      const McResult r = McSession(req).run_yield(cell_pass);
      const std::uint32_t crc = service::values_crc32(r);
      if (first) {
        id_ref = r;
        crc_ref = crc;
        first = false;
      } else {
        identical =
            identical && crc == crc_ref && same_weighted(r, id_ref);
      }
      std::printf("  workers=%u chunk=%zu values_crc32=%08x %s\n", threads,
                  chunk, crc,
                  crc == crc_ref ? "match" : "MISMATCH");
    }
  }
  checks.check("per-sample values CRC and weighted sums bit-identical "
               "across 1/4/8 workers and chunk 8/64",
               identical);
  json.add("bit_identity", {{"identical", identical ? 1.0 : 0.0},
                            {"values_crc32", static_cast<double>(crc_ref)}});

  // --- kill/resume mid-run --------------------------------------------------
  bench::banner("Kill/resume: full-cell importance run killed mid-flight "
                "resumes from its checkpoint to the bit-exact result");
  const std::string ckpt = "bench_sram.ckpt";
  std::remove(ckpt.c_str());
  McRequest kr = id_req;
  kr.checkpoint_path = ckpt;
  kr.checkpoint_every = 64;
  kr.run_label = "bench_sram.resume";
  const std::size_t kill_index = 3 * kr.n / 4;
  bool killed = false;
  try {
    McSession(kr).run_yield([&](McSamplePoint& p) {
      if (p.index() == kill_index) {
        throw Error("bench kill switch at sample " +
                    std::to_string(kill_index));
      }
      return cell_pass(p);
    });
  } catch (const Error&) {
    killed = true;
  }
  const McResult resumed = McSession(kr).run_yield(cell_pass);
  std::remove(ckpt.c_str());
  std::printf("  killed=%s resumed=%zu/%zu values_crc32=%08x\n",
              killed ? "yes" : "NO", resumed.resumed, kr.n,
              service::values_crc32(resumed));
  checks.check("kill switch aborted the first attempt", killed);
  checks.check("second run resumed committed samples from the checkpoint",
               resumed.resumed > 0 && resumed.resumed < kr.n);
  checks.check("resumed run is bit-identical to the uninterrupted run "
               "(values CRC + weighted sums)",
               service::values_crc32(resumed) == crc_ref &&
                   same_weighted(resumed, id_ref));
  json.add("resume", {{"resumed", static_cast<double>(resumed.resumed)},
                      {"identical",
                       same_weighted(resumed, id_ref) ? 1.0 : 0.0}});

  if (!mc_json.empty()) {
    checks.check("SRAM high-sigma artifact written to " + mc_json,
                 json.write(mc_json));
  }
  return checks.finish();
}
