// E5 — Eq. 2 / Sec. 3.2, HCI:
//   dVT ~ Q_i exp(Eox/Eo) exp(-phi_it/(q lambda Em)) t^n       (Wang [45])
// Series: power-law in time; acceleration with V_DS, temperature, channel
// length and width; nMOS vs pMOS asymmetry; partial recovery.
#include <cmath>
#include <iostream>

#include "aging/hci.h"
#include "bench_util.h"
#include "stats/regression.h"
#include "util/mathx.h"
#include "util/units.h"

using namespace relsim;
using aging::DeviceStress;
using aging::HciModel;

int main() {
  const HciModel model;
  bench::ShapeChecks checks;
  const double tox = 1.8;

  auto stress = [&](double vgs, double vds, double temp, double l, double w,
                    bool pmos = false) {
    return DeviceStress::dc(pmos, vgs, vds, tox, temp, w, l, 0.33);
  };

  // --- time power law ------------------------------------------------------
  bench::banner("Eq. 2 time dependence: dVT(t) under DC stress (log-log)");
  TablePrinter tt({"t_s", "dVT_mV"});
  tt.set_precision(4);
  std::vector<double> ts, dvs;
  for (double t : logspace(1e2, 3.2e8, 8)) {
    const double dvt = model.delta_vt(stress(1.1, 1.1, 398.0, 0.1, 1.0), t);
    tt.add_row({t, dvt * 1e3});
    ts.push_back(t);
    dvs.push_back(dvt);
  }
  tt.print(std::cout);
  const auto fit = fit_power_law(ts, dvs);
  std::cout << "fitted exponent n = " << fit.slope
            << " (configured n = " << model.params().n << ")\n";

  // --- drain-voltage acceleration ------------------------------------------
  bench::banner("Lateral-field acceleration: 10-year dVT vs V_DS");
  TablePrinter vds_t({"VDS_V", "Em_V_per_um", "dVT_mV_10y"});
  vds_t.set_precision(4);
  const double ten_y = 10.0 * units::kSecondsPerYear;
  std::vector<double> vds_dvt;
  for (double vds : {0.7, 0.9, 1.1, 1.3}) {
    const auto s = stress(1.1, vds, 398.0, 0.1, 1.0);
    const double dvt = model.delta_vt(s, ten_y);
    vds_t.add_row({vds, model.lateral_field_v_per_um(s), dvt * 1e3});
    vds_dvt.push_back(dvt);
  }
  vds_t.print(std::cout);

  // --- channel length / width / temperature / type --------------------------
  bench::banner("Geometry, temperature and carrier-type dependence (10y)");
  TablePrinter dep({"case", "dVT_mV_10y"});
  dep.set_precision(4);
  const double base = model.delta_vt(stress(1.1, 1.1, 398.0, 0.1, 1.0), ten_y);
  const double long_l =
      model.delta_vt(stress(1.1, 1.1, 398.0, 0.18, 1.0), ten_y);
  const double wide = model.delta_vt(stress(1.1, 1.1, 398.0, 0.1, 4.0), ten_y);
  const double cold = model.delta_vt(stress(1.1, 1.1, 300.0, 0.1, 1.0), ten_y);
  const double pmos =
      model.delta_vt(stress(1.1, 1.1, 398.0, 0.1, 1.0, true), ten_y);
  dep.add_row({std::string("L=0.10um W=1um 398K nMOS (base)"), base * 1e3});
  dep.add_row({std::string("L=0.18um (longer channel)"), long_l * 1e3});
  dep.add_row({std::string("W=4um (wider)"), wide * 1e3});
  dep.add_row({std::string("300K (room temperature)"), cold * 1e3});
  dep.add_row({std::string("pMOS (holes are cooler)"), pmos * 1e3});
  dep.print(std::cout);

  // --- partial recovery -----------------------------------------------------
  bench::banner("Recovery after stress removal (interface-trap anneal)");
  TablePrinter rec({"t_relax_s", "remaining_dVT_mV", "recovered_pct"});
  rec.set_precision(4);
  const double dvt_end = model.delta_vt(stress(1.1, 1.1, 398.0, 0.1, 1.0),
                                        ten_y);
  double final_remaining = dvt_end;
  for (double tr : logspace(1e-3, 1e8, 6)) {
    const double rem = model.relaxed_delta_vt(dvt_end, tr);
    rec.add_row({tr, rem * 1e3, 100.0 * (1.0 - rem / dvt_end)});
    final_remaining = rem;
  }
  rec.print(std::cout);

  std::cout << "\nEq. 2 / HCI shape claims:\n";
  checks.check("dVT follows a t^n power law (fit within 1%)",
               std::abs(fit.slope / model.params().n - 1.0) < 0.01);
  checks.check("degradation accelerates superlinearly with V_DS",
               vds_dvt[3] > 10.0 * vds_dvt[1] && vds_dvt[1] > 10.0 * vds_dvt[0]);
  checks.check("shorter channels degrade much faster", base > 5.0 * long_l);
  checks.check("wider devices degrade less", base > wide);
  checks.check("hot devices degrade more (deep-submicron regime [44])",
               base > cold);
  checks.check("nMOS degrades ~10x more than pMOS [17]",
               std::abs(pmos / base - model.params().pmos_factor) < 1e-6);
  checks.check("recovery is partial and minor compared to NBTI [17]",
               final_remaining > 0.8 * dvt_end);
  return checks.finish();
}
