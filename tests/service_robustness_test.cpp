// Transport-robustness contracts of the service layer:
//  * a SLOW peer raises SocketTimeoutError — a typed error distinct from
//    the plain Error a DEAD peer raises (lease enforcement needs the two
//    distinguishable);
//  * the daemon's io_timeout drops clients that stall mid-frame;
//  * poll_backoff is capped, jittered and deterministic;
//  * drain() checkpoints running jobs and publishes "checkpointed";
//  * a paused queue stops dispensing but keeps its backlog.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_value.h"
#include "service/client.h"
#include "service/fair_queue.h"
#include "service/server.h"
#include "service/socket_io.h"
#include "util/error.h"

namespace relsim::service {
namespace {

constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

JobSpec divider_spec(std::size_t n) {
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = kDivider;
  spec.constraints.push_back({"d", 0.55, 0.75});
  spec.seed = 99;
  spec.n = n;
  return spec;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// A Unix-socket listener that accepts connections and then behaves per
/// `mode`: kSilent never replies (slow peer), kSlam closes immediately
/// (dead peer).
class StubPeer {
 public:
  enum class Mode { kSilent, kSlam };

  explicit StubPeer(Mode mode)
      : mode_(mode),
        path_(::testing::TempDir() + "relsim_stub_" +
              std::to_string(::getpid()) + "_" +
              std::to_string(mode == Mode::kSilent ? 0 : 1) + ".sock") {
    std::remove(path_.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd_, 4);
    acceptor_ = std::thread([this] {
      for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) return;  // listener closed
        if (mode_ == Mode::kSlam) {
          ::close(client);
        } else {
          clients_.push_back(client);  // hold open, never reply
        }
      }
    });
  }
  ~StubPeer() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    acceptor_.join();
    for (int c : clients_) ::close(c);
    std::remove(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  Mode mode_;
  std::string path_;
  int fd_ = -1;
  std::thread acceptor_;
  std::vector<int> clients_;
};

TEST(SocketTimeoutTest, SlowPeerThrowsTypedTimeoutNotPlainError) {
  StubPeer silent(StubPeer::Mode::kSilent);
  Client client = Client::connect_unix(silent.path());
  client.set_timeout(0.2);
  const auto t0 = std::chrono::steady_clock::now();
  bool typed = false;
  try {
    client.ping();
    FAIL() << "ping against a silent peer must not succeed";
  } catch (const SocketTimeoutError&) {
    typed = true;
  } catch (const Error&) {
    typed = false;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(typed) << "slow peer must raise SocketTimeoutError";
  EXPECT_GE(elapsed.count(), 0.15);
  EXPECT_LT(elapsed.count(), 5.0);
}

TEST(SocketTimeoutTest, DeadPeerThrowsPlainErrorNotTimeout) {
  StubPeer slam(StubPeer::Mode::kSlam);
  Client client = Client::connect_unix(slam.path());
  client.set_timeout(5.0);
  try {
    client.ping();
    FAIL() << "ping against a slammed connection must not succeed";
  } catch (const SocketTimeoutError&) {
    FAIL() << "disconnect must NOT be reported as a timeout";
  } catch (const Error&) {
    // the distinct, correct classification
  }
}

TEST(SocketTimeoutTest, SetSocketTimeoutArmsAndClearsTheDeadline) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  set_socket_timeout(sv[0], 0.1);
  char buf[4];
  errno = 0;
  EXPECT_EQ(::recv(sv[0], buf, sizeof buf, 0), -1);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);

  set_socket_timeout(sv[0], 0.0);  // cleared: reads block again
  ASSERT_EQ(::send(sv[1], "ok\n", 3, 0), 3);
  EXPECT_EQ(::recv(sv[0], buf, sizeof buf, 0), 3);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(PollBackoffTest, GrowsExponentiallyWithACapAndBoundedJitter) {
  for (unsigned attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t base =
        std::min<std::uint64_t>(50ull << std::min(attempt, 10u), 1000ull);
    const auto d = poll_backoff(42, attempt).count();
    EXPECT_GE(d, static_cast<std::int64_t>(base - base / 4))
        << "attempt " << attempt;
    EXPECT_LE(d, static_cast<std::int64_t>(base + base / 4))
        << "attempt " << attempt;
  }
  // Hard cap: even absurd attempts stay near 1 s.
  EXPECT_LE(poll_backoff(7, 63).count(), 1250);
}

TEST(PollBackoffTest, DeterministicPerJobAndSpreadAcrossJobs) {
  EXPECT_EQ(poll_backoff(5, 3).count(), poll_backoff(5, 3).count());
  std::set<std::int64_t> delays;
  for (std::uint64_t job = 1; job <= 32; ++job) {
    delays.insert(poll_backoff(job, 6).count());
  }
  // 32 waiters at the same attempt must NOT collapse onto one instant.
  EXPECT_GT(delays.size(), 4u);
}

TEST(ServerIoTimeoutTest, StalledClientIsDroppedHealthyClientServed) {
  ServerOptions options;
  options.socket_path = ::testing::TempDir() + "relsim_iotimeout_" +
                        std::to_string(::getpid()) + ".sock";
  options.io_timeout_seconds = 0.2;
  Server server(std::move(options));
  server.start();

  // A raw client that sends half a frame and stalls.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.options().socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_GT(::send(fd, "{\"op\":\"pi", 9, 0), 0);  // no newline, ever

  // The daemon must close the stalled connection: recv sees EOF.
  char buf[16];
  const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(got, 0) << "stalled connection should be dropped with EOF";
  ::close(fd);

  // And the daemon is still healthy for well-behaved clients.
  Client ok = Client::connect_unix(server.options().socket_path);
  ok.ping();
  server.stop();
}

TEST(DrainTest, DrainCheckpointsRunningJobsAndPublishesCheckpointed) {
  const std::string log_path = ::testing::TempDir() + "relsim_drain_" +
                               std::to_string(::getpid()) + ".jsonl";
  const std::string ckpt_path = ::testing::TempDir() + "relsim_drain_" +
                                std::to_string(::getpid()) + ".rsmckpt";
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());

  ServerOptions options;
  options.socket_path = ::testing::TempDir() + "relsim_drain_" +
                        std::to_string(::getpid()) + ".sock";
  options.event_log_path = log_path;
  Server server(std::move(options));
  server.start();

  // Slow enough to still be running at drain: per-sample mode re-parses
  // the netlist per sample.
  JobSpec spec = divider_spec(50000);
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 1;
  spec.checkpoint_path = ckpt_path;
  spec.checkpoint_every = 128;

  Client client = Client::connect_unix(server.options().socket_path);
  const std::uint64_t id = client.submit("drain-tenant", 0, spec);
  for (int i = 0; i < 2000 && !file_exists(ckpt_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(file_exists(ckpt_path)) << "job never started checkpointing";

  server.drain();

  const std::shared_ptr<Job> job = server.find_job(id);
  ASSERT_NE(job, nullptr);
  {
    std::lock_guard<std::mutex> lock(job->mu);
    EXPECT_EQ(job->state, JobState::kCancelled);
    EXPECT_LT(job->result.completed, spec.n);
    EXPECT_GT(job->result.completed, 0u);
  }

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  bool saw_checkpointed = false;
  bool saw_cancelled = false;
  std::string line;
  while (std::getline(in, line)) {
    const obs::JsonValue e = obs::JsonValue::parse(line);
    if (e.get_u64("job_id", 0) != id) continue;
    const std::string state = e.get_string("state", "");
    saw_checkpointed = saw_checkpointed || state == "checkpointed";
    saw_cancelled = saw_cancelled || state == "cancelled";
  }
  EXPECT_TRUE(saw_checkpointed)
      << "drain must publish the job's checkpointed event";
  EXPECT_TRUE(saw_cancelled);
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(DrainTest, PausedQueueStopsDispensingButKeepsBacklog) {
  FairShareQueue queue;
  auto job = std::make_shared<Job>();
  job->id = 1;
  job->tenant = "t";
  job->seq = 1;
  job->spec.n = 10;
  ASSERT_TRUE(queue.push(job));
  queue.pause();
  EXPECT_EQ(queue.pop(), nullptr) << "paused pop must not dispense";
  EXPECT_EQ(queue.depth(), 1u) << "pause must keep the backlog";

  auto late = std::make_shared<Job>();
  late->id = 2;
  late->tenant = "t";
  late->seq = 2;
  late->spec.n = 10;
  EXPECT_TRUE(queue.push(late)) << "push still accepts while paused";
  EXPECT_EQ(queue.depth(), 2u);

  const std::vector<std::shared_ptr<Job>> leftovers = queue.shutdown();
  EXPECT_EQ(leftovers.size(), 2u);
}

}  // namespace
}  // namespace relsim::service
