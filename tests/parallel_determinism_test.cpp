// Locks in the bit-identity contract of the parallel Monte-Carlo drivers:
// because every sample owns a derived seed, run_metric_parallel and
// estimate_yield_parallel must return EXACTLY the serial results for any
// thread count (montecarlo.h documents this; yield analyses rely on it).
#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.h"
#include "variability/montecarlo.h"

namespace relsim {
namespace {

double sample_metric(Xoshiro256& rng, std::size_t index) {
  // Chews through enough RNG state to make ordering bugs visible.
  NormalDistribution normal(0.0, 1.0);
  double acc = static_cast<double>(index);
  for (int k = 0; k < 16; ++k) acc += normal(rng);
  return std::cos(acc) + acc;
}

TEST(ParallelDeterminismTest, RunMetricBitIdenticalAcrossThreadCounts) {
  const MonteCarloEngine engine(0xfeedbeefULL);
  const std::size_t n = 257;  // deliberately not a multiple of any count
  const std::vector<double> serial = engine.run_metric(n, sample_metric);
  for (const unsigned threads : {1u, 2u, 3u, 5u, 8u, 16u, 64u}) {
    const std::vector<double> parallel =
        engine.run_metric_parallel(n, sample_metric, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < n; ++i) {
      // Bit identity, not closeness: same seed, same arithmetic.
      EXPECT_EQ(parallel[i], serial[i])
          << "threads=" << threads << " sample=" << i;
    }
  }
}

TEST(ParallelDeterminismTest, YieldEstimateIdenticalAcrossThreadCounts) {
  const MonteCarloEngine engine(123456789ULL);
  const auto pass = [](Xoshiro256& rng, std::size_t index) {
    NormalDistribution normal(0.0, 1.0);
    double acc = 0.0;
    for (int k = 0; k < 8; ++k) acc += normal(rng);
    return acc + 0.01 * static_cast<double>(index % 7) > 0.0;
  };
  const YieldEstimate serial = engine.estimate_yield(1003, pass);
  for (const unsigned threads : {1u, 2u, 3u, 7u, 12u, 32u}) {
    const YieldEstimate parallel =
        engine.estimate_yield_parallel(1003, pass, threads);
    EXPECT_EQ(parallel.passed, serial.passed) << "threads=" << threads;
    EXPECT_EQ(parallel.total, serial.total);
    EXPECT_EQ(parallel.interval.estimate, serial.interval.estimate);
    EXPECT_EQ(parallel.interval.lo, serial.interval.lo);
    EXPECT_EQ(parallel.interval.hi, serial.interval.hi);
  }
}

TEST(ParallelDeterminismTest, MoreThreadsThanSamples) {
  const MonteCarloEngine engine(42);
  const std::vector<double> serial = engine.run_metric(3, sample_metric);
  const std::vector<double> parallel =
      engine.run_metric_parallel(3, sample_metric, 64);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]);
  }
}

TEST(ParallelDeterminismTest, ExceptionsPropagateFromWorkers) {
  const MonteCarloEngine engine(7);
  const auto failing = [](Xoshiro256&, std::size_t index) -> double {
    if (index == 100) throw Error("sample 100 exploded");
    return 0.0;
  };
  EXPECT_THROW(engine.run_metric_parallel(128, failing, 4), Error);
}

}  // namespace
}  // namespace relsim
