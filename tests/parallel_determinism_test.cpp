// Locks in the bit-identity contract of the McSession orchestrator:
// because every sample owns a derived seed and retired ranges are folded
// into the accumulators in sample-index order, a session must return
// EXACTLY the serial results for any thread count, chunk size and
// partitioning mode (mc_session.h documents this; yield analyses rely
// on it).
#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.h"
#include "variability/mc_session.h"
#include "variability/montecarlo.h"

namespace relsim {
namespace {

double sample_metric(Xoshiro256& rng, std::size_t index) {
  // Chews through enough RNG state to make ordering bugs visible.
  NormalDistribution normal(0.0, 1.0);
  double acc = static_cast<double>(index);
  for (int k = 0; k < 16; ++k) acc += normal(rng);
  return std::cos(acc) + acc;
}

McRequest base_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  return req;
}

TEST(ParallelDeterminismTest, MetricBitIdenticalAcrossThreadCounts) {
  const MonteCarloEngine engine(0xfeedbeefULL);
  const std::size_t n = 257;  // deliberately not a multiple of any count
  const std::vector<double> serial = engine.run_metric(n, sample_metric);
  for (const unsigned threads : {1u, 2u, 3u, 5u, 8u, 16u, 64u}) {
    McRequest req = base_request(0xfeedbeefULL, n);
    req.threads = threads;
    const McResult result = McSession(req).run_metric(sample_metric);
    ASSERT_EQ(result.values.size(), serial.size());
    for (std::size_t i = 0; i < n; ++i) {
      // Bit identity, not closeness: same seed, same arithmetic.
      EXPECT_EQ(result.values[i], serial[i])
          << "threads=" << threads << " sample=" << i;
    }
  }
}

TEST(ParallelDeterminismTest, MetricBitIdenticalAcrossChunkSizes) {
  const MonteCarloEngine engine(0xabcdULL);
  const std::size_t n = 193;
  const std::vector<double> serial = engine.run_metric(n, sample_metric);
  for (const std::size_t chunk : {1ul, 3ul, 16ul, 64ul, 1000ul}) {
    McRequest req = base_request(0xabcdULL, n);
    req.threads = 4;
    req.chunk = chunk;
    const McResult result = McSession(req).run_metric(sample_metric);
    ASSERT_EQ(result.values.size(), serial.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(result.values[i], serial[i])
          << "chunk=" << chunk << " sample=" << i;
    }
  }
}

TEST(ParallelDeterminismTest, StaticBlocksMatchWorkStealing) {
  const std::size_t n = 311;
  McRequest stealing = base_request(99, n);
  stealing.threads = 6;
  stealing.chunk = 8;
  const McResult a = McSession(stealing).run_metric(sample_metric);

  McRequest blocks = base_request(99, n);
  blocks.threads = 6;
  blocks.partition = McPartition::kStaticBlocks;
  const McResult b = McSession(blocks).run_metric(sample_metric);

  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.values[i], b.values[i]) << "sample=" << i;
  }
  EXPECT_EQ(a.metric.mean(), b.metric.mean());
  EXPECT_EQ(a.metric.stddev(), b.metric.stddev());
}

TEST(ParallelDeterminismTest, YieldEstimateIdenticalAcrossThreadCounts) {
  const MonteCarloEngine engine(123456789ULL);
  const auto pass = [](Xoshiro256& rng, std::size_t index) {
    NormalDistribution normal(0.0, 1.0);
    double acc = 0.0;
    for (int k = 0; k < 8; ++k) acc += normal(rng);
    return acc + 0.01 * static_cast<double>(index % 7) > 0.0;
  };
  const YieldEstimate serial = engine.estimate_yield(1003, pass);
  for (const unsigned threads : {1u, 2u, 3u, 7u, 12u, 32u}) {
    McRequest req = base_request(123456789ULL, 1003);
    req.threads = threads;
    const McResult result = McSession(req).run_yield(pass);
    EXPECT_EQ(result.estimate.passed, serial.passed) << "threads=" << threads;
    EXPECT_EQ(result.estimate.total, serial.total);
    EXPECT_EQ(result.estimate.interval.estimate, serial.interval.estimate);
    EXPECT_EQ(result.estimate.interval.lo, serial.interval.lo);
    EXPECT_EQ(result.estimate.interval.hi, serial.interval.hi);
  }
}

TEST(ParallelDeterminismTest, FailingSeedsIdenticalAcrossThreadCounts) {
  const auto pass = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.9;
  };
  McRequest ref = base_request(31337, 400);
  ref.threads = 1;
  ref.keep_failing_seeds = 5;
  const McResult serial = McSession(ref).run_yield(pass);
  ASSERT_FALSE(serial.failing_samples().empty());
  for (const unsigned threads : {2u, 8u}) {
    McRequest req = ref;
    req.threads = threads;
    const McResult parallel = McSession(req).run_yield(pass);
    ASSERT_EQ(parallel.failing_samples().size(), serial.failing_samples().size());
    for (std::size_t k = 0; k < serial.failing_samples().size(); ++k) {
      EXPECT_EQ(parallel.failing_samples()[k].index,
                serial.failing_samples()[k].index);
      EXPECT_EQ(parallel.failing_samples()[k].seed,
                serial.failing_samples()[k].seed);
    }
  }
}

TEST(ParallelDeterminismTest, MoreThreadsThanSamples) {
  const MonteCarloEngine engine(42);
  const std::vector<double> serial = engine.run_metric(3, sample_metric);
  McRequest req = base_request(42, 3);
  req.threads = 64;
  const McResult result = McSession(req).run_metric(sample_metric);
  ASSERT_EQ(result.values.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(result.values[i], serial[i]);
  }
}

TEST(ParallelDeterminismTest, ExceptionsPropagateFromWorkers) {
  const auto failing = [](Xoshiro256&, std::size_t index) -> double {
    if (index == 100) throw Error("sample 100 exploded");
    return 0.0;
  };
  McRequest req = base_request(7, 128);
  req.threads = 4;
  EXPECT_THROW(McSession(req).run_metric(failing), Error);
}

TEST(ParallelDeterminismTest, TelemetryCoversAllSamples) {
  McRequest req = base_request(5, 200);
  req.threads = 4;
  req.chunk = 8;
  const McResult result = McSession(req).run_metric(sample_metric);
  ASSERT_EQ(result.workers().size(), 4u);
  std::size_t total = 0;
  for (const McWorkerTelemetry& w : result.workers()) {
    EXPECT_GE(w.busy_seconds, 0.0);
    total += w.samples;
  }
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(result.completed, 200u);
}

}  // namespace
}  // namespace relsim
