// Batched cross-sample evaluation tests.
//
// The contract under test: the unified run_yield(YieldSpec) batched path
// draws the SAME per-sample mismatch stream as the per-sample path and
// solves the same circuits, so the pass/fail outcome per sample is
// identical (operating points agree to Newton tolerance, which a sane
// spec margin dwarfs); results are independent of thread count and batch
// grouping; the whole run does exactly one pattern capture and one
// symbolic factorization — that IS the speedup; and eval_mode dispatch
// (kAuto/kPerSample/kBatched) picks the documented path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "spice/compiled_circuit.h"
#include "tech/tech.h"
#include "util/error.h"
#include "variability/sampler.h"

namespace relsim {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

constexpr double kIRef = 50e-6;

ReliabilityConfig config_for(const TechNode& tech) {
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.seed = 41;
  return cfg;
}

/// The paper's running example: a 1:1 NMOS current mirror whose output
/// accuracy is the spec.
std::unique_ptr<Circuit> mirror_factory(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  const NodeId meas = c->node("meas");
  const NodeId out = c->node("out");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, kIRef);
  const auto p = spice::make_mos_params(tech, 1.0, 0.1, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  c->add_mosfet("M2", out, ref, kGround, kGround, p);
  c->add_vsource("VB", meas, kGround, 0.5 * tech.vdd);
  c->add_vsource("VMEAS", meas, out, 0.0);
  return c;
}

double mirror_error(const Circuit& c, const Vector& x) {
  const double i_out = c.device_as<spice::VoltageSource>("VMEAS").current(x);
  return std::abs(i_out - kIRef) / kIRef;
}

bool mirror_spec(const Circuit& c, const Vector& x) {
  return mirror_error(c, x) < 0.05;
}

YieldSpec mirror_yield_spec(const TechNode& tech) {
  YieldSpec spec;
  spec.factory = [&tech] { return mirror_factory(tech); };
  spec.solution_pass = mirror_spec;
  return spec;
}

TEST(BatchEval, WorkspaceLanesMatchPerSampleSolves) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  spice::CompiledCircuit compiled(mirror_factory(tech));
  auto ws = compiled.make_workspace(mirror_factory(tech));

  // Apply the production mismatch stream of samples [0, lanes) to the
  // workspace lanes...
  const std::size_t lanes = 16;
  std::vector<MismatchSampler> samplers;
  for (const spice::Mosfet* m : compiled.circuit().mosfets()) {
    samplers.emplace_back(sim.pelgrom(), m->params().w_um, m->params().l_um);
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    Xoshiro256 rng(derive_seed(sim.config().seed, {lane}));
    for (std::size_t m = 0; m < samplers.size(); ++m) {
      const MismatchSample s = samplers[m].sample_single(rng);
      ws->set_lane_variation(lane, m, {s.dvt, s.dbeta_rel});
    }
  }
  ws->solve_dc(lanes);

  // ...and compare every lane against the classic per-sample path.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    auto circuit = mirror_factory(tech);
    Xoshiro256 rng(derive_seed(sim.config().seed, {lane}));
    sim.apply_process_variation(*circuit, rng);
    const spice::DcResult r = spice::dc_operating_point(*circuit);
    const Vector& xb = ws->lane_solution(lane);
    ASSERT_EQ(xb.size(), r.x().size());
    for (std::size_t i = 0; i < xb.size(); ++i) {
      EXPECT_NEAR(xb[i], r.x()[i], 1e-6) << "lane " << lane << " unknown "
                                         << i;
    }
    EXPECT_EQ(mirror_spec(ws->circuit(), xb), mirror_spec(*circuit, r.x()))
        << "lane " << lane;
  }
}

TEST(BatchEval, BatchedYieldMatchesClassicRun) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto factory = [&] { return mirror_factory(tech); };

  McRequest req;
  req.n = 400;
  req.threads = 1;

  const McResult classic = sim.run_yield(
      factory,
      [](Circuit& c) {
        const auto r = spice::dc_operating_point(c);
        return mirror_spec(c, r.x());
      },
      req);
  McRequest batched_req = req;
  batched_req.eval_mode = McEvalMode::kBatched;
  const McResult batched = sim.run_yield(mirror_yield_spec(tech), batched_req);

  EXPECT_EQ(classic.estimate.total, batched.estimate.total);
  EXPECT_EQ(classic.estimate.passed, batched.estimate.passed);
  // The spread must actually bite: an all-pass run would make this test
  // vacuous.
  EXPECT_GT(batched.estimate.passed, 0u);
  EXPECT_LT(batched.estimate.passed, batched.estimate.total);
}

TEST(BatchEval, BatchedResultsIndependentOfThreadsAndChunk) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  McRequest base;
  base.n = 300;

  McRequest a = base;
  a.eval_mode = McEvalMode::kBatched;
  a.threads = 1;
  a.chunk = 32;
  McRequest b = a;
  b.threads = 4;
  b.chunk = 7;  // ragged batches: lanes must not see their neighbours
  const McResult ra = sim.run_yield(mirror_yield_spec(tech), a);
  const McResult rb = sim.run_yield(mirror_yield_spec(tech), b);
  EXPECT_EQ(ra.estimate.total, rb.estimate.total);
  EXPECT_EQ(ra.estimate.passed, rb.estimate.passed);
}

TEST(BatchEval, SharesOneSymbolicFactorizationAcrossAllSamples) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  McRequest req;
  req.n = 1000;
  req.threads = 2;
  req.eval_mode = McEvalMode::kBatched;

  spice::SolverStats stats;
  YieldSpec spec = mirror_yield_spec(tech);
  spec.stats_out = &stats;
  const McResult result = sim.run_yield(spec, req);
  EXPECT_EQ(result.completed, 1000u);

  // The whole point of compiling: topology work happens once, every sample
  // after that is a numeric-only refactorization.
  EXPECT_EQ(stats.pattern_builds, 1);
  EXPECT_EQ(stats.sparse_symbolic_factorizations, 1);
  EXPECT_GE(stats.sparse_numeric_refactorizations, 1000);
  EXPECT_EQ(stats.dense_fallbacks, 0);
}

TEST(BatchEval, AutoModePicksBatchedWhenEligible) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  McRequest req;
  req.n = 200;
  req.threads = 1;
  ASSERT_EQ(req.eval_mode, McEvalMode::kAuto);

  // A solution predicate + plain pseudo-random strategy: kAuto must take
  // the compiled path, visible as exactly one pattern capture.
  spice::SolverStats stats;
  YieldSpec spec = mirror_yield_spec(tech);
  spec.stats_out = &stats;
  const McResult auto_run = sim.run_yield(spec, req);
  EXPECT_EQ(stats.pattern_builds, 1);

  // And it must agree sample-for-sample with the forced batched path.
  McRequest forced = req;
  forced.eval_mode = McEvalMode::kBatched;
  const McResult batched = sim.run_yield(mirror_yield_spec(tech), forced);
  EXPECT_EQ(auto_run.estimate.passed, batched.estimate.passed);
  EXPECT_EQ(auto_run.estimate.total, batched.estimate.total);
}

TEST(BatchEval, AutoModeFallsBackPerSampleForVarianceReduction) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  // LHS is not batch-eligible; kAuto must run the spec per-sample (the
  // forced batched mode throws on the same request).
  McRequest req;
  req.n = 64;
  req.threads = 1;
  req.strategy.kind = McSampleStrategy::kLatinHypercube;
  req.strategy.dimensions = 2;
  const McResult r = sim.run_yield(mirror_yield_spec(tech), req);
  EXPECT_EQ(r.completed, 64u);
  EXPECT_EQ(r.estimate.total, 64u);

  McRequest forced = req;
  forced.eval_mode = McEvalMode::kBatched;
  EXPECT_THROW(sim.run_yield(mirror_yield_spec(tech), forced), Error);
}

TEST(BatchEval, PerSampleModeMatchesBatchedOutcome) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  McRequest per_sample;
  per_sample.n = 200;
  per_sample.threads = 2;
  per_sample.eval_mode = McEvalMode::kPerSample;
  const McResult classic = sim.run_yield(mirror_yield_spec(tech), per_sample);

  McRequest batched = per_sample;
  batched.eval_mode = McEvalMode::kBatched;
  const McResult compiled = sim.run_yield(mirror_yield_spec(tech), batched);

  EXPECT_EQ(classic.estimate.total, compiled.estimate.total);
  EXPECT_EQ(classic.estimate.passed, compiled.estimate.passed);
}

TEST(BatchEval, BatchedModeRequiresSolutionPredicate) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  YieldSpec spec;
  spec.factory = [&tech] { return mirror_factory(tech); };
  spec.pass = [](Circuit&) { return true; };  // circuit predicate only
  McRequest req;
  req.n = 8;
  req.eval_mode = McEvalMode::kBatched;
  EXPECT_THROW(sim.run_yield(spec, req), Error);
}

// The deprecated forwarder must stay behaviourally identical to the
// unified entry until its removal PR (see README migration notes).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(BatchEval, DeprecatedForwarderMatchesUnifiedEntry) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto factory = [&] { return mirror_factory(tech); };

  McRequest req;
  req.n = 150;
  req.threads = 1;
  const McResult legacy = sim.run_yield_batched(factory, mirror_spec, req);

  McRequest unified_req = req;
  unified_req.eval_mode = McEvalMode::kBatched;
  const McResult unified = sim.run_yield(mirror_yield_spec(tech), unified_req);
  EXPECT_EQ(legacy.estimate.passed, unified.estimate.passed);
  EXPECT_EQ(legacy.estimate.total, unified.estimate.total);
}
#pragma GCC diagnostic pop

TEST(BatchEval, BatchRunRejectsVarianceReductionStrategies) {
  McRequest req;
  req.n = 8;
  req.strategy.kind = McSampleStrategy::kLatinHypercube;
  req.strategy.dimensions = 2;
  const McSession session(req);
  EXPECT_THROW(session.run_yield_batch([](const McBatchSpan&) {},
                                       [](Xoshiro256&, std::size_t) {
                                         return true;
                                       }),
               Error);
}

}  // namespace
}  // namespace relsim
