// Batched cross-sample evaluation tests.
//
// The contract under test: run_yield_batched draws the SAME per-sample
// mismatch stream as run_yield and solves the same circuits, so the
// pass/fail outcome per sample is identical (operating points agree to
// Newton tolerance, which a sane spec margin dwarfs); results are
// independent of thread count and batch grouping; and the whole run does
// exactly one pattern capture and one symbolic factorization — that IS
// the speedup.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "spice/compiled_circuit.h"
#include "tech/tech.h"
#include "util/error.h"
#include "variability/sampler.h"

namespace relsim {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

constexpr double kIRef = 50e-6;

ReliabilityConfig config_for(const TechNode& tech) {
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.seed = 41;
  return cfg;
}

/// The paper's running example: a 1:1 NMOS current mirror whose output
/// accuracy is the spec.
std::unique_ptr<Circuit> mirror_factory(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  const NodeId meas = c->node("meas");
  const NodeId out = c->node("out");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, kIRef);
  const auto p = spice::make_mos_params(tech, 1.0, 0.1, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  c->add_mosfet("M2", out, ref, kGround, kGround, p);
  c->add_vsource("VB", meas, kGround, 0.5 * tech.vdd);
  c->add_vsource("VMEAS", meas, out, 0.0);
  return c;
}

double mirror_error(const Circuit& c, const Vector& x) {
  const double i_out = c.device_as<spice::VoltageSource>("VMEAS").current(x);
  return std::abs(i_out - kIRef) / kIRef;
}

bool mirror_spec(const Circuit& c, const Vector& x) {
  return mirror_error(c, x) < 0.05;
}

TEST(BatchEval, WorkspaceLanesMatchPerSampleSolves) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));

  spice::CompiledCircuit compiled(mirror_factory(tech));
  auto ws = compiled.make_workspace(mirror_factory(tech));

  // Apply the production mismatch stream of samples [0, lanes) to the
  // workspace lanes...
  const std::size_t lanes = 16;
  std::vector<MismatchSampler> samplers;
  for (const spice::Mosfet* m : compiled.circuit().mosfets()) {
    samplers.emplace_back(sim.pelgrom(), m->params().w_um, m->params().l_um);
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    Xoshiro256 rng(derive_seed(sim.config().seed, {lane}));
    for (std::size_t m = 0; m < samplers.size(); ++m) {
      const MismatchSample s = samplers[m].sample_single(rng);
      ws->set_lane_variation(lane, m, {s.dvt, s.dbeta_rel});
    }
  }
  ws->solve_dc(lanes);

  // ...and compare every lane against the classic per-sample path.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    auto circuit = mirror_factory(tech);
    Xoshiro256 rng(derive_seed(sim.config().seed, {lane}));
    sim.apply_process_variation(*circuit, rng);
    const spice::DcResult r = spice::dc_operating_point(*circuit);
    const Vector& xb = ws->lane_solution(lane);
    ASSERT_EQ(xb.size(), r.x().size());
    for (std::size_t i = 0; i < xb.size(); ++i) {
      EXPECT_NEAR(xb[i], r.x()[i], 1e-6) << "lane " << lane << " unknown "
                                         << i;
    }
    EXPECT_EQ(mirror_spec(ws->circuit(), xb), mirror_spec(*circuit, r.x()))
        << "lane " << lane;
  }
}

TEST(BatchEval, BatchedYieldMatchesClassicRun) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto factory = [&] { return mirror_factory(tech); };

  McRequest req;
  req.n = 400;
  req.threads = 1;

  const McResult classic = sim.run_yield(
      factory,
      [](Circuit& c) {
        const auto r = spice::dc_operating_point(c);
        return mirror_spec(c, r.x());
      },
      req);
  const McResult batched = sim.run_yield_batched(factory, mirror_spec, req);

  EXPECT_EQ(classic.estimate.total, batched.estimate.total);
  EXPECT_EQ(classic.estimate.passed, batched.estimate.passed);
  // The spread must actually bite: an all-pass run would make this test
  // vacuous.
  EXPECT_GT(batched.estimate.passed, 0u);
  EXPECT_LT(batched.estimate.passed, batched.estimate.total);
}

TEST(BatchEval, BatchedResultsIndependentOfThreadsAndChunk) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto factory = [&] { return mirror_factory(tech); };

  McRequest base;
  base.n = 300;

  McRequest a = base;
  a.threads = 1;
  a.chunk = 32;
  McRequest b = base;
  b.threads = 4;
  b.chunk = 7;  // ragged batches: lanes must not see their neighbours
  const McResult ra = sim.run_yield_batched(factory, mirror_spec, a);
  const McResult rb = sim.run_yield_batched(factory, mirror_spec, b);
  EXPECT_EQ(ra.estimate.total, rb.estimate.total);
  EXPECT_EQ(ra.estimate.passed, rb.estimate.passed);
}

TEST(BatchEval, SharesOneSymbolicFactorizationAcrossAllSamples) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto factory = [&] { return mirror_factory(tech); };

  McRequest req;
  req.n = 1000;
  req.threads = 2;

  spice::SolverStats stats;
  const McResult result =
      sim.run_yield_batched(factory, mirror_spec, req, {}, &stats);
  EXPECT_EQ(result.completed, 1000u);

  // The whole point of compiling: topology work happens once, every sample
  // after that is a numeric-only refactorization.
  EXPECT_EQ(stats.pattern_builds, 1);
  EXPECT_EQ(stats.sparse_symbolic_factorizations, 1);
  EXPECT_GE(stats.sparse_numeric_refactorizations, 1000);
  EXPECT_EQ(stats.dense_fallbacks, 0);
}

TEST(BatchEval, BatchRunRejectsVarianceReductionStrategies) {
  McRequest req;
  req.n = 8;
  req.strategy.kind = McSampleStrategy::kLatinHypercube;
  req.strategy.dimensions = 2;
  const McSession session(req);
  EXPECT_THROW(session.run_yield_batch([](const McBatchSpan&) {},
                                       [](Xoshiro256&, std::size_t) {
                                         return true;
                                       }),
               Error);
}

}  // namespace
}  // namespace relsim
