// Sparse-vs-dense solver equivalence at the analysis level, the
// symbolic-reuse observability counters, and the Newton-loop regression
// fixes (first-iteration convergence, exact gmin-ladder termination).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/netlist_parser.h"
#include "tech/tech.h"
#include "util/mathx.h"

namespace relsim::spice {
namespace {

NewtonOptions forced_sparse() {
  NewtonOptions o;
  o.sparse_min_unknowns = 1;
  return o;
}

NewtonOptions forced_dense() {
  NewtonOptions o;
  o.sparse_min_unknowns = 1 << 28;
  return o;
}

/// Resistor ladder: source -> R chain of `stages` nodes, each with a shunt
/// resistor to ground. stages+1 unknowns (nodes + source branch).
VoltageSource& build_resistor_ladder(Circuit& c, int stages) {
  NodeId prev = c.node("n0");
  auto& src = c.add_vsource("V1", prev, kGround, 1.0);
  for (int i = 1; i <= stages; ++i) {
    const NodeId node = c.node("n" + std::to_string(i));
    c.add_resistor("Rs" + std::to_string(i), prev, node, 100.0);
    c.add_resistor("Rg" + std::to_string(i), node, kGround, 10e3);
    prev = node;
  }
  return src;
}

void build_inverter_chain(Circuit& c, int stages) {
  const auto& tech = tech_65nm();
  const NodeId vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  NodeId in = c.node("in");
  c.add_vsource("VIN", in, kGround,
                std::make_unique<PulseWaveform>(0.0, tech.vdd, 0.2e-9, 20e-12,
                                                20e-12, 2e-9, 4e-9));
  for (int i = 0; i < stages; ++i) {
    const NodeId out = c.node("s" + std::to_string(i));
    c.add_mosfet("MN" + std::to_string(i), out, in, kGround, kGround,
                 make_mos_params(tech, 1.0, 0.1, false));
    c.add_mosfet("MP" + std::to_string(i), out, in, vdd, vdd,
                 make_mos_params(tech, 2.0, 0.1, true));
    c.add_capacitor("CL" + std::to_string(i), out, kGround, 5e-15);
    in = out;
  }
}

TEST(SparseSolverEquivalenceTest, DcLadderMatchesDense) {
  for (const int stages : {10, 60, 220}) {
    Circuit cs, cd;
    build_resistor_ladder(cs, stages);
    build_resistor_ladder(cd, stages);
    DcOptions sparse_opt, dense_opt;
    sparse_opt.newton = forced_sparse();
    dense_opt.newton = forced_dense();
    const DcResult rs = dc_operating_point(cs, sparse_opt);
    const DcResult rd = dc_operating_point(cd, dense_opt);
    ASSERT_EQ(rs.x().size(), rd.x().size());
    for (std::size_t i = 0; i < rs.x().size(); ++i) {
      EXPECT_NEAR(rs.x()[i], rd.x()[i], 1e-9) << "stages=" << stages;
    }
    EXPECT_GT(rs.solver_stats().sparse_symbolic_factorizations, 0);
    EXPECT_EQ(rs.solver_stats().dense_factorizations, 0);
    EXPECT_EQ(rd.solver_stats().sparse_symbolic_factorizations, 0);
    EXPECT_GT(rd.solver_stats().dense_factorizations, 0);
  }
}

TEST(SparseSolverEquivalenceTest, DcSweepInverterMatchesDense) {
  Circuit cs, cd;
  build_inverter_chain(cs, 4);
  build_inverter_chain(cd, 4);
  auto& vs = cs.device_as<VoltageSource>("VIN");
  auto& vd = cd.device_as<VoltageSource>("VIN");
  const auto values = linspace(0.0, tech_65nm().vdd, 21);
  DcOptions sparse_opt, dense_opt;
  sparse_opt.newton = forced_sparse();
  dense_opt.newton = forced_dense();
  const auto rs = dc_sweep(cs, vs, values, sparse_opt);
  const auto rd = dc_sweep(cd, vd, values, dense_opt);
  ASSERT_EQ(rs.size(), rd.size());
  for (std::size_t k = 0; k < rs.size(); ++k) {
    for (std::size_t i = 0; i < rs[k].x().size(); ++i) {
      EXPECT_NEAR(rs[k].x()[i], rd[k].x()[i], 1e-9) << "point " << k;
    }
  }
}

TEST(SparseSolverEquivalenceTest, TransientRcLadderMatchesDense) {
  auto build = [](Circuit& c) {
    const NodeId in = c.node("in");
    c.add_vsource("V1", in, kGround,
                  std::make_unique<SineWaveform>(0.0, 1.0, 5e6));
    NodeId prev = in;
    for (int i = 1; i <= 40; ++i) {
      const NodeId node = c.node("n" + std::to_string(i));
      c.add_resistor("R" + std::to_string(i), prev, node, 50.0);
      c.add_capacitor("C" + std::to_string(i), node, kGround, 2e-12);
      prev = node;
    }
    return prev;
  };
  Circuit cs, cd;
  const NodeId outs = build(cs);
  const NodeId outd = build(cd);
  TransientOptions sparse_opt, dense_opt;
  sparse_opt.dt = dense_opt.dt = 2e-9;
  sparse_opt.t_stop = dense_opt.t_stop = 4e-7;
  sparse_opt.newton = forced_sparse();
  dense_opt.newton = forced_dense();
  const TransientResult rs = transient_analysis(cs, sparse_opt, {outs});
  const TransientResult rd = transient_analysis(cd, dense_opt, {outd});
  ASSERT_EQ(rs.step_count(), rd.step_count());
  for (std::size_t k = 0; k < rs.step_count(); ++k) {
    EXPECT_NEAR(rs.node(outs)[k], rd.node(outd)[k], 1e-9) << "step " << k;
  }
  // The whole transient reuses ONE symbolic analysis.
  EXPECT_EQ(rs.solver_stats().sparse_symbolic_factorizations, 1);
  EXPECT_EQ(rs.solver_stats().pattern_builds, 1);
  EXPECT_GT(rs.solver_stats().sparse_numeric_refactorizations,
            static_cast<long>(rs.step_count()));
  EXPECT_EQ(rs.solver_stats().dense_fallbacks, 0);
}

TEST(SparseSolverEquivalenceTest, TransientInverterChainMatchesDense) {
  Circuit cs, cd;
  build_inverter_chain(cs, 6);
  build_inverter_chain(cd, 6);
  TransientOptions sparse_opt, dense_opt;
  sparse_opt.dt = dense_opt.dt = 10e-12;
  sparse_opt.t_stop = dense_opt.t_stop = 3e-9;
  sparse_opt.integrator = dense_opt.integrator = Integrator::kTrapezoidal;
  sparse_opt.newton = forced_sparse();
  dense_opt.newton = forced_dense();
  const NodeId outs = cs.find_node("s5");
  const NodeId outd = cd.find_node("s5");
  const TransientResult rs = transient_analysis(cs, sparse_opt, {outs});
  const TransientResult rd = transient_analysis(cd, dense_opt, {outd});
  ASSERT_EQ(rs.step_count(), rd.step_count());
  for (std::size_t k = 0; k < rs.step_count(); ++k) {
    EXPECT_NEAR(rs.node(outs)[k], rd.node(outd)[k], 1e-9) << "step " << k;
  }
}

TEST(SparseSolverEquivalenceTest, ExampleNetlistsMatchDense) {
  for (const std::string name :
       {"inverter.cir", "current_mirror.cir", "rlc_filter.cir"}) {
    const std::string path =
        std::string(RELSIM_SOURCE_DIR) + "/examples/netlists/" + name;
    ParsedNetlist sparse_net = parse_netlist_file(path);
    ParsedNetlist dense_net = parse_netlist_file(path);
    DcOptions sparse_opt, dense_opt;
    sparse_opt.newton = forced_sparse();
    dense_opt.newton = forced_dense();
    const DcResult rs = dc_operating_point(*sparse_net.circuit, sparse_opt);
    const DcResult rd = dc_operating_point(*dense_net.circuit, dense_opt);
    ASSERT_EQ(rs.x().size(), rd.x().size()) << name;
    for (std::size_t i = 0; i < rs.x().size(); ++i) {
      EXPECT_NEAR(rs.x()[i], rd.x()[i], 1e-9) << name << " unknown " << i;
    }
  }
}

TEST(SparseSolverStatsTest, SymbolicStructureReusedAcrossOperatingPoints) {
  Circuit c;
  build_resistor_ladder(c, 100);
  DcOptions opt;
  opt.newton = forced_sparse();
  const DcResult r1 = dc_operating_point(c, opt);
  EXPECT_EQ(r1.solver_stats().pattern_builds, 1);
  EXPECT_EQ(r1.solver_stats().sparse_symbolic_factorizations, 1);
  EXPECT_EQ(r1.solver_stats().sparse_numeric_refactorizations,
            r1.iterations() - 1);
  // A second solve on the same circuit reuses pattern AND pivot order.
  const DcResult r2 = dc_operating_point(c, opt, r1.x());
  EXPECT_EQ(r2.solver_stats().pattern_builds, 0);
  EXPECT_EQ(r2.solver_stats().sparse_symbolic_factorizations, 0);
  EXPECT_EQ(r2.solver_stats().sparse_numeric_refactorizations,
            r2.iterations());
}

TEST(SparseSolverStatsTest, AddingDeviceInvalidatesStructure) {
  Circuit c;
  build_resistor_ladder(c, 60);
  DcOptions opt;
  opt.newton = forced_sparse();
  const DcResult r1 = dc_operating_point(c, opt);
  EXPECT_EQ(r1.solver_stats().pattern_builds, 1);
  c.add_resistor("Rnew", c.find_node("n3"), c.find_node("n40"), 1e3);
  const DcResult r2 = dc_operating_point(c, opt);
  EXPECT_EQ(r2.solver_stats().pattern_builds, 1);  // rebuilt once
  EXPECT_EQ(r2.solver_stats().sparse_symbolic_factorizations, 1);
}

// ---------------------------------------------------------------------------
// Newton-loop regression fixes

TEST(NewtonRegressionTest, ResistorDividerConvergesOnFirstIterationWarmStart) {
  Circuit c;
  const NodeId top = c.node("top");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", top, kGround, 2.0);
  c.add_resistor("R1", top, mid, 1e3);
  c.add_resistor("R2", mid, kGround, 1e3);
  const DcResult cold = dc_operating_point(c);
  EXPECT_NEAR(cold.v(mid), 1.0, 1e-9);
  // A warm start on a linear circuit is already converged: exactly ONE
  // Newton iteration (the old `iter > 1` guard forced a second round).
  const DcResult warm = dc_operating_point(c, {}, cold.x());
  EXPECT_EQ(warm.iterations(), 1);
  EXPECT_NEAR(warm.v(mid), 1.0, 1e-9);
}

TEST(NewtonRegressionTest, RepeatedSweepPointCostsOneIteration) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& src = c.add_vsource("V1", in, kGround, 0.5);
  c.add_resistor("R1", in, out, 2e3);
  c.add_resistor("R2", out, kGround, 2e3);
  const auto sweep = dc_sweep(c, src, {0.5, 0.5, 0.5});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[1].iterations(), 1);
  EXPECT_EQ(sweep[2].iterations(), 1);
}

TEST(GminLadderTest, DecadeGminEndsExactlyOnTarget) {
  const auto ladder = gmin_ladder(1e-12);
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front(), 1e-2);
  EXPECT_EQ(ladder.back(), 1e-12);  // exact, not a drifted 9.99...e-13
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i], ladder[i - 1]);
    EXPECT_NEAR(ladder[i - 1] / ladder[i], 10.0, 1e-6);
  }
}

TEST(GminLadderTest, NonDecadeGminTerminatesExactly) {
  for (const double gmin : {3e-9, 4.7e-13, 2.5e-7, 1.0e-3}) {
    const auto ladder = gmin_ladder(gmin);
    ASSERT_FALSE(ladder.empty());
    EXPECT_EQ(ladder.back(), gmin) << "gmin=" << gmin;  // bit-exact
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_GT(ladder[i - 1], ladder[i]);
      EXPECT_GT(ladder[i], 0.0);
    }
    // Every rung except the last sits strictly above gmin.
    for (std::size_t i = 0; i + 1 < ladder.size(); ++i) {
      EXPECT_GT(ladder[i], gmin);
    }
  }
}

TEST(GminLadderTest, GminAboveLadderStartIsSingleRung) {
  const auto ladder = gmin_ladder(0.5);
  ASSERT_EQ(ladder.size(), 1u);
  EXPECT_EQ(ladder[0], 0.5);
}

TEST(GminLadderTest, NonDecadeGminSolvesDiodeCircuit) {
  // End-to-end: a non-decade gmin must flow through the whole DC path.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId a = c.node("a");
  c.add_vsource("V1", vdd, kGround, 1.5);
  c.add_resistor("R1", vdd, a, 1e3);
  c.add_diode("D1", a, kGround);
  DcOptions opt;
  opt.newton.gmin = 7.3e-11;
  const DcResult r = dc_operating_point(c, opt);
  EXPECT_GT(r.v(a), 0.4);
  EXPECT_LT(r.v(a), 0.9);
  // And the solution agrees with the default-gmin solve.
  const DcResult ref = dc_operating_point(c);
  EXPECT_NEAR(r.v(a), ref.v(a), 1e-6);
}

}  // namespace
}  // namespace relsim::spice
