#include <gtest/gtest.h>

#include "tech/tech.h"
#include "util/error.h"

namespace relsim {
namespace {

TEST(TechTest, TableIsOrderedNewestLast) {
  const auto& table = technology_table();
  ASSERT_GE(table.size(), 8u);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i].feature_nm, table[i - 1].feature_nm);
    EXPECT_LT(table[i].tox_nm, table[i - 1].tox_nm);
    EXPECT_LE(table[i].vdd, table[i - 1].vdd);
    EXPECT_LT(table[i].avt_mv_um, table[i - 1].avt_mv_um);
  }
}

TEST(TechTest, LookupByName) {
  EXPECT_DOUBLE_EQ(technology("65nm").feature_nm, 65.0);
  EXPECT_DOUBLE_EQ(tech_90nm().feature_nm, 90.0);
  EXPECT_THROW(technology("13nm"), Error);
}

TEST(TechTest, TuinhoutBenchmarkHoldsForThickOxides) {
  // Fig. 1: above ~10nm oxides, measured A_VT tracks the 1 mV*um/nm line.
  for (const auto& node : technology_table()) {
    if (node.tox_nm >= 10.0) {
      EXPECT_NEAR(node.avt_mv_um / node.tuinhout_benchmark_mv_um(), 1.0, 0.1)
          << node.name;
    }
  }
}

TEST(TechTest, BenchmarkBreaksBelowTenNm) {
  // Fig. 1: below 10nm the measured A_VT sits clearly ABOVE the benchmark
  // forecast (matching improves more slowly than the oxide scales).
  for (const auto& node : technology_table()) {
    if (node.tox_nm < 5.0) {
      EXPECT_GT(node.avt_mv_um, 1.2 * node.tuinhout_benchmark_mv_um())
          << node.name;
    }
  }
}

TEST(TechTest, SaneElectricalParameters) {
  for (const auto& node : technology_table()) {
    EXPECT_GT(node.vt0_nmos, 0.0) << node.name;
    EXPECT_LT(node.vt0_pmos, 0.0) << node.name;
    EXPECT_LT(node.vt0_nmos, node.vdd) << node.name;
    EXPECT_GT(node.kp_nmos, node.kp_pmos) << node.name;
    EXPECT_GT(node.em.activation_ev, 0.3) << node.name;
    EXPECT_GT(node.phi, 0.5) << node.name;
  }
}

}  // namespace
}  // namespace relsim
