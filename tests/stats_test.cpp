#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rng/distributions.h"
#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "stats/weibull_fit.h"
#include "util/error.h"

namespace relsim {
namespace {

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), Error);
  s.add(1.0);
  EXPECT_THROW(s.variance(), Error);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(WilsonTest, ContainsPointEstimate) {
  const auto i = wilson_interval(90, 100);
  EXPECT_DOUBLE_EQ(i.estimate, 0.9);
  EXPECT_LT(i.lo, 0.9);
  EXPECT_GT(i.hi, 0.9);
  EXPECT_GT(i.lo, 0.8);
  EXPECT_LT(i.hi, 0.96);
}

TEST(WilsonTest, DegenerateEndpointsStayInUnitInterval) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_interval(50, 50);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{1, 3, 5, 7, 9};
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  Xoshiro256 rng(5);
  NormalDistribution noise(0.0, 0.1);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.05);
    y.push_back(4.0 - 1.5 * x.back() + noise(rng));
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, -1.5, 0.05);
  EXPECT_NEAR(fit.intercept, 4.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitPowerLawTest, RecoversExponent) {
  std::vector<double> x, y;
  for (double v = 1.0; v <= 100.0; v *= 1.5) {
    x.push_back(v);
    y.push_back(2.5 * std::pow(v, 0.25));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 0.25, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 2.5, 1e-9);
}

TEST(WeibullFitTest, RankRegressionRecoversParameters) {
  Xoshiro256 rng(11);
  const WeibullDistribution w(2.0, 5.0);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_rank_regression(times);
  EXPECT_NEAR(est.shape, 2.0, 0.15);
  EXPECT_NEAR(est.scale, 5.0, 0.2);
  EXPECT_GT(est.r_squared, 0.97);
}

TEST(WeibullFitTest, MleRecoversParameters) {
  Xoshiro256 rng(13);
  const WeibullDistribution w(1.4, 3.0);
  std::vector<double> times;
  for (int i = 0; i < 3000; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_mle(times);
  EXPECT_NEAR(est.shape, 1.4, 0.08);
  EXPECT_NEAR(est.scale, 3.0, 0.12);
}

// Property sweep: both estimators recover shape/scale over a grid of true
// parameters (the TDDB bench depends on this inversion being unbiased).
class WeibullRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullRecovery, BothEstimatorsRecover) {
  const auto [shape, scale] = GetParam();
  Xoshiro256 rng(derive_seed(1234, {static_cast<std::uint64_t>(shape * 100),
                                    static_cast<std::uint64_t>(scale * 100)}));
  const WeibullDistribution w(shape, scale);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) times.push_back(w(rng));
  const auto rr = fit_weibull_rank_regression(times);
  const auto mle = fit_weibull_mle(times);
  EXPECT_NEAR(rr.shape / shape, 1.0, 0.08);
  EXPECT_NEAR(rr.scale / scale, 1.0, 0.05);
  EXPECT_NEAR(mle.shape / shape, 1.0, 0.06);
  EXPECT_NEAR(mle.scale / scale, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeScaleGrid, WeibullRecovery,
    ::testing::Values(std::pair{0.8, 1.0}, std::pair{1.0, 10.0},
                      std::pair{1.5, 100.0}, std::pair{2.5, 3.0},
                      std::pair{4.0, 50.0}));

TEST(WeibullPlotTest, MedianRanksMonotone) {
  const auto pts = weibull_plot({3.0, 1.0, 2.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].median_rank, pts[1].median_rank);
  EXPECT_LT(pts[1].median_rank, pts[2].median_rank);
  EXPECT_DOUBLE_EQ(pts[0].time, 1.0);
  EXPECT_NEAR(pts[0].median_rank, 0.7 / 3.4, 1e-12);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, DensityIntegratesToOneWithoutOverflow) {
  Histogram h(0.0, 1.0, 4);
  for (double x = 0.05; x < 1.0; x += 0.1) h.add(x);
  const double width = 0.25;
  double integral = 0.0, mass = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * width;
    mass += h.mass(b);
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(HistogramTest, DensityIsPerUnitWidthAndKeepsOverflowMass) {
  // 8 in-range + 2 overflow samples over [0,2) with 2 bins of width 1:
  // density must be count/(total*width), integrating to the in-range
  // fraction 0.8 — the old implementation returned probability mass and
  // "integrated" to 0.8/width.
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 6; ++i) h.add(0.5);
  h.add(1.5);
  h.add(1.5);
  h.add(5.0);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.density(0), 0.6);
  EXPECT_DOUBLE_EQ(h.density(1), 0.2);
  EXPECT_DOUBLE_EQ(h.mass(0), 0.6);
  EXPECT_NEAR(h.density(0) * 1.0 + h.density(1) * 1.0, 0.8, 1e-12);
}

TEST(HistogramTest, RenderersLabelUnderOverflowAndNan) {
  Histogram h(0.0, 1.0, 2);
  h.add(-1.0);
  h.add(0.25);
  h.add(2.0);
  h.add(std::nan(""));
  EXPECT_EQ(h.nonfinite(), 1u);
  EXPECT_EQ(h.total(), 4u);
  const std::string art = h.ascii();
  EXPECT_NE(art.find("underflow"), std::string::npos);
  EXPECT_NE(art.find("overflow"), std::string::npos);
  EXPECT_NE(art.find("nan"), std::string::npos);
  const std::string js = h.json();
  EXPECT_NE(js.find("\"underflow\":1"), std::string::npos);
  EXPECT_NE(js.find("\"overflow\":1"), std::string::npos);
  EXPECT_NE(js.find("\"nonfinite\":1"), std::string::npos);
  EXPECT_NE(js.find("\"bins\":["), std::string::npos);
}

TEST(WilsonCensoredTest, TreatAsFailKeepsCensoredInDenominator) {
  // 60 passes, 100 trials of which 20 censored: kTreatAsFail divides by
  // 100 (censored count as fails), kExclude by 80.
  const ProportionInterval fail =
      wilson_interval(60, 100, 20, CensoredPolicy::kTreatAsFail);
  const ProportionInterval excl =
      wilson_interval(60, 100, 20, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(fail.estimate, 0.6);
  EXPECT_DOUBLE_EQ(excl.estimate, 0.75);
  EXPECT_LT(fail.hi, excl.hi);
  // No censoring: both policies reduce to the plain interval.
  const ProportionInterval plain = wilson_interval(60, 100);
  const ProportionInterval none =
      wilson_interval(60, 100, 0, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(none.lo, plain.lo);
  EXPECT_DOUBLE_EQ(none.hi, plain.hi);
}

TEST(WilsonCensoredTest, RejectsImpossibleCounts) {
  EXPECT_THROW(wilson_interval(10, 20, 21, CensoredPolicy::kTreatAsFail),
               Error);
  EXPECT_THROW(wilson_interval(15, 20, 10, CensoredPolicy::kTreatAsFail),
               Error);  // successes > uncensored trials
  EXPECT_THROW(wilson_interval(0, 20, 20, CensoredPolicy::kExclude),
               Error);  // everything censored: no denominator left
}

TEST(WilsonCensoredTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(CensoredPolicy::kTreatAsFail), "treat-as-fail");
  EXPECT_STREQ(to_string(CensoredPolicy::kExclude), "exclude");
}

// ---------------------------------------------------------------------------
// NaN-safe quantiles (regression: NaN entries used to enter std::sort,
// which is undefined behavior — NaN breaks strict weak ordering).

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(QuantileTest, NanEntriesArePartitionedOutNotSorted) {
  std::vector<double> v{kNan, 5.0, 1.0, kNan, 3.0, 2.0, 4.0, kNan};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, AllNanThrows) {
  EXPECT_THROW(quantile({kNan, kNan}, 0.5), Error);
  EXPECT_THROW(median({kNan}), Error);
}

TEST(QuantileTest, InfinitiesAreLegitimateSortableValues) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> v{-inf, 0.0, inf};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), inf);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -inf);
}

TEST(CensoredQuantileTest, ExcludeReportsTheCensoredCount) {
  const auto q =
      quantile_censored({kNan, 1.0, 2.0, 3.0, kNan}, 0.5,
                        CensoredPolicy::kExclude);
  ASSERT_TRUE(q.value.has_value());
  EXPECT_DOUBLE_EQ(*q.value, 2.0);
  EXPECT_EQ(q.used, 3u);
  EXPECT_EQ(q.censored, 2u);
}

TEST(CensoredQuantileTest, TreatAsFailPlacesNanAtTheFailingExtreme) {
  // Order statistics under kTreatAsFail: [1, 2, 3, +censored, +censored].
  const std::vector<double> v{kNan, 1.0, 2.0, 3.0, kNan};
  const auto mid =
      quantile_censored(v, 0.5, CensoredPolicy::kTreatAsFail);
  ASSERT_TRUE(mid.value.has_value());
  EXPECT_DOUBLE_EQ(*mid.value, 3.0);  // h = 0.5 * 4 lands on the 3rd stat
  // p = 0.9 lands inside the censored tail: no finite value to report.
  const auto tail =
      quantile_censored(v, 0.9, CensoredPolicy::kTreatAsFail);
  EXPECT_FALSE(tail.value.has_value());
  EXPECT_EQ(tail.used, 3u);
  EXPECT_EQ(tail.censored, 2u);
}

TEST(CensoredQuantileTest, NeverThrowsOnDegenerateInput) {
  EXPECT_FALSE(quantile_censored({}, 0.5).value.has_value());
  const auto all_nan = quantile_censored({kNan, kNan}, 0.5);
  EXPECT_FALSE(all_nan.value.has_value());
  EXPECT_EQ(all_nan.censored, 2u);
  EXPECT_FALSE(quantile_censored({1.0}, -0.1).value.has_value());
  EXPECT_FALSE(quantile_censored({1.0}, 1.1).value.has_value());
}

TEST(RunningStatsTest, NonFiniteInputsAreCountedNotAccumulated) {
  RunningStats s;
  s.add(1.0);
  s.add(kNan);
  s.add(std::numeric_limits<double>::infinity());
  s.add(2.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.nonfinite(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);

  RunningStats other;
  other.add(kNan);
  s.merge(other);
  EXPECT_EQ(s.nonfinite(), 3u);
  EXPECT_EQ(s.count(), 2u);
}

// ---------------------------------------------------------------------------
// Weibull MLE (regression: r_squared was fabricated as 1.0, and the
// undamped Newton iteration overshot to negative shape on skewed samples).

TEST(WeibullFitTest, MleReportsRealGoodnessOfFit) {
  Xoshiro256 rng(17);
  const WeibullDistribution w(2.0, 5.0);
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_mle(times);
  EXPECT_GT(est.r_squared, 0.9);  // a real fit, but never fabricated...
  EXPECT_LT(est.r_squared, 1.0);  // ...perfection on a finite sample
}

TEST(WeibullFitTest, GoodnessOfFitDropsForNonWeibullData) {
  Xoshiro256 rng(19);
  const WeibullDistribution w(1.5, 2.0);
  std::vector<double> clean, bimodal;
  for (int i = 0; i < 400; ++i) {
    clean.push_back(w(rng));
    // Two tight clusters four decades apart: no Weibull line fits this.
    bimodal.push_back((i % 2 == 0 ? 1e-2 : 1e2) *
                      (1.0 + 0.01 * rng.uniform01()));
  }
  const auto good = fit_weibull_mle(clean);
  const auto bad = fit_weibull_mle(bimodal);
  EXPECT_LT(bad.r_squared, good.r_squared);
  EXPECT_LT(bad.r_squared, 0.9);
}

TEST(WeibullFitTest, DegenerateSampleThrowsInsteadOfDiverging) {
  EXPECT_THROW(fit_weibull_mle({3.0, 3.0, 3.0, 3.0}), ConvergenceError);
}

TEST(WeibullFitTest, SkewedSampleConvergesUnderDamping) {
  // Heavy-tailed shape 0.3 spans many decades; the undamped update used
  // to overshoot into negative k here.
  Xoshiro256 rng(23);
  const WeibullDistribution w(0.3, 1000.0);
  std::vector<double> times;
  for (int i = 0; i < 800; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_mle(times);
  EXPECT_NEAR(est.shape / 0.3, 1.0, 0.2);
  EXPECT_GT(est.scale, 0.0);
}

// ---------------------------------------------------------------------------
// Weighted (importance-sampling) estimator golden values.

TEST(WeightedSumsTest, GoldenPowerSums) {
  WeightedSums s;
  s.add(2.0, 1.0);
  s.add(1.0, 0.0);
  s.add(1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.w, 4.0);
  EXPECT_DOUBLE_EQ(s.w2, 6.0);
  EXPECT_DOUBLE_EQ(s.wx, 3.0);
  EXPECT_DOUBLE_EQ(s.w2x, 5.0);
  EXPECT_DOUBLE_EQ(s.w2x2, 5.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.75);
  EXPECT_DOUBLE_EQ(s.ess(), 16.0 / 6.0);
  // sum w_i^2 (x_i - 0.75)^2 = 4*(0.25)^2 + 1*(0.75)^2 + 1*(0.25)^2
  EXPECT_DOUBLE_EQ(s.mean_variance(), 0.875 / 16.0);
}

TEST(WeightedSumsTest, MergeEqualsCombined) {
  WeightedSums a, b, all;
  for (int i = 0; i < 40; ++i) {
    const double w = 0.5 + 0.1 * (i % 7);
    const double x = (i % 3 == 0) ? 1.0 : 0.0;
    all.add(w, x);
    (i % 2 == 0 ? a : b).add(w, x);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.w, all.w);
  EXPECT_DOUBLE_EQ(a.w2, all.w2);
  EXPECT_DOUBLE_EQ(a.wx, all.wx);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(WeightedSumsTest, RejectsBadWeights) {
  WeightedSums s;
  EXPECT_THROW(s.add(-1.0, 0.0), Error);
  EXPECT_THROW(s.add(kNan, 0.0), Error);
}

TEST(SelfNormalizedIntervalTest, GoldenInterval) {
  WeightedSums s;
  s.add(2.0, 1.0);
  s.add(1.0, 0.0);
  s.add(1.0, 1.0);
  const auto iv = self_normalized_interval(s);
  EXPECT_DOUBLE_EQ(iv.estimate, 0.75);
  const double half = 1.959963984540054 * std::sqrt(0.875 / 16.0);
  EXPECT_NEAR(iv.lo, std::max(0.0, 0.75 - half), 1e-12);
  EXPECT_NEAR(iv.hi, std::min(1.0, 0.75 + half), 1e-12);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
}

TEST(PostStratifiedTest, GoldenTwoStrata) {
  // W = {0.9, 0.1}, p-hat = {0.9, 0.5}: estimate 0.86, variance
  // 0.81*0.09/100 + 0.01*0.25/100 = 7.54e-4.
  const std::vector<StratumCount> strata{{0.9, 90, 100, 0},
                                         {0.1, 50, 100, 0}};
  const auto iv =
      post_stratified_interval(strata, CensoredPolicy::kTreatAsFail);
  EXPECT_DOUBLE_EQ(iv.estimate, 0.86);
  const double half = 1.959963984540054 * std::sqrt(7.54e-4);
  EXPECT_NEAR(iv.hi - iv.lo, 2.0 * half, 1e-12);
}

TEST(PostStratifiedTest, CensoringFollowsPolicy) {
  // 10 of stratum 0's 100 draws are censored: kTreatAsFail keeps them in
  // the denominator (p-hat 0.8), kExclude drops them (p-hat 80/90).
  const std::vector<StratumCount> strata{{0.5, 80, 100, 10},
                                         {0.5, 50, 100, 0}};
  const auto fail =
      post_stratified_interval(strata, CensoredPolicy::kTreatAsFail);
  const auto excl =
      post_stratified_interval(strata, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(fail.estimate, 0.5 * 0.8 + 0.25);
  EXPECT_DOUBLE_EQ(excl.estimate, 0.5 * (80.0 / 90.0) + 0.25);
}

TEST(WeightedSumsTest, LogSpaceAgreesWithRawWeightsInRange) {
  // For weights inside double range the two entry points are the same
  // estimator; ratios agree to rounding even though add_log may rescale.
  WeightedSums raw, logged;
  for (int i = 0; i < 50; ++i) {
    const double w = std::exp(0.3 * (i % 11) - 1.5);
    const double x = (i % 4 == 0) ? 1.0 : 0.0;
    raw.add(w, x);
    logged.add_log(std::log(w), x);
  }
  EXPECT_EQ(raw.count, logged.count);
  EXPECT_NEAR(logged.mean(), raw.mean(), 1e-12);
  EXPECT_NEAR(logged.ess() / raw.ess(), 1.0, 1e-12);
  EXPECT_NEAR(logged.mean_variance() / raw.mean_variance(), 1.0, 1e-12);
  EXPECT_NEAR(logged.mean_unnormalized() / raw.mean_unnormalized(), 1.0,
              1e-12);
  EXPECT_NEAR(logged.mean_unnormalized_variance() /
                  raw.mean_unnormalized_variance(),
              1.0, 1e-12);
}

TEST(WeightedSumsTest, LogSpaceSurvivesWeightsFarBelowDoubleRange) {
  // log w ~ -900: exp(w) == 0.0 in double, so raw accumulation collapses
  // to zero total weight and zero ESS. The log path must keep the ratio
  // estimators alive.
  WeightedSums s;
  s.add_log(-900.0, 1.0);
  s.add_log(-901.0, 0.0);
  s.add_log(-899.5, 1.0);
  s.add_log(-902.0, 0.0);
  EXPECT_GT(s.w, 0.0);
  EXPECT_DOUBLE_EQ(s.log_scale, -899.5);
  EXPECT_GT(s.ess(), 1.0);
  EXPECT_GT(s.mean(), 0.0);
  EXPECT_LT(s.mean(), 1.0);
  EXPECT_TRUE(std::isfinite(s.mean_variance()));
  // The unnormalized estimate's true value (~e-390) is below double
  // range; a hard 0 is the defined answer, not NaN.
  EXPECT_EQ(s.mean_unnormalized(), 0.0);
}

TEST(WeightedSumsTest, ZeroWeightSamplesCountWithoutMass) {
  WeightedSums s;
  s.add_log(-std::numeric_limits<double>::infinity(), 1.0);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.w, 0.0);
  s.add_log(0.0, 1.0);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.w, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_THROW(s.add_log(std::numeric_limits<double>::quiet_NaN(), 0.0),
               Error);
  EXPECT_THROW(s.add_log(std::numeric_limits<double>::infinity(), 0.0),
               Error);
}

TEST(WeightedSumsTest, MergeAcrossDifferentScales) {
  WeightedSums lo, hi, all;
  lo.add_log(-800.0, 1.0);
  lo.add_log(-801.0, 0.0);
  hi.add_log(-700.0, 1.0);
  hi.add_log(-702.0, 1.0);
  all.add_log(-800.0, 1.0);
  all.add_log(-801.0, 0.0);
  all.add_log(-700.0, 1.0);
  all.add_log(-702.0, 1.0);
  lo.merge(hi);
  EXPECT_EQ(lo.count, all.count);
  EXPECT_DOUBLE_EQ(lo.log_scale, -700.0);
  EXPECT_NEAR(lo.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(lo.ess() / all.ess(), 1.0, 1e-12);
}

TEST(SelfNormalizedIntervalTest, EmptyAndZeroWeightBatchesAreVacuous) {
  // Degenerate batches used to hit a divide-by-zero REQUIRE; the defined
  // answer is the vacuous [0, 1] interval.
  const WeightedSums empty;
  const auto iv_empty = self_normalized_interval(empty);
  EXPECT_DOUBLE_EQ(iv_empty.estimate, 0.0);
  EXPECT_DOUBLE_EQ(iv_empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv_empty.hi, 1.0);

  WeightedSums zeros;
  for (int i = 0; i < 5; ++i) {
    zeros.add_log(-std::numeric_limits<double>::infinity(), 1.0);
  }
  const auto iv_zero = self_normalized_interval(zeros);
  EXPECT_DOUBLE_EQ(iv_zero.estimate, 0.0);
  EXPECT_DOUBLE_EQ(iv_zero.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv_zero.hi, 1.0);

  const auto iv_unnorm = unnormalized_interval(empty);
  EXPECT_DOUBLE_EQ(iv_unnorm.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv_unnorm.hi, 1.0);
}

TEST(PostStratifiedTest, EmptyStratumWidensInsteadOfThrowing) {
  // Stratum 1 has no samples: its unknown p contributes weight/2 to the
  // estimate and its full mass to the interval width.
  const std::vector<StratumCount> strata{{0.9, 90, 100, 0}, {0.1, 0, 0, 0}};
  const auto iv =
      post_stratified_interval(strata, CensoredPolicy::kTreatAsFail);
  EXPECT_DOUBLE_EQ(iv.estimate, 0.9 * 0.9 + 0.5 * 0.1);
  const double known_half = 1.959963984540054 * std::sqrt(0.81 * 0.09 / 100.0);
  EXPECT_NEAR(iv.hi - iv.lo, 2.0 * (known_half + 0.05), 1e-12);

  // A stratum whose samples are all censored under kExclude degenerates
  // the same way.
  const std::vector<StratumCount> censored{{0.5, 40, 50, 0},
                                           {0.5, 0, 10, 10}};
  const auto iv_ex =
      post_stratified_interval(censored, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(iv_ex.estimate, 0.5 * 0.8 + 0.25);
  EXPECT_LT(iv_ex.lo, 0.4);
  EXPECT_GT(iv_ex.hi, 0.6);

  // All strata empty: a fully vacuous [0, 1] answer centred at 1/2.
  const std::vector<StratumCount> none{{0.5, 0, 0, 0}, {0.5, 0, 0, 0}};
  const auto iv_none =
      post_stratified_interval(none, CensoredPolicy::kTreatAsFail);
  EXPECT_DOUBLE_EQ(iv_none.estimate, 0.5);
  EXPECT_DOUBLE_EQ(iv_none.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv_none.hi, 1.0);
}

TEST(NormalQuantileTest, RoundTripsTheCdf) {
  EXPECT_DOUBLE_EQ(normal_quantile(0.5), 0.0);
  for (double p : {1e-6, 1e-4, 1e-3, 0.025, 0.31, 0.5, 0.69, 0.975,
                   1.0 - 1e-4}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8 * p + 1e-12)
        << "p=" << p;
  }
  EXPECT_NEAR(normal_quantile(1.0 - 1e-3), 3.0902323061678132, 1e-7);
  EXPECT_THROW(normal_quantile(0.0), Error);
  EXPECT_THROW(normal_quantile(1.0), Error);
}

}  // namespace
}  // namespace relsim
