#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.h"
#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "stats/weibull_fit.h"
#include "util/error.h"

namespace relsim {
namespace {

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), Error);
  s.add(1.0);
  EXPECT_THROW(s.variance(), Error);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(WilsonTest, ContainsPointEstimate) {
  const auto i = wilson_interval(90, 100);
  EXPECT_DOUBLE_EQ(i.estimate, 0.9);
  EXPECT_LT(i.lo, 0.9);
  EXPECT_GT(i.hi, 0.9);
  EXPECT_GT(i.lo, 0.8);
  EXPECT_LT(i.hi, 0.96);
}

TEST(WilsonTest, DegenerateEndpointsStayInUnitInterval) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_interval(50, 50);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{1, 3, 5, 7, 9};
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  Xoshiro256 rng(5);
  NormalDistribution noise(0.0, 0.1);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.05);
    y.push_back(4.0 - 1.5 * x.back() + noise(rng));
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, -1.5, 0.05);
  EXPECT_NEAR(fit.intercept, 4.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitPowerLawTest, RecoversExponent) {
  std::vector<double> x, y;
  for (double v = 1.0; v <= 100.0; v *= 1.5) {
    x.push_back(v);
    y.push_back(2.5 * std::pow(v, 0.25));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 0.25, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 2.5, 1e-9);
}

TEST(WeibullFitTest, RankRegressionRecoversParameters) {
  Xoshiro256 rng(11);
  const WeibullDistribution w(2.0, 5.0);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_rank_regression(times);
  EXPECT_NEAR(est.shape, 2.0, 0.15);
  EXPECT_NEAR(est.scale, 5.0, 0.2);
  EXPECT_GT(est.r_squared, 0.97);
}

TEST(WeibullFitTest, MleRecoversParameters) {
  Xoshiro256 rng(13);
  const WeibullDistribution w(1.4, 3.0);
  std::vector<double> times;
  for (int i = 0; i < 3000; ++i) times.push_back(w(rng));
  const auto est = fit_weibull_mle(times);
  EXPECT_NEAR(est.shape, 1.4, 0.08);
  EXPECT_NEAR(est.scale, 3.0, 0.12);
}

// Property sweep: both estimators recover shape/scale over a grid of true
// parameters (the TDDB bench depends on this inversion being unbiased).
class WeibullRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullRecovery, BothEstimatorsRecover) {
  const auto [shape, scale] = GetParam();
  Xoshiro256 rng(derive_seed(1234, {static_cast<std::uint64_t>(shape * 100),
                                    static_cast<std::uint64_t>(scale * 100)}));
  const WeibullDistribution w(shape, scale);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) times.push_back(w(rng));
  const auto rr = fit_weibull_rank_regression(times);
  const auto mle = fit_weibull_mle(times);
  EXPECT_NEAR(rr.shape / shape, 1.0, 0.08);
  EXPECT_NEAR(rr.scale / scale, 1.0, 0.05);
  EXPECT_NEAR(mle.shape / shape, 1.0, 0.06);
  EXPECT_NEAR(mle.scale / scale, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeScaleGrid, WeibullRecovery,
    ::testing::Values(std::pair{0.8, 1.0}, std::pair{1.0, 10.0},
                      std::pair{1.5, 100.0}, std::pair{2.5, 3.0},
                      std::pair{4.0, 50.0}));

TEST(WeibullPlotTest, MedianRanksMonotone) {
  const auto pts = weibull_plot({3.0, 1.0, 2.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].median_rank, pts[1].median_rank);
  EXPECT_LT(pts[1].median_rank, pts[2].median_rank);
  EXPECT_DOUBLE_EQ(pts[0].time, 1.0);
  EXPECT_NEAR(pts[0].median_rank, 0.7 / 3.4, 1e-12);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, DensitySumsToOneWithoutOverflow) {
  Histogram h(0.0, 1.0, 4);
  for (double x = 0.05; x < 1.0; x += 0.1) h.add(x);
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.density(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WilsonCensoredTest, TreatAsFailKeepsCensoredInDenominator) {
  // 60 passes, 100 trials of which 20 censored: kTreatAsFail divides by
  // 100 (censored count as fails), kExclude by 80.
  const ProportionInterval fail =
      wilson_interval(60, 100, 20, CensoredPolicy::kTreatAsFail);
  const ProportionInterval excl =
      wilson_interval(60, 100, 20, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(fail.estimate, 0.6);
  EXPECT_DOUBLE_EQ(excl.estimate, 0.75);
  EXPECT_LT(fail.hi, excl.hi);
  // No censoring: both policies reduce to the plain interval.
  const ProportionInterval plain = wilson_interval(60, 100);
  const ProportionInterval none =
      wilson_interval(60, 100, 0, CensoredPolicy::kExclude);
  EXPECT_DOUBLE_EQ(none.lo, plain.lo);
  EXPECT_DOUBLE_EQ(none.hi, plain.hi);
}

TEST(WilsonCensoredTest, RejectsImpossibleCounts) {
  EXPECT_THROW(wilson_interval(10, 20, 21, CensoredPolicy::kTreatAsFail),
               Error);
  EXPECT_THROW(wilson_interval(15, 20, 10, CensoredPolicy::kTreatAsFail),
               Error);  // successes > uncensored trials
  EXPECT_THROW(wilson_interval(0, 20, 20, CensoredPolicy::kExclude),
               Error);  // everything censored: no denominator left
}

TEST(WilsonCensoredTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(CensoredPolicy::kTreatAsFail), "treat-as-fail");
  EXPECT_STREQ(to_string(CensoredPolicy::kExclude), "exclude");
}

}  // namespace
}  // namespace relsim
