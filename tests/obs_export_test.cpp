// Exporter-layer tests for relsim::obs — the shared histogram_quantile
// math, the Prometheus text exposition renderer (validated line by line
// against the 0.0.4 format rules), and the rotating JSONL event log.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace relsim {
namespace {

// --- histogram_quantile ------------------------------------------------------

TEST(HistogramQuantileTest, EmptySnapshotIsZero) {
  obs::Histogram h;
  EXPECT_EQ(obs::histogram_quantile(h.snapshot(), 0.5), 0.0);
}

TEST(HistogramQuantileTest, SingleValueCollapsesToIt) {
  obs::Histogram h;
  h.observe(3.25);
  const obs::Histogram::Snapshot s = h.snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(s, q), 3.25) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, ClampedToObservedExtremesAndMonotone) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const obs::Histogram::Snapshot s = h.snapshot();

  EXPECT_EQ(obs::histogram_quantile(s, 0.0), 1.0);    // exact min
  EXPECT_EQ(obs::histogram_quantile(s, 1.0), 1000.0);  // exact max
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = obs::histogram_quantile(s, q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    EXPECT_GE(v, s.min);
    EXPECT_LE(v, s.max);
    prev = v;
  }
  // The median of 1..1000 must land in the right power-of-two bucket
  // ([256, 512)) — geometric interpolation cannot wander off by a bucket.
  const double p50 = obs::histogram_quantile(s, 0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 512.0);
}

TEST(HistogramQuantileTest, OutOfRangeQuantilesClamp) {
  obs::Histogram h;
  h.observe(1.0);
  h.observe(2.0);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(obs::histogram_quantile(s, -0.5), s.min);
  EXPECT_EQ(obs::histogram_quantile(s, 7.0), s.max);
}

// --- prometheus_name ---------------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("service.job_seconds"),
            "relsim_service_job_seconds");
  EXPECT_EQ(obs::prometheus_name("mc.samples"), "relsim_mc_samples");
  EXPECT_EQ(obs::prometheus_name("relsim_already_prefixed"),
            "relsim_already_prefixed");
  EXPECT_EQ(obs::prometheus_name("weird-name+x"), "relsim_weird_name_x");
}

// --- text exposition, validated line by line ---------------------------------

struct ExpoLine {
  std::string name;    // metric name without labels
  std::string labels;  // raw label block, "" when absent
  double value = 0.0;
};

/// Parses the rendered exposition: every line must be either a
/// "# TYPE <name> <type>" comment or "<name>[{labels}] <value>", and every
/// sample's family must have been declared by a preceding TYPE line.
void parse_exposition(const std::string& text,
                      std::map<std::string, std::string>* types,
                      std::vector<ExpoLine>* samples) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name, type;
      ls >> hash >> kw >> name >> type;
      ASSERT_EQ(hash, "#") << line;
      ASSERT_EQ(kw, "TYPE") << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      ASSERT_EQ(types->count(name), 0u) << "duplicate TYPE for " << name;
      (*types)[name] = type;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    ExpoLine s;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      s.labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    s.name = name;
    if (value == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else {
      s.value = std::stod(value);
    }
    // Family lookup: histogram samples carry _bucket/_sum/_count suffixes.
    std::string fam = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string suf(suffix);
      if (fam.size() > suf.size() &&
          fam.compare(fam.size() - suf.size(), suf.size(), suf) == 0 &&
          types->count(fam.substr(0, fam.size() - suf.size())) > 0) {
        fam = fam.substr(0, fam.size() - suf.size());
        break;
      }
    }
    ASSERT_EQ(types->count(fam), 1u)
        << "sample " << line << " has no TYPE declaration";
    samples->push_back(std::move(s));
  }
}

TEST(PrometheusTest, RendersValidExpositionForFreshRegistry) {
  obs::MetricsRegistry reg;
  reg.counter("service.jobs_submitted").inc(42);
  reg.gauge("service.queue_depth").set(3.0);
  obs::Histogram& h = reg.histogram("service.job_seconds");
  for (int i = 0; i < 100; ++i) h.observe(0.001 * (i + 1));

  const std::string text = obs::to_prometheus_text(reg.snapshot());
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  std::map<std::string, std::string> types;
  std::vector<ExpoLine> samples;
  parse_exposition(text, &types, &samples);
  if (HasFatalFailure()) return;

  EXPECT_EQ(types.at("relsim_service_jobs_submitted"), "counter");
  EXPECT_EQ(types.at("relsim_service_queue_depth"), "gauge");
  EXPECT_EQ(types.at("relsim_service_job_seconds"), "histogram");

  double counter_v = -1.0, gauge_v = -1.0, count_v = -1.0, sum_v = -1.0;
  double p50 = -1, p90 = -1, p99 = -1, min_v = -1, max_v = -1;
  double prev_bucket = -1.0;
  double prev_le = 0.0;
  bool saw_inf_bucket = false;
  for (const ExpoLine& s : samples) {
    if (s.name == "relsim_service_jobs_submitted") counter_v = s.value;
    if (s.name == "relsim_service_queue_depth") gauge_v = s.value;
    if (s.name == "relsim_service_job_seconds_count") count_v = s.value;
    if (s.name == "relsim_service_job_seconds_sum") sum_v = s.value;
    if (s.name == "relsim_service_job_seconds_p50") p50 = s.value;
    if (s.name == "relsim_service_job_seconds_p90") p90 = s.value;
    if (s.name == "relsim_service_job_seconds_p99") p99 = s.value;
    if (s.name == "relsim_service_job_seconds_min") min_v = s.value;
    if (s.name == "relsim_service_job_seconds_max") max_v = s.value;
    if (s.name == "relsim_service_job_seconds_bucket") {
      // Bucket boundaries ascend and counts are cumulative.
      ASSERT_EQ(s.labels.rfind("le=\"", 0), 0u) << s.labels;
      const std::string le = s.labels.substr(4, s.labels.size() - 5);
      if (le == "+Inf") {
        saw_inf_bucket = true;
        EXPECT_EQ(s.value, 100.0);
      } else {
        const double edge = std::stod(le);
        EXPECT_GT(edge, prev_le);
        prev_le = edge;
        EXPECT_GE(s.value, prev_bucket);
        prev_bucket = s.value;
      }
    }
  }
  EXPECT_EQ(counter_v, 42.0);
  EXPECT_EQ(gauge_v, 3.0);
  EXPECT_EQ(count_v, 100.0);
  EXPECT_TRUE(saw_inf_bucket);
  EXPECT_GT(sum_v, 0.0);
  // Derived quantiles: ordered, clamped to the exact extremes.
  EXPECT_EQ(min_v, 0.001);
  EXPECT_EQ(max_v, 0.1);
  EXPECT_LE(min_v, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, max_v);
}

TEST(PrometheusTest, ExporterMatchesFreeFunction) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(7);
  reg.histogram("a.hist").observe(1.5);
  const obs::MetricsExporter exporter(reg);
  EXPECT_EQ(exporter.render(), obs::to_prometheus_text(reg.snapshot()));
}

TEST(PrometheusTest, EmptyHistogramRendersZeroes) {
  obs::MetricsRegistry reg;
  reg.histogram("quiet.hist");
  const std::string text = obs::to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("relsim_quiet_hist_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("relsim_quiet_hist_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("relsim_quiet_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

// --- rotating event log ------------------------------------------------------

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

class ScratchLog {
 public:
  explicit ScratchLog(const std::string& name)
      : path_(::testing::TempDir() + name) {
    cleanup();
  }
  ~ScratchLog() { cleanup(); }
  const std::string& path() const { return path_; }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    for (int i = 1; i <= 8; ++i) {
      std::remove((path_ + "." + std::to_string(i)).c_str());
    }
  }
  std::string path_;
};

TEST(EventLogTest, AppendsAndRotatesLikeLogrotate) {
  ScratchLog scratch("relsim_event_log_test.jsonl");
  const std::string line(39, 'x');  // 40 bytes per append with the '\n'

  obs::EventLog log(scratch.path(), /*max_bytes=*/100, /*keep=*/2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.append(line)) << "append " << i;
  }
  // Two 40-byte lines fit under the 100-byte cap; the third forces a
  // rotation — 10 appends -> 4 rotations, 2 lines per retired file.
  EXPECT_EQ(log.rotations(), 4u);
  EXPECT_EQ(count_lines(scratch.path()), 2u);
  EXPECT_EQ(count_lines(scratch.path() + ".1"), 2u);
  EXPECT_EQ(count_lines(scratch.path() + ".2"), 2u);
  // keep=2: nothing survives past path.2.
  EXPECT_FALSE(file_exists(scratch.path() + ".3"));
}

TEST(EventLogTest, ExistingBytesCountAgainstTheCap) {
  ScratchLog scratch("relsim_event_log_preload.jsonl");
  {
    std::ofstream seed(scratch.path());
    seed << std::string(90, 'y') << "\n";
  }
  obs::EventLog log(scratch.path(), /*max_bytes=*/100, /*keep=*/1);
  EXPECT_TRUE(log.append("{\"event\":\"x\"}"));
  EXPECT_EQ(log.rotations(), 1u);  // the preloaded 91 bytes forced it
  EXPECT_EQ(count_lines(scratch.path()), 1u);
  EXPECT_EQ(count_lines(scratch.path() + ".1"), 1u);
}

TEST(EventLogTest, FromEnvHonorsPathAndCap) {
  ScratchLog scratch("relsim_event_log_env.jsonl");
  ::setenv("RELSIM_EVENT_LOG", scratch.path().c_str(), 1);
  ::setenv("RELSIM_EVENT_LOG_MAX_BYTES", "100", 1);
  std::unique_ptr<obs::EventLog> log = obs::event_log_from_env();
  ::unsetenv("RELSIM_EVENT_LOG");
  ::unsetenv("RELSIM_EVENT_LOG_MAX_BYTES");
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->path(), scratch.path());
  const std::string line(60, 'z');
  EXPECT_TRUE(log->append(line));
  EXPECT_TRUE(log->append(line));
  EXPECT_EQ(log->rotations(), 1u);  // the 100-byte env cap took effect

  EXPECT_EQ(obs::event_log_from_env(), nullptr);  // unset -> disabled
}

}  // namespace
}  // namespace relsim
