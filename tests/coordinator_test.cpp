// Distributed shard coordinator contracts (service/coordinator.h), run
// against real in-process relsimd servers on temp Unix sockets:
//  * {1 process} and {N workers × shards} produce the same values CRC;
//  * a worker lost mid-shard is detected, the shard re-issued from its
//    last partial checkpoint, and the result stays bit-identical;
//  * losing every worker degrades to the in-process assembly run;
//  * a silent worker exhausts its lease and the run still completes.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/coordinator.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/error.h"

namespace relsim::service {
namespace {

constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

JobSpec divider_spec(std::size_t n) {
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = kDivider;
  spec.constraints.push_back({"d", 0.55, 0.75});
  spec.seed = 99;
  spec.n = n;
  spec.keep_values = true;
  return spec;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// A small fleet of in-process daemons, one Unix socket each.
class WorkerFleet {
 public:
  explicit WorkerFleet(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      ServerOptions options;
      options.socket_path = ::testing::TempDir() + "relsim_coord_w" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(i) + ".sock";
      options.executors = 2;
      options.worker_name = "w" + std::to_string(i);
      servers_.push_back(std::make_unique<Server>(std::move(options)));
      servers_.back()->start();
      WorkerEndpoint ep;
      ep.socket_path = servers_.back()->options().socket_path;
      ep.name = "w" + std::to_string(i);
      endpoints_.push_back(ep);
    }
  }
  ~WorkerFleet() {
    for (auto& s : servers_) s->stop();
  }

  const std::vector<WorkerEndpoint>& endpoints() const { return endpoints_; }
  Server& server(std::size_t i) { return *servers_[i]; }

 private:
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<WorkerEndpoint> endpoints_;
};

std::string scratch_dir(const char* tag) {
  return ::testing::TempDir() + "relsim_coord_" + tag + "_" +
         std::to_string(::getpid());
}

CoordinatorOptions base_options(const WorkerFleet& fleet, const char* tag) {
  CoordinatorOptions options;
  options.workers = fleet.endpoints();
  options.checkpoint_dir = scratch_dir(tag);
  ::mkdir(options.checkpoint_dir.c_str(), 0755);
  options.backoff_base_ms = 10;
  options.backoff_cap_ms = 100;
  return options;
}

TEST(CoordinatorTest, ShardedRunIsBitIdenticalToSingleProcess) {
  const JobSpec spec = divider_spec(8000);
  const McResult direct = run_job(spec, nullptr);

  WorkerFleet fleet(4);
  CoordinatorOptions options = base_options(fleet, "identity");
  options.shards = 4;
  options.manifest_path = options.checkpoint_dir + "/manifest.json";
  const CoordinatorResult sharded = run_sharded(spec, options);

  EXPECT_EQ(sharded.result.completed, direct.completed);
  EXPECT_EQ(sharded.result.estimate.passed, direct.estimate.passed);
  EXPECT_EQ(values_crc32(sharded.result), values_crc32(direct));
  EXPECT_GT(values_crc32(sharded.result), 0u);
  EXPECT_EQ(sharded.reissues, 0u);
  EXPECT_EQ(sharded.shards_inprocess, 0u);
  EXPECT_EQ(sharded.merge.parts_found, 4u);
  EXPECT_EQ(sharded.merge.samples, spec.n);
  ASSERT_EQ(sharded.shards.size(), 4u);
  for (const ShardOutcome& s : sharded.shards) {
    EXPECT_TRUE(s.completed) << "shard " << s.index;
    EXPECT_EQ(s.attempts, 1u);
  }
  EXPECT_TRUE(file_exists(options.manifest_path));
}

TEST(CoordinatorTest, DifferentWorkerAndThreadSplitsAgree) {
  // The headline acceptance: {1 × 8 threads} vs {4 workers × 2 threads}.
  JobSpec spec = divider_spec(6000);
  spec.threads = 8;
  const McResult one_process = run_job(spec, nullptr);

  JobSpec worker_spec = spec;
  worker_spec.threads = 2;
  WorkerFleet fleet(4);
  CoordinatorOptions options = base_options(fleet, "splits");
  options.shards = 4;
  const CoordinatorResult sharded = run_sharded(worker_spec, options);
  EXPECT_EQ(values_crc32(sharded.result), values_crc32(one_process));
}

TEST(CoordinatorTest, WorkerLostMidShardIsReissuedBitIdentically) {
  // Slow enough that stopping a worker lands mid-shard: per-sample mode
  // re-parses the netlist for every sample.
  JobSpec spec = divider_spec(30000);
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 2;
  spec.checkpoint_every = 512;
  const McResult direct = run_job(spec, nullptr);

  WorkerFleet fleet(3);
  CoordinatorOptions options = base_options(fleet, "lost");
  options.shards = 3;
  options.lease_seconds = 20.0;

  // Shard 1's first attempt lands on worker 1; its checkpoint appearing
  // means the attempt is mid-run — stop that worker THEN, so the kill is
  // mid-shard regardless of machine speed.
  const std::string shard1_attempt0 =
      options.checkpoint_dir + "/sharded.shard1.rsmckpt.a0";
  std::thread killer([&] {
    for (int i = 0; i < 2000 && !file_exists(shard1_attempt0); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    fleet.server(1).stop();
  });
  const CoordinatorResult sharded = run_sharded(spec, options);
  killer.join();

  EXPECT_EQ(values_crc32(sharded.result), values_crc32(direct));
  EXPECT_EQ(sharded.result.completed, spec.n);
  EXPECT_GE(sharded.reissues, 1u);
  EXPECT_EQ(sharded.shards_inprocess, 0u);
}

TEST(CoordinatorTest, TotalWorkerLossFallsBackToInProcess) {
  const JobSpec spec = divider_spec(2000);
  const McResult direct = run_job(spec, nullptr);

  WorkerEndpoint ghost;
  ghost.socket_path = ::testing::TempDir() + "relsim_coord_ghost.sock";
  CoordinatorOptions options;
  options.workers = {ghost, ghost};
  options.checkpoint_dir = scratch_dir("loss");
  ::mkdir(options.checkpoint_dir.c_str(), 0755);
  options.shards = 2;
  options.max_reissues = 1;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 10;

  const CoordinatorResult sharded = run_sharded(spec, options);
  EXPECT_EQ(sharded.shards_inprocess, 2u);
  EXPECT_GE(sharded.worker_crashes, 2u);
  EXPECT_EQ(sharded.result.completed, spec.n);
  EXPECT_EQ(values_crc32(sharded.result), values_crc32(direct));

  CoordinatorOptions abort_options = options;
  abort_options.failure_policy = ShardFailurePolicy::kAbort;
  EXPECT_THROW(run_sharded(spec, abort_options), Error);
}

TEST(CoordinatorTest, ZeroWorkersRunsEntirelyInProcess) {
  const JobSpec spec = divider_spec(1500);
  const McResult direct = run_job(spec, nullptr);
  CoordinatorOptions options;
  options.checkpoint_dir = scratch_dir("zero");
  ::mkdir(options.checkpoint_dir.c_str(), 0755);
  const CoordinatorResult sharded = run_sharded(spec, options);
  EXPECT_EQ(values_crc32(sharded.result), values_crc32(direct));
  EXPECT_TRUE(sharded.merged_checkpoint.empty());
}

TEST(CoordinatorTest, SilentWorkerExhaustsItsLeaseAndTheRunStillFinishes) {
  // progress_every = n and checkpoint_every = n mean the only event after
  // "running" would be the terminal one — a slow job therefore streams
  // NOTHING for the whole lease, which must read as a stuck worker, not a
  // healthy one. (Progress AND checkpoint events both count as
  // heartbeats; a worker emitting either is alive.)
  JobSpec spec = divider_spec(150000);
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 1;
  spec.progress_every = spec.n;
  spec.checkpoint_every = spec.n;
  const McResult direct = run_job(spec, nullptr);

  WorkerFleet fleet(1);
  CoordinatorOptions options = base_options(fleet, "lease");
  options.shards = 1;
  options.lease_seconds = 0.2;
  options.max_reissues = 0;  // straight to the in-process fallback

  const CoordinatorResult sharded = run_sharded(spec, options);
  EXPECT_GE(sharded.lease_expiries, 1u);
  EXPECT_EQ(sharded.shards_inprocess, 1u);
  EXPECT_EQ(sharded.result.completed, spec.n);
  EXPECT_EQ(values_crc32(sharded.result), values_crc32(direct));
  // The cancelled attempt's partial checkpoint must have been harvested:
  // the assembly run resumes rather than recomputing from zero.
  EXPECT_GT(sharded.result.resumed, 0u);
}

TEST(CoordinatorTest, RejectsPreShardedSpecsAndMissingCheckpointDir) {
  JobSpec windowed = divider_spec(100);
  windowed.shard_lo = 0;
  windowed.shard_hi = 50;
  CoordinatorOptions options;
  options.checkpoint_dir = scratch_dir("reject");
  ::mkdir(options.checkpoint_dir.c_str(), 0755);
  EXPECT_THROW(run_sharded(windowed, options), Error);

  CoordinatorOptions no_dir;
  EXPECT_THROW(run_sharded(divider_spec(100), no_dir), Error);
}

}  // namespace
}  // namespace relsim::service
