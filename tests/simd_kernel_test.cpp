// Batched MOSFET kernel equivalence tests.
//
// The scalar lane kernel must match Mosfet::evaluate BITWISE (both call
// simd::mos_eval_core, so any divergence means the shared core has been
// forked). The AVX2 kernel is held to a relative tolerance instead — its
// vector exp/log1p and FMA contraction legitimately differ in the last
// bits — and must be invariant to batch width so batched MC results never
// depend on how samples were grouped into vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "simd/mos_kernel.h"
#include "spice/mosfet.h"

namespace relsim {
namespace {

struct LaneData {
  std::vector<double> vd, vg, vs, vb, vt_base, beta, lambda;
  std::vector<double> id, gm, gds, gmb;

  explicit LaneData(std::size_t n)
      : vd(n), vg(n), vs(n), vb(n), vt_base(n), beta(n), lambda(n),
        id(n), gm(n), gds(n), gmb(n) {}

  std::size_t size() const { return vd.size(); }

  simd::MosLaneView view() {
    simd::MosLaneView v;
    v.vd = vd.data();
    v.vg = vg.data();
    v.vs = vs.data();
    v.vb = vb.data();
    v.vt_base = vt_base.data();
    v.beta = beta.data();
    v.lambda = lambda.data();
    v.id = id.data();
    v.gm = gm.data();
    v.gds = gds.data();
    v.gmb = gmb.data();
    return v;
  }
};

spice::MosParams device_params(bool pmos, double gamma) {
  spice::MosParams p;
  p.is_pmos = pmos;
  p.vt0 = pmos ? -0.4 : 0.4;
  p.kp = pmos ? 150e-6 : 400e-6;
  p.lambda = 0.12;
  p.gamma = gamma;
  p.phi = 0.85;
  return p;
}

/// A bias grid that exercises every branch: cutoff, triode, saturation,
/// drain/source reversal, reverse body bias, and the forward-bias clamp
/// region around vbs = 0.9*phi (where the smoothing engages).
LaneData bias_grid(const spice::Mosfet& m) {
  const double s = m.params().is_pmos ? -1.0 : 1.0;
  std::vector<double> vgs = {-0.2, 0.0, 0.3, 0.45, 0.9, 1.8};
  std::vector<double> vds = {-1.2, -0.05, 0.0, 0.02, 0.4, 1.5};
  std::vector<double> vbs = {-1.5, -0.3, 0.0, 0.36, 0.76, 0.765, 0.8, 1.2};
  LaneData lanes(vgs.size() * vds.size() * vbs.size());
  std::size_t l = 0;
  for (double g : vgs) {
    for (double d : vds) {
      for (double b : vbs) {
        lanes.vs[l] = 0.0;
        lanes.vg[l] = s * g;
        lanes.vd[l] = s * d;
        lanes.vb[l] = s * b;
        lanes.vt_base[l] = m.eval_vt_base();
        lanes.beta[l] = m.eval_beta();
        lanes.lambda[l] = m.eval_lambda();
        ++l;
      }
    }
  }
  return lanes;
}

TEST(SimdKernel, ScalarKernelBitIdenticalToMosfetEvaluate) {
  for (bool pmos : {false, true}) {
    for (double gamma : {0.0, 0.45}) {
      spice::Mosfet m("M1", 1, 2, 3, 4, device_params(pmos, gamma));
      m.set_variation({0.013, -0.021});
      spice::MosDegradation deg;
      deg.dvt = 0.024;
      deg.beta_factor = 0.93;
      deg.lambda_factor = 1.1;
      m.set_degradation(deg);

      LaneData lanes = bias_grid(m);
      simd::mos_eval_lanes_scalar(m.eval_consts(), lanes.view(), lanes.size());
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        const spice::MosOperatingPoint op =
            m.evaluate(lanes.vd[l], lanes.vg[l], lanes.vs[l], lanes.vb[l]);
        EXPECT_EQ(op.id, lanes.id[l]) << "lane " << l;
        EXPECT_EQ(op.gm, lanes.gm[l]) << "lane " << l;
        EXPECT_EQ(op.gds, lanes.gds[l]) << "lane " << l;
        EXPECT_EQ(op.gmb, lanes.gmb[l]) << "lane " << l;
      }
    }
  }
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-18});
  return std::abs(a - b) / scale;
}

TEST(SimdKernel, Avx2MatchesScalarWithinTolerance) {
  if (!simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "CPU without AVX2+FMA";
  }
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> volt(-2.0, 2.0);
  std::uniform_real_distribution<double> dvt(-0.06, 0.06);
  std::uniform_real_distribution<double> dbeta(-0.15, 0.15);

  for (bool pmos : {false, true}) {
    for (double gamma : {0.0, 0.45}) {
      spice::Mosfet m("M1", 1, 2, 3, 4, device_params(pmos, gamma));
      const std::size_t n = 4099;  // odd: forces a padded tail
      LaneData lanes(n);
      for (std::size_t l = 0; l < n; ++l) {
        lanes.vd[l] = volt(rng);
        lanes.vg[l] = volt(rng);
        lanes.vs[l] = volt(rng);
        lanes.vb[l] = volt(rng);
        lanes.vt_base[l] = m.eval_vt_base() + dvt(rng);
        lanes.beta[l] = m.eval_beta() * (1.0 + dbeta(rng));
        lanes.lambda[l] = m.eval_lambda();
      }
      LaneData ref = lanes;
      simd::mos_eval_lanes_at(simd::SimdLevel::kScalar, m.eval_consts(),
                              ref.view(), n);
      simd::mos_eval_lanes_at(simd::SimdLevel::kAvx2, m.eval_consts(),
                              lanes.view(), n);
      double worst = 0.0;
      for (std::size_t l = 0; l < n; ++l) {
        worst = std::max(worst, rel_err(ref.id[l], lanes.id[l]));
        worst = std::max(worst, rel_err(ref.gm[l], lanes.gm[l]));
        worst = std::max(worst, rel_err(ref.gds[l], lanes.gds[l]));
        worst = std::max(worst, rel_err(ref.gmb[l], lanes.gmb[l]));
      }
      EXPECT_LT(worst, 1e-12) << (pmos ? "pmos" : "nmos") << " gamma=" << gamma;
    }
  }
}

TEST(SimdKernel, Avx2ResultsIndependentOfBatchWidth) {
  if (!simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "CPU without AVX2+FMA";
  }
  spice::Mosfet m("M1", 1, 2, 3, 4, device_params(false, 0.45));
  LaneData lanes = bias_grid(m);
  LaneData whole = lanes;
  simd::mos_eval_lanes_at(simd::SimdLevel::kAvx2, m.eval_consts(),
                          whole.view(), whole.size());
  // One lane at a time: every lane goes through the padded-tail path.
  LaneData single = lanes;
  for (std::size_t l = 0; l < single.size(); ++l) {
    simd::MosLaneView v = single.view();
    v.vd += l; v.vg += l; v.vs += l; v.vb += l;
    v.vt_base += l; v.beta += l; v.lambda += l;
    v.id += l; v.gm += l; v.gds += l; v.gmb += l;
    simd::mos_eval_lanes_at(simd::SimdLevel::kAvx2, m.eval_consts(), v, 1);
  }
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    EXPECT_EQ(whole.id[l], single.id[l]) << "lane " << l;
    EXPECT_EQ(whole.gm[l], single.gm[l]) << "lane " << l;
    EXPECT_EQ(whole.gds[l], single.gds[l]) << "lane " << l;
    EXPECT_EQ(whole.gmb[l], single.gmb[l]) << "lane " << l;
  }
}

TEST(SimdKernel, ResolveSimdLevelHonorsOverrides) {
  const simd::SimdLevel best = simd::cpu_supports_avx2()
                                   ? simd::SimdLevel::kAvx2
                                   : simd::SimdLevel::kScalar;
  EXPECT_EQ(simd::resolve_simd_level("scalar"), simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::resolve_simd_level("auto"), best);
  EXPECT_EQ(simd::resolve_simd_level(nullptr), best);
  EXPECT_EQ(simd::resolve_simd_level(""), best);
  EXPECT_EQ(simd::resolve_simd_level("bogus"), best);
  if (simd::cpu_supports_avx2()) {
    EXPECT_EQ(simd::resolve_simd_level("avx2"), simd::SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(simd::resolve_simd_level("avx2"), simd::SimdLevel::kScalar);
  }
}

}  // namespace
}  // namespace relsim
