#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rng/distributions.h"
#include "rng/rng.h"

namespace relsim {
namespace {

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(XoshiroTest, Uniform01Range) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(XoshiroTest, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(XoshiroTest, UniformIndexCoversRangeWithoutBias) {
  Xoshiro256 rng(3);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7, 600);
}

TEST(DeriveSeedTest, OrderSensitiveAndStable) {
  const auto s1 = derive_seed(1, {2, 3});
  const auto s2 = derive_seed(1, {3, 2});
  const auto s3 = derive_seed(1, {2, 3});
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, s3);
}

TEST(DeriveSeedTest, ManyStreamsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(derive_seed(99, {i}));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(NormalDistTest, MomentsMatch) {
  Xoshiro256 rng(5);
  const NormalDistribution n(2.0, 3.0);
  const int count = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < count; ++i) {
    const double x = n(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / count;
  const double var = sum2 / count - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.03);
}

TEST(NormalDistTest, ZeroSigmaIsDegenerate) {
  Xoshiro256 rng(5);
  const NormalDistribution n(1.5, 0.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(n(rng), 1.5);
}

TEST(WeibullDistTest, QuantileRoundTrip) {
  const WeibullDistribution w(2.5, 7.0);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  }
}

TEST(WeibullDistTest, MedianMatchesTheory) {
  Xoshiro256 rng(17);
  const WeibullDistribution w(1.8, 4.0);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(w(rng));
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  const double med = xs[xs.size() / 2];
  EXPECT_NEAR(med, w.quantile(0.5), 0.05);
}

TEST(WeibullDistTest, ScaleIs632Percentile) {
  const WeibullDistribution w(3.0, 10.0);
  EXPECT_NEAR(w.cdf(10.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(LogNormalDistTest, MedianEqualsExpMu) {
  Xoshiro256 rng(23);
  const auto d = LogNormalDistribution::from_median(100.0, 0.5);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(d(rng));
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2] / 100.0, 1.0, 0.02);
}

TEST(ExponentialDistTest, MeanIsInverseRate) {
  Xoshiro256 rng(31);
  const ExponentialDistribution d(0.25);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d(rng);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(BernoulliDistTest, FrequencyMatchesP) {
  Xoshiro256 rng(37);
  const BernoulliDistribution d(0.3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += d(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace relsim
