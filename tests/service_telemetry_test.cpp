// Live-telemetry tests for the daemon: EventHub isolation and drop
// accounting, the subscribe streaming op (lifecycle + deterministic
// progress snapshots), metrics_text / the HTTP /metrics listener, the
// rotating event log, and the client-side wait fallback against a daemon
// that predates the subscribe op.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_value.h"
#include "service/client.h"
#include "service/event_hub.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket_io.h"
#include "service/workload.h"
#include "util/error.h"

namespace relsim::service {
namespace {

using namespace std::chrono_literals;

// --- EventHub ---------------------------------------------------------------

TEST(EventHubTest, FiltersByJobId) {
  EventHub hub(16);
  const auto all = hub.subscribe(0);
  const auto only2 = hub.subscribe(2);

  hub.publish(1, R"({"job":1})");
  hub.publish(2, R"({"job":2})");
  hub.publish(0, R"({"event":"stats"})");  // daemon-wide: unfiltered only

  std::string line;
  ASSERT_TRUE(all->next(line, 100ms));
  EXPECT_EQ(line, R"({"job":1})");
  ASSERT_TRUE(all->next(line, 100ms));
  EXPECT_EQ(line, R"({"job":2})");
  ASSERT_TRUE(all->next(line, 100ms));
  EXPECT_EQ(line, R"({"event":"stats"})");

  ASSERT_TRUE(only2->next(line, 100ms));
  EXPECT_EQ(line, R"({"job":2})");
  EXPECT_FALSE(only2->next(line, 10ms));  // nothing else matched
  hub.close();
}

TEST(EventHubTest, SlowSubscriberDropsOldestAndSurfacesTheGap) {
  EventHub hub(4);
  const auto sub = hub.subscribe(0);
  for (int i = 0; i < 10; ++i) {
    hub.publish(1, "{\"n\":" + std::to_string(i) + "}");
  }
  // 10 published into a 4-deep queue: the 6 oldest were dropped, and the
  // reader learns about the gap FIRST, as a synthesized inline record.
  std::string line;
  ASSERT_TRUE(sub->next(line, 100ms));
  const obs::JsonValue gap = obs::JsonValue::parse(line);
  EXPECT_EQ(gap.get_string("event", ""), "dropped");
  EXPECT_EQ(gap.get_u64("count", 0), 6u);
  for (int i = 6; i < 10; ++i) {
    ASSERT_TRUE(sub->next(line, 100ms)) << i;
    EXPECT_EQ(line, "{\"n\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(sub->dropped(), 6u);
  hub.close();
}

TEST(EventHubTest, CloseDrainsThenEndsTheStream) {
  EventHub hub(8);
  const auto sub = hub.subscribe(0);
  hub.publish(1, "queued-before-close");
  hub.close();

  EXPECT_FALSE(sub->closed());  // still has the queued event
  std::string line;
  ASSERT_TRUE(sub->next(line, 100ms));
  EXPECT_EQ(line, "queued-before-close");
  EXPECT_TRUE(sub->closed());
  EXPECT_FALSE(sub->next(line, 10ms));

  EXPECT_EQ(hub.subscriber_count(), 0u);       // close() dropped them
  EXPECT_TRUE(hub.subscribe(0)->closed());     // late subscribers: closed
  hub.publish(1, "after-close");               // must be a silent no-op
}

// --- daemon fixture ---------------------------------------------------------

class TelemetryFixture : public ::testing::Test {
 protected:
  void start(ServerOptions options) {
    // Unique per process: ctest runs fixture tests in parallel, and two
    // servers sharing a socket path unlink each other out from under the
    // clients.
    options.socket_path = ::testing::TempDir() + "relsim_telemetry_" +
                          std::to_string(::getpid()) + ".sock";
    options.executors = 2;
    if (options.subscriber_queue == 256) options.subscriber_queue = 4096;
    server_ = std::make_unique<Server>(std::move(options));
    server_->start();
  }
  void TearDown() override {
    if (server_) server_->stop();
  }

  Client connect() {
    return Client::connect_unix(server_->options().socket_path);
  }

  std::unique_ptr<Server> server_;
};

JobSpec synthetic_spec(std::size_t n, unsigned threads) {
  JobSpec spec;
  spec.kind = JobKind::kSynthetic;
  spec.pass_prob = 0.8;
  spec.seed = 4242;
  spec.n = n;
  spec.threads = threads;
  spec.chunk = 64;
  spec.keep_values = true;
  spec.progress_every = n / 20;  // 20 snapshots per run
  return spec;
}

/// Deterministic progress fields of one streamed snapshot (the wall-clock
/// block is explicitly outside the contract).
struct SnapshotKey {
  std::uint64_t seq, completed, passed, failed, retried;
  double yield, lo, hi, ci;

  bool operator==(const SnapshotKey&) const = default;
};

SnapshotKey key_of(const obs::JsonValue& e) {
  return {e.get_u64("seq", 9999),     e.get_u64("completed", 0),
          e.get_u64("passed", 0),     e.get_u64("failed", 0),
          e.get_u64("retried", 0),    e.get_double("yield", -1),
          e.get_double("yield_lo", -1), e.get_double("yield_hi", -1),
          e.get_double("ci_half_width", -1)};
}

/// Subscribes unfiltered BEFORE submitting (so no early events are
/// missed), submits `spec`, and collects the job's progress snapshots and
/// lifecycle states until the terminal event.
struct StreamedRun {
  std::uint64_t job_id = 0;
  std::vector<SnapshotKey> snapshots;
  std::vector<std::string> states;
  std::string final_state;
};

/// Polls the hub until `count` subscribers are attached — subscription
/// registration happens on the daemon's connection thread, so both the
/// attach and the previous subscriber's detach need an explicit rendezvous
/// before submitting (otherwise early events race the registration).
void wait_subscribers(Server& server, std::size_t count) {
  for (int i = 0; i < 5000; ++i) {
    if (server.event_hub().subscriber_count() == count) return;
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "subscriber count never reached " << count;
}

StreamedRun stream_run(Server& server, Client&& subscriber,
                       Client& submitter, const JobSpec& spec) {
  StreamedRun out;
  wait_subscribers(server, 0);
  std::thread sub_thread([&out, sub = std::move(subscriber)]() mutable {
    sub.subscribe(0, [&out](const obs::JsonValue& e) {
      const std::string event = e.get_string("event", "");
      if (event == "progress") {
        out.snapshots.push_back(key_of(e));
        return true;
      }
      if (event != "job") return true;  // stats etc.
      const std::string state = e.get_string("state", "");
      out.states.push_back(state);
      if (state == "done" || state == "failed" || state == "cancelled") {
        out.final_state = state;
        return false;
      }
      return true;
    });
  });
  wait_subscribers(server, 1);
  out.job_id = submitter.submit("tenant-t", 0, spec);
  sub_thread.join();
  EXPECT_GT(out.job_id, 0u);
  return out;
}

TEST_F(TelemetryFixture, SubscriberStreamsLifecycleAndProgressSnapshots) {
  start({});
  Client submitter = connect();
  const JobSpec spec = synthetic_spec(100000, 2);
  const StreamedRun run = stream_run(*server_, connect(), submitter, spec);

  EXPECT_EQ(run.final_state, "done");
  // Lifecycle arrives in order.
  ASSERT_GE(run.states.size(), 3u);
  EXPECT_EQ(run.states.front(), "queued");
  EXPECT_EQ(run.states[1], "running");
  EXPECT_EQ(run.states.back(), "done");
  // The acceptance bar: a healthy stream carries many snapshots.
  EXPECT_GE(run.snapshots.size(), 10u);
  for (std::size_t i = 0; i < run.snapshots.size(); ++i) {
    EXPECT_EQ(run.snapshots[i].seq, i);  // gap-free, ordered
    EXPECT_LE(run.snapshots[i].completed, spec.n);
  }

  // Streaming must not perturb the run: the daemon result is bit-identical
  // to a direct McSession run of the same spec.
  Client fetcher = connect();
  const obs::JsonValue reply = fetcher.result(run.job_id);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  const McResult direct = run_job(spec, nullptr);
  EXPECT_EQ(result->get_u64("values_crc32", 0), values_crc32(direct));
  EXPECT_GT(values_crc32(direct), 0u);
}

TEST_F(TelemetryFixture, SnapshotStreamIdenticalAcrossWorkerCounts) {
  start({});
  std::vector<std::vector<SnapshotKey>> runs;
  for (const unsigned threads : {1u, 4u, 8u}) {
    Client submitter = connect();
    const StreamedRun run = stream_run(*server_, connect(), submitter,
                                       synthetic_spec(60000, threads));
    EXPECT_EQ(run.final_state, "done") << threads;
    runs.push_back(run.snapshots);
  }
  ASSERT_GE(runs[0].size(), 5u);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size()) << "run " << r;
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_TRUE(runs[r][i] == runs[0][i])
          << "snapshot " << i << " differs between 1 worker and run " << r;
    }
  }
}

TEST_F(TelemetryFixture, MetricsTextServesPrometheusExposition) {
  start({});
  Client client = connect();
  const std::uint64_t id = client.submit("tenant-a", 0, synthetic_spec(20000, 2));
  // Scrape concurrently with the running job: the op must serve a
  // coherent snapshot regardless of executor state.
  Client scraper = connect();
  const std::string text = scraper.metrics_text();
  EXPECT_NE(text.find("# TYPE relsim_service_jobs_submitted counter"),
            std::string::npos);
  EXPECT_NE(text.find("relsim_service_jobs_submitted"), std::string::npos);
  client.wait(id);

  const std::string after = scraper.metrics_text();
  EXPECT_NE(after.find("relsim_service_job_seconds_count"),
            std::string::npos);
  EXPECT_NE(after.find("relsim_service_job_seconds_p99"), std::string::npos);
}

TEST_F(TelemetryFixture, HttpMetricsListenerServesExposition) {
  ServerOptions options;
  options.metrics_http_port = 0;  // ephemeral loopback port
  start(std::move(options));
  ASSERT_GE(server_->metrics_http_port(), 0);

  const auto get = [&](const std::string& target) {
    const int fd = connect_tcp("127.0.0.1", server_->metrics_http_port());
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    EXPECT_TRUE(write_all(fd, request));
    std::string response;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };

  const std::string ok = get("/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("relsim_service_jobs_submitted"), std::string::npos);

  EXPECT_NE(get("/nope").find("404"), std::string::npos);
}

TEST_F(TelemetryFixture, EventLogRecordsJobTransitions) {
  const std::string log_path =
      ::testing::TempDir() + "relsim_telemetry_events_" +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  ServerOptions options;
  options.event_log_path = log_path;
  start(std::move(options));

  Client client = connect();
  const std::uint64_t id = client.submit("tenant-log", 0, synthetic_spec(5000, 2));
  ASSERT_EQ(client.wait(id).get_string("state", ""), "done");
  server_->stop();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> states;
  std::string line;
  double queue_seconds = -1.0, run_seconds = -1.0;
  while (std::getline(in, line)) {
    const obs::JsonValue e = obs::JsonValue::parse(line);
    EXPECT_EQ(e.get_string("event", ""), "job");
    EXPECT_EQ(e.get_u64("job_id", 0), id);
    EXPECT_EQ(e.get_string("tenant", ""), "tenant-log");
    states.push_back(e.get_string("state", ""));
    if (states.back() == "done") {
      queue_seconds = e.get_double("queue_seconds", -1.0);
      run_seconds = e.get_double("run_seconds", -1.0);
    }
  }
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], "queued");
  EXPECT_EQ(states[1], "running");
  EXPECT_EQ(states[2], "done");
  // SLO accounting latencies ride on the terminal record.
  EXPECT_GE(queue_seconds, 0.0);
  EXPECT_GE(run_seconds, 0.0);
  std::remove(log_path.c_str());
}

TEST_F(TelemetryFixture, NonReadingSubscriberNeverBlocksJobs) {
  start({});
  // A subscriber that sends the subscribe frame and then never reads: the
  // daemon must keep executing jobs at full speed regardless.
  const int lazy = connect_unix(server_->options().socket_path);
  ASSERT_TRUE(write_all(lazy, "{\"op\":\"subscribe\"}\n"));

  Client client = connect();
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t id =
        client.submit("tenant-a", 0, synthetic_spec(20000, 2));
    EXPECT_EQ(client.wait(id).get_string("state", ""), "done");
  }
  ::close(lazy);
}

constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

TEST_F(TelemetryFixture, StatusCarriesProgressWhileRunning) {
  start({});
  Client client = connect();
  // Per-sample dc_yield re-parses the netlist for every sample — slow
  // enough that status polls reliably catch the job mid-run.
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = kDivider;
  spec.constraints.push_back({"d", 0.55, 0.75});
  spec.eval_mode = McEvalMode::kPerSample;
  spec.seed = 7;
  spec.n = 20000;
  spec.threads = 1;
  spec.progress_every = 500;
  const std::uint64_t id = client.submit("tenant-a", 0, spec);
  bool saw_progress = false;
  for (int i = 0; i < 5000 && !saw_progress; ++i) {
    const obs::JsonValue reply = client.status(id);
    const std::string state = reply.get_string("state", "");
    if (state == "done") break;
    if (state == "running") {
      if (const obs::JsonValue* p = reply.find("progress")) {
        EXPECT_GT(p->get_u64("completed", 0), 0u);
        EXPECT_EQ(p->get_u64("total", 0), spec.n);
        saw_progress = true;
      }
    }
    std::this_thread::sleep_for(1ms);
  }
  client.wait(id);
  EXPECT_TRUE(saw_progress);
}

TEST_F(TelemetryFixture, SubscribeInRequestReplyDispatcherIsRejected) {
  start({});
  // handle_frame (the socket-free dispatcher) must refuse subscribe with a
  // pointed error instead of hijacking the reply channel.
  const std::string reply = server_->handle_frame("{\"op\":\"subscribe\"}");
  const obs::JsonValue v = obs::JsonValue::parse(reply);
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_NE(v.get_string("error", "").find("streaming"), std::string::npos);
}

TEST_F(TelemetryFixture, WaitWithEventsFallsBackOnPreTelemetryDaemon) {
  ServerOptions options;
  options.enable_subscribe = false;  // emulate an old daemon
  start(std::move(options));

  // subscribe is answered with the generic unknown-op error...
  EXPECT_THROW(
      connect().subscribe(0, [](const obs::JsonValue&) { return true; }),
      Error);

  // ...and wait_with_events degrades to backoff polling transparently.
  Client client = connect();
  const std::uint64_t id = client.submit("tenant-a", 0, synthetic_spec(50000, 2));
  const obs::JsonValue reply =
      wait_with_events(id, [&] { return connect(); });
  EXPECT_EQ(reply.get_string("state", ""), "done");
  ASSERT_NE(reply.find("result"), nullptr);
}

TEST_F(TelemetryFixture, WaitWithEventsStreamsWhenAvailable) {
  start({});
  Client client = connect();
  // Big enough that the filtered subscription attaches (milliseconds)
  // well before the run ends, so live snapshots actually flow.
  const std::uint64_t id =
      client.submit("tenant-a", 0, synthetic_spec(4000000, 1));
  std::size_t events = 0;
  std::size_t progress_events = 0;
  const obs::JsonValue reply = wait_with_events(
      id, [&] { return connect(); },
      [&](const obs::JsonValue& e) {
        ++events;
        if (e.get_string("event", "") == "progress") ++progress_events;
      });
  EXPECT_EQ(reply.get_string("state", ""), "done");
  ASSERT_NE(reply.find("result"), nullptr);
  // At minimum the replay of the job's current state arrived; on any
  // normal schedule live progress snapshots did too.
  EXPECT_GE(events, 1u);
  EXPECT_GE(progress_events, 1u);
}

}  // namespace
}  // namespace relsim::service
