#include <gtest/gtest.h>

#include <cmath>

#include "spice/mosfet.h"
#include "tech/tech.h"
#include "util/error.h"

namespace relsim::spice {
namespace {

MosParams nmos_params() {
  MosParams p;
  p.is_pmos = false;
  p.w_um = 1.0;
  p.l_um = 0.1;
  p.vt0 = 0.4;
  p.kp = 400e-6;
  p.lambda = 0.1;
  p.gamma = 0.0;  // body effect off unless a test enables it
  p.phi = 0.85;
  return p;
}

MosParams pmos_params() {
  MosParams p = nmos_params();
  p.is_pmos = true;
  p.vt0 = -0.4;
  p.kp = 150e-6;
  return p;
}

TEST(MosfetModelTest, CutoffCurrentIsTiny) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const auto op = m.evaluate(/*vd*/ 1.0, /*vg*/ 0.0, /*vs*/ 0.0, /*vb*/ 0.0);
  EXPECT_GT(op.id, 0.0);  // smoothed subthreshold leaks a little
  EXPECT_LT(op.id, 1e-7);
  EXPECT_FALSE(op.reversed);
}

TEST(MosfetModelTest, SaturationMatchesSquareLaw) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const double vgs = 1.0, vds = 1.2;
  const auto op = m.evaluate(vds, vgs, 0.0, 0.0);
  ASSERT_TRUE(op.saturated);
  const double beta = 400e-6 * 10.0;
  const double vov = vgs - 0.4;  // softplus is within 1e-5 of linear here
  const double expected = 0.5 * beta * vov * vov * (1.0 + 0.1 * vds);
  EXPECT_NEAR(op.id / expected, 1.0, 1e-3);
}

TEST(MosfetModelTest, TriodeMatchesSquareLaw) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const double vgs = 1.0, vds = 0.2;
  const auto op = m.evaluate(vds, vgs, 0.0, 0.0);
  ASSERT_FALSE(op.saturated);
  const double beta = 400e-6 * 10.0;
  const double vov = vgs - 0.4;
  const double expected =
      beta * (vov * vds - 0.5 * vds * vds) * (1.0 + 0.1 * vds);
  EXPECT_NEAR(op.id / expected, 1.0, 1e-3);
}

TEST(MosfetModelTest, CurrentIsOddInVds) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  // Physical drain/source symmetry: I(vd, vg, vs) = -I(vs, vg, vd) with the
  // gate and bulk held fixed.
  const auto fwd = m.evaluate(0.3, 1.0, 0.0, 0.0);
  const auto rev = m.evaluate(0.0, 1.0, 0.3, 0.0);
  EXPECT_TRUE(rev.reversed);
  EXPECT_NEAR(fwd.id, -rev.id, 1e-12);
}

TEST(MosfetModelTest, PmosMirrorsNmos) {
  Mosfet n("MN", 1, 2, 3, 4, nmos_params());
  MosParams pp = pmos_params();
  pp.kp = 400e-6;  // same strength for exact mirroring
  Mosfet p("MP", 1, 2, 3, 4, pp);
  const auto opn = n.evaluate(0.8, 1.0, 0.0, 0.0);
  const auto opp = p.evaluate(-0.8, -1.0, 0.0, 0.0);
  EXPECT_NEAR(opn.id, -opp.id, 1e-12);
}

TEST(MosfetModelTest, BodyEffectRaisesThreshold) {
  MosParams p = nmos_params();
  p.gamma = 0.4;
  Mosfet m("M1", 1, 2, 3, 4, p);
  // Reverse body bias (vb < vs) must reduce the current.
  const auto base = m.evaluate(1.0, 0.8, 0.0, 0.0);
  const auto rbb = m.evaluate(1.0, 0.8, 0.0, -0.5);
  EXPECT_LT(rbb.id, base.id);
  EXPECT_GT(rbb.vt_eff, base.vt_eff);
}

TEST(MosfetModelTest, GmbPositiveWithBodyEffect) {
  MosParams p = nmos_params();
  p.gamma = 0.4;
  Mosfet m("M1", 1, 2, 3, 4, p);
  const auto op = m.evaluate(1.0, 0.8, 0.0, -0.3);
  EXPECT_GT(op.gmb, 0.0);
  EXPECT_LT(op.gmb, op.gm);
}

// Derivative verification across a grid of operating points, both types.
struct OpCase {
  bool pmos;
  double vd, vg, vs, vb;
};
class MosDerivatives : public ::testing::TestWithParam<OpCase> {};

TEST_P(MosDerivatives, MatchFiniteDifferences) {
  const auto cse = GetParam();
  MosParams p = cse.pmos ? pmos_params() : nmos_params();
  p.gamma = 0.35;
  Mosfet m("M1", 1, 2, 3, 4, p);
  const double h = 1e-6;
  const auto op = m.evaluate(cse.vd, cse.vg, cse.vs, cse.vb);
  const double fd_gm = (m.evaluate(cse.vd, cse.vg + h, cse.vs, cse.vb).id -
                        m.evaluate(cse.vd, cse.vg - h, cse.vs, cse.vb).id) /
                       (2 * h);
  const double fd_gds = (m.evaluate(cse.vd + h, cse.vg, cse.vs, cse.vb).id -
                         m.evaluate(cse.vd - h, cse.vg, cse.vs, cse.vb).id) /
                        (2 * h);
  const double fd_gmb = (m.evaluate(cse.vd, cse.vg, cse.vs, cse.vb + h).id -
                         m.evaluate(cse.vd, cse.vg, cse.vs, cse.vb - h).id) /
                        (2 * h);
  const double scale = std::max(1e-6, std::abs(op.gm));
  EXPECT_NEAR(op.gm, fd_gm, 1e-4 * scale + 1e-9);
  EXPECT_NEAR(op.gds, fd_gds, 1e-4 * std::max(1e-6, std::abs(op.gds)) + 1e-9);
  EXPECT_NEAR(op.gmb, fd_gmb, 1e-3 * std::max(1e-6, std::abs(op.gmb)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MosDerivatives,
    ::testing::Values(OpCase{false, 1.0, 1.0, 0.0, 0.0},    // nmos sat
                      OpCase{false, 0.1, 1.0, 0.0, 0.0},    // nmos triode
                      OpCase{false, 1.0, 0.2, 0.0, 0.0},    // nmos subthreshold
                      OpCase{false, -0.4, 0.6, 0.0, 0.0},   // nmos reversed
                      OpCase{false, 1.0, 0.9, 0.3, -0.2},   // nmos body bias
                      OpCase{true, -1.0, -1.0, 0.0, 0.0},   // pmos sat
                      OpCase{true, -0.1, -1.0, 0.0, 0.0},   // pmos triode
                      OpCase{true, -1.0, -0.2, 0.0, 0.0},   // pmos subthreshold
                      OpCase{true, 0.2, -0.8, 0.0, 0.2}));  // pmos reversed

TEST(MosfetDegradationTest, VtShiftReducesCurrent) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const double fresh = m.evaluate(1.0, 0.8, 0.0, 0.0).id;
  MosDegradation d;
  d.dvt = 0.05;
  m.set_degradation(d);
  const double aged = m.evaluate(1.0, 0.8, 0.0, 0.0).id;
  EXPECT_LT(aged, fresh);
  // Square law: (0.35/0.4)^2 ~ 0.77 of fresh current.
  EXPECT_NEAR(aged / fresh, std::pow(0.35 / 0.4, 2), 0.02);
}

TEST(MosfetDegradationTest, PmosVtShiftReducesMagnitude) {
  Mosfet m("M1", 1, 2, 3, 4, pmos_params());
  const double fresh = m.evaluate(-1.0, -0.8, 0.0, 0.0).id;
  MosDegradation d;
  d.dvt = 0.05;  // NBTI makes VT more negative
  m.set_degradation(d);
  const double aged = m.evaluate(-1.0, -0.8, 0.0, 0.0).id;
  EXPECT_GT(aged, fresh);  // both negative; aged is smaller in magnitude
  EXPECT_LT(std::abs(aged), std::abs(fresh));
  EXPECT_NEAR(m.vt_effective_signed(), -0.45, 1e-12);
}

TEST(MosfetDegradationTest, BetaFactorScalesCurrent) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const double fresh = m.evaluate(1.0, 1.0, 0.0, 0.0).id;
  MosDegradation d;
  d.beta_factor = 0.9;
  m.set_degradation(d);
  EXPECT_NEAR(m.evaluate(1.0, 1.0, 0.0, 0.0).id / fresh, 0.9, 1e-6);
}

TEST(MosfetDegradationTest, LambdaFactorDegradesOutputResistance) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  const double gds_fresh = m.evaluate(1.0, 1.0, 0.0, 0.0).gds;
  MosDegradation d;
  d.lambda_factor = 2.0;
  m.set_degradation(d);
  const double gds_aged = m.evaluate(1.0, 1.0, 0.0, 0.0).gds;
  EXPECT_GT(gds_aged, 1.5 * gds_fresh);
}

TEST(MosfetDegradationTest, InvalidValuesRejected) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  MosDegradation d;
  d.dvt = -0.1;
  EXPECT_THROW(m.set_degradation(d), Error);
  d = MosDegradation{};
  d.beta_factor = 0.0;
  EXPECT_THROW(m.set_degradation(d), Error);
}

TEST(MosfetVariationTest, SignedShiftApplies) {
  Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  m.set_variation({-0.02, 0.05});
  EXPECT_NEAR(m.vt_effective_signed(), 0.38, 1e-12);
  const double i = m.evaluate(1.0, 1.0, 0.0, 0.0).id;
  Mosfet nom("M2", 1, 2, 3, 4, nmos_params());
  // Lower VT and higher beta -> more current.
  EXPECT_GT(i, nom.evaluate(1.0, 1.0, 0.0, 0.0).id);
}

TEST(MosfetTest, MakeFromTech) {
  const auto p = make_mos_params(tech_90nm(), 2.0, 0.1, false);
  EXPECT_DOUBLE_EQ(p.vt0, tech_90nm().vt0_nmos);
  EXPECT_DOUBLE_EQ(p.w_um, 2.0);
  EXPECT_NEAR(p.lambda, tech_90nm().lambda_per_um / 0.1, 1e-12);
  const auto pp = make_mos_params(tech_90nm(), 2.0, 0.1, true);
  EXPECT_LT(pp.vt0, 0.0);
}

TEST(MosfetTest, TypeParamValidation) {
  MosParams bad = nmos_params();
  bad.vt0 = -0.1;
  EXPECT_THROW(Mosfet("M1", 1, 2, 3, 4, bad), Error);
  MosParams badp = pmos_params();
  badp.vt0 = 0.1;
  EXPECT_THROW(Mosfet("M1", 1, 2, 3, 4, badp), Error);
}

}  // namespace
}  // namespace relsim::spice
