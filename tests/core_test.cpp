#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "util/error.h"

namespace relsim {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

ReliabilityConfig config_for(const TechNode& tech, int epochs = 4) {
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.years = 10.0;
  cfg.mission.epochs = epochs;
  cfg.seed = 7;
  return cfg;
}

// Current mirror whose output accuracy is the spec — the paper's running
// example of a mismatch-limited analog block.
std::unique_ptr<Circuit> mirror_factory(const TechNode& tech, double w_um,
                                        double l_um, double i_ref = 50e-6,
                                        double vb_v = -1.0) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  const NodeId meas = c->node("meas");
  const NodeId out = c->node("out");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, i_ref);
  const auto p = spice::make_mos_params(tech, w_um, l_um, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  c->add_mosfet("M2", out, ref, kGround, kGround, p);
  c->add_vsource("VB", meas, kGround, vb_v > 0.0 ? vb_v : 0.5 * tech.vdd);
  c->add_vsource("VMEAS", meas, out, 0.0);
  return c;
}

double mirror_output(Circuit& c) {
  const auto r = spice::dc_operating_point(c);
  return c.device_as<spice::VoltageSource>("VMEAS").current(r.x());
}

TEST(ReliabilitySimTest, RequiresTech) {
  ReliabilityConfig cfg;
  EXPECT_THROW(ReliabilitySimulator{cfg}, Error);
}

TEST(ReliabilitySimTest, ProcessVariationSpreadsMetric) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  const auto xs = sim.metric_distribution(
      [&] { return mirror_factory(tech, 1.0, 0.1); }, mirror_output, 200);
  RunningStats stats;
  for (double x : xs) stats.add(x);
  // The mean carries the mirror's SYSTEMATIC error (CLM: M2 sees a higher
  // V_DS than the diode device) — exactly the random/systematic error split
  // of Sec. 2. The spread on top is the random mismatch.
  EXPECT_NEAR(stats.mean(), 50e-6, 10e-6);
  EXPECT_GT(stats.stddev(), 0.5e-6);  // small devices mismatch visibly
}

TEST(ReliabilitySimTest, LargerDevicesYieldBetter) {
  // Sec. 2 / Eq. 1: accuracy improves with sqrt(area) — the overdesign
  // lever the paper says becomes too expensive.
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  // Spec relative to each geometry's NOMINAL output, so only the random
  // mismatch (not the systematic CLM error) is tested.
  auto yield_for = [&](double w, double l) {
    auto nominal_circuit = mirror_factory(tech, w, l);
    const double nominal = mirror_output(*nominal_circuit);
    auto pass = [&, nominal](Circuit& c) {
      return std::abs(mirror_output(c) / nominal - 1.0) < 0.06;
    };
    return sim.yield([&] { return mirror_factory(tech, w, l); }, pass, 200);
  };
  const auto small = yield_for(0.3, 0.06);
  const auto large = yield_for(4.0, 0.5);
  EXPECT_GT(large.yield(), small.yield() + 0.1);
  EXPECT_GT(large.yield(), 0.9);
}

TEST(ReliabilitySimTest, VariationIsDeterministicPerSeed) {
  const auto& tech = tech_65nm();
  const ReliabilitySimulator sim(config_for(tech));
  auto c1 = mirror_factory(tech, 1.0, 0.1);
  auto c2 = mirror_factory(tech, 1.0, 0.1);
  Xoshiro256 r1(42), r2(42);
  sim.apply_process_variation(*c1, r1);
  sim.apply_process_variation(*c2, r2);
  EXPECT_DOUBLE_EQ(c1->device_as<spice::Mosfet>("M1").variation().dvt,
                   c2->device_as<spice::Mosfet>("M1").variation().dvt);
  // Different devices get different draws.
  EXPECT_NE(c1->device_as<spice::Mosfet>("M1").variation().dvt,
            c1->device_as<spice::Mosfet>("M2").variation().dvt);
}

TEST(ReliabilitySimTest, AgingDegradesCircuit) {
  const auto& tech = tech_65nm();
  ReliabilityConfig cfg = config_for(tech);
  cfg.enable_tddb = false;  // deterministic drift only for this check
  const ReliabilitySimulator sim(cfg);
  auto c = mirror_factory(tech, 1.0, 0.1);
  const double fresh = mirror_output(*c);
  const auto report = sim.age(*c);
  ASSERT_EQ(report.epochs.size(), 4u);
  const double aged = mirror_output(*c);
  // NMOS mirror under DC stress: HCI+NBTI shift VT, current drops.
  EXPECT_LT(aged, fresh);
  EXPECT_GT(report.final_drift("M1").dvt, 0.0);
}

TEST(ReliabilitySimTest, LifetimeYieldBelowTimeZeroYield) {
  const auto& tech = tech_65nm();
  ReliabilityConfig cfg = config_for(tech, 2);
  cfg.enable_tddb = false;  // keep runtime small; drift is the point here
  const ReliabilitySimulator sim(cfg);
  // Short channel with the output held at a HIGHER V_DS than the diode
  // side: the output device sees strong lateral fields (HCI) that the
  // reference device does not, so the drift does NOT cancel in the mirror
  // ratio — the classic analog HCI victim.
  auto factory = [&] { return mirror_factory(tech, 2.0, 0.1, 400e-6, 0.62); };
  auto nominal_circuit = factory();
  const double nominal = mirror_output(*nominal_circuit);
  // One-sided spec: aging only ever pulls the output current down.
  auto pass = [&, nominal](Circuit& c) {
    return mirror_output(c) > 0.88 * nominal;
  };
  const auto t0 = sim.yield(factory, pass, 120);
  const auto eol = sim.lifetime_yield(factory, pass, 120);
  EXPECT_GT(t0.yield(), 0.8);
  EXPECT_LT(eol.yield(), t0.yield() - 0.15);
}

TEST(ReliabilitySimTest, ModelTogglesChangeOutcome) {
  const auto& tech = tech_65nm();
  ReliabilityConfig all = config_for(tech);
  all.enable_tddb = false;
  ReliabilityConfig none = all;
  none.enable_nbti = false;
  none.enable_hci = false;
  auto c1 = mirror_factory(tech, 1.0, 0.1);
  auto c2 = mirror_factory(tech, 1.0, 0.1);
  ReliabilitySimulator(all).age(*c1);
  ReliabilitySimulator(none).age(*c2);
  EXPECT_GT(c1->device_as<spice::Mosfet>("M1").degradation().dvt,
            c2->device_as<spice::Mosfet>("M1").degradation().dvt);
  EXPECT_DOUBLE_EQ(c2->device_as<spice::Mosfet>("M1").degradation().dvt, 0.0);
}

}  // namespace
}  // namespace relsim
