#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "util/error.h"

namespace relsim {
namespace {

TEST(MatrixTest, IdentityMultiply) {
  const Matrix id = Matrix::identity(3);
  const Vector x{1.0, -2.0, 3.0};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(MatrixTest, NormInf) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = -4.0;
  m(1, 0) = 2.0;
  m(1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(m.norm_inf(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(LuTest, Solves3x3System) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1;  a(2, 2) = 2;
  const Vector b{8, -11, -3};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;  a(0, 1) = 1;
  a(1, 0) = 1;  a(1, 1) = 0;
  const Vector x = solve(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(LuTest, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, SingularMatrixError);
}

TEST(LuTest, ZeroRowThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  EXPECT_THROW(LuFactorization{a}, SingularMatrixError);
}

TEST(LuTest, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1;
  a(1, 0) = 4; a(1, 1) = 2;
  EXPECT_NEAR(LuFactorization(a).determinant(), 2.0, 1e-12);
}

TEST(LuTest, ResidualSmallForIllScaledSystem) {
  // Mix of conductances spanning 12 decades like an MNA matrix with gmin.
  const std::size_t n = 20;
  Matrix a(n, n);
  Vector xtrue(n);
  for (std::size_t i = 0; i < n; ++i) {
    xtrue[i] = std::sin(static_cast<double>(i));
    for (std::size_t j = 0; j < n; ++j) {
      const double mag = std::pow(10.0, static_cast<double>((i * 7 + j * 3) % 12) - 6.0);
      a(i, j) = ((i + j) % 3 == 0 ? 1.0 : -0.5) * mag;
    }
    a(i, i) += 1e3;  // diagonally strengthen
  }
  const Vector b = a.multiply(xtrue);
  const Vector x = solve(a, b);
  const Vector r = subtract(a.multiply(x), b);
  EXPECT_LT(norm_inf(r), 1e-8 * norm_inf(b) + 1e-12);
}

// Property sweep: random diagonally dominant systems of increasing size all
// solve to tight residuals (the Newton inner loop depends on this).
class LuRandomSystem : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSystem, SolvesToTightResidual) {
  const int n = GetParam();
  std::uint64_t seed = static_cast<std::uint64_t>(n) * 2654435761u;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return static_cast<double>(seed % 2000) / 1000.0 - 1.0;
  };
  Matrix a(n, n);
  Vector xtrue(n);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < n; ++j) {
      a(i, j) = next();
      rowsum += std::abs(a(i, j));
    }
    a(i, i) = rowsum + 1.0;
    xtrue[i] = next();
  }
  const Vector b = a.multiply(xtrue);
  const Vector x = solve(a, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystem,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace relsim
