#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/ac_analysis.h"
#include "spice/netlist_parser.h"
#include "spice/probes.h"
#include "tech/tech.h"

namespace relsim::spice {
namespace {

TEST(SpiceNumberTest, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("-1.5"), -1.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("3MEG"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("10m"), 0.01);  // milli, not mega!
  EXPECT_DOUBLE_EQ(parse_spice_number("5u"), 5e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("7n"), 7e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("4g"), 4e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e3"), 1000.0);
}

TEST(SpiceNumberTest, UnitTailsIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10kohm"), 1e4);
  EXPECT_DOUBLE_EQ(parse_spice_number("5pF"), 5e-12);
}

TEST(SpiceNumberTest, GarbageRejected) {
  EXPECT_THROW(parse_spice_number("abc"), Error);
  EXPECT_THROW(parse_spice_number("1.5x"), Error);
  EXPECT_THROW(parse_spice_number(""), Error);
}

TEST(NetlistTest, TitleAndDivider) {
  const auto parsed = parse_netlist(R"(voltage divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.end
)");
  EXPECT_EQ(parsed.title, "voltage divider");
  const auto r = dc_operating_point(*parsed.circuit);
  EXPECT_NEAR(r.v(parsed.circuit->find_node("mid")), 7.5, 1e-6);
}

TEST(NetlistTest, CommentsAndContinuations) {
  const auto parsed = parse_netlist(R"(title
* a comment line
V1 in 0
+ 5         ; trailing comment
R1 in 0 1k  ; load
)");
  const auto r = dc_operating_point(*parsed.circuit);
  EXPECT_NEAR(r.v(parsed.circuit->find_node("in")), 5.0, 1e-6);
}

TEST(NetlistTest, SineSourceAndTransient) {
  const auto parsed = parse_netlist(R"(rc
V1 in 0 SIN(0 1 1meg)
R1 in out 1k
C1 out 0 1n
)");
  TransientOptions opt;
  opt.dt = 2e-9;
  opt.t_stop = 1e-5;
  auto& c = *parsed.circuit;
  const auto res = transient_analysis(c, opt, {c.find_node("out")});
  const double amp =
      0.5 * peak_to_peak(res.time(), res.node(c.find_node("out")), 5e-6, 1e-5);
  const double fc = 1.0 / (2 * std::numbers::pi * 1e3 * 1e-9);
  EXPECT_NEAR(amp, 1.0 / std::sqrt(1.0 + std::pow(1e6 / fc, 2)), 0.02);
}

TEST(NetlistTest, PulseAndPwlSources) {
  const auto parsed = parse_netlist(R"(sources
V1 a 0 PULSE(0 1 1n 0.1n 0.1n 4n 10n)
V2 b 0 PWL(0 0 1u 2 2u 0)
R1 a 0 1k
R2 b 0 1k
)");
  auto& c = *parsed.circuit;
  const auto& v1 = c.device_as<VoltageSource>("V1").waveform();
  EXPECT_DOUBLE_EQ(v1.value(3e-9), 1.0);
  EXPECT_DOUBLE_EQ(v1.value(0.5e-9), 0.0);
  const auto& v2 = c.device_as<VoltageSource>("V2").waveform();
  EXPECT_DOUBLE_EQ(v2.value(0.5e-6), 1.0);
}

TEST(NetlistTest, TechCardAndMosfet) {
  const auto parsed = parse_netlist(R"(inverter
.tech 65nm
VDD vdd 0 1.1
VIN in 0 0
MN out in 0 0 nmos W=1u L=0.1u
MP out in vdd vdd pmos W=2u L=0.1u
)");
  auto& c = *parsed.circuit;
  const auto& mn = c.device_as<Mosfet>("MN");
  EXPECT_FALSE(mn.params().is_pmos);
  EXPECT_DOUBLE_EQ(mn.params().w_um, 1.0);
  EXPECT_NEAR(mn.params().l_um, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(mn.params().vt0, tech_65nm().vt0_nmos);
  const auto r = dc_operating_point(c);
  EXPECT_NEAR(r.v(c.find_node("out")), 1.1, 0.02);  // input low -> out high
}

TEST(NetlistTest, ModelCardOverrides) {
  const auto parsed = parse_netlist(R"(custom model
.model hvt NMOS vt0=0.5 kp=200u lambda=0.2 gamma=0.4 phi=0.8 tox=2.5
VDD d 0 1.2
VG g 0 1.0
M1 d g 0 0 hvt W=4u L=0.2u
)");
  auto& c = *parsed.circuit;
  const auto& m = c.device_as<Mosfet>("M1");
  EXPECT_DOUBLE_EQ(m.params().vt0, 0.5);
  EXPECT_DOUBLE_EQ(m.params().kp, 200e-6);
  EXPECT_DOUBLE_EQ(m.params().tox_nm, 2.5);
  EXPECT_DOUBLE_EQ(m.params().w_um, 4.0);
}

TEST(NetlistTest, DiodeModel) {
  const auto parsed = parse_netlist(R"(diode
.model dx D is=1e-12 n=1.5
V1 in 0 5
R1 in a 1k
D1 a 0 dx
)");
  const auto r = dc_operating_point(*parsed.circuit);
  const double va = r.v(parsed.circuit->find_node("a"));
  EXPECT_GT(va, 0.5);
  EXPECT_LT(va, 1.0);
}

TEST(NetlistTest, WireGeometryOnResistor) {
  const auto parsed = parse_netlist(R"(wire
V1 a 0 1
RW a 0 10 WIRE W=0.5u L=200u T=0.35u
)");
  const auto& rw = parsed.circuit->device_as<Resistor>("RW");
  ASSERT_TRUE(rw.wire_geometry().has_value());
  EXPECT_NEAR(rw.wire_geometry()->width_um, 0.5, 1e-12);
  EXPECT_NEAR(rw.wire_geometry()->length_um, 200.0, 1e-9);
}

TEST(NetlistTest, AcMagnitudeOnSource) {
  const auto parsed = parse_netlist(R"(ac
V1 in 0 DC 0.5 AC 1
R1 in out 1k
C1 out 0 1n
)");
  auto& c = *parsed.circuit;
  EXPECT_DOUBLE_EQ(c.device_as<VoltageSource>("V1").ac_magnitude(), 1.0);
  const auto res = ac_analysis(c, {1e3});
  EXPECT_NEAR(std::abs(res.v(0, c.find_node("out"))), 1.0, 1e-3);
}

TEST(NetlistTest, VcvsCard) {
  const auto parsed = parse_netlist(R"(amp
V1 in 0 0.1
E1 out 0 in 0 -20
RL out 0 1k
)");
  const auto r = dc_operating_point(*parsed.circuit);
  EXPECT_NEAR(r.v(parsed.circuit->find_node("out")), -2.0, 1e-6);
}

TEST(NetlistTest, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("title\nV1 in 0 1\nXBAD a b c\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(NetlistTest, MosWithoutTechRejected) {
  EXPECT_THROW(parse_netlist("t\nM1 d g 0 0 nmos W=1u L=0.1u\n"),
               NetlistError);
}

TEST(NetlistTest, UnknownModelRejected) {
  EXPECT_THROW(parse_netlist("t\n.tech 65nm\nM1 d g 0 0 mystery W=1u L=1u\n"),
               NetlistError);
  EXPECT_THROW(parse_netlist("t\n.model bad XTYPE a=1\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\n.tech 13nm\n"), NetlistError);
}

TEST(NetlistTest, ContinuationWithoutCardRejected) {
  EXPECT_THROW(parse_netlist("t\n+ R1 a 0 1k\n"), NetlistError);
}

TEST(NetlistTest, MissingFileThrows) {
  EXPECT_THROW(parse_netlist_file("/nonexistent/never.cir"), NetlistError);
}

TEST(NetlistTest, ShippedExampleNetlistsParseAndSolve) {
  // The example netlists under examples/netlists must stay valid.
  for (const char* path : {"examples/netlists/inverter.cir",
                           "examples/netlists/current_mirror.cir",
                           "examples/netlists/rlc_filter.cir"}) {
    const std::string full = std::string(RELSIM_SOURCE_DIR) + "/" + path;
    auto parsed = parse_netlist_file(full);
    EXPECT_FALSE(parsed.title.empty()) << path;
    EXPECT_NO_THROW(dc_operating_point(*parsed.circuit)) << path;
  }
}

}  // namespace
}  // namespace relsim::spice
