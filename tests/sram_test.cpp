// SRAM 6T workload contracts (workloads/sram.h):
//  * the nominal cell is healthy on every metric (positive margins, a
//    finite access time) and the metrics respond to supply, load and
//    mismatch the way the physics says they must;
//  * the array generator emits the canonical per-cell device set;
//  * the finite-difference linearization reproduces the metric near the
//    origin and pins the linearized failure probability to Phi(-tau);
//  * sample-driven yield runs keep the session's determinism contract:
//    bit-identical results for any worker count, and kill/resume lands on
//    the uninterrupted result — importance weights included;
//  * the batched and per-sample paths of the read-disturb YieldSpec agree
//    per sample index.
#include "workloads/sram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/reliability_sim.h"
#include "tech/tech.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim::workloads {
namespace {

Sram6TParams params_65nm() {
  Sram6TParams p;
  p.tech = &tech_65nm();
  return p;
}

SampleStrategyConfig importance_config(std::vector<double> shift) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kImportance;
  c.shift = std::move(shift);
  return c;
}

/// Scratch checkpoint path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Cell metrics

TEST(Sram6TCellTest, NominalCellIsHealthyOnEveryMetric) {
  const Sram6TParams p = params_65nm();
  const double supply = p.supply();

  EXPECT_GT(read_disturb_margin(p), 0.0);
  EXPECT_GT(read_snm(p), 0.0);

  const double wm = write_margin(p);
  EXPECT_GT(wm, 0.0) << "nominal cell must be writable";
  EXPECT_LT(wm, supply);

  const double t = access_time(p);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
}

TEST(Sram6TCellTest, ReadSnmIsMonotoneAcrossSupply) {
  // The level-1 cell loses read margin monotonically as the supply rises:
  // the read divider lifts the "0" node with VDD while the trip point
  // tracks it sublinearly. The test pins positivity plus strict
  // monotonicity — a butterfly-extraction bug (wrong lobe, wrong
  // rotation) breaks one or the other.
  Sram6TParams p = params_65nm();
  double prev = 0.0;
  bool first = true;
  for (const double vdd : {0.8, 1.0, 1.2}) {
    p.vdd = vdd;
    const double snm = read_snm(p);
    EXPECT_GT(snm, 0.0) << "vdd = " << vdd;
    if (!first) {
      EXPECT_LT(snm, prev) << "vdd = " << vdd;
    }
    prev = snm;
    first = false;
  }
}

TEST(Sram6TCellTest, AccessTimeGrowsWithBitlineLoad) {
  Sram6TParams p = params_65nm();
  const double t1 = access_time(p);
  p.c_bl_ff = 2.0 * p.c_bl_ff;
  const double t2 = access_time(p);
  EXPECT_TRUE(std::isfinite(t1));
  EXPECT_TRUE(std::isfinite(t2));
  EXPECT_GT(t2, t1) << "doubling C_BL must slow the read";
}

TEST(Sram6TCellTest, MismatchMovesTheReadDisturbMarginTheRightWay) {
  // A slow left pull-down (positive dVT on PDL) lets the read divider
  // lift q further, so the sense inverter sees a worse input: the margin
  // must drop. The mirrored perturbation must raise it.
  const Sram6TParams p = params_65nm();
  const double nominal = read_disturb_margin(p);

  std::array<double, kSram6TDims> z{};
  z[2 * kSramPdl] = 3.0;
  const Sram6TVariation weak_pd = variation_from_normals(p, z);
  EXPECT_LT(read_disturb_margin(p, &weak_pd), nominal);

  z[2 * kSramPdl] = -3.0;
  const Sram6TVariation strong_pd = variation_from_normals(p, z);
  EXPECT_GT(read_disturb_margin(p, &strong_pd), nominal);
}

TEST(Sram6TCellTest, VariationAddressesDevicesByCanonicalName) {
  const Sram6TParams p = params_65nm();
  auto c = make_sram6t_cell(p, 0.0, p.supply(), p.supply());
  ASSERT_EQ(c->mosfets().size(), kSram6TDeviceCount);
  // Insertion order IS the canonical order — the contract the batched
  // path's per-lane mismatch streams rely on.
  for (std::size_t k = 0; k < kSram6TDeviceCount; ++k) {
    EXPECT_EQ(c->mosfets()[k]->name(), kSram6TDeviceNames[k]);
  }

  std::array<double, kSram6TDims> z{};
  for (unsigned d = 0; d < kSram6TDims; ++d) z[d] = 1.0;
  const Sram6TVariation var = variation_from_normals(p, z);
  apply_sram6t_variation(*c, var);
  for (std::size_t k = 0; k < kSram6TDeviceCount; ++k) {
    EXPECT_EQ(c->mosfets()[k]->variation().dvt, var.device[k].dvt);
    EXPECT_EQ(c->mosfets()[k]->variation().dbeta_rel,
              var.device[k].dbeta_rel);
  }
}

TEST(SramArrayTest, ArrayCarriesTheCanonicalDeviceSetPerCell) {
  const Sram6TParams p = params_65nm();
  const unsigned rows = 3, cols = 2;
  auto c = make_sram_array(p, rows, cols);
  EXPECT_EQ(c->mosfets().size(), kSram6TDeviceCount * rows * cols);
  // Per-row wordlines, per-column bitline pairs, per-cell storage nodes.
  EXPECT_NO_THROW(c->find_node("wl2"));
  EXPECT_NO_THROW(c->find_node("bl1"));
  EXPECT_NO_THROW(c->find_node("blb0"));
  EXPECT_NO_THROW(c->find_node("q_r2c1"));
  EXPECT_NO_THROW(c->find_node("qb_r0c0"));
  // Device names carry the row/column suffix in canonical order.
  EXPECT_EQ(c->mosfets().front()->name(), "PDL_r0c0");
  EXPECT_EQ(c->mosfets().back()->name(), "PUR_r2c1");
  EXPECT_THROW(make_sram_array(p, 0, 4), Error);
}

// ---------------------------------------------------------------------------
// Linearization

TEST(SramLinearizationTest, ReproducesTheMetricNearTheOrigin) {
  const Sram6TParams p = params_65nm();
  const Sram6TLinearization lin = linearize(p, Sram6TMetric::kReadDisturb);
  ASSERT_GT(lin.sigma, 0.0);
  EXPECT_NEAR(lin.nominal, read_disturb_margin(p), 1e-12);

  // A mixed half-sigma perturbation: the first-order model must land
  // within a small fraction of the metric's mismatch sigma.
  std::array<double, kSram6TDims> z{};
  z[0] = 0.5;
  z[3] = -0.5;
  z[6] = 0.5;
  const Sram6TVariation var = variation_from_normals(p, z);
  const double actual = read_disturb_margin(p, &var);
  EXPECT_NEAR(lin.value(z), actual, 0.2 * lin.sigma);
}

TEST(SramLinearizationTest, FailureProbabilityIsTheGaussianTail) {
  const Sram6TParams p = params_65nm();
  const Sram6TLinearization lin = linearize(p, Sram6TMetric::kReadDisturb);
  const double tau = 5.0;
  const double threshold = lin.nominal - tau * lin.sigma;

  EXPECT_NEAR(lin.tau(threshold), tau, 1e-9);
  EXPECT_NEAR(lin.failure_probability(threshold), normal_cdf(-tau),
              1e-12 * normal_cdf(-tau) + 1e-300);

  // The full-tilt shift is tau long and points along the failure
  // direction: the linearized metric at the shifted mean sits exactly on
  // the threshold.
  const std::vector<double> shift = lin.is_shift(threshold, 1.0);
  ASSERT_EQ(shift.size(), kSram6TDims);
  double norm_sq = 0.0;
  std::array<double, kSram6TDims> at_shift{};
  for (unsigned d = 0; d < kSram6TDims; ++d) {
    norm_sq += shift[d] * shift[d];
    at_shift[d] = shift[d];
  }
  EXPECT_NEAR(std::sqrt(norm_sq), tau, 1e-9);
  EXPECT_NEAR(lin.value(at_shift), threshold, 1e-9);
}

// ---------------------------------------------------------------------------
// Sample-driven yield runs

McRequest sram_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = 2;
  req.chunk = 8;
  req.keep_values = true;
  return req;
}

TEST(SramYieldTest, ImportanceRunIsBitIdenticalAcrossWorkerCounts) {
  const Sram6TParams p = params_65nm();
  const Sram6TLinearization lin = linearize(p, Sram6TMetric::kReadDisturb);
  // A 2-sigma pin with a matching proposal shift: failures are common
  // enough for 64 samples to see both outcomes.
  const double threshold = lin.nominal - 2.0 * lin.sigma;
  const McPointPredicate pass =
      sram6t_point_predicate(p, Sram6TMetric::kReadDisturb, threshold);

  McRequest req = sram_request(7, 64);
  req.strategy = importance_config(lin.is_shift(threshold));

  McResult ref;
  bool have_ref = false;
  for (const unsigned threads : {1u, 4u, 8u}) {
    req.threads = threads;
    const McResult r = McSession(req).run_yield(pass);
    ASSERT_EQ(r.completed, 64u);
    ASSERT_TRUE(r.weighted.enabled);
    if (!have_ref) {
      ref = r;
      have_ref = true;
      EXPECT_GT(ref.estimate.passed, 0u);
      EXPECT_LT(ref.estimate.passed, ref.estimate.total);
      continue;
    }
    EXPECT_EQ(r.values, ref.values) << threads << " workers";
    EXPECT_EQ(r.estimate.passed, ref.estimate.passed);
    EXPECT_EQ(r.weighted.sums.w, ref.weighted.sums.w);
    EXPECT_EQ(r.weighted.sums.w2, ref.weighted.sums.w2);
    EXPECT_EQ(r.weighted.sums.wx, ref.weighted.sums.wx);
    EXPECT_EQ(r.weighted.sums.log_scale, ref.weighted.sums.log_scale);
    EXPECT_EQ(r.weighted.interval.estimate, ref.weighted.interval.estimate);
  }
}

TEST(SramYieldTest, KilledRunResumesToTheUninterruptedResult) {
  const Sram6TParams p = params_65nm();
  const Sram6TLinearization lin = linearize(p, Sram6TMetric::kReadDisturb);
  const double threshold = lin.nominal - 2.0 * lin.sigma;
  const McPointPredicate pass =
      sram6t_point_predicate(p, Sram6TMetric::kReadDisturb, threshold);

  McRequest req = sram_request(11, 96);
  req.strategy = importance_config(lin.is_shift(threshold));
  const McResult uninterrupted = McSession(req).run_yield(pass);

  ScratchFile ckpt("sram_resume.ckpt");
  McRequest kr = req;
  kr.checkpoint_path = ckpt.path();
  kr.checkpoint_every = 16;
  bool killed = false;
  try {
    McSession(kr).run_yield([&pass](McSamplePoint& point) {
      if (point.index() == 70) throw Error("injected kill");
      return pass(point);
    });
  } catch (const Error&) {
    killed = true;
  }
  ASSERT_TRUE(killed);

  const McResult resumed = McSession(kr).run_yield(pass);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_EQ(resumed.values, uninterrupted.values);
  EXPECT_EQ(resumed.estimate.passed, uninterrupted.estimate.passed);
  EXPECT_EQ(resumed.weighted.sums.w, uninterrupted.weighted.sums.w);
  EXPECT_EQ(resumed.weighted.sums.w2, uninterrupted.weighted.sums.w2);
  EXPECT_EQ(resumed.weighted.sums.wx, uninterrupted.weighted.sums.wx);
  EXPECT_EQ(resumed.weighted.ess, uninterrupted.weighted.ess);
}

TEST(SramYieldTest, BatchedAndPerSamplePathsAgreeOnTheReadDisturbSpec) {
  const Sram6TParams p = params_65nm();
  ReliabilityConfig cfg;
  cfg.tech = p.tech;
  cfg.seed = 0x5ca3;
  const ReliabilitySimulator sim(cfg);

  // A tight margin floor so the simulator's own Pelgrom stream produces a
  // pass/fail mix (the nominal margin is ~0.54 V; device sigmas are mV).
  const double nominal = read_disturb_margin(p);
  const YieldSpec spec = read_disturb_yield_spec(p, nominal - 0.002);

  McRequest req = sram_request(0, 64);  // seed comes from the simulator
  req.eval_mode = McEvalMode::kPerSample;
  const McResult scalar = sim.run_yield(spec, req);
  req.eval_mode = McEvalMode::kBatched;
  const McResult batched = sim.run_yield(spec, req);

  ASSERT_EQ(scalar.completed, 64u);
  ASSERT_EQ(batched.completed, 64u);
  EXPECT_GT(scalar.estimate.passed, 0u);
  EXPECT_LT(scalar.estimate.passed, scalar.estimate.total);
  EXPECT_EQ(batched.values, scalar.values);
  EXPECT_EQ(batched.estimate.passed, scalar.estimate.passed);
}

}  // namespace
}  // namespace relsim::workloads
