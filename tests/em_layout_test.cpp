#include <gtest/gtest.h>

#include <cmath>

#include "aging/engine.h"
#include "em_layout/planner.h"
#include "spice/analysis.h"
#include "tech/tech.h"
#include "util/units.h"

namespace relsim::em_layout {
namespace {

using aging::EmModel;

WireRequest request(double current_a, double length_um = 1e4) {
  WireRequest r;
  r.name = "w";
  r.current_a = current_a;
  r.length_um = length_um;
  r.temp_k = 378.0;
  return r;
}

TEST(PlannerTest, PlannedWireMeetsTarget) {
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 10.0);
  const WirePlan plan = planner.plan(request(5e-3));
  EXPECT_GT(plan.width_um, 0.0);
  EXPECT_TRUE(plan.blech_immune || plan.mttf_years >= 10.0 * 0.99);
}

TEST(PlannerTest, MoreCurrentNeedsMoreMetal) {
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 10.0);
  const double w1 = planner.plan(request(2e-3)).width_um;
  const double w2 = planner.plan(request(8e-3)).width_um;
  EXPECT_GT(w2, 1.5 * w1);
}

TEST(PlannerTest, HotterNeedsMoreMetal) {
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 10.0);
  WireRequest cold = request(5e-3);
  cold.temp_k = 348.0;
  WireRequest hot = request(5e-3);
  hot.temp_k = 398.0;
  EXPECT_GT(planner.plan(hot).width_um, planner.plan(cold).width_um);
}

TEST(PlannerTest, SlottingSavesMetalThroughBambooEffect) {
  // Splitting one wide wire into narrow bamboo fingers exploits the
  // lifetime bonus [25]: total metal width shrinks.
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 10.0);
  const WirePlan solid = planner.plan(request(20e-3));
  ASSERT_GT(solid.width_um, em.tech().grain_size_um);  // above bamboo regime
  const WirePlan slotted = planner.plan_slotted(request(20e-3), 64);
  EXPECT_TRUE(slotted.blech_immune || slotted.mttf_years >= 10.0 * 0.99);
  EXPECT_LT(slotted.width_um, solid.width_um);
}

TEST(PlannerTest, EvaluateReportsDensityAndImmunity) {
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 10.0);
  const WirePlan p = planner.evaluate(request(1e-3, 50.0), 1.0);
  EXPECT_GT(p.current_density_a_cm2, 1e5);
  EXPECT_TRUE(p.blech_immune);  // short wire
  EXPECT_TRUE(std::isinf(p.mttf_years));
}

TEST(PlannerTest, PlanAllCoversEveryRequest) {
  const EmModel em(tech_65nm().em);
  const EmAwarePlanner planner(em, 5.0);
  const auto plans =
      planner.plan_all({request(1e-3), request(2e-3), request(4e-3)});
  ASSERT_EQ(plans.size(), 3u);
  for (const auto& p : plans) {
    EXPECT_TRUE(p.blech_immune || p.mttf_years >= 5.0 * 0.99);
  }
}

TEST(AuditTest, FlagsUndersizedWire) {
  using namespace spice;
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId n1 = c.node("n1");
  const NodeId n2 = c.node("n2");
  c.add_vsource("V1", n1, kGround, 1.0);
  auto& hot = c.add_resistor("RHOT", n1, n2, 10.0);   // ~50 mA
  hot.set_wire_geometry({0.5, 5e3, 0.35});
  auto& safe = c.add_resistor("RSAFE", n2, kGround, 10.0);
  safe.set_wire_geometry({50.0, 50.0, 0.35});
  aging::dc_stress_runner(c);

  const EmModel em(tech.em);
  const auto audit = audit_circuit(c, em, 378.0, 10.0);
  ASSERT_EQ(audit.size(), 2u);
  const auto& hot_entry = audit[0].name == "RHOT" ? audit[0] : audit[1];
  const auto& safe_entry = audit[0].name == "RHOT" ? audit[1] : audit[0];
  EXPECT_FALSE(hot_entry.passes);
  EXPECT_GT(hot_entry.required_width_um, hot_entry.width_um);
  EXPECT_TRUE(safe_entry.passes);
}

TEST(AuditTest, EmptyCircuitGivesEmptyAudit) {
  spice::Circuit c;
  const EmModel em(tech_65nm().em);
  EXPECT_TRUE(audit_circuit(c, em, 378.0, 10.0).empty());
}

}  // namespace
}  // namespace relsim::em_layout
