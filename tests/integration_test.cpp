// Cross-module integration scenarios: each test exercises a pipeline that
// spans at least three modules, the way a downstream user would.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "aging/engine.h"
#include "aging/nbti.h"
#include "core/reliability_sim.h"
#include "emc/circuits.h"
#include "emc/emi.h"
#include "spice/ac_analysis.h"
#include "spice/analysis.h"
#include "spice/netlist_parser.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/mathx.h"

namespace relsim {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

// Netlist text -> parse -> age -> AC: the amplifier loses gain over life.
TEST(IntegrationTest, NetlistAgeAcPipeline) {
  // RL sized so the output sits around 0.6 V: the device is saturated with
  // a healthy V_DS - V_DSAT, i.e. squarely in HCI territory.
  constexpr const char* kAmp = R"(common-source amp
.tech 65nm
VDD vdd 0 1.1
VIN in 0 DC 0.55 AC 1
RL vdd out 1.1k
M1 out in 0 0 nmos W=2u L=0.1u
)";
  auto parsed = spice::parse_netlist(kAmp);
  Circuit& c = *parsed.circuit;
  const NodeId out = c.find_node("out");

  const auto fresh = spice::ac_analysis(c, {1e3});
  const double gain_fresh = std::abs(fresh.v(0, out));
  const double vout_fresh = spice::dc_operating_point(c).v(out);

  ReliabilityConfig cfg;
  cfg.tech = &tech_65nm();
  cfg.mission.years = 10.0;
  cfg.mission.epochs = 5;
  cfg.enable_tddb = false;
  ReliabilitySimulator(cfg).age(c);

  const auto aged = spice::ac_analysis(c, {1e3});
  const double gain_aged = std::abs(aged.v(0, out));
  const double vout_aged = spice::dc_operating_point(c).v(out);
  // HCI raises VT -> less current -> the output bias drifts up and the
  // transconductance (thus gain) drops.
  EXPECT_GT(vout_aged, vout_fresh + 0.02);
  EXPECT_LT(gain_aged, 0.9 * gain_fresh);
  EXPECT_TRUE(std::isfinite(gain_aged));
}

// Netlist factory -> MC yield through the top-level facade.
TEST(IntegrationTest, NetlistFactoryMonteCarloYield) {
  constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";
  ReliabilityConfig cfg;
  cfg.tech = &tech_90nm();
  const ReliabilitySimulator sim(cfg);
  auto factory = [&] {
    auto parsed = spice::parse_netlist(kDivider);
    return std::move(parsed.circuit);
  };
  auto nominal_circuit = factory();
  const double nominal =
      spice::dc_operating_point(*nominal_circuit)
          .v(nominal_circuit->find_node("d"));
  auto pass = [&](Circuit& c) {
    const double v = spice::dc_operating_point(c).v(c.find_node("d"));
    return std::abs(v - nominal) < 0.05;
  };
  const auto est = sim.yield(factory, pass, 150);
  // Tiny device: mismatch must produce BOTH passes and fails.
  EXPECT_GT(est.yield(), 0.2);
  EXPECT_LT(est.yield(), 0.999);
}

// EMC coupling path cross-check: the gate ripple the transient EMI analysis
// sees must match the linear AC transfer at small amplitudes.
TEST(IntegrationTest, EmcRippleMatchesAcTransfer) {
  const auto bench = emc::build_current_reference(tech_65nm());
  Circuit& c = *bench.circuit;
  const double freq = 50e6;
  const double amp = 1e-3;  // small-signal regime

  // AC prediction of the gate ripple per volt of EMI.
  c.device_as<spice::VoltageSource>(bench.emi_source).set_ac_magnitude(1.0);
  const auto ac = spice::ac_analysis(c, {freq});
  const double transfer = std::abs(ac.v(0, bench.gate));

  // Time-domain measurement at a small amplitude.
  emc::EmiAnalyzer analyzer(c, bench.emi_source,
                            emc::Observable::node_voltage(bench.gate));
  emc::EmiOptions opt;
  opt.settle_cycles = 20;
  opt.measure_cycles = 20;
  opt.steps_per_cycle = 64;
  const auto p = analyzer.measure(amp, freq, opt);
  EXPECT_NEAR(0.5 * p.ripple_pp / (amp * transfer), 1.0, 0.05);
}

// Knob-and-monitor loop on top of engine-produced (not synthetic) drift,
// asserting that the compensation also restores the AC gain.
TEST(IntegrationTest, AgedAmplifierGainRecoveredByBiasKnob) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  // Biased at 0.50 V: saturated with margin, so VT drift moves the gain
  // DOWN instead of sliding the stage out of triode.
  auto& vin = c.add_vsource("VIN", in, kGround, 0.50);
  vin.set_ac_magnitude(1.0);
  c.add_resistor("RL", vdd, out, 5e3);
  // Long channel: r_o >> RL, so the gain tracks gm and visibly drops with
  // VT drift (short-channel stages self-compensate through r_o).
  c.add_mosfet("M1", out, in, kGround, kGround,
               spice::make_mos_params(tech, 2.0, 0.5, false));

  auto gain = [&]() {
    return std::abs(spice::ac_analysis(c, {1e4}).v(0, out));
  };
  const double g0 = gain();

  // Age and measure the dropped gain.
  aging::AgingEngine engine;
  engine.add_model(std::make_unique<aging::NbtiModel>());
  aging::AgingOptions opt;
  opt.mission.epochs = 4;
  engine.age(c, opt);
  spice::MosDegradation extra = c.device_as<spice::Mosfet>("M1").degradation();
  extra.dvt += 0.06;  // top up with an HCI-class shift for a visible drop
  c.device_as<spice::Mosfet>("M1").set_degradation(extra);
  const double g_aged = gain();
  ASSERT_LT(g_aged, 0.9 * g0);

  // Sweep the bias knob: some setting must recover >= the fresh gain.
  double best = 0.0;
  for (double vb = 0.50; vb <= 0.72; vb += 0.01) {
    vin.set_dc(vb);
    best = std::max(best, gain());
  }
  EXPECT_GE(best, 0.95 * g0);
}

// Full stack determinism: the identical seed reproduces the identical
// lifetime-yield estimate across independent simulator instances.
TEST(IntegrationTest, FullStackDeterminism) {
  const auto& tech = tech_65nm();
  auto factory = [&] {
    auto c = std::make_unique<Circuit>();
    const NodeId vdd = c->node("vdd");
    const NodeId d = c->node("d");
    c->add_vsource("VDD", vdd, kGround, tech.vdd);
    c->add_resistor("RD", vdd, d, 10e3);
    c->add_mosfet("M1", d, d, kGround, kGround,
                  spice::make_mos_params(tech, 0.5, 0.1, false));
    return c;
  };
  auto pass = [](Circuit& c) {
    return spice::dc_operating_point(c).v(c.find_node("d")) > 0.4;
  };
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.epochs = 2;
  cfg.seed = 777;
  const auto a = ReliabilitySimulator(cfg).lifetime_yield(factory, pass, 60);
  const auto b = ReliabilitySimulator(cfg).lifetime_yield(factory, pass, 60);
  EXPECT_EQ(a.passed, b.passed);
}

// Transient and AC agree on an aged circuit too (the degradation state is
// honoured consistently by both code paths).
TEST(IntegrationTest, AgedTransientMatchesAgedAc) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const auto& tech = tech_65nm();
  const double f = 1e6;
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vin = c.add_vsource(
      "VIN", in, kGround,
      std::make_unique<spice::SineWaveform>(0.55, 0.002, f));
  vin.set_ac_magnitude(0.002);
  c.add_resistor("RL", vdd, out, 5e3);
  auto& m = c.add_mosfet("M1", out, in, kGround, kGround,
                         spice::make_mos_params(tech, 2.0, 0.2, false));
  spice::MosDegradation d;
  d.dvt = 0.04;
  d.beta_factor = 0.92;
  m.set_degradation(d);

  const auto ac = spice::ac_analysis(c, {f});
  const double ac_amp = std::abs(ac.v(0, out));

  spice::TransientOptions topt;
  topt.dt = 1.0 / f / 400;
  topt.t_stop = 12.0 / f;
  const auto tr = spice::transient_analysis(c, topt, {out});
  const double tran_amp =
      0.5 * spice::peak_to_peak(tr.time(), tr.node(out), 6.0 / f, topt.t_stop);
  EXPECT_NEAR(tran_amp / ac_amp, 1.0, 0.02);
}

}  // namespace
}  // namespace relsim
