// Tests for the variability extensions: line-edge roughness (LER) and the
// defect-limited yield models.
#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech.h"
#include "util/error.h"
#include "variability/defect_yield.h"
#include "variability/ler.h"

namespace relsim {
namespace {

// ---------------------------------------------------------------------------
// LER

TEST(LerTest, EffectiveLengthSigmaScalesWithWidth) {
  const LerModel m;
  // sigma_Leff ~ 1/sqrt(W) once W >> correlation length.
  const double s1 = m.sigma_leff_nm(0.1);
  const double s2 = m.sigma_leff_nm(0.4);
  EXPECT_NEAR(s1 / s2, 2.0, 1e-9);
  // Narrow devices clamp at the full edge roughness of both edges.
  EXPECT_NEAR(m.sigma_leff_nm(0.001), std::sqrt(2.0) * m.params().rms_nm,
              1e-9);
}

TEST(LerTest, RolloffSlopeDecaysWithLength) {
  const LerModel m;
  EXPECT_GT(m.dvt_dl_v_per_nm(0.03), 10.0 * m.dvt_dl_v_per_nm(0.2));
}

TEST(LerTest, SigmaVtExplodesNearMinimumLength) {
  const LerModel m(LerParams::from_tech(tech_45nm()));
  const double at_min = m.sigma_vt(0.2, 0.045);
  const double relaxed = m.sigma_vt(0.2, 0.135);  // 3x minimum L
  EXPECT_GT(at_min, 5.0 * relaxed);
  EXPECT_GT(at_min, 1e-3);  // mV-level at minimum geometry
}

TEST(LerTest, NegligibleForLongChannel) {
  const LerModel m(LerParams::from_tech(tech_65nm()));
  EXPECT_LT(m.sigma_vt(1.0, 1.0), 1e-9);
}

TEST(LerTest, CombinedSigmaIsQuadratureSum) {
  const LerModel ler(LerParams::from_tech(tech_45nm()));
  const PelgromModel pelgrom(PelgromParams::from_tech(tech_45nm()));
  const double w = 0.15, l = 0.045;
  const double a = ler.sigma_vt(w, l);
  const double b = pelgrom.sigma_dvt_single(w, l);
  EXPECT_NEAR(ler.sigma_vt_combined(pelgrom, w, l),
              std::sqrt(a * a + b * b), 1e-15);
  // At minimum geometry the LER term is non-negligible (several % of the
  // random-dopant term, and growing faster with scaling).
  EXPECT_GT(a, 0.05 * b);
}

TEST(LerTest, IoffSpreadAmplifiesExponentially) {
  const LerModel m(LerParams::from_tech(tech_45nm()));
  // sigma_ln(Ioff) = sigma_VT(mV)/SS * ln10.
  const double s = m.sigma_ln_ioff(0.15, 0.045);
  EXPECT_NEAR(s, m.sigma_vt(0.15, 0.045) * 1e3 /
                     m.params().subthreshold_mv_per_dec * std::numbers::ln10,
              1e-12);
  EXPECT_GT(s, 0.05);  // leakage spread is a visible tail
}

TEST(LerTest, FromTechScalesRolloffWithFeature) {
  const auto p45 = LerParams::from_tech(tech_45nm());
  const auto p180 = LerParams::from_tech(technology("0.18um"));
  EXPECT_LT(p45.rolloff_length_nm, p180.rolloff_length_nm);
  EXPECT_LT(p45.rms_nm, p180.rms_nm);  // roughness improves only slowly
  EXPECT_GT(p45.rms_nm, 0.5 * p180.rms_nm);
}

// ---------------------------------------------------------------------------
// Defect yield

TEST(DefectYieldTest, PoissonMatchesClosedForm) {
  DefectYieldParams p;
  p.defect_density_per_cm2 = 0.5;
  const DefectYieldModel m(p);
  EXPECT_NEAR(m.yield(1.0, DefectModel::kPoisson), std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(m.yield(0.0, DefectModel::kPoisson), 1.0);
}

TEST(DefectYieldTest, ModelOrderingAtLargeArea) {
  // Clustering (Stapper) is more forgiving than Poisson for big dies;
  // Murphy lies in between.
  DefectYieldParams p;
  p.defect_density_per_cm2 = 1.0;
  p.clustering_alpha = 1.0;
  const DefectYieldModel m(p);
  const double a = 3.0;
  const double poisson = m.yield(a, DefectModel::kPoisson);
  const double murphy = m.yield(a, DefectModel::kMurphy);
  const double stapper = m.yield(a, DefectModel::kStapper);
  EXPECT_LT(poisson, murphy);
  EXPECT_LT(murphy, stapper);
}

TEST(DefectYieldTest, StapperApproachesPoissonForLargeAlpha) {
  DefectYieldParams p;
  p.defect_density_per_cm2 = 0.8;
  p.clustering_alpha = 1e6;
  const DefectYieldModel m(p);
  EXPECT_NEAR(m.yield(2.0, DefectModel::kStapper),
              m.yield(2.0, DefectModel::kPoisson), 1e-5);
}

TEST(DefectYieldTest, YieldDecreasesWithArea) {
  const DefectYieldModel m;
  double prev = 1.0;
  for (double a : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double y = m.yield(a);
    EXPECT_LT(y, prev);
    prev = y;
  }
}

TEST(DefectYieldTest, MaxAreaInvertsYield) {
  DefectYieldParams p;
  p.defect_density_per_cm2 = 0.5;
  const DefectYieldModel m(p);
  for (DefectModel model :
       {DefectModel::kPoisson, DefectModel::kMurphy, DefectModel::kStapper}) {
    const double a = m.max_area_for_yield(0.8, model);
    EXPECT_NEAR(m.yield(a, model), 0.8, 1e-9);
  }
}

TEST(DefectYieldTest, TotalYieldMultiplies) {
  const DefectYieldModel m;
  EXPECT_NEAR(m.total_yield(1.0, 0.9),
              m.yield(1.0) * 0.9, 1e-15);
  EXPECT_THROW(m.total_yield(1.0, 1.5), Error);
}

TEST(DefectYieldTest, CriticalAreaHelper) {
  // 3 mm^2 die, 40% sensitive -> 0.012 cm^2.
  EXPECT_NEAR(critical_area_cm2(3.0, 0.4), 0.012, 1e-12);
}

TEST(DefectYieldTest, OverdesignHurtsDefectYield) {
  // The trade-off the paper names: overdesign (more area for matching)
  // costs defect-limited yield too.
  const DefectYieldModel m;
  const double small = m.total_yield(critical_area_cm2(1.0, 0.5), 0.80);
  const double big = m.total_yield(critical_area_cm2(16.0, 0.5), 0.999);
  EXPECT_GT(small, 0.0);
  EXPECT_LT(big, 0.97);  // the parametric win is eaten by defects
}

}  // namespace
}  // namespace relsim
