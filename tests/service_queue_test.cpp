// FairShareQueue policy tests: least-virtual-work tenant first, priority
// then FIFO within a tenant, removal, and shutdown draining.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/fair_queue.h"

namespace relsim::service {
namespace {

std::shared_ptr<Job> make_job(std::uint64_t id, const std::string& tenant,
                              std::size_t n, int priority = 0) {
  static std::uint64_t seq = 0;
  auto job = std::make_shared<Job>();
  job->id = id;
  job->tenant = tenant;
  job->priority = priority;
  job->seq = ++seq;
  job->spec.kind = JobKind::kSynthetic;
  job->spec.n = n;
  return job;
}

TEST(FairShareQueueTest, FifoWithinOneTenant) {
  FairShareQueue q;
  q.push(make_job(1, "a", 10));
  q.push(make_job(2, "a", 10));
  q.push(make_job(3, "a", 10));
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
}

TEST(FairShareQueueTest, HigherPriorityBeatsSubmitOrder) {
  FairShareQueue q;
  q.push(make_job(1, "a", 10, 0));
  q.push(make_job(2, "a", 10, 5));
  q.push(make_job(3, "a", 10, 5));
  EXPECT_EQ(q.pop()->id, 2u);  // priority 5 first, FIFO among equals
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 1u);
}

TEST(FairShareQueueTest, LightTenantIsNotStarvedByHeavyBacklog) {
  FairShareQueue q;
  // Tenant "heavy" floods the queue with big jobs before "light" shows up
  // with small ones.
  for (std::uint64_t i = 1; i <= 4; ++i) q.push(make_job(i, "heavy", 10000));
  q.push(make_job(101, "light", 100));
  q.push(make_job(102, "light", 100));

  // First pop: both tenants at 0 virtual work, name order breaks the tie
  // deterministically ("heavy" < "light").
  EXPECT_EQ(q.pop()->id, 1u);
  // heavy now carries 10000 of virtual work; light (0) must be served next
  // even though heavy submitted first.
  EXPECT_EQ(q.pop()->id, 101u);
  EXPECT_EQ(q.pop()->id, 102u);
  // light's backlog is drained (200 total) — heavy resumes.
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.tenant_virtual_work("heavy"), 20000u);
  EXPECT_EQ(q.tenant_virtual_work("light"), 200u);
}

TEST(FairShareQueueTest, RemovePullsQueuedJobOnce) {
  FairShareQueue q;
  q.push(make_job(1, "a", 10));
  q.push(make_job(2, "a", 10));
  const std::shared_ptr<Job> removed = q.remove(2);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id, 2u);
  EXPECT_EQ(q.remove(2), nullptr);  // already gone
  EXPECT_EQ(q.remove(99), nullptr);  // never existed
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(FairShareQueueTest, PopBlocksUntilPush) {
  FairShareQueue q;
  std::shared_ptr<Job> got;
  std::thread consumer([&] { got = q.pop(); });
  q.push(make_job(7, "a", 1));
  consumer.join();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, 7u);
}

TEST(FairShareQueueTest, ShutdownDrainsBacklogAndWakesWaiters) {
  FairShareQueue q;
  q.push(make_job(1, "a", 10));
  q.push(make_job(2, "b", 10));

  std::shared_ptr<Job> waiter_result = make_job(999, "sentinel", 1);
  std::thread waiter([&] {
    // Drain the two queued jobs, then block until shutdown.
    while (q.pop() != nullptr) {
    }
    waiter_result = nullptr;
  });
  while (q.depth() > 0) std::this_thread::yield();
  const std::vector<std::shared_ptr<Job>> orphans = q.shutdown();
  waiter.join();
  EXPECT_EQ(waiter_result, nullptr);  // pop() returned nullptr after shutdown
  EXPECT_TRUE(orphans.empty());       // backlog was drained before shutdown

  // Push after shutdown is refused; pop stays nullptr.
  EXPECT_FALSE(q.push(make_job(3, "a", 10)));
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(FairShareQueueTest, ShutdownReturnsUndrainedJobs) {
  FairShareQueue q;
  q.push(make_job(1, "a", 10));
  q.push(make_job(2, "b", 10));
  const std::vector<std::shared_ptr<Job>> orphans = q.shutdown();
  EXPECT_EQ(orphans.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

}  // namespace
}  // namespace relsim::service
