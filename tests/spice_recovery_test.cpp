// Solver recovery ladder contracts (spice/analysis.h):
//  * dc_recovery_ladder() names the exact attempt order, honoring the
//    enabled techniques and the escalation rounds;
//  * injected Newton non-convergence escalates newton -> gmin stepping ->
//    source stepping -> relaxed rounds in that fixed order, and the rung
//    that converged is recorded on the DcResult;
//  * exhausting the ladder throws ConvergenceError naming the rungs tried;
//  * the transient step-halving path retries, then throws a typed
//    ConvergenceError with time/step context once halvings are exhausted.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "testing/fault_injection.h"
#include "util/error.h"

namespace relsim::spice {
namespace {

using relsim::testing::FaultRule;
using relsim::testing::FaultScope;
using relsim::testing::FaultSite;

/// A resistor divider that converges on the first Newton iteration unless
/// a fault makes the solver lie about it: V(b) = 0.5 V.
Circuit divider() {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, b, 1e3);
  c.add_resistor("R2", b, kGround, 1e3);
  return c;
}

/// Arms kNewtonConverge so the first `count` newton_solve calls report
/// non-convergence and every later call behaves normally.
void fail_first_newton_calls(std::uint64_t count) {
  FaultRule rule;
  rule.nth = 1;
  rule.count = count;
  relsim::testing::arm(FaultSite::kNewtonConverge, rule);
}

TEST(DcRecoveryLadderTest, NamesTechniquesInAttemptOrder) {
  DcOptions options;
  const std::vector<std::string> ladder = dc_recovery_ladder(options);
  ASSERT_EQ(ladder.size(), 3u);  // max_rounds = 0: one sequence
  EXPECT_EQ(ladder[0], "newton");
  EXPECT_EQ(ladder[1], "gmin-stepping");
  EXPECT_EQ(ladder[2], "source-stepping");

  options.recovery.max_rounds = 2;
  const std::vector<std::string> full = dc_recovery_ladder(options);
  ASSERT_EQ(full.size(), 9u);  // 3 techniques x (1 + 2 rounds)
  EXPECT_EQ(full[3].rfind("newton[relaxed r1", 0), 0u) << full[3];
  EXPECT_EQ(full[6].rfind("newton[relaxed r2", 0), 0u) << full[6];
}

TEST(DcRecoveryLadderTest, DisabledTechniquesAreOmitted) {
  DcOptions options;
  options.allow_gmin_stepping = false;
  const std::vector<std::string> ladder = dc_recovery_ladder(options);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0], "newton");
  EXPECT_EQ(ladder[1], "source-stepping");
}

TEST(DcRecoveryTest, CleanSolveReportsRungZero) {
  Circuit c = divider();
  const DcResult r = dc_operating_point(c);
  EXPECT_EQ(r.recovery_rung(), 0);
  EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-6);
}

TEST(DcRecoveryTest, GminSteppingIsTheFirstFallback) {
  FaultScope scope;
  fail_first_newton_calls(1);  // plain Newton "fails", gmin ladder works
  Circuit c = divider();
  const DcResult r = dc_operating_point(c);
  EXPECT_EQ(r.recovery_rung(), 1);  // dc_recovery_ladder()[1] == gmin
  EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-6);
  EXPECT_TRUE(r.converged());
}

TEST(DcRecoveryTest, SourceSteppingFollowsGminStepping) {
  FaultScope scope;
  // Newton fails, then the FIRST gmin rung fails (which aborts the whole
  // gmin ladder), leaving source stepping as the next rung.
  fail_first_newton_calls(2);
  Circuit c = divider();
  const DcResult r = dc_operating_point(c);
  EXPECT_EQ(r.recovery_rung(), 2);
  EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-6);
}

TEST(DcRecoveryTest, ExhaustedLadderThrowsNamingTheRungs) {
  FaultScope scope;
  fail_first_newton_calls(3);  // newton, gmin and source all fail
  Circuit c = divider();
  try {
    dc_operating_point(c);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recovery ladder exhausted"), std::string::npos);
    EXPECT_NE(what.find("gmin-stepping"), std::string::npos);
    EXPECT_NE(what.find("source-stepping"), std::string::npos);
  }
}

TEST(DcRecoveryTest, EscalationRoundRescuesAnExhaustedSequence) {
  FaultScope scope;
  fail_first_newton_calls(3);
  Circuit c = divider();
  DcOptions options;
  options.recovery.max_rounds = 1;
  const DcResult r = dc_operating_point(c, options);
  // Rung 3 is the relaxed-round Newton retry (the 4th attempt overall).
  EXPECT_EQ(r.recovery_rung(), 3);
  const std::vector<std::string> ladder = dc_recovery_ladder(options);
  ASSERT_GT(ladder.size(), 3u);
  EXPECT_EQ(ladder[3].rfind("newton[relaxed r1", 0), 0u);
  EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-6);
}

TEST(DcRecoveryTest, RecoveredSolveIsDeterministic) {
  for (int run = 0; run < 2; ++run) {
    FaultScope scope;
    fail_first_newton_calls(2);
    Circuit c = divider();
    const DcResult r = dc_operating_point(c);
    EXPECT_EQ(r.recovery_rung(), 2);
    EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Transient non-convergence path.

TEST(TransientRecoveryTest, StepHalvingRidesThroughTransientFaults) {
  FaultScope scope;
  // The first two transient Newton solves fail; the halved steps succeed
  // and the analysis completes.
  fail_first_newton_calls(2);
  Circuit c = divider();
  TransientOptions options;
  options.dt = 1e-9;
  options.t_stop = 1e-8;
  options.use_initial_conditions = true;  // skip the DC operating point
  const TransientResult r = transient_analysis(c, options, {c.node("b")});
  EXPECT_GT(r.step_count(), 0u);
  EXPECT_TRUE(r.converged());
}

TEST(TransientRecoveryTest, ExhaustedHalvingsThrowTypedErrorWithContext) {
  FaultScope scope;
  FaultRule rule;
  rule.nth = 1;
  rule.count = 1000;  // every newton_solve call fails
  relsim::testing::arm(FaultSite::kNewtonConverge, rule);
  Circuit c = divider();
  TransientOptions options;
  options.dt = 1e-9;
  options.t_stop = 1e-8;
  options.use_initial_conditions = true;
  options.max_step_halvings = 4;
  try {
    transient_analysis(c, options, {c.node("b")});
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 halvings"), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos) << what;
    EXPECT_NE(what.find("dt="), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Injected linear-algebra faults surface as typed errors.

TEST(FaultInjectionTest, DenseLuSiteThrowsSingular) {
  FaultScope scope;
  FaultRule rule;
  rule.nth = 1;
  relsim::testing::arm(FaultSite::kDenseLuFactor, rule);
  Circuit c = divider();
  // The dense path is used for small circuits; the injected singular pivot
  // is caught by newton_solve's fallback machinery or surfaces as a typed
  // error — never silently wrong data.
  try {
    const DcResult r = dc_operating_point(c);
    EXPECT_NEAR(r.v(c.node("b")), 0.5, 1e-6);
  } catch (const Error&) {
    SUCCEED();
  }
  EXPECT_GE(relsim::testing::fires(FaultSite::kDenseLuFactor), 1u);
}

}  // namespace
}  // namespace relsim::spice
