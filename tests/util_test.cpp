#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "util/crc32.h"
#include "util/error.h"
#include "util/log.h"
#include "util/mathx.h"
#include "util/table.h"
#include "util/units.h"

namespace relsim {
namespace {

TEST(Crc32Test, KnownAnswerVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "checkpoint integrity is not optional";
  std::uint32_t state = kCrc32Init;
  state = crc32_update(state, data.data(), 10);
  state = crc32_update(state, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 7);
  }
  const std::uint32_t clean = crc32(data.data(), data.size());
  for (std::size_t byte : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
    std::string flipped = data;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x01);
    EXPECT_NE(crc32(flipped.data(), flipped.size()), clean) << byte;
  }
}

TEST(ErrorTest, RequireThrowsWithContext) {
  try {
    RELSIM_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(ErrorTest, RequirePassesSilently) {
  EXPECT_NO_THROW(RELSIM_REQUIRE(true, "fine"));
}

TEST(MathxTest, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1 + 1e-12)));
}

TEST(MathxTest, LinspaceEndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(MathxTest, LinspaceSinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(MathxTest, LogspaceIsGeometric) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-7);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
}

TEST(MathxTest, LogspaceRejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), Error);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), Error);
}

TEST(MathxTest, SoftplusLimits) {
  // Far above zero: identity. Far below: ~0 but positive.
  EXPECT_NEAR(softplus(3.0, 0.05), 3.0, 1e-12);
  EXPECT_GT(softplus(-3.0, 0.05), 0.0);
  EXPECT_LT(softplus(-3.0, 0.05), 1e-12);
  // At zero: s*ln2.
  EXPECT_NEAR(softplus(0.0, 0.1), 0.1 * std::log(2.0), 1e-15);
}

TEST(MathxTest, SoftplusDerivMatchesFiniteDifference) {
  const double s = 0.04;
  for (double x : {-0.3, -0.05, 0.0, 0.02, 0.4}) {
    const double h = 1e-7;
    const double fd = (softplus(x + h, s) - softplus(x - h, s)) / (2 * h);
    EXPECT_NEAR(softplus_deriv(x, s), fd, 1e-6) << "x=" << x;
  }
}

TEST(MathxTest, SoftplusMonotone) {
  double prev = softplus(-1.0, 0.04);
  for (double x = -0.99; x <= 1.0; x += 0.01) {
    const double cur = softplus(x, 0.04);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MathxTest, Interp1InterpolatesAndClamps) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 5.0), 40.0);
}

TEST(UnitsTest, ThermalVoltageAt300K) {
  EXPECT_NEAR(units::thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(UnitsTest, CoxPerAreaForTwoNmOxide) {
  // eps0*3.9/2nm ~ 1.73e-2 F/m^2
  EXPECT_NEAR(units::cox_per_area(2.0), 1.726e-2, 1e-4);
}

TEST(TableTest, AlignedOutputContainsAllCells) {
  TablePrinter t({"a", "b"});
  t.add_row({std::string("x"), 1.25});
  t.add_row({std::string("longer"), 2.0});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({2.5, static_cast<long long>(7)});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n2.5,7\n");
}

TEST(TableTest, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), Error);
}

/// RAII: installs a capturing sink + permissive level, restores on exit.
class LogCapture {
 public:
  LogCapture() {
    previous_level_ = log_level();
    set_log_level(LogLevel::kDebug);
    set_log_sink([this](LogLevel level, const std::string& line) {
      lines_.push_back({level, line});
    });
  }
  ~LogCapture() {
    set_log_sink({});
    set_log_level(previous_level_);
  }
  const std::vector<std::pair<LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  LogLevel previous_level_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(LogTest, SinkCapturesFormattedLine) {
  LogCapture capture;
  log_warn("value=", 42, " name=", "x");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].first, LogLevel::kWarn);
  EXPECT_EQ(capture.lines()[0].second, "value=42 name=x");
}

TEST(LogTest, LevelFiltersBelowThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::kError);
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("kept");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "kept");
}

TEST(LogTest, EmptySinkRestoresDefaultWithoutCrashing) {
  {
    LogCapture capture;
    log_error("into sink");
  }
  // Back on the stderr default; must not call the destroyed capture.
  set_log_level(LogLevel::kOff);
  log_error("to stderr (suppressed by level)");
  set_log_level(LogLevel::kWarn);
}

TEST(LogTest, ConcurrentEmissionIsSerialized) {
  LogCapture capture;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) log_info("t", t, ".", i);
    });
  }
  for (auto& t : threads) t.join();
  // Every line arrives intact (the sink runs under the logger mutex, so
  // pushes never race) and nothing is lost or interleaved.
  ASSERT_EQ(capture.lines().size(),
            static_cast<std::size_t>(kThreads) * kLines);
  for (const auto& [level, line] : capture.lines()) {
    EXPECT_EQ(level, LogLevel::kInfo);
    EXPECT_EQ(line.front(), 't');
    EXPECT_NE(line.find('.'), std::string::npos);
  }
}

}  // namespace
}  // namespace relsim
