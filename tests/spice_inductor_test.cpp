#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "spice/ac_analysis.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/netlist_parser.h"
#include "spice/probes.h"
#include "util/error.h"
#include "util/mathx.h"

namespace relsim::spice {
namespace {

TEST(InductorTest, DcShort) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", in, kGround, 2.0);
  c.add_inductor("L1", in, mid, 1e-6);
  c.add_resistor("R1", mid, kGround, 1e3);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(mid), 2.0, 1e-6);  // inductor is a DC short
  const auto& l = c.device_as<Inductor>("L1");
  EXPECT_NEAR(l.current(r.x()), 2e-3, 1e-8);
}

TEST(InductorTest, RlRiseTimeMatchesAnalytic) {
  // Series R-L driven by a step: i(t) = (V/R)(1 - exp(-t R/L)).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", in, kGround,
                std::make_unique<PwlWaveform>(std::vector<double>{0.0, 1e-9},
                                              std::vector<double>{0.0, 1.0}));
  c.add_resistor("R1", in, mid, 100.0);
  c.add_inductor("L1", mid, kGround, 1e-6);  // tau = L/R = 10ns
  TransientOptions opt;
  opt.dt = 2e-10;
  opt.t_stop = 1e-7;
  opt.integrator = Integrator::kTrapezoidal;
  const auto res = transient_analysis(c, opt, {mid});
  // v(mid) = V * exp(-t/tau) after the step.
  const auto& t = res.time();
  const auto& v = res.node(mid);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 2e-9) continue;
    // The 1ns input ramp acts like a step at its midpoint (0.5ns).
    const double expected = std::exp(-(t[i] - 0.5e-9) / 1e-8);
    EXPECT_NEAR(v[i], expected, 0.02) << "t=" << t[i];
  }
}

TEST(InductorTest, BackwardEulerAlsoWorks) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_resistor("R1", in, mid, 100.0);
  c.add_inductor("L1", mid, kGround, 1e-6);
  TransientOptions opt;
  opt.dt = 2e-10;
  opt.t_stop = 1e-7;
  opt.integrator = Integrator::kBackwardEuler;
  const auto res = transient_analysis(c, opt, {mid});
  EXPECT_NEAR(res.node(mid).back(), 0.0, 0.01);  // settled: DC short
}

TEST(InductorTest, AcImpedanceRisesWithFrequency) {
  // L against R divider: |v(mid)| = |jwL| / |R + jwL|.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  auto& src = c.add_vsource("V1", in, kGround, 0.0);
  src.set_ac_magnitude(1.0);
  c.add_resistor("R1", in, mid, 1e3);
  c.add_inductor("L1", mid, kGround, 1e-3);
  const double fz = 1e3 / (2 * std::numbers::pi * 1e-3);  // |Z_L| = R
  const auto res = ac_analysis(c, {fz / 100.0, fz, 100.0 * fz});
  EXPECT_NEAR(std::abs(res.v(0, mid)), 0.01, 2e-3);
  EXPECT_NEAR(std::abs(res.v(1, mid)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(res.v(2, mid)), 1.0, 1e-3);
}

TEST(InductorTest, LcResonancePeaksAtF0) {
  // Series RLC driven through R: the cap voltage peaks near f0.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  const NodeId out = c.node("out");
  auto& src = c.add_vsource("V1", in, kGround, 0.0);
  src.set_ac_magnitude(1.0);
  c.add_resistor("R1", in, mid, 5.0);
  c.add_inductor("L1", mid, out, 1e-6);
  c.add_capacitor("C1", out, kGround, 1e-9);
  const double f0 = 1.0 / (2 * std::numbers::pi * std::sqrt(1e-6 * 1e-9));
  const auto res = ac_analysis(c, {f0 / 10.0, f0, 10.0 * f0});
  const double at_res = std::abs(res.v(1, out));
  // The cap voltage at series resonance peaks at Q = sqrt(L/C)/R = 6.3;
  // well below resonance it follows the input (~1), above it rolls off.
  EXPECT_GT(at_res, 2.0 * std::abs(res.v(0, out)));
  EXPECT_GT(at_res, 10.0 * std::abs(res.v(2, out)));
  EXPECT_NEAR(at_res, std::sqrt(1e-6 / 1e-9) / 5.0, 0.4);
}

TEST(InductorTest, NetlistCard) {
  const auto parsed = parse_netlist(R"(rl filter
V1 in 0 1
L1 in mid 10u
R1 mid 0 1k
)");
  const auto r = dc_operating_point(*parsed.circuit);
  EXPECT_NEAR(r.v(parsed.circuit->find_node("mid")), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(
      parsed.circuit->device_as<Inductor>("L1").inductance(), 1e-5);
}

TEST(InductorTest, InvalidValuesRejected) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add_inductor("L1", a, kGround, 0.0), Error);
  EXPECT_THROW(c.add_inductor("L2", a, a, 1e-6), Error);
}

}  // namespace
}  // namespace relsim::spice
