// obs::JsonValue parser tests: the inbound half of the service protocol.
//
// The high-stakes property is integer exactness — a seed above 2^53 that
// round-trips through double breaks the daemon's bit-identity guarantee —
// plus strict rejection of the malformed frames a flaky client can send.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json_value.h"
#include "obs/json_writer.h"

namespace relsim::obs {
namespace {

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("42").as_u64(), 42u);
  EXPECT_EQ(JsonValue::parse("-7").as_i64(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\\n\"").as_string(), "hi\n");
  EXPECT_EQ(JsonValue::parse("  \"pad\"  ").as_string(), "pad");
}

TEST(JsonValue, Uint64SeedsSurviveExactly) {
  // 2^53 + 1 is the first integer double cannot hold; a real base seed
  // (0xC0FFEE-derived or full-range) is far beyond it.
  const std::uint64_t seeds[] = {9007199254740993ull, 0xDEADBEEFCAFEBABEull,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t seed : seeds) {
    const JsonValue v = JsonValue::parse(std::to_string(seed));
    EXPECT_EQ(v.as_u64(), seed) << seed;
  }
  EXPECT_EQ(JsonValue::parse("-9223372036854775808").as_i64(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(JsonValue, RoundTripsJsonWriterOutput) {
  // The daemon replies through JsonWriter; its client parses with
  // JsonValue. The two halves must agree on every value shape.
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("id", "job-1");
  w.kv("seed", 18446744073709551615ull);
  w.kv("yield", 0.875);
  w.kv("done", true);
  w.key("values").begin_array();
  w.value(1.5);
  w.value(-3);
  w.end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  const JsonValue v = JsonValue::parse(os.str());
  EXPECT_EQ(v.get_string("id", ""), "job-1");
  EXPECT_EQ(v.get_u64("seed", 0), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(v.get_double("yield", 0.0), 0.875);
  EXPECT_TRUE(v.get_bool("done", false));
  const auto& values = v.find("values")->as_array();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0].as_double(), 1.5);
  EXPECT_EQ(values[1].as_i64(), -3);
}

TEST(JsonValue, ParsesNestedStructures) {
  const JsonValue v = JsonValue::parse(
      R"({"a": {"b": [1, 2, {"c": "deep"}]}, "empty_obj": {}, "empty_arr": []})");
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  const auto& b = a->find("b")->as_array();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2].get_string("c", ""), "deep");
  EXPECT_TRUE(v.find("empty_obj")->as_object().empty());
  EXPECT_TRUE(v.find("empty_arr")->as_array().empty());
}

TEST(JsonValue, DecodesEscapesAndUnicode) {
  EXPECT_EQ(JsonValue::parse(R"("\u0041\u00e9\u20ac")").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");
  EXPECT_EQ(JsonValue::parse(R"("\"\\\/\b\f\n\r\t")").as_string(),
            "\"\\/\b\f\n\r\t");
}

TEST(JsonValue, RejectsMalformedFrames) {
  const char* bad[] = {
      "",                        // empty frame
      "{",                       // truncated object
      "[1, 2",                   // truncated array
      "{\"a\": }",               // missing value
      "{\"a\": 1,}",             // trailing comma
      "{a: 1}",                  // unquoted key
      "\"unterminated",          // truncated string
      "12x",                     // garbage in number
      "1 2",                     // trailing token
      "{\"a\": 1} extra",        // trailing garbage
      "\"bad \\q escape\"",      // invalid escape
      "\"\\ud800\"",             // unpaired surrogate
      "nul",                     // truncated literal
      "--1",                     // invalid number
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), JsonParseError) << text;
  }
}

TEST(JsonValue, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(JsonValue::parse(deep), JsonParseError);
}

TEST(JsonValue, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = JsonValue::parse(R"({"s": "x", "neg": -1, "f": 1.5})");
  EXPECT_THROW(v.find("s")->as_u64(), JsonParseError);
  EXPECT_THROW(v.find("neg")->as_u64(), JsonParseError);
  EXPECT_THROW(v.find("f")->as_u64(), JsonParseError);
  EXPECT_THROW(v.find("s")->as_double(), JsonParseError);
  EXPECT_THROW(v.get_bool("s", false), JsonParseError);
  // Absent keys fall back instead of throwing.
  EXPECT_EQ(v.get_u64("missing", 7), 7u);
  EXPECT_EQ(v.get_string("missing", "d"), "d");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, SmallIntegersInterconvert) {
  // A small count may arrive as uint, int or whole double depending on the
  // client; all three must satisfy an as_u64 request.
  EXPECT_EQ(JsonValue::parse("5").as_u64(), 5u);
  EXPECT_EQ(JsonValue::parse("5").as_i64(), 5);
  EXPECT_EQ(JsonValue::parse("5.0").as_u64(), 5u);
  EXPECT_DOUBLE_EQ(JsonValue::parse("5").as_double(), 5.0);
}

}  // namespace
}  // namespace relsim::obs
