// Solver-cache lifecycle regression tests.
//
// Two bugs motivated these:
//  1. invalidate_structure() used to keep the recorded pattern entries, so
//     the capture pass after a topology change APPENDED to stale positions
//     — wasted fill-in at best, wrong structure at worst (branch-current
//     indices shift when a node is added, so old entries point at other
//     devices' rows).
//  2. A device whose stamp footprint grows MID-RUN without a topology
//     change (post-breakdown gate leakage switching on between transient
//     runs) stamps outside the frozen pattern; the assembly must grow the
//     pattern and keep going, not corrupt the matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"

namespace relsim::spice {
namespace {

TEST(SolverCache, InvalidateDropsRecordedPattern) {
  SolverCache cache;
  cache.pattern.add(0, 0);
  cache.pattern.add(1, 2);
  cache.pattern_valid = true;
  cache.pattern_n = 3;
  cache.invalidate_structure();
  EXPECT_FALSE(cache.pattern_valid);
  EXPECT_EQ(cache.pattern.entry_count(), 0u);
}

/// Shared builder so the staged and the fresh circuit agree exactly.
void add_base(Circuit& c, const TechNode& tech) {
  const NodeId vdd = c.node("vdd");
  const NodeId n1 = c.node("n1");
  const NodeId n2 = c.node("n2");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_resistor("R1", vdd, n1, 10e3);
  c.add_resistor("R2", n1, n2, 10e3);
  c.add_resistor("R3", n2, kGround, 10e3);
  c.add_mosfet("M1", out, n1, kGround, kGround,
               make_mos_params(tech, 1.0, 0.1, false));
  c.add_resistor("RL", vdd, out, 20e3);
}

void add_extra(Circuit& c, const TechNode& tech) {
  // A NEW node shifts every branch-current index, and the inductor adds a
  // branch of its own: stale pattern entries from the base topology would
  // land on rows that now belong to something else.
  const NodeId mid = c.node("mid");
  c.add_resistor("R4", c.find_node("out"), mid, 5e3);
  c.add_inductor("L1", mid, kGround, 1e-6);
  c.add_mosfet("M2", mid, c.find_node("n2"), kGround, kGround,
               make_mos_params(tech, 2.0, 0.1, false));
}

TEST(SolverCache, RebuildAfterInvalidateMatchesFreshBuild) {
  const auto& tech = tech_65nm();
  DcOptions dc;
  dc.newton.sparse_min_unknowns = 1;  // force the sparse path at any size

  // Staged: solve, grow the circuit (invalidates), solve again.
  Circuit staged;
  add_base(staged, tech);
  dc_operating_point(staged, dc);
  const std::size_t base_nnz = staged.solver_cache().matrix.nnz();
  add_extra(staged, tech);
  const DcResult r_staged = dc_operating_point(staged, dc);

  // Fresh: identical final topology, built and solved once.
  Circuit fresh;
  add_base(fresh, tech);
  add_extra(fresh, tech);
  const DcResult r_fresh = dc_operating_point(fresh, dc);

  // The rebuilt structure must be EXACTLY the fresh structure — no stale
  // entries surviving the invalidate.
  EXPECT_EQ(staged.solver_cache().matrix.nnz(),
            fresh.solver_cache().matrix.nnz());
  EXPECT_EQ(staged.solver_cache().pattern_n,
            fresh.solver_cache().pattern_n);
  EXPECT_GT(staged.solver_cache().matrix.nnz(), base_nnz);
  ASSERT_EQ(r_staged.x().size(), r_fresh.x().size());
  for (std::size_t i = 0; i < r_staged.x().size(); ++i) {
    EXPECT_NEAR(r_staged.x()[i], r_fresh.x()[i], 1e-9) << "unknown " << i;
  }
}

TEST(SolverCache, NewtonGrowsIncompleteFrozenPattern) {
  const auto& tech = tech_65nm();
  Circuit c;
  add_base(c, tech);
  c.assemble();
  const std::size_t n = static_cast<std::size_t>(c.unknown_count());

  // Hand the solver a frozen pattern that is missing every off-diagonal
  // coupling — the worst case of "a stamp lands outside the structure
  // mid-run". The assembly must grow the pattern and still converge to the
  // true solution, not corrupt the matrix or loop.
  SolverCache& cache = c.solver_cache();
  cache.invalidate_structure();
  cache.pattern.add_diagonal(n);
  cache.matrix = SparseMatrix(n, cache.pattern);
  cache.pattern_valid = true;
  cache.pattern_n = n;

  NewtonOptions newton;
  newton.sparse_min_unknowns = 1;
  Vector x(n, 0.0);
  const long builds_before = cache.stats.pattern_builds;
  const NewtonResult res =
      newton_solve(c, x, AnalysisMode::kDcOp, Integrator::kBackwardEuler, 0.0,
                   0.0, 1.0, newton.gmin, newton);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(cache.stats.pattern_builds, builds_before);

  Circuit fresh;
  add_base(fresh, tech);
  DcOptions dc;
  dc.newton.sparse_min_unknowns = 1;
  const DcResult r = dc_operating_point(fresh, dc);
  ASSERT_EQ(x.size(), r.x().size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], r.x()[i], 1e-9) << "unknown " << i;
  }
}

TEST(SolverCache, TransientSolvesPostBreakdownLeakOnFrozenPattern) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId gate = c.node("gate");
  const NodeId drain = c.node("drain");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_vsource("VIN", in, kGround, tech.vdd);
  c.add_resistor("RG", in, gate, 1e6);
  c.add_resistor("RD", vdd, drain, 10e3);
  c.add_mosfet("M1", drain, gate, kGround, kGround,
               make_mos_params(tech, 1.0, 0.1, false));

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 50e-9;
  opt.newton.sparse_min_unknowns = 1;

  // Fresh device: the gate floats behind RG at the full input voltage, and
  // this run freezes the pattern WITHOUT any gate-row leak entries.
  const auto fresh = transient_analysis(c, opt, {gate});
  EXPECT_NEAR(fresh.node(gate).back(), tech.vdd, 0.05);

  // Oxide breakdown mid-life: the leak stamps the GATE row, which the DC
  // channel stamp never touches. The capture pass records the union of the
  // DC and transient footprints (the gate-cap stamps cover those rows), so
  // the leak must assemble on the frozen pattern with NO rebuild — and the
  // leak must visibly load the gate (RG/leak divider). A miss here would
  // either grow the pattern (builds increase) or fail loudly; both would
  // flag a capture-pass regression.
  const long builds_before = c.solver_cache().stats.pattern_builds;
  MosDegradation bd;
  bd.g_leak_gs = 1e-5;  // 100 kOhm against RG = 1 MOhm
  c.device_as<Mosfet>("M1").set_degradation(bd);
  const auto degraded = transient_analysis(c, opt, {gate});
  EXPECT_EQ(c.solver_cache().stats.pattern_builds, builds_before);
  EXPECT_LT(degraded.node(gate).back(), 0.25 * tech.vdd);
  EXPECT_NEAR(degraded.node(gate).back(), tech.vdd * (0.1 / 1.1), 0.02);
}

}  // namespace
}  // namespace relsim::spice
