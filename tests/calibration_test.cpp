#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "calibration/dac.h"
#include "calibration/sspa.h"
#include "rng/distributions.h"
#include "util/error.h"
#include "variability/montecarlo.h"
#include "variability/pelgrom.h"

namespace relsim::calibration {
namespace {

DacConfig small_config(double sigma = 2e-3) {
  DacConfig c;
  c.total_bits = 10;  // keep tests fast; benches use the paper's 14 bits
  c.unary_bits = 5;
  c.sigma_unit_rel = sigma;
  return c;
}

TEST(DacTest, PerfectDacIsPerfectlyLinear) {
  Xoshiro256 rng(1);
  CurrentSteeringDac dac(small_config(0.0), rng);
  const auto lin = dac.linearity();
  EXPECT_NEAR(lin.inl_max_abs, 0.0, 1e-9);
  EXPECT_NEAR(lin.dnl_max_abs, 0.0, 1e-9);
  // Full-scale: (levels-1) * lsb.
  EXPECT_NEAR(dac.output(dac.config().levels() - 1),
              (dac.config().levels() - 1) * dac.config().lsb_current_a,
              1e-15);
}

TEST(DacTest, OutputIsMonotoneInCodeForSmallMismatch) {
  Xoshiro256 rng(2);
  CurrentSteeringDac dac(small_config(1e-3), rng);
  double prev = -1.0;
  for (int code = 0; code < dac.config().levels(); ++code) {
    const double v = dac.output(code);
    EXPECT_GT(v, prev) << "code " << code;
    prev = v;
  }
}

TEST(DacTest, SegmentationDecomposition) {
  Xoshiro256 rng(3);
  CurrentSteeringDac dac(small_config(0.0), rng);
  const int lsb_bits = dac.config().binary_bits();
  // code 3*2^lsb + 5 = three unary sources + binary pattern 5.
  const int code = 3 * (1 << lsb_bits) + 5;
  EXPECT_NEAR(dac.output(code),
              dac.config().lsb_current_a * (3 * (1 << lsb_bits) + 5), 1e-15);
}

TEST(DacTest, InlEndpointsAreZero) {
  Xoshiro256 rng(4);
  CurrentSteeringDac dac(small_config(5e-3), rng);
  const auto inl = dac.inl_lsb();
  EXPECT_NEAR(inl.front(), 0.0, 1e-12);
  EXPECT_NEAR(inl.back(), 0.0, 1e-12);
}

TEST(DacTest, InvalidSequenceRejected) {
  Xoshiro256 rng(5);
  CurrentSteeringDac dac(small_config(), rng);
  std::vector<int> bad(static_cast<std::size_t>(dac.config().unary_sources()),
                       0);
  EXPECT_THROW(dac.set_switching_sequence(bad), Error);
  EXPECT_THROW(dac.set_switching_sequence({0, 1}), Error);
}

TEST(SspaTest, SequenceIsPermutation) {
  const std::vector<double> errors{0.01, -0.02, 0.005, -0.001, 0.03};
  auto seq = sspa_sequence(errors);
  ASSERT_EQ(seq.size(), errors.size());
  std::sort(seq.begin(), seq.end());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], static_cast<int>(i));
}

TEST(SspaTest, GreedyKeepsCumulativeErrorBounded) {
  Xoshiro256 rng(6);
  NormalDistribution dist(0.0, 0.01);
  std::vector<double> errors;
  for (int i = 0; i < 63; ++i) errors.push_back(dist(rng));
  const auto seq = sspa_sequence(errors);
  // Max deviation of the cumulative error from the endpoint line (the
  // INL-relevant quantity), SSPA order vs natural order.
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= static_cast<double>(errors.size());
  auto max_dev = [&](const std::vector<int>& order) {
    double cum = 0.0, worst = 0.0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      cum += errors[static_cast<std::size_t>(order[k])];
      worst = std::max(worst,
                       std::abs(cum - mean * static_cast<double>(k + 1)));
    }
    return worst;
  };
  EXPECT_LT(max_dev(seq), 0.3 * max_dev(natural_sequence(63)));
}

TEST(SspaTest, CalibrationImprovesInl) {
  Xoshiro256 rng(7);
  CurrentSteeringDac dac(small_config(8e-3), rng);
  const double inl_before = dac.linearity().inl_max_abs;
  Xoshiro256 cal_rng(8);
  calibrate_sspa(dac, 0.0, cal_rng);
  const double inl_after = dac.linearity().inl_max_abs;
  EXPECT_LT(inl_after, 0.5 * inl_before);
}

TEST(SspaTest, ImprovementHoldsAcrossSeeds) {
  // Property: for every sampled DAC, SSPA never makes INL worse and on
  // average improves it a lot.
  MonteCarloEngine mc(99);
  int improved = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    Xoshiro256 rng = mc.rng_for(static_cast<std::size_t>(i));
    CurrentSteeringDac dac(small_config(5e-3), rng);
    const double before = dac.linearity().inl_max_abs;
    calibrate_sspa(dac, 0.0, rng);
    const double after = dac.linearity().inl_max_abs;
    EXPECT_LE(after, before * 1.05) << "seed " << i;
    if (after < 0.7 * before) ++improved;
  }
  EXPECT_GT(improved, n * 3 / 4);
}

TEST(SspaTest, MeasurementNoiseDegradesCalibration) {
  MonteCarloEngine mc(123);
  double clean = 0.0, noisy = 0.0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    Xoshiro256 rng1 = mc.rng_for(static_cast<std::size_t>(i));
    CurrentSteeringDac d1(small_config(8e-3), rng1);
    Xoshiro256 rng2 = mc.rng_for(static_cast<std::size_t>(i));
    CurrentSteeringDac d2(small_config(8e-3), rng2);
    Xoshiro256 cal(1000 + static_cast<std::uint64_t>(i));
    calibrate_sspa(d1, 0.0, cal);
    calibrate_sspa(d2, 4e-2, cal);  // comparator noise >> source spread
    clean += d1.linearity().inl_max_abs;
    noisy += d2.linearity().inl_max_abs;
  }
  EXPECT_LT(clean, noisy);
}

TEST(SizingTest, IntrinsicSigmaShrinksWithResolution) {
  const double s10 = required_unit_sigma_intrinsic(10, 0.5, 3.0);
  const double s14 = required_unit_sigma_intrinsic(14, 0.5, 3.0);
  EXPECT_NEAR(s10 / s14, 4.0, 1e-9);  // sqrt(2^4)
  EXPECT_LT(s14, 4e-3);  // 2*0.5/(3*sqrt(2^14)) ~ 2.6e-3
}

TEST(SizingTest, AreaComparisonStructure) {
  const PelgromModel pelgrom(PelgromParams{});  // defaults
  DacConfig cfg;
  cfg.total_bits = 14;
  cfg.unary_bits = 6;
  const double s_int = required_unit_sigma_intrinsic(14, 0.5, 3.0);
  const auto cmp = compare_analog_area(cfg, pelgrom, s_int, 16.0 * s_int,
                                       s_int);
  // 16x sigma relaxation -> 256x less cell area; with comparator overhead
  // the total lands in the percent range like Fig. 5 reports (~6%).
  EXPECT_LT(cmp.area_ratio(), 0.15);
  EXPECT_GT(cmp.area_ratio(), 0.001);
  EXPECT_GT(cmp.area_intrinsic_mm2, cmp.area_calibrated_mm2);
}

TEST(SizingTest, UnitCellAreaFollowsPelgrom) {
  const PelgromModel pelgrom(PelgromParams{});
  // Halving sigma quadruples the area.
  EXPECT_NEAR(unit_cell_area_um2(pelgrom, 1e-3) /
                  unit_cell_area_um2(pelgrom, 2e-3),
              4.0, 1e-9);
}

}  // namespace
}  // namespace relsim::calibration
