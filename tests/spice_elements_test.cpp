#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/probes.h"
#include "util/error.h"

namespace relsim::spice {
namespace {

TEST(WaveformTest, SineValueAndDc) {
  const SineWaveform s(0.5, 0.2, 1e6);
  EXPECT_DOUBLE_EQ(s.dc_value(), 0.5);
  EXPECT_NEAR(s.value(0.25e-6), 0.7, 1e-12);   // quarter period: +amplitude
  EXPECT_NEAR(s.value(0.75e-6), 0.3, 1e-12);
}

TEST(WaveformTest, SineDelayHoldsOffset) {
  const SineWaveform s(1.0, 0.5, 1e6, 2e-6);
  EXPECT_DOUBLE_EQ(s.value(1e-6), 1.0);
  EXPECT_NEAR(s.value(2e-6 + 0.25e-6), 1.5, 1e-12);
}

TEST(WaveformTest, PulseShape) {
  const PulseWaveform p(0.0, 1.0, /*delay*/ 1e-9, /*rise*/ 1e-10,
                        /*fall*/ 1e-10, /*width*/ 5e-10, /*period*/ 2e-9);
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
  EXPECT_NEAR(p.value(1e-9 + 5e-11), 0.5, 1e-9);        // mid rise
  EXPECT_DOUBLE_EQ(p.value(1e-9 + 3e-10), 1.0);         // plateau
  EXPECT_DOUBLE_EQ(p.value(1e-9 + 1e-9), 0.0);          // after fall
  EXPECT_DOUBLE_EQ(p.value(1e-9 + 2e-9 + 3e-10), 1.0);  // next period
}

TEST(WaveformTest, PwlInterpolatesAndClamps) {
  const PwlWaveform w({0.0, 1.0, 2.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), 0.0);
}

TEST(DcTest, VoltageDivider) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", in, kGround, 10.0);
  c.add_resistor("R1", in, mid, 1000.0);
  c.add_resistor("R2", mid, kGround, 3000.0);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(mid), 7.5, 1e-6);
  EXPECT_NEAR(r.v(in), 10.0, 1e-6);
}

TEST(DcTest, VsourceBranchCurrentSign) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("V1", in, kGround, 5.0);
  c.add_resistor("R1", in, kGround, 1000.0);
  const DcResult r = dc_operating_point(c);
  // 5 mA flows out of the + terminal into the resistor, so the branch
  // current (+ terminal -> through source) is -5 mA.
  const auto& v1 = c.device_as<VoltageSource>("V1");
  EXPECT_NEAR(v1.current(r.x()), -5e-3, 1e-9);
}

TEST(DcTest, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId out = c.node("out");
  c.add_isource("I1", kGround, out, 2e-3);
  c.add_resistor("R1", out, kGround, 500.0);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(out), 1.0, 1e-9);
}

TEST(DcTest, VcvsGain) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround, 0.1);
  c.add_vcvs("E1", out, kGround, in, kGround, -25.0);
  c.add_resistor("RL", out, kGround, 1e4);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(out), -2.5, 1e-9);
}

TEST(DcTest, DiodeForwardDrop) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add_vsource("V1", in, kGround, 5.0);
  c.add_resistor("R1", in, a, 1000.0);
  c.add_diode("D1", a, kGround);
  const DcResult r = dc_operating_point(c);
  // Forward drop of a 1e-14 A diode at ~4.4 mA is ~0.69 V.
  EXPECT_GT(r.v(a), 0.6);
  EXPECT_LT(r.v(a), 0.75);
  // KCL: resistor current equals diode current.
  const auto& d = c.device_as<Diode>("D1");
  EXPECT_NEAR(d.current_at(r.v(a)), (5.0 - r.v(a)) / 1000.0, 1e-9);
}

TEST(DcTest, DiodeReverseBlocksCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add_vsource("V1", in, kGround, -5.0);
  c.add_resistor("R1", in, a, 1000.0);
  c.add_diode("D1", a, kGround);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(a), -5.0, 1e-3);  // almost no drop across R
}

TEST(DcSweepTest, DividerScalesLinearly) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  auto& v1 = c.add_vsource("V1", in, kGround, 0.0);
  c.add_resistor("R1", in, mid, 1000.0);
  c.add_resistor("R2", mid, kGround, 1000.0);
  const auto results = dc_sweep(c, v1, {0.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(results.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(results[i].v(mid), 0.5 * i, 1e-9);
}

TEST(TransientTest, RcChargingMatchesAnalytic) {
  // 1k / 1nF driven by a 1V step (via PWL with a fast ramp).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround,
                std::make_unique<PwlWaveform>(std::vector<double>{0.0, 1e-9},
                                              std::vector<double>{0.0, 1.0}));
  c.add_resistor("R1", in, out, 1000.0);
  c.add_capacitor("C1", out, kGround, 1e-9);

  TransientOptions opt;
  opt.dt = 2e-9;
  opt.t_stop = 5e-6;
  opt.integrator = Integrator::kTrapezoidal;
  const auto res = transient_analysis(c, opt, {out});
  const auto& t = res.time();
  const auto& v = res.node(out);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 2e-9) continue;
    const double expected = 1.0 - std::exp(-(t[i] - 1e-9) / 1e-6);
    EXPECT_NEAR(v[i], expected, 5e-3) << "t=" << t[i];
  }
  // Fully settled at the end.
  EXPECT_NEAR(v.back(), 1.0, 1e-2);
}

TEST(TransientTest, BackwardEulerAlsoConverges) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_resistor("R1", in, out, 1000.0);
  c.add_capacitor("C1", out, kGround, 1e-9);
  TransientOptions opt;
  opt.dt = 1e-8;
  opt.t_stop = 1e-5;
  opt.integrator = Integrator::kBackwardEuler;
  opt.use_initial_conditions = true;  // cap starts at 0, steps toward 1V
  const auto res = transient_analysis(c, opt, {out});
  EXPECT_NEAR(res.node(out).back(), 1.0, 1e-2);
}

TEST(TransientTest, SineThroughRcAttenuates) {
  // 1 MHz sine through RC with pole at ~159 kHz: gain ~ 1/sqrt(1+(f/fc)^2).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround,
                std::make_unique<SineWaveform>(0.0, 1.0, 1e6));
  c.add_resistor("R1", in, out, 1000.0);
  c.add_capacitor("C1", out, kGround, 1e-9);
  TransientOptions opt;
  opt.dt = 2e-9;
  opt.t_stop = 1e-5;
  const auto res = transient_analysis(c, opt, {out});
  const double amp =
      0.5 * peak_to_peak(res.time(), res.node(out), 5e-6, 1e-5);
  const double fc = 1.0 / (2 * std::numbers::pi * 1000.0 * 1e-9);
  const double expected = 1.0 / std::sqrt(1.0 + std::pow(1e6 / fc, 2));
  EXPECT_NEAR(amp, expected, 0.01);
}

TEST(WireStressTest, RmsOfSineCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("V1", in, kGround,
                std::make_unique<SineWaveform>(0.0, 1.0, 1e6));
  auto& r = c.add_resistor("R1", in, kGround, 100.0);
  r.set_wire_geometry({1.0, 50.0, 0.5});
  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 5e-6;  // 5 full periods
  transient_analysis(c, opt, {});
  EXPECT_NEAR(r.stress().rms_current(), 1e-2 / std::sqrt(2.0), 2e-4);
  EXPECT_NEAR(r.stress().mean_current(), 0.0, 1e-4);
  EXPECT_NEAR(r.stress().peak_abs_current(), 1e-2, 1e-4);
}

TEST(ProbesTest, FrequencyEstimator) {
  std::vector<double> t, v;
  const double f = 3e6;
  for (int i = 0; i <= 3000; ++i) {
    t.push_back(i * 1e-9);
    v.push_back(std::sin(2 * std::numbers::pi * f * t.back()));
  }
  EXPECT_NEAR(estimate_frequency(t, v, 0.0, 3e-6), f, 1e4);
}

TEST(CircuitTest, DuplicateDeviceNameThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1.0);
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 2.0), Error);
}

TEST(CircuitTest, NodeNamesRoundTrip) {
  Circuit c;
  const NodeId a = c.node("alpha");
  EXPECT_EQ(c.node("alpha"), a);
  EXPECT_EQ(c.find_node("alpha"), a);
  EXPECT_EQ(c.node_name(a), "alpha");
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_THROW(c.find_node("nope"), Error);
}

TEST(CircuitTest, DeviceTypedLookup) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1.0);
  EXPECT_NO_THROW(c.device_as<Resistor>("R1"));
  EXPECT_THROW(c.device_as<Capacitor>("R1"), Error);
}

}  // namespace
}  // namespace relsim::spice
