#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/probes.h"
#include "tech/tech.h"

namespace relsim::spice {
namespace {

void add_inverter(Circuit& c, const TechNode& tech, const std::string& prefix,
                  NodeId vdd, NodeId in, NodeId out, double cap_scale = 1.0) {
  auto n = make_mos_params(tech, 1.0, 0.1, false);
  auto p = make_mos_params(tech, 2.0, 0.1, true);
  n.cap_scale = cap_scale;
  p.cap_scale = cap_scale;
  c.add_mosfet(prefix + "_n", out, in, kGround, kGround, n);
  c.add_mosfet(prefix + "_p", out, in, vdd, vdd, p);
}

TEST(TransientMosTest, InverterSwitchesWithPulseInput) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_vsource("VIN", in, kGround,
                std::make_unique<PulseWaveform>(0.0, tech.vdd, 1e-9, 50e-12,
                                                50e-12, 4e-9, 10e-9));
  add_inverter(c, tech, "inv", vdd, in, out);
  c.add_capacitor("CL", out, kGround, 10e-15);

  TransientOptions opt;
  opt.dt = 20e-12;
  opt.t_stop = 10e-9;
  const auto res = transient_analysis(c, opt, {out});
  const auto& t = res.time();
  const auto& v = res.node(out);
  // Before the pulse: out high. During the pulse plateau: out low.
  EXPECT_NEAR(v[1], tech.vdd, 0.05);
  double v_mid_pulse = -1.0, v_after = -1.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std::abs(t[i] - 3e-9) < 30e-12) v_mid_pulse = v[i];
    if (std::abs(t[i] - 9e-9) < 30e-12) v_after = v[i];
  }
  EXPECT_NEAR(v_mid_pulse, 0.0, 0.05);
  EXPECT_NEAR(v_after, tech.vdd, 0.05);
}

TEST(TransientMosTest, PropagationDelayGrowsWithLoad) {
  const auto& tech = tech_90nm();
  auto delay_for = [&](double cl) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    c.add_vsource("VIN", in, kGround,
                  std::make_unique<PulseWaveform>(0.0, tech.vdd, 1e-9, 20e-12,
                                                  20e-12, 5e-9, 20e-9));
    add_inverter(c, tech, "inv", vdd, in, out);
    c.add_capacitor("CL", out, kGround, cl);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = 4e-9;
    const auto res = transient_analysis(c, opt, {out});
    // 50% crossing time of the falling output after the input rise at 1ns.
    const double half = 0.5 * tech.vdd;
    const auto& t = res.time();
    const auto& v = res.node(out);
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (t[i] > 1e-9 && v[i - 1] >= half && v[i] < half) {
        return t[i] - (1e-9 + 10e-12);
      }
    }
    return -1.0;
  };
  const double d1 = delay_for(5e-15);
  const double d2 = delay_for(20e-15);
  ASSERT_GT(d1, 0.0);
  ASSERT_GT(d2, 0.0);
  // Internal device capacitances add to CL, so the ratio is below 4x.
  EXPECT_GT(d2, 1.5 * d1);
}

TEST(TransientMosTest, RingOscillatorOscillates) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  const int stages = 5;
  std::vector<NodeId> nodes;
  for (int i = 0; i < stages; ++i) nodes.push_back(c.node("n" + std::to_string(i)));
  for (int i = 0; i < stages; ++i) {
    add_inverter(c, tech, "inv" + std::to_string(i), vdd, nodes[i],
                 nodes[(i + 1) % stages]);
    c.add_capacitor("cl" + std::to_string(i), nodes[(i + 1) % stages], kGround,
                    5e-15);
  }
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 3e-9;
  opt.use_initial_conditions = true;
  for (int i = 0; i < stages; ++i) {
    opt.initial_conditions[nodes[i]] = (i % 2 == 0) ? 0.0 : tech.vdd;
  }
  opt.initial_conditions[vdd] = tech.vdd;
  const auto res = transient_analysis(c, opt, {nodes[0]});
  const double f =
      estimate_frequency(res.time(), res.node(nodes[0]), 1e-9, 3e-9);
  EXPECT_GT(f, 5e8);   // oscillates at a plausible GHz-range frequency
  EXPECT_LT(f, 5e10);
  // Rail-to-rail-ish swing.
  EXPECT_GT(peak_to_peak(res.time(), res.node(nodes[0]), 1e-9, 3e-9),
            0.8 * tech.vdd);
}

TEST(TransientMosTest, RingFrequencyDropsWithVtShift) {
  const auto& tech = tech_90nm();
  auto freq_for = [&](double dvt) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    const int stages = 5;
    std::vector<NodeId> nodes;
    for (int i = 0; i < stages; ++i)
      nodes.push_back(c.node("n" + std::to_string(i)));
    for (int i = 0; i < stages; ++i) {
      add_inverter(c, tech, "inv" + std::to_string(i), vdd, nodes[i],
                   nodes[(i + 1) % stages]);
      c.add_capacitor("cl" + std::to_string(i), nodes[(i + 1) % stages],
                      kGround, 5e-15);
    }
    MosDegradation d;
    d.dvt = dvt;
    for (Mosfet* m : c.mosfets()) m->set_degradation(d);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 3e-9;
    opt.use_initial_conditions = true;
    for (int i = 0; i < stages; ++i) {
      opt.initial_conditions[nodes[i]] = (i % 2 == 0) ? 0.0 : tech.vdd;
    }
    opt.initial_conditions[vdd] = tech.vdd;
    const auto res = transient_analysis(c, opt, {nodes[0]});
    return estimate_frequency(res.time(), res.node(nodes[0]), 1e-9, 3e-9);
  };
  const double f_fresh = freq_for(0.0);
  const double f_aged = freq_for(0.08);
  ASSERT_GT(f_fresh, 0.0);
  ASSERT_GT(f_aged, 0.0);
  // NBTI/HCI threshold shifts slow digital circuits down (paper Sec. 3).
  EXPECT_LT(f_aged, 0.92 * f_fresh);
}

TEST(TransientMosTest, StressRecordingDutyMatchesInput) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  // 30% duty square-ish wave.
  c.add_vsource("VIN", in, kGround,
                std::make_unique<PulseWaveform>(0.0, tech.vdd, 0.0, 10e-12,
                                                10e-12, 3e-9, 10e-9));
  add_inverter(c, tech, "inv", vdd, in, out);
  c.add_capacitor("CL", out, kGround, 5e-15);
  c.enable_stress_recording();
  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 50e-9;  // 5 periods
  transient_analysis(c, opt, {});
  auto& mn = c.device_as<Mosfet>("inv_n");
  auto& mp = c.device_as<Mosfet>("inv_p");
  // NMOS sees |vgs| = vdd for ~30% of the time; PMOS for ~70%.
  EXPECT_NEAR(mn.stress().duty(), 0.3, 0.05);
  EXPECT_NEAR(mp.stress().duty(), 0.7, 0.05);
  EXPECT_NEAR(mn.stress().mean_on_abs_vgs(), tech.vdd, 0.05);
  EXPECT_GT(mn.stress().max_abs_vds(), 0.9 * tech.vdd);
}

TEST(TransientMosTest, DcStressPointRecording) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId d = c.node("d");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_resistor("R1", vdd, d, 10e3);
  auto& m = c.add_mosfet("M1", d, d, kGround, kGround,
                         make_mos_params(tech, 2.0, 0.2, false));
  const DcResult r = dc_operating_point(c);
  m.record_stress_point(r.x(), 3600.0);
  EXPECT_DOUBLE_EQ(m.stress().observed_time(), 3600.0);
  EXPECT_NEAR(m.stress().mean_abs_vgs(), r.v(d), 1e-9);
  EXPECT_DOUBLE_EQ(m.stress().duty(), 1.0);
}

}  // namespace
}  // namespace relsim::spice
