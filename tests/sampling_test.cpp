// Variance-reduction sampling contracts (sample_strategy.h, rng/lowdisc.h
// and their McSession integration):
//  * every strategy keeps the bit-identity invariant: any worker count,
//    chunk size or partition produces the same estimate, interval and
//    per-sample values;
//  * the low-discrepancy point sets hold their defining properties (LHS
//    stratifies every dimension exactly, Sobol' is dyadically balanced);
//  * a zero mean-shift importance run degenerates to the plain run;
//  * checkpoints carry the strategy identity (and the likelihood-ratio
//    weights) — resuming under a different strategy is refused, and a
//    killed importance run resumes to the bit-exact result;
//  * stratified/importance are yield-run strategies and reject metric runs;
//  * censored weighted samples follow the requested CensoredPolicy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "rng/lowdisc.h"
#include "stats/summary.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim {
namespace {

McRequest base_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = 2;
  req.chunk = 16;
  return req;
}

/// Scratch checkpoint path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A 2-D tail event whose inputs go through the tracked dims.
bool tail_event(McSamplePoint& p) {
  return 0.8 * p.normal(0) + 0.6 * p.normal(1) > 2.0;
}

SampleStrategyConfig lhs_config(unsigned dims) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kLatinHypercube;
  c.dimensions = dims;
  return c;
}

SampleStrategyConfig sobol_config(unsigned dims) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kSobol;
  c.dimensions = dims;
  return c;
}

SampleStrategyConfig stratified_config() {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kStratified;
  c.strata = {{"bulk", 0.9, 0.5}, {"tail", 0.1, 0.5}};
  return c;
}

SampleStrategyConfig importance_config(std::vector<double> shift) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kImportance;
  c.shift = std::move(shift);
  return c;
}

// ---------------------------------------------------------------------------
// Low-discrepancy point sets

TEST(LatinHypercubeTest, EveryDimensionIsStratifiedExactlyOnce) {
  const std::size_t n = 32;
  const LatinHypercube lhs(n, 3, 42);
  for (unsigned d = 0; d < 3; ++d) {
    std::vector<int> hits(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = lhs.point(i)[d];
      ASSERT_GE(x, 0.0);
      ASSERT_LT(x, 1.0);
      const auto slice = static_cast<std::size_t>(x * n);
      EXPECT_EQ(slice, lhs.stratum(i, d));
      ++hits[slice];
    }
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(hits[s], 1) << "dim=" << d << " slice=" << s;
    }
  }
}

TEST(LatinHypercubeTest, PointsAreAPureFunctionOfIndex) {
  const LatinHypercube a(64, 2, 7), b(64, 2, 7), other(64, 2, 8);
  EXPECT_EQ(a.point(5), b.point(5));
  EXPECT_EQ(a.point(63), b.point(63));
  bool differs = false;
  for (std::size_t i = 0; i < 64 && !differs; ++i) {
    differs = a.point(i) != other.point(i);
  }
  EXPECT_TRUE(differs) << "seed must reshuffle the hypercube";
}

TEST(SobolTest, DyadicIntervalsAreBalanced) {
  // The first 2^k points form a (t,k)-net in base 2: every dyadic interval
  // of width 2^-m holds exactly 2^(k-m) points — and a digital shift maps
  // dyadic intervals onto dyadic intervals, so the scrambled net keeps the
  // property.
  for (std::uint64_t scramble : {std::uint64_t{0}, std::uint64_t{99}}) {
    const SobolSequence sobol(4, scramble);
    for (unsigned d = 0; d < 4; ++d) {
      std::vector<int> hits(8, 0);
      for (std::uint64_t i = 0; i < 64; ++i) {
        const double x = sobol.coordinate(i, d);
        ASSERT_GT(x, 0.0);
        ASSERT_LT(x, 1.0);
        ++hits[static_cast<std::size_t>(x * 8.0)];
      }
      for (int h : hits) {
        EXPECT_EQ(h, 8) << "dim=" << d << " scramble=" << scramble;
      }
    }
  }
}

TEST(SobolTest, ScrambleSeedChangesThePointsDeterministically) {
  const SobolSequence a(2, 5), b(2, 5), c(2, 6);
  EXPECT_EQ(a.coordinate(17, 1), b.coordinate(17, 1));
  bool differs = false;
  for (std::uint64_t i = 0; i < 32 && !differs; ++i) {
    differs = a.coordinate(i, 0) != c.coordinate(i, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(SobolTest, OriginalTwentyOneDimensionsAreBitIdenticalToTheOldTable) {
  // Golden double bit patterns captured from the 21-dimension build before
  // the table was extended to 64 dimensions: the extension must not change
  // a single existing draw (appended rows only).
  struct Golden {
    std::uint64_t seed;
    std::uint64_t index;
    unsigned dim;
    std::uint64_t bits;
  };
  static const Golden kGolden[] = {
      {0ull, 0ull, 0, 0x3de0000000000000ull},
      {0ull, 0ull, 5, 0x3de0000000000000ull},
      {0ull, 0ull, 10, 0x3de0000000000000ull},
      {0ull, 0ull, 15, 0x3de0000000000000ull},
      {0ull, 0ull, 20, 0x3de0000000000000ull},
      {0ull, 1ull, 0, 0x3fe0000000100000ull},
      {0ull, 1ull, 5, 0x3fe0000000100000ull},
      {0ull, 1ull, 10, 0x3fe0000000100000ull},
      {0ull, 1ull, 15, 0x3fe0000000100000ull},
      {0ull, 1ull, 20, 0x3fe0000000100000ull},
      {0ull, 2ull, 0, 0x3fd0000000200000ull},
      {0ull, 2ull, 5, 0x3fd0000000200000ull},
      {0ull, 2ull, 10, 0x3fd0000000200000ull},
      {0ull, 2ull, 15, 0x3fe8000000100000ull},
      {0ull, 2ull, 20, 0x3fe8000000100000ull},
      {0ull, 3ull, 0, 0x3fe8000000100000ull},
      {0ull, 3ull, 5, 0x3fe8000000100000ull},
      {0ull, 3ull, 10, 0x3fe8000000100000ull},
      {0ull, 3ull, 15, 0x3fd0000000200000ull},
      {0ull, 3ull, 20, 0x3fd0000000200000ull},
      {0ull, 7ull, 0, 0x3fec000000100000ull},
      {0ull, 7ull, 5, 0x3fe4000000100000ull},
      {0ull, 7ull, 10, 0x3fd8000000200000ull},
      {0ull, 7ull, 15, 0x3fd8000000200000ull},
      {0ull, 7ull, 20, 0x3fe4000000100000ull},
      {0ull, 100ull, 0, 0x3fc3000000400000ull},
      {0ull, 100ull, 5, 0x3fb2000000800000ull},
      {0ull, 100ull, 10, 0x3fd4800000200000ull},
      {0ull, 100ull, 15, 0x3fe4400000100000ull},
      {0ull, 100ull, 20, 0x3fc5000000400000ull},
      {0ull, 1023ull, 0, 0x3feff80000100000ull},
      {0ull, 1023ull, 5, 0x3fd0700000200000ull},
      {0ull, 1023ull, 10, 0x3fd4d00000200000ull},
      {0ull, 1023ull, 15, 0x3fe7880000100000ull},
      {0ull, 1023ull, 20, 0x3fe3e80000100000ull},
      {0ull, 65536ull, 0, 0x3ee0001000000000ull},
      {0ull, 65536ull, 5, 0x3fd2002000200000ull},
      {0ull, 65536ull, 10, 0x3fcf06c000400000ull},
      {0ull, 65536ull, 15, 0x3feab4f000100000ull},
      {0ull, 65536ull, 20, 0x3fd260e000200000ull},
      {0ull, 123456789ull, 0, 0x3fe5167b5c100000ull},
      {0ull, 123456789ull, 5, 0x3fe6f8ead4100000ull},
      {0ull, 123456789ull, 10, 0x3fcdbb1dd0400000ull},
      {0ull, 123456789ull, 15, 0x3fb056ac60800000ull},
      {0ull, 123456789ull, 20, 0x3fd35c40d8200000ull},
      {42ull, 0ull, 0, 0x3feb921541d00000ull},
      {42ull, 0ull, 5, 0x3fee495646700000ull},
      {42ull, 0ull, 10, 0x3fd3d4a2e4600000ull},
      {42ull, 0ull, 15, 0x3f3662eb80000000ull},
      {42ull, 0ull, 20, 0x3fe28dc553f00000ull},
      {42ull, 1ull, 0, 0x3fd7242a83a00000ull},
      {42ull, 1ull, 5, 0x3fdc92ac8ce00000ull},
      {42ull, 1ull, 10, 0x3fe9ea5172300000ull},
      {42ull, 1ull, 15, 0x3fe002cc5d700000ull},
      {42ull, 1ull, 20, 0x3fb46e2a9f800000ull},
      {42ull, 2ull, 0, 0x3fe3921541d00000ull},
      {42ull, 2ull, 5, 0x3fe6495646700000ull},
      {42ull, 2ull, 10, 0x3faea51723000000ull},
      {42ull, 2ull, 15, 0x3fe802cc5d700000ull},
      {42ull, 2ull, 20, 0x3fd51b8aa7e00000ull},
      {42ull, 3ull, 0, 0x3fbc90aa0e800000ull},
      {42ull, 3ull, 5, 0x3fc9255919c00000ull},
      {42ull, 3ull, 10, 0x3fe1ea5172300000ull},
      {42ull, 3ull, 15, 0x3fd00598bae00000ull},
      {42ull, 3ull, 20, 0x3fea8dc553f00000ull},
      {42ull, 7ull, 0, 0x3fce485507400000ull},
      {42ull, 7ull, 5, 0x3fd492ac8ce00000ull},
      {42ull, 7ull, 10, 0x3fc7a945c8c00000ull},
      {42ull, 7ull, 15, 0x3fd80598bae00000ull},
      {42ull, 7ull, 20, 0x3fca37154fc00000ull},
      {42ull, 100ull, 0, 0x3fef521541d00000ull},
      {42ull, 100ull, 5, 0x3fec095646700000ull},
      {42ull, 100ull, 10, 0x3fbd528b91800000ull},
      {42ull, 100ull, 15, 0x3fe442cc5d700000ull},
      {42ull, 100ull, 20, 0x3fe7cdc553f00000ull},
      {42ull, 1023ull, 0, 0x3fc1a85507400000ull},
      {42ull, 1023ull, 5, 0x3fe6715646700000ull},
      {42ull, 1023ull, 10, 0x3fbc128b91800000ull},
      {42ull, 1023ull, 15, 0x3fe78acc5d700000ull},
      {42ull, 1023ull, 20, 0x3fa65c553f000000ull},
      {42ull, 65536ull, 0, 0x3feb920541d00000ull},
      {42ull, 65536ull, 5, 0x3fe7494646700000ull},
      {42ull, 65536ull, 10, 0x3fdc57c2e4600000ull},
      {42ull, 65536ull, 15, 0x3feab63c5d700000ull},
      {42ull, 65536ull, 20, 0x3febbdb553f00000ull},
      {42ull, 123456789ull, 0, 0x3fdd08dc3ba00000ull},
      {42ull, 123456789ull, 5, 0x3fd1637924e00000ull},
      {42ull, 123456789ull, 10, 0x3fdd092c0c600000ull},
      {42ull, 123456789ull, 15, 0x3fb040ce8b800000ull},
      {42ull, 123456789ull, 20, 0x3feb23e53ff00000ull},
      {3735928559ull, 0ull, 0, 0x3fe58aa630100000ull},
      {3735928559ull, 0ull, 5, 0x3fe9d04525900000ull},
      {3735928559ull, 0ull, 10, 0x3fee7298c1500000ull},
      {3735928559ull, 0ull, 15, 0x3fc166b7a4400000ull},
      {3735928559ull, 0ull, 20, 0x3fc9e0ea48c00000ull},
      {3735928559ull, 1ull, 0, 0x3fc62a98c0400000ull},
      {3735928559ull, 1ull, 5, 0x3fd3a08a4b200000ull},
      {3735928559ull, 1ull, 10, 0x3fdce53182a00000ull},
      {3735928559ull, 1ull, 15, 0x3fe459ade9100000ull},
      {3735928559ull, 1ull, 20, 0x3fe6783a92300000ull},
      {3735928559ull, 2ull, 0, 0x3fed8aa630100000ull},
      {3735928559ull, 2ull, 5, 0x3fe1d04525900000ull},
      {3735928559ull, 2ull, 10, 0x3fe67298c1500000ull},
      {3735928559ull, 2ull, 15, 0x3fec59ade9100000ull},
      {3735928559ull, 2ull, 20, 0x3fee783a92300000ull},
      {3735928559ull, 3ull, 0, 0x3fdb154c60200000ull},
      {3735928559ull, 3ull, 5, 0x3fad045259000000ull},
      {3735928559ull, 3ull, 10, 0x3fc9ca6305400000ull},
      {3735928559ull, 3ull, 15, 0x3fd8b35bd2200000ull},
      {3735928559ull, 3ull, 20, 0x3fdcf07524600000ull},
      {3735928559ull, 7ull, 0, 0x3fd3154c60200000ull},
      {3735928559ull, 7ull, 5, 0x3fdba08a4b200000ull},
      {3735928559ull, 7ull, 10, 0x3fe27298c1500000ull},
      {3735928559ull, 7ull, 15, 0x3fd0b35bd2200000ull},
      {3735928559ull, 7ull, 20, 0x3fe2783a92300000ull},
      {3735928559ull, 100ull, 0, 0x3fe14aa630100000ull},
      {3735928559ull, 100ull, 5, 0x3feb904525900000ull},
      {3735928559ull, 100ull, 10, 0x3fe43298c1500000ull},
      {3735928559ull, 100ull, 15, 0x3fe019ade9100000ull},
      {3735928559ull, 100ull, 20, 0x3fb9c1d491800000ull},
      {3735928559ull, 1023ull, 0, 0x3fd4e54c60200000ull},
      {3735928559ull, 1023ull, 5, 0x3fe1e84525900000ull},
      {3735928559ull, 1023ull, 10, 0x3fe41a98c1500000ull},
      {3735928559ull, 1023ull, 15, 0x3fe3d1ade9100000ull},
      {3735928559ull, 1023ull, 20, 0x3fe5903a92300000ull},
      {3735928559ull, 65536ull, 0, 0x3fe58ab630100000ull},
      {3735928559ull, 65536ull, 5, 0x3fe0d05525900000ull},
      {3735928559ull, 65536ull, 10, 0x3fe9b328c1500000ull},
      {3735928559ull, 65536ull, 15, 0x3feeed5de9100000ull},
      {3735928559ull, 65536ull, 20, 0x3fde909524600000ull},
      {3735928559ull, 123456789ull, 0, 0x3f939bad82000000ull},
      {3735928559ull, 123456789ull, 5, 0x3fde515fe3200000ull},
      {3735928559ull, 123456789ull, 10, 0x3fe91c5fb5500000ull},
      {3735928559ull, 123456789ull, 15, 0x3fc94de194400000ull},
      {3735928559ull, 123456789ull, 20, 0x3fdfac35fc600000ull},
  };
  std::uint64_t last_seed = ~std::uint64_t{0};
  std::vector<SobolSequence> seq;
  for (const Golden& g : kGolden) {
    if (g.seed != last_seed) {
      seq.clear();
      seq.emplace_back(21, g.seed);
      last_seed = g.seed;
    }
    const double x = seq[0].coordinate(g.index, g.dim);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    EXPECT_EQ(bits, g.bits) << "seed=" << g.seed << " index=" << g.index
                            << " dim=" << g.dim;
  }
}

TEST(SobolTest, ExtendedDimensionsKeepTheDyadicBalance) {
  // Every appended dimension must still be a valid base-2 digital net in
  // 1D: the first 64 points land exactly 8 per dyadic interval of width
  // 1/8. A non-primitive polynomial or an even/oversized m would break
  // this within the first few dimensions it touches.
  for (std::uint64_t scramble : {std::uint64_t{0}, std::uint64_t{1234}}) {
    const SobolSequence sobol(kSobolMaxDimensions, scramble);
    for (unsigned d = 21; d < kSobolMaxDimensions; ++d) {
      std::vector<int> hits(8, 0);
      for (std::uint64_t i = 0; i < 64; ++i) {
        const double x = sobol.coordinate(i, d);
        ASSERT_GT(x, 0.0);
        ASSERT_LT(x, 1.0);
        ++hits[static_cast<std::size_t>(x * 8.0)];
      }
      for (int h : hits) {
        EXPECT_EQ(h, 8) << "dim=" << d << " scramble=" << scramble;
      }
    }
  }
}

TEST(SobolTest, ExtendedDimensionsAreDistinctStreams) {
  // Distinct direction numbers per dimension: no two of the 64 dimensions
  // may produce the same first-32-point stream (a duplicated table row
  // would silently collapse two Pelgrom inputs onto one axis).
  const SobolSequence sobol(kSobolMaxDimensions, 0);
  std::vector<std::vector<double>> streams(kSobolMaxDimensions);
  for (unsigned d = 0; d < kSobolMaxDimensions; ++d) {
    for (std::uint64_t i = 1; i < 32; ++i) {
      streams[d].push_back(sobol.coordinate(i, d));
    }
  }
  for (unsigned a = 0; a < kSobolMaxDimensions; ++a) {
    for (unsigned b = a + 1; b < kSobolMaxDimensions; ++b) {
      EXPECT_NE(streams[a], streams[b]) << "dims " << a << " and " << b;
    }
  }
}

TEST(SobolTest, OverCapRequestNamesTheLimitAndTheRequest) {
  try {
    SobolSequence sobol(kSobolMaxDimensions + 1);
    FAIL() << "expected over-cap construction to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(kSobolMaxDimensions)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(kSobolMaxDimensions + 1)),
              std::string::npos)
        << what;
  }
  try {
    sobol_config(kSobolMaxDimensions + 7).validate(100);
    FAIL() << "expected over-cap strategy config to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(kSobolMaxDimensions)),
              std::string::npos)
        << what;
  }
}

// ---------------------------------------------------------------------------
// Strategy configuration

TEST(SampleStrategyTest, ValidateCatchesBadConfigs) {
  EXPECT_THROW(lhs_config(0).validate(100), Error);
  EXPECT_THROW(sobol_config(kSobolMaxDimensions + 1).validate(100), Error);
  EXPECT_THROW(importance_config({}).validate(100), Error);
  EXPECT_THROW(importance_config({1.0, std::nan("")}).validate(100), Error);

  SampleStrategyConfig bad_weights = stratified_config();
  bad_weights.strata[1].weight = 0.2;  // weights no longer sum to 1
  EXPECT_THROW(bad_weights.validate(100), Error);
  SampleStrategyConfig one_stratum;
  one_stratum.kind = McSampleStrategy::kStratified;
  one_stratum.strata = {{"all", 1.0, -1.0}};
  EXPECT_THROW(one_stratum.validate(100), Error);

  EXPECT_NO_THROW(lhs_config(8).validate(100));
  EXPECT_NO_THROW(stratified_config().validate(100));
  EXPECT_NO_THROW(importance_config({0.5}).validate(100));
}

TEST(SampleStrategyTest, DigestSeparatesConfigs) {
  EXPECT_EQ(lhs_config(4).digest(), lhs_config(4).digest());
  EXPECT_NE(lhs_config(4).digest(), lhs_config(5).digest());
  EXPECT_NE(lhs_config(4).digest(), sobol_config(4).digest());
  EXPECT_NE(importance_config({1.0}).digest(),
            importance_config({1.5}).digest());
  SampleStrategyConfig renamed = stratified_config();
  renamed.strata[0].label = "renamed";
  EXPECT_NE(stratified_config().digest(), renamed.digest());
}

// ---------------------------------------------------------------------------
// McSession integration: bit identity

TEST(SamplingSessionTest, EveryStrategyIsBitIdenticalAcrossScheduling) {
  const std::vector<SampleStrategyConfig> configs{
      lhs_config(2), sobol_config(2), stratified_config(),
      importance_config({1.0, 0.75})};
  for (const SampleStrategyConfig& config : configs) {
    McRequest ref_req = base_request(303, 600);
    ref_req.strategy = config;
    ref_req.keep_values = true;
    const McResult ref = McSession(ref_req).run_yield(tail_event);

    struct Shape {
      unsigned threads;
      std::size_t chunk;
      McPartition partition;
    };
    for (const Shape& s :
         {Shape{1, 16, McPartition::kWorkStealing},
          Shape{4, 8, McPartition::kWorkStealing},
          Shape{8, 64, McPartition::kStaticBlocks}}) {
      McRequest req = ref_req;
      req.threads = s.threads;
      req.chunk = s.chunk;
      req.partition = s.partition;
      const McResult r = McSession(req).run_yield(tail_event);
      const char* name = to_string(config.kind);
      EXPECT_EQ(r.values, ref.values) << name << " threads=" << s.threads;
      EXPECT_EQ(r.estimate.passed, ref.estimate.passed) << name;
      EXPECT_EQ(r.estimate.interval.lo, ref.estimate.interval.lo) << name;
      EXPECT_EQ(r.estimate.interval.hi, ref.estimate.interval.hi) << name;
      EXPECT_EQ(r.weighted.sums.w, ref.weighted.sums.w) << name;
      EXPECT_EQ(r.weighted.sums.wx, ref.weighted.sums.wx) << name;
    }
  }
}

TEST(SamplingStrategyTest, HighSigmaShiftKeepsLogWeightsFinite) {
  // Regression: the likelihood ratio used to accumulate multiplicatively
  // (weight_ *= exp(-mu x + mu^2/2)). At a 50-dim 6-sigma shift the true
  // log weight sits near -|mu|^2/2 = -900, far below double range, so the
  // old running product underflowed to exactly 0 and every sample lost
  // its weight. The log-space accumulator must keep it finite.
  const unsigned kDims = 50;
  const double kShift = 6.0;
  const SampleStrategyConfig config =
      importance_config(std::vector<double>(kDims, kShift));
  const StrategyDriver driver(config, 1234, 64);
  for (std::size_t i = 0; i < 8; ++i) {
    McSamplePoint point(driver, i);
    double old_style_product = 1.0;  // the pre-fix accumulation
    for (unsigned d = 0; d < kDims; ++d) {
      const double x = point.normal(d);
      old_style_product *= std::exp(-kShift * x + 0.5 * kShift * kShift);
    }
    EXPECT_EQ(old_style_product, 0.0) << "sample " << i;
    EXPECT_TRUE(std::isfinite(point.log_weight())) << "sample " << i;
    EXPECT_LT(point.log_weight(), -700.0) << "sample " << i;
    // exp(log_weight) underflows — weight() is documented to do exactly
    // that; estimators must go through log_weight()/WeightedSums::add_log.
    EXPECT_EQ(point.weight(), 0.0) << "sample " << i;
  }
}

TEST(SamplingSessionTest, ZeroShiftImportanceDegeneratesToPlain) {
  McRequest plain_req = base_request(11, 400);
  plain_req.keep_values = true;
  const McResult plain = McSession(plain_req).run_yield(tail_event);

  McRequest is_req = plain_req;
  is_req.strategy = importance_config({0.0, 0.0});
  const McResult is = McSession(is_req).run_yield(tail_event);

  EXPECT_EQ(is.values, plain.values);
  EXPECT_EQ(is.estimate.passed, plain.estimate.passed);
  ASSERT_TRUE(is.weighted.enabled);
  EXPECT_DOUBLE_EQ(is.weighted.sums.w, static_cast<double>(is.completed));
  EXPECT_DOUBLE_EQ(is.weighted.ess, static_cast<double>(is.completed));
  // All weights are 1, so the self-normalized estimate is the raw ratio
  // (the intervals differ: delta-method vs Wilson).
  EXPECT_DOUBLE_EQ(is.estimate.interval.estimate,
                   plain.estimate.interval.estimate);
}

TEST(SamplingSessionTest, LegacyAndPointCallbacksSeeTheSameStream) {
  McRequest req = base_request(21, 500);
  req.keep_values = true;
  const McResult legacy = McSession(req).run_yield(
      [](Xoshiro256& rng, std::size_t) { return rng.uniform01() < 0.8; });
  const McResult point = McSession(req).run_yield(
      [](McSamplePoint& p) { return p.rng().uniform01() < 0.8; });
  EXPECT_EQ(legacy.values, point.values);
  EXPECT_EQ(legacy.estimate.passed, point.estimate.passed);
}

// ---------------------------------------------------------------------------
// Stratified runs

TEST(SamplingSessionTest, StratifiedRunReportsPerStratumTallies) {
  McRequest req = base_request(55, 1000);
  req.strategy = stratified_config();  // tail share 0.5 vs weight 0.1
  const McResult r = McSession(req).run_yield([](McSamplePoint& p) {
    return p.uniform(0) < 0.95;  // fails only in the tail stratum
  });

  ASSERT_EQ(r.strata.size(), 2u);
  EXPECT_EQ(r.strata[0].label, "bulk");
  EXPECT_EQ(r.strata[1].label, "tail");
  EXPECT_EQ(r.strata[0].samples + r.strata[1].samples, r.completed);
  // The tail got its oversampled 50% share despite its 10% weight.
  EXPECT_NEAR(static_cast<double>(r.strata[1].samples), 500.0, 1.0);
  // Bulk (u0 in [0, 0.9)) always passes; the tail p-hat is around 0.5.
  EXPECT_EQ(r.strata[0].passed, r.strata[0].samples);
  EXPECT_GT(r.strata[1].passed, 0u);
  EXPECT_LT(r.strata[1].passed, r.strata[1].samples);

  // The reported interval is exactly the post-stratified combination of
  // the per-stratum tallies.
  std::vector<StratumCount> counts;
  for (const McStratumResult& s : r.strata) {
    counts.push_back({s.weight, s.passed, s.samples, s.censored});
  }
  const auto expected =
      post_stratified_interval(counts, CensoredPolicy::kTreatAsFail);
  EXPECT_DOUBLE_EQ(r.estimate.interval.estimate, expected.estimate);
  EXPECT_DOUBLE_EQ(r.estimate.interval.lo, expected.lo);
  EXPECT_DOUBLE_EQ(r.estimate.interval.hi, expected.hi);
}

TEST(SamplingSessionTest, YieldOnlyStrategiesRejectMetricRuns) {
  McRequest strat = base_request(1, 100);
  strat.strategy = stratified_config();
  EXPECT_THROW(McSession(strat).run_metric(
                   [](McSamplePoint& p) { return p.uniform(0); }),
               Error);
  McRequest is = base_request(1, 100);
  is.strategy = importance_config({1.0});
  EXPECT_THROW(
      McSession(is).run_metric([](McSamplePoint& p) { return p.normal(0); }),
      Error);
}

// ---------------------------------------------------------------------------
// Checkpoints

TEST(SamplingSessionTest, CheckpointRefusesAStrategyMismatch) {
  ScratchFile ckpt("sampling_strategy_mismatch.ckpt");
  McRequest req = base_request(77, 300);
  req.strategy = lhs_config(2);
  req.checkpoint_path = ckpt.path();
  McSession(req).run_yield(tail_event);

  McRequest sobol_req = req;
  sobol_req.strategy = sobol_config(2);
  EXPECT_THROW(McSession(sobol_req).run_yield(tail_event), Error);

  McRequest plain_req = req;
  plain_req.strategy = SampleStrategyConfig{};
  EXPECT_THROW(McSession(plain_req).run_yield(tail_event), Error);
}

TEST(SamplingSessionTest, KilledImportanceRunResumesBitExactly) {
  McRequest req = base_request(88, 800);
  req.strategy = importance_config({1.2, 0.9});
  const McResult uninterrupted = McSession(req).run_yield(tail_event);

  ScratchFile ckpt("sampling_importance_resume.ckpt");
  McRequest kr = req;
  kr.checkpoint_path = ckpt.path();
  kr.checkpoint_every = 64;
  bool killed = false;
  try {
    McSession(kr).run_yield([](McSamplePoint& p) {
      if (p.index() == 600) throw Error("injected kill");
      return tail_event(p);
    });
  } catch (const Error&) {
    killed = true;
  }
  ASSERT_TRUE(killed);

  const McResult resumed = McSession(kr).run_yield(tail_event);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_LT(resumed.resumed, req.n);
  EXPECT_EQ(resumed.completed, uninterrupted.completed);
  // The likelihood-ratio weights were restored from the checkpoint: the
  // weighted power sums and the interval agree bit for bit.
  EXPECT_EQ(resumed.weighted.sums.w, uninterrupted.weighted.sums.w);
  EXPECT_EQ(resumed.weighted.sums.w2, uninterrupted.weighted.sums.w2);
  EXPECT_EQ(resumed.weighted.sums.wx, uninterrupted.weighted.sums.wx);
  EXPECT_EQ(resumed.weighted.ess, uninterrupted.weighted.ess);
  EXPECT_EQ(resumed.estimate.interval.lo, uninterrupted.estimate.interval.lo);
  EXPECT_EQ(resumed.estimate.interval.hi, uninterrupted.estimate.interval.hi);
}

TEST(SamplingSessionTest, HighSigmaImportanceRunKeepsWeightedMass) {
  // End-to-end companion of HighSigmaShiftKeepsLogWeightsFinite: a session
  // whose every likelihood ratio is ~exp(-900) must still produce a
  // positive weighted mass and ESS. Under the pre-fix raw-weight
  // accumulation all weights collapsed to 0 and the weighted estimator
  // reported nothing.
  const unsigned kDims = 50;
  McRequest req = base_request(99, 256);
  req.strategy = importance_config(std::vector<double>(kDims, 6.0));
  const McResult r = McSession(req).run_yield([](McSamplePoint& p) {
    double sum = 0.0;
    for (unsigned d = 0; d < kDims; ++d) sum += p.normal(d);
    return sum / std::sqrt(static_cast<double>(kDims)) > 6.0;
  });

  ASSERT_TRUE(r.weighted.enabled);
  EXPECT_GT(r.weighted.sums.w, 0.0);
  EXPECT_GT(r.weighted.ess, 0.0);
  EXPECT_LT(r.weighted.sums.log_scale, -700.0);
  EXPECT_TRUE(std::isfinite(r.weighted.interval.estimate));
  EXPECT_GE(r.weighted.interval.estimate, 0.0);
  EXPECT_LE(r.weighted.interval.estimate, 1.0);
}

TEST(SamplingSessionTest, HighSigmaImportanceRunResumesBitExactly) {
  // The checkpoint stores LOG weights (RSMCKPT4): a kill/resume at a
  // 6-sigma shift must reproduce the uninterrupted weighted sums bit for
  // bit — impossible with raw ratios, which round-trip through 0.
  const unsigned kDims = 50;
  McRequest req = base_request(101, 256);
  req.strategy = importance_config(std::vector<double>(kDims, 6.0));
  const auto event = [](McSamplePoint& p) {
    double sum = 0.0;
    for (unsigned d = 0; d < kDims; ++d) sum += p.normal(d);
    return sum / std::sqrt(static_cast<double>(kDims)) > 6.0;
  };
  const McResult uninterrupted = McSession(req).run_yield(event);

  ScratchFile ckpt("sampling_highsigma_resume.ckpt");
  McRequest kr = req;
  kr.checkpoint_path = ckpt.path();
  kr.checkpoint_every = 32;
  bool killed = false;
  try {
    McSession(kr).run_yield([&event](McSamplePoint& p) {
      if (p.index() == 200) throw Error("injected kill");
      return event(p);
    });
  } catch (const Error&) {
    killed = true;
  }
  ASSERT_TRUE(killed);

  const McResult resumed = McSession(kr).run_yield(event);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_EQ(resumed.weighted.sums.w, uninterrupted.weighted.sums.w);
  EXPECT_EQ(resumed.weighted.sums.w2, uninterrupted.weighted.sums.w2);
  EXPECT_EQ(resumed.weighted.sums.wx, uninterrupted.weighted.sums.wx);
  EXPECT_EQ(resumed.weighted.sums.log_scale,
            uninterrupted.weighted.sums.log_scale);
  EXPECT_EQ(resumed.weighted.ess, uninterrupted.weighted.ess);
}

// ---------------------------------------------------------------------------
// Censoring x weights

TEST(SamplingSessionTest, CensoredWeightedSamplesFollowThePolicy) {
  const auto throwing = [](McSamplePoint& p) -> bool {
    if (p.index() % 97 == 3) throw Error("solver died");
    return tail_event(p);
  };
  McRequest req = base_request(5, 400);
  req.strategy = importance_config({1.0, 0.5});
  req.failure_policy = McFailurePolicy::kSkip;

  req.censored = CensoredPolicy::kTreatAsFail;
  const McResult fail = McSession(req).run_yield(throwing);
  ASSERT_GT(fail.estimate.censored, 0u);
  // kTreatAsFail folds each censored sample in at unit weight with a 0
  // indicator: every completed sample contributes to the sums.
  EXPECT_EQ(fail.weighted.sums.count, fail.completed);

  req.censored = CensoredPolicy::kExclude;
  const McResult excl = McSession(req).run_yield(throwing);
  EXPECT_EQ(excl.weighted.sums.count,
            excl.completed - excl.estimate.censored);
  // Dropping zero-indicator unit weights can only raise the estimate.
  EXPECT_GE(excl.estimate.interval.estimate,
            fail.estimate.interval.estimate);
}

}  // namespace
}  // namespace relsim