// Variance-reduction sampling contracts (sample_strategy.h, rng/lowdisc.h
// and their McSession integration):
//  * every strategy keeps the bit-identity invariant: any worker count,
//    chunk size or partition produces the same estimate, interval and
//    per-sample values;
//  * the low-discrepancy point sets hold their defining properties (LHS
//    stratifies every dimension exactly, Sobol' is dyadically balanced);
//  * a zero mean-shift importance run degenerates to the plain run;
//  * checkpoints carry the strategy identity (and the likelihood-ratio
//    weights) — resuming under a different strategy is refused, and a
//    killed importance run resumes to the bit-exact result;
//  * stratified/importance are yield-run strategies and reject metric runs;
//  * censored weighted samples follow the requested CensoredPolicy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "rng/lowdisc.h"
#include "stats/summary.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim {
namespace {

McRequest base_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = 2;
  req.chunk = 16;
  return req;
}

/// Scratch checkpoint path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A 2-D tail event whose inputs go through the tracked dims.
bool tail_event(McSamplePoint& p) {
  return 0.8 * p.normal(0) + 0.6 * p.normal(1) > 2.0;
}

SampleStrategyConfig lhs_config(unsigned dims) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kLatinHypercube;
  c.dimensions = dims;
  return c;
}

SampleStrategyConfig sobol_config(unsigned dims) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kSobol;
  c.dimensions = dims;
  return c;
}

SampleStrategyConfig stratified_config() {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kStratified;
  c.strata = {{"bulk", 0.9, 0.5}, {"tail", 0.1, 0.5}};
  return c;
}

SampleStrategyConfig importance_config(std::vector<double> shift) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kImportance;
  c.shift = std::move(shift);
  return c;
}

// ---------------------------------------------------------------------------
// Low-discrepancy point sets

TEST(LatinHypercubeTest, EveryDimensionIsStratifiedExactlyOnce) {
  const std::size_t n = 32;
  const LatinHypercube lhs(n, 3, 42);
  for (unsigned d = 0; d < 3; ++d) {
    std::vector<int> hits(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = lhs.point(i)[d];
      ASSERT_GE(x, 0.0);
      ASSERT_LT(x, 1.0);
      const auto slice = static_cast<std::size_t>(x * n);
      EXPECT_EQ(slice, lhs.stratum(i, d));
      ++hits[slice];
    }
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(hits[s], 1) << "dim=" << d << " slice=" << s;
    }
  }
}

TEST(LatinHypercubeTest, PointsAreAPureFunctionOfIndex) {
  const LatinHypercube a(64, 2, 7), b(64, 2, 7), other(64, 2, 8);
  EXPECT_EQ(a.point(5), b.point(5));
  EXPECT_EQ(a.point(63), b.point(63));
  bool differs = false;
  for (std::size_t i = 0; i < 64 && !differs; ++i) {
    differs = a.point(i) != other.point(i);
  }
  EXPECT_TRUE(differs) << "seed must reshuffle the hypercube";
}

TEST(SobolTest, DyadicIntervalsAreBalanced) {
  // The first 2^k points form a (t,k)-net in base 2: every dyadic interval
  // of width 2^-m holds exactly 2^(k-m) points — and a digital shift maps
  // dyadic intervals onto dyadic intervals, so the scrambled net keeps the
  // property.
  for (std::uint64_t scramble : {std::uint64_t{0}, std::uint64_t{99}}) {
    const SobolSequence sobol(4, scramble);
    for (unsigned d = 0; d < 4; ++d) {
      std::vector<int> hits(8, 0);
      for (std::uint64_t i = 0; i < 64; ++i) {
        const double x = sobol.coordinate(i, d);
        ASSERT_GT(x, 0.0);
        ASSERT_LT(x, 1.0);
        ++hits[static_cast<std::size_t>(x * 8.0)];
      }
      for (int h : hits) {
        EXPECT_EQ(h, 8) << "dim=" << d << " scramble=" << scramble;
      }
    }
  }
}

TEST(SobolTest, ScrambleSeedChangesThePointsDeterministically) {
  const SobolSequence a(2, 5), b(2, 5), c(2, 6);
  EXPECT_EQ(a.coordinate(17, 1), b.coordinate(17, 1));
  bool differs = false;
  for (std::uint64_t i = 0; i < 32 && !differs; ++i) {
    differs = a.coordinate(i, 0) != c.coordinate(i, 0);
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Strategy configuration

TEST(SampleStrategyTest, ValidateCatchesBadConfigs) {
  EXPECT_THROW(lhs_config(0).validate(100), Error);
  EXPECT_THROW(sobol_config(kSobolMaxDimensions + 1).validate(100), Error);
  EXPECT_THROW(importance_config({}).validate(100), Error);
  EXPECT_THROW(importance_config({1.0, std::nan("")}).validate(100), Error);

  SampleStrategyConfig bad_weights = stratified_config();
  bad_weights.strata[1].weight = 0.2;  // weights no longer sum to 1
  EXPECT_THROW(bad_weights.validate(100), Error);
  SampleStrategyConfig one_stratum;
  one_stratum.kind = McSampleStrategy::kStratified;
  one_stratum.strata = {{"all", 1.0, -1.0}};
  EXPECT_THROW(one_stratum.validate(100), Error);

  EXPECT_NO_THROW(lhs_config(8).validate(100));
  EXPECT_NO_THROW(stratified_config().validate(100));
  EXPECT_NO_THROW(importance_config({0.5}).validate(100));
}

TEST(SampleStrategyTest, DigestSeparatesConfigs) {
  EXPECT_EQ(lhs_config(4).digest(), lhs_config(4).digest());
  EXPECT_NE(lhs_config(4).digest(), lhs_config(5).digest());
  EXPECT_NE(lhs_config(4).digest(), sobol_config(4).digest());
  EXPECT_NE(importance_config({1.0}).digest(),
            importance_config({1.5}).digest());
  SampleStrategyConfig renamed = stratified_config();
  renamed.strata[0].label = "renamed";
  EXPECT_NE(stratified_config().digest(), renamed.digest());
}

// ---------------------------------------------------------------------------
// McSession integration: bit identity

TEST(SamplingSessionTest, EveryStrategyIsBitIdenticalAcrossScheduling) {
  const std::vector<SampleStrategyConfig> configs{
      lhs_config(2), sobol_config(2), stratified_config(),
      importance_config({1.0, 0.75})};
  for (const SampleStrategyConfig& config : configs) {
    McRequest ref_req = base_request(303, 600);
    ref_req.strategy = config;
    ref_req.keep_values = true;
    const McResult ref = McSession(ref_req).run_yield(tail_event);

    struct Shape {
      unsigned threads;
      std::size_t chunk;
      McPartition partition;
    };
    for (const Shape& s :
         {Shape{1, 16, McPartition::kWorkStealing},
          Shape{4, 8, McPartition::kWorkStealing},
          Shape{8, 64, McPartition::kStaticBlocks}}) {
      McRequest req = ref_req;
      req.threads = s.threads;
      req.chunk = s.chunk;
      req.partition = s.partition;
      const McResult r = McSession(req).run_yield(tail_event);
      const char* name = to_string(config.kind);
      EXPECT_EQ(r.values, ref.values) << name << " threads=" << s.threads;
      EXPECT_EQ(r.estimate.passed, ref.estimate.passed) << name;
      EXPECT_EQ(r.estimate.interval.lo, ref.estimate.interval.lo) << name;
      EXPECT_EQ(r.estimate.interval.hi, ref.estimate.interval.hi) << name;
      EXPECT_EQ(r.weighted.sums.w, ref.weighted.sums.w) << name;
      EXPECT_EQ(r.weighted.sums.wx, ref.weighted.sums.wx) << name;
    }
  }
}

TEST(SamplingSessionTest, ZeroShiftImportanceDegeneratesToPlain) {
  McRequest plain_req = base_request(11, 400);
  plain_req.keep_values = true;
  const McResult plain = McSession(plain_req).run_yield(tail_event);

  McRequest is_req = plain_req;
  is_req.strategy = importance_config({0.0, 0.0});
  const McResult is = McSession(is_req).run_yield(tail_event);

  EXPECT_EQ(is.values, plain.values);
  EXPECT_EQ(is.estimate.passed, plain.estimate.passed);
  ASSERT_TRUE(is.weighted.enabled);
  EXPECT_DOUBLE_EQ(is.weighted.sums.w, static_cast<double>(is.completed));
  EXPECT_DOUBLE_EQ(is.weighted.ess, static_cast<double>(is.completed));
  // All weights are 1, so the self-normalized estimate is the raw ratio
  // (the intervals differ: delta-method vs Wilson).
  EXPECT_DOUBLE_EQ(is.estimate.interval.estimate,
                   plain.estimate.interval.estimate);
}

TEST(SamplingSessionTest, LegacyAndPointCallbacksSeeTheSameStream) {
  McRequest req = base_request(21, 500);
  req.keep_values = true;
  const McResult legacy = McSession(req).run_yield(
      [](Xoshiro256& rng, std::size_t) { return rng.uniform01() < 0.8; });
  const McResult point = McSession(req).run_yield(
      [](McSamplePoint& p) { return p.rng().uniform01() < 0.8; });
  EXPECT_EQ(legacy.values, point.values);
  EXPECT_EQ(legacy.estimate.passed, point.estimate.passed);
}

// ---------------------------------------------------------------------------
// Stratified runs

TEST(SamplingSessionTest, StratifiedRunReportsPerStratumTallies) {
  McRequest req = base_request(55, 1000);
  req.strategy = stratified_config();  // tail share 0.5 vs weight 0.1
  const McResult r = McSession(req).run_yield([](McSamplePoint& p) {
    return p.uniform(0) < 0.95;  // fails only in the tail stratum
  });

  ASSERT_EQ(r.strata.size(), 2u);
  EXPECT_EQ(r.strata[0].label, "bulk");
  EXPECT_EQ(r.strata[1].label, "tail");
  EXPECT_EQ(r.strata[0].samples + r.strata[1].samples, r.completed);
  // The tail got its oversampled 50% share despite its 10% weight.
  EXPECT_NEAR(static_cast<double>(r.strata[1].samples), 500.0, 1.0);
  // Bulk (u0 in [0, 0.9)) always passes; the tail p-hat is around 0.5.
  EXPECT_EQ(r.strata[0].passed, r.strata[0].samples);
  EXPECT_GT(r.strata[1].passed, 0u);
  EXPECT_LT(r.strata[1].passed, r.strata[1].samples);

  // The reported interval is exactly the post-stratified combination of
  // the per-stratum tallies.
  std::vector<StratumCount> counts;
  for (const McStratumResult& s : r.strata) {
    counts.push_back({s.weight, s.passed, s.samples, s.censored});
  }
  const auto expected =
      post_stratified_interval(counts, CensoredPolicy::kTreatAsFail);
  EXPECT_DOUBLE_EQ(r.estimate.interval.estimate, expected.estimate);
  EXPECT_DOUBLE_EQ(r.estimate.interval.lo, expected.lo);
  EXPECT_DOUBLE_EQ(r.estimate.interval.hi, expected.hi);
}

TEST(SamplingSessionTest, YieldOnlyStrategiesRejectMetricRuns) {
  McRequest strat = base_request(1, 100);
  strat.strategy = stratified_config();
  EXPECT_THROW(McSession(strat).run_metric(
                   [](McSamplePoint& p) { return p.uniform(0); }),
               Error);
  McRequest is = base_request(1, 100);
  is.strategy = importance_config({1.0});
  EXPECT_THROW(
      McSession(is).run_metric([](McSamplePoint& p) { return p.normal(0); }),
      Error);
}

// ---------------------------------------------------------------------------
// Checkpoints

TEST(SamplingSessionTest, CheckpointRefusesAStrategyMismatch) {
  ScratchFile ckpt("sampling_strategy_mismatch.ckpt");
  McRequest req = base_request(77, 300);
  req.strategy = lhs_config(2);
  req.checkpoint_path = ckpt.path();
  McSession(req).run_yield(tail_event);

  McRequest sobol_req = req;
  sobol_req.strategy = sobol_config(2);
  EXPECT_THROW(McSession(sobol_req).run_yield(tail_event), Error);

  McRequest plain_req = req;
  plain_req.strategy = SampleStrategyConfig{};
  EXPECT_THROW(McSession(plain_req).run_yield(tail_event), Error);
}

TEST(SamplingSessionTest, KilledImportanceRunResumesBitExactly) {
  McRequest req = base_request(88, 800);
  req.strategy = importance_config({1.2, 0.9});
  const McResult uninterrupted = McSession(req).run_yield(tail_event);

  ScratchFile ckpt("sampling_importance_resume.ckpt");
  McRequest kr = req;
  kr.checkpoint_path = ckpt.path();
  kr.checkpoint_every = 64;
  bool killed = false;
  try {
    McSession(kr).run_yield([](McSamplePoint& p) {
      if (p.index() == 600) throw Error("injected kill");
      return tail_event(p);
    });
  } catch (const Error&) {
    killed = true;
  }
  ASSERT_TRUE(killed);

  const McResult resumed = McSession(kr).run_yield(tail_event);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_LT(resumed.resumed, req.n);
  EXPECT_EQ(resumed.completed, uninterrupted.completed);
  // The likelihood-ratio weights were restored from the checkpoint: the
  // weighted power sums and the interval agree bit for bit.
  EXPECT_EQ(resumed.weighted.sums.w, uninterrupted.weighted.sums.w);
  EXPECT_EQ(resumed.weighted.sums.w2, uninterrupted.weighted.sums.w2);
  EXPECT_EQ(resumed.weighted.sums.wx, uninterrupted.weighted.sums.wx);
  EXPECT_EQ(resumed.weighted.ess, uninterrupted.weighted.ess);
  EXPECT_EQ(resumed.estimate.interval.lo, uninterrupted.estimate.interval.lo);
  EXPECT_EQ(resumed.estimate.interval.hi, uninterrupted.estimate.interval.hi);
}

// ---------------------------------------------------------------------------
// Censoring x weights

TEST(SamplingSessionTest, CensoredWeightedSamplesFollowThePolicy) {
  const auto throwing = [](McSamplePoint& p) -> bool {
    if (p.index() % 97 == 3) throw Error("solver died");
    return tail_event(p);
  };
  McRequest req = base_request(5, 400);
  req.strategy = importance_config({1.0, 0.5});
  req.failure_policy = McFailurePolicy::kSkip;

  req.censored = CensoredPolicy::kTreatAsFail;
  const McResult fail = McSession(req).run_yield(throwing);
  ASSERT_GT(fail.estimate.censored, 0u);
  // kTreatAsFail folds each censored sample in at unit weight with a 0
  // indicator: every completed sample contributes to the sums.
  EXPECT_EQ(fail.weighted.sums.count, fail.completed);

  req.censored = CensoredPolicy::kExclude;
  const McResult excl = McSession(req).run_yield(throwing);
  EXPECT_EQ(excl.weighted.sums.count,
            excl.completed - excl.estimate.censored);
  // Dropping zero-indicator unit weights can only raise the estimate.
  EXPECT_GE(excl.estimate.interval.estimate,
            fail.estimate.interval.estimate);
}

}  // namespace
}  // namespace relsim