// MOSFET model smoothness tests.
//
// Newton convergence lives and dies on the model being C0 in its published
// derivatives: a kink in gm/gds/gmb makes the iteration limit-cycle across
// the kink instead of converging. The level-1 model here smooths every
// regional handoff (softplus overdrive, smoothed forward-bias clamp), so
// these tests hold it to that: the derivatives must match finite
// differences of I_D everywhere — INCLUDING the saturation/triode handoff
// (vds_e == vov), the subthreshold tail, the drain/source reversal point
// and the body-bias clamp edge — and fine scans across each boundary must
// show no jumps in id/gm/gds/gmb.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "spice/mosfet.h"

namespace relsim::spice {
namespace {

MosParams nmos_params() {
  MosParams p;
  p.vt0 = 0.4;
  p.kp = 400e-6;
  p.lambda = 0.12;
  p.gamma = 0.45;
  p.phi = 0.85;  // clamp edge at vbs = 0.9*phi = 0.765
  return p;
}

/// Central-difference check of all three published partials at one bias.
void expect_derivatives_match(const Mosfet& m, double vd, double vg,
                              double vb, const char* where) {
  const double h = 1e-6;
  const MosOperatingPoint op = m.evaluate(vd, vg, 0.0, vb);
  const double fd_gm =
      (m.evaluate(vd, vg + h, 0.0, vb).id - m.evaluate(vd, vg - h, 0.0, vb).id)
      / (2 * h);
  const double fd_gds =
      (m.evaluate(vd + h, vg, 0.0, vb).id - m.evaluate(vd - h, vg, 0.0, vb).id)
      / (2 * h);
  const double fd_gmb =
      (m.evaluate(vd, vg, 0.0, vb + h).id - m.evaluate(vd, vg, 0.0, vb - h).id)
      / (2 * h);
  const double tol = 2e-3;
  const double floor = 1e-9;
  EXPECT_LT(std::abs(op.gm - fd_gm),
            tol * std::max(std::abs(fd_gm), floor))
      << where << " vd=" << vd << " vg=" << vg << " vb=" << vb;
  EXPECT_LT(std::abs(op.gds - fd_gds),
            tol * std::max(std::abs(fd_gds), floor))
      << where << " vd=" << vd << " vg=" << vg << " vb=" << vb;
  EXPECT_LT(std::abs(op.gmb - fd_gmb),
            tol * std::max(std::abs(fd_gmb), floor))
      << where << " vd=" << vd << " vg=" << vg << " vb=" << vb;
}

TEST(MosfetContinuity, DerivativesMatchFiniteDifferences) {
  const Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  // Subthreshold, near-VT, strong inversion; triode, handoff, saturation;
  // reverse and forward body bias including the clamp neighbourhood.
  const std::vector<double> vgs = {0.15, 0.39, 0.41, 0.8};
  const std::vector<double> vds = {0.05, 0.3, 0.42, 1.0};
  const std::vector<double> vbs = {-0.8, 0.0, 0.70, 0.76, 0.77, 0.8};
  for (double g : vgs) {
    for (double d : vds) {
      for (double b : vbs) {
        expect_derivatives_match(m, d, g, b, "grid");
      }
    }
  }
  // Drain/source reversal neighbourhood (vds through 0).
  for (double d : {-0.02, -0.001, 0.001, 0.02}) {
    expect_derivatives_match(m, d, 0.8, 0.0, "reversal");
  }
}

/// Scans `f(t)` over [lo, hi] and asserts adjacent samples never jump by
/// more than 1% of the scan's peak magnitude. A smooth curve moves a tiny
/// fraction of its range per 4000th of the interval; a clamp or regional
/// kink (e.g. gmb snapping to zero at a hard vbs clamp) jumps by O(peak)
/// in one step. Scaling to the peak (not the local value) keeps zero
/// crossings from tripping the check.
template <typename F>
void expect_c0(F f, double lo, double hi, const char* what) {
  const int steps = 4000;
  const double dx = (hi - lo) / steps;
  std::vector<double> y(steps + 1);
  double peak = 0.0;
  for (int i = 0; i <= steps; ++i) {
    y[i] = f(lo + i * dx);
    peak = std::max(peak, std::abs(y[i]));
  }
  const double tol = 1e-2 * std::max(peak, 1e-12);
  for (int i = 1; i <= steps; ++i) {
    EXPECT_LT(std::abs(y[i] - y[i - 1]), tol)
        << what << " jump at x=" << lo + i * dx;
  }
}

TEST(MosfetContinuity, NoJumpsAcrossSaturationHandoff) {
  const Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  // vgs = 0.8 puts vov ~ 0.4: the scan crosses triode -> saturation.
  auto at = [&](double vds) { return m.evaluate(vds, 0.8, 0.0, 0.0); };
  expect_c0([&](double v) { return at(v).id; }, 0.1, 0.9, "id");
  expect_c0([&](double v) { return at(v).gm; }, 0.1, 0.9, "gm");
  expect_c0([&](double v) { return at(v).gds; }, 0.1, 0.9, "gds");
  expect_c0([&](double v) { return at(v).gmb; }, 0.1, 0.9, "gmb");
}

TEST(MosfetContinuity, NoJumpsAcrossBodyBiasClamp) {
  const Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  // The scan crosses the forward-bias clamp edge vbs = 0.9*phi = 0.765,
  // where a hard clamp would snap gmb to zero discontinuously.
  auto at = [&](double vbs) { return m.evaluate(0.6, 0.8, 0.0, vbs); };
  expect_c0([&](double v) { return at(v).id; }, 0.5, 0.9, "id");
  expect_c0([&](double v) { return at(v).gm; }, 0.5, 0.9, "gm");
  expect_c0([&](double v) { return at(v).gds; }, 0.5, 0.9, "gds");
  expect_c0([&](double v) { return at(v).gmb; }, 0.5, 0.9, "gmb");
}

TEST(MosfetContinuity, NoJumpsAcrossSubthresholdAndReversal) {
  const Mosfet m("M1", 1, 2, 3, 4, nmos_params());
  // Gate sweep through VT at fixed drain bias (subthreshold handoff).
  auto vg_at = [&](double vgs) { return m.evaluate(0.5, vgs, 0.0, 0.0); };
  expect_c0([&](double v) { return vg_at(v).id; }, 0.0, 0.9, "id(vgs)");
  expect_c0([&](double v) { return vg_at(v).gm; }, 0.0, 0.9, "gm(vgs)");
  // Drain sweep through 0 (source/drain role swap).
  auto vd_at = [&](double vds) { return m.evaluate(vds, 0.8, 0.0, 0.0); };
  expect_c0([&](double v) { return vd_at(v).id; }, -0.3, 0.3, "id(vds)");
  expect_c0([&](double v) { return vd_at(v).gm; }, -0.3, 0.3, "gm(vds)");
  expect_c0([&](double v) { return vd_at(v).gds; }, -0.3, 0.3, "gds(vds)");
  expect_c0([&](double v) { return vd_at(v).gmb; }, -0.3, 0.3, "gmb(vds)");
}

}  // namespace
}  // namespace relsim::spice
