#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "util/error.h"

namespace relsim {
namespace {

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& state, double lo, double hi) {
  const double u =
      static_cast<double>(splitmix(state) >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

/// Random matrix with an MNA-like pattern: tridiagonal-ish coupling plus a
/// few long-range entries (branch rows), diagonally dominant so the LU is
/// well conditioned. Returns the sparse matrix and its pattern.
SparseMatrix random_mna_matrix(std::size_t n, std::uint64_t seed,
                               SparsityPattern* pattern_out = nullptr) {
  SparsityPattern pattern;
  pattern.add_diagonal(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pattern.add(static_cast<int>(i), static_cast<int>(i + 1));
    pattern.add(static_cast<int>(i + 1), static_cast<int>(i));
  }
  std::uint64_t s = seed;
  for (std::size_t k = 0; k < n; ++k) {
    const int r = static_cast<int>(splitmix(s) % n);
    const int c = static_cast<int>(splitmix(s) % n);
    pattern.add(r, c);
    pattern.add(c, r);
  }
  SparseMatrix a(n, pattern);
  // Off-diagonals first, then overwrite the diagonal with row dominance.
  std::vector<double> rowsum(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (int p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
      const auto c = static_cast<std::size_t>(a.col_ind()[p]);
      if (c == r) continue;
      const double v = uniform(s, -1.0, 1.0);
      a.add_at(r, c, v);
      rowsum[r] += std::abs(v);
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    a.add_at(r, r, rowsum[r] + uniform(s, 0.5, 1.5));
  }
  if (pattern_out != nullptr) *pattern_out = pattern;
  return a;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector b(n);
  std::uint64_t s = seed;
  for (auto& v : b) v = uniform(s, -2.0, 2.0);
  return b;
}

TEST(SparseMatrixTest, BuildsDeduplicatedSortedCsr) {
  SparsityPattern pattern;
  pattern.add(0, 1);
  pattern.add(0, 1);  // duplicate
  pattern.add(1, 0);
  pattern.add(-1, 0);  // ground: ignored
  pattern.add(0, -1);
  pattern.add_diagonal(2);
  SparseMatrix a(2, pattern);
  EXPECT_EQ(a.nnz(), 4u);
  EXPECT_TRUE(a.add_at(0, 1, 2.5));
  EXPECT_TRUE(a.add_at(0, 1, 0.5));  // accumulates
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);  // structural zero reads as 0
}

TEST(SparseMatrixTest, AddOutsidePatternIsReported) {
  SparsityPattern pattern;
  pattern.add_diagonal(3);
  SparseMatrix a(3, pattern);
  EXPECT_FALSE(a.add_at(0, 2, 1.0));
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  const std::size_t n = 17;
  const SparseMatrix a = random_mna_matrix(n, 42);
  const Matrix dense = a.to_dense();
  const Vector x = random_vector(n, 7);
  const Vector ys = a.multiply(x);
  const Vector yd = dense.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseLuTest, SolveMatchesDenseOnRandomMnaMatrices) {
  for (const std::size_t n : {3u, 8u, 25u, 60u, 150u}) {
    const SparseMatrix a = random_mna_matrix(n, 1000 + n);
    const Matrix dense = a.to_dense();
    const Vector b = random_vector(n, 2000 + n);

    const SparseLuFactorization sparse_lu(a);
    const LuFactorization dense_lu(dense);
    const Vector xs = sparse_lu.solve(b);
    const Vector xd = dense_lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-9) << "n=" << n << " i=" << i;
    }
    // The factorization really solves A x = b.
    const Vector ax = a.multiply(xs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(SparseLuTest, DeterminantMatchesDenseIncludingPivotSign) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const std::size_t n = 9;
    SparseMatrix a = random_mna_matrix(n, seed);
    const SparseLuFactorization sparse_lu(a);
    const LuFactorization dense_lu(a.to_dense());
    const double ds = sparse_lu.determinant();
    const double dd = dense_lu.determinant();
    EXPECT_NEAR(ds / dd, 1.0, 1e-9) << "seed=" << seed;
  }
}

TEST(SparseLuTest, DeterminantSignUnderForcedPivoting) {
  // [[0, 1], [1, 0]] needs one row swap: det = -1.
  SparsityPattern pattern;
  pattern.add(0, 1);
  pattern.add(1, 0);
  pattern.add_diagonal(2);
  SparseMatrix a(2, pattern);
  a.add_at(0, 1, 1.0);
  a.add_at(1, 0, 1.0);
  const SparseLuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
  EXPECT_NEAR(LuFactorization(a.to_dense()).determinant(), -1.0, 1e-12);
}

TEST(SparseLuTest, SingularMatrixErrorParityWithDense) {
  // Zero row.
  {
    SparsityPattern pattern;
    pattern.add_diagonal(3);
    SparseMatrix a(3, pattern);
    a.add_at(0, 0, 1.0);
    a.add_at(2, 2, 1.0);  // row 1 stays all-zero
    EXPECT_THROW(SparseLuFactorization{a}, SingularMatrixError);
    EXPECT_THROW(LuFactorization{a.to_dense()}, SingularMatrixError);
  }
  // Structurally full but rank deficient (two identical rows).
  {
    SparsityPattern pattern;
    pattern.add_diagonal(3);
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) pattern.add(r, c);
    SparseMatrix a(3, pattern);
    const double row[3] = {1.0, 2.0, 3.0};
    for (int c = 0; c < 3; ++c) {
      a.add_at(0, static_cast<std::size_t>(c), row[c]);
      a.add_at(1, static_cast<std::size_t>(c), row[c]);
      a.add_at(2, static_cast<std::size_t>(c), row[c] * row[c]);
    }
    EXPECT_THROW(SparseLuFactorization{a}, SingularMatrixError);
    EXPECT_THROW(LuFactorization{a.to_dense()}, SingularMatrixError);
  }
}

TEST(SparseLuTest, RefactorReusesStructureAndMatchesFreshFactorization) {
  const std::size_t n = 40;
  SparsityPattern pattern;
  SparseMatrix a = random_mna_matrix(n, 77, &pattern);
  SparseLuFactorization lu(a);

  // New values, same structure: refactor must equal a fresh factorization.
  for (int round = 0; round < 3; ++round) {
    SparseMatrix a2(n, pattern);
    std::uint64_t s = 500 + static_cast<std::uint64_t>(round);
    std::vector<double> rowsum(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (int p = a2.row_ptr()[r]; p < a2.row_ptr()[r + 1]; ++p) {
        const auto c = static_cast<std::size_t>(a2.col_ind()[p]);
        if (c == r) continue;
        const double v = uniform(s, -1.0, 1.0);
        a2.add_at(r, c, v);
        rowsum[r] += std::abs(v);
      }
    }
    for (std::size_t r = 0; r < n; ++r) a2.add_at(r, r, rowsum[r] + 1.0);

    lu.refactor(a2);
    const Vector b = random_vector(n, 900 + static_cast<std::uint64_t>(round));
    const Vector x_refactor = lu.solve(b);
    const Vector x_fresh = SparseLuFactorization(a2).solve(b);
    const Vector x_dense = LuFactorization(a2.to_dense()).solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_refactor[i], x_fresh[i], 1e-9);
      EXPECT_NEAR(x_refactor[i], x_dense[i], 1e-9);
    }
  }
}

TEST(SparseLuTest, RefactorRejectsChangedStructure) {
  SparsityPattern p1;
  p1.add_diagonal(4);
  SparseMatrix a(4, p1);
  for (std::size_t i = 0; i < 4; ++i) a.add_at(i, i, 2.0);
  SparseLuFactorization lu(a);

  SparsityPattern p2 = p1;
  p2.add(0, 3);
  SparseMatrix b(4, p2);
  for (std::size_t i = 0; i < 4; ++i) b.add_at(i, i, 2.0);
  EXPECT_THROW(lu.refactor(b), Error);
}

TEST(SparseLuTest, RefactorThrowsOnCollapsedPivot) {
  SparsityPattern pattern;
  pattern.add_diagonal(3);
  SparseMatrix a(3, pattern);
  for (std::size_t i = 0; i < 3; ++i) a.add_at(i, i, 1.0);
  SparseLuFactorization lu(a);

  SparseMatrix bad(3, pattern);
  bad.add_at(0, 0, 1.0);
  bad.add_at(2, 2, 1.0);  // diagonal pivot at column 1 is now ~0
  EXPECT_THROW(lu.refactor(bad), SingularMatrixError);
}

}  // namespace
}  // namespace relsim
