#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"
#include "util/mathx.h"

namespace relsim::spice {
namespace {

// Builds a CMOS inverter in the given circuit; returns {in, out} nodes.
std::pair<NodeId, NodeId> add_inverter(Circuit& c, const TechNode& tech,
                                       const std::string& prefix, NodeId vdd,
                                       NodeId in, NodeId out) {
  c.add_mosfet(prefix + "_n", out, in, kGround, kGround,
               make_mos_params(tech, 1.0, 0.1, false));
  c.add_mosfet(prefix + "_p", out, in, vdd, vdd,
               make_mos_params(tech, 2.0, 0.1, true));
  return {in, out};
}

TEST(DcMosTest, DiodeConnectedNmosBias) {
  // VDD -- R -- drain=gate node: solves vgs such that I_R = I_D.
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId d = c.node("d");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_resistor("R1", vdd, d, 10e3);
  auto& m = c.add_mosfet("M1", d, d, kGround, kGround,
                         make_mos_params(tech, 2.0, 0.2, false));
  const DcResult r = dc_operating_point(c);
  const double v = r.v(d);
  EXPECT_GT(v, tech.vt0_nmos);  // must be above threshold to conduct
  EXPECT_LT(v, tech.vdd);
  // KCL at the node.
  const double ir = (tech.vdd - v) / 10e3;
  const double id = m.operating_point(r.x()).id;
  EXPECT_NEAR(ir, id, 1e-7 + 1e-4 * ir);
}

TEST(DcMosTest, InverterVtcEndsAtRails) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vin = c.add_vsource("VIN", in, kGround, 0.0);
  add_inverter(c, tech, "inv", vdd, in, out);

  const auto sweep = dc_sweep(c, vin, linspace(0.0, tech.vdd, 25));
  EXPECT_NEAR(sweep.front().v(out), tech.vdd, 0.02);
  EXPECT_NEAR(sweep.back().v(out), 0.0, 0.02);
  // Monotonically non-increasing VTC.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].v(out), sweep[i - 1].v(out) + 1e-6);
  }
}

TEST(DcMosTest, InverterSwitchingThresholdNearMidrail) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vin = c.add_vsource("VIN", in, kGround, 0.0);
  add_inverter(c, tech, "inv", vdd, in, out);
  // Find the crossing v(out) == v(in) by bisection on the DC sweep.
  double lo = 0.0, hi = tech.vdd;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    vin.set_dc(mid);
    const DcResult r = dc_operating_point(c);
    if (r.v(out) > mid) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double vm = 0.5 * (lo + hi);
  EXPECT_GT(vm, 0.35 * tech.vdd);
  EXPECT_LT(vm, 0.65 * tech.vdd);
}

TEST(DcMosTest, CurrentMirrorCopiesCurrent) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId ref = c.node("ref");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_isource("IREF", vdd, ref, 100e-6);
  const auto p = make_mos_params(tech, 4.0, 0.5, false);  // long L: low lambda
  c.add_mosfet("M1", ref, ref, kGround, kGround, p);
  auto& m2 = c.add_mosfet("M2", out, ref, kGround, kGround, p);
  // Hold the output at the same drain voltage as the reference for an
  // (almost) exact copy.
  c.add_resistor("RL", vdd, out, 5e3);
  const DcResult r = dc_operating_point(c);
  const double iout = m2.operating_point(r.x()).id;
  EXPECT_NEAR(iout / 100e-6, 1.0, 0.1);  // CLM-limited accuracy
}

TEST(DcMosTest, MirrorRatioScalesWithWidth) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId ref = c.node("ref");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_isource("IREF", vdd, ref, 50e-6);
  c.add_mosfet("M1", ref, ref, kGround, kGround,
               make_mos_params(tech, 2.0, 0.5, false));
  auto& m2 = c.add_mosfet("M2", out, ref, kGround, kGround,
                          make_mos_params(tech, 6.0, 0.5, false));
  c.add_resistor("RL", vdd, out, 2e3);
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(m2.operating_point(r.x()).id / 150e-6, 1.0, 0.12);
}

TEST(DcMosTest, NandGateTruthTable) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId out = c.node("out");
  const NodeId mid = c.node("mid");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& va = c.add_vsource("VA", a, kGround, 0.0);
  auto& vb = c.add_vsource("VB", b, kGround, 0.0);
  const auto n = make_mos_params(tech, 2.0, 0.1, false);
  const auto p = make_mos_params(tech, 2.0, 0.1, true);
  c.add_mosfet("MN1", out, a, mid, kGround, n);
  c.add_mosfet("MN2", mid, b, kGround, kGround, n);
  c.add_mosfet("MP1", out, a, vdd, vdd, p);
  c.add_mosfet("MP2", out, b, vdd, vdd, p);

  const double hi = tech.vdd;
  struct Case {
    double a, b, out;
  };
  for (const auto& tc : {Case{0, 0, hi}, Case{0, hi, hi}, Case{hi, 0, hi},
                         Case{hi, hi, 0}}) {
    va.set_dc(tc.a);
    vb.set_dc(tc.b);
    const DcResult r = dc_operating_point(c);
    EXPECT_NEAR(r.v(out), tc.out, 0.05)
        << "a=" << tc.a << " b=" << tc.b;
  }
}

TEST(DcMosTest, FiveTransistorOtaHasGain) {
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId inp = c.node("inp");
  const NodeId inn = c.node("inn");
  const NodeId out = c.node("out");
  const NodeId x = c.node("x");     // mirror node
  const NodeId tail = c.node("tail");
  const NodeId bias = c.node("bias");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vp = c.add_vsource("VINP", inp, kGround, 0.6);
  c.add_vsource("VINN", inn, kGround, 0.6);
  // Tail current source: diode-biased NMOS mirror.
  c.add_isource("IB", vdd, bias, 20e-6);
  const auto nb = make_mos_params(tech, 2.0, 0.5, false);
  c.add_mosfet("MB1", bias, bias, kGround, kGround, nb);
  c.add_mosfet("MB2", tail, bias, kGround, kGround, nb);
  // Input pair.
  const auto ni = make_mos_params(tech, 8.0, 0.2, false);
  c.add_mosfet("M1", x, inp, tail, kGround, ni);
  c.add_mosfet("M2", out, inn, tail, kGround, ni);
  // PMOS mirror load.
  const auto pl = make_mos_params(tech, 4.0, 0.5, true);
  c.add_mosfet("M3", x, x, vdd, vdd, pl);
  c.add_mosfet("M4", out, x, vdd, vdd, pl);

  // Differential DC gain from a small input step.
  const DcResult r0 = dc_operating_point(c);
  vp.set_dc(0.601);
  const DcResult r1 = dc_operating_point(c, {}, r0.x());
  // inp drives the diode-connected side, so out moves WITH inp:
  // M1 current up -> x down -> M4 sources more -> out up. Non-inverting.
  const double gain = (r1.v(out) - r0.v(out)) / 0.001;
  EXPECT_GT(gain, 5.0);
}

}  // namespace
}  // namespace relsim::spice
