#include <gtest/gtest.h>

#include <cmath>

#include "aging/engine.h"
#include "aging/hci.h"
#include "aging/nbti.h"
#include "aging/tddb.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"

namespace relsim::aging {
namespace {

using spice::Circuit;
using spice::DcResult;
using spice::kGround;
using spice::Mosfet;
using spice::NodeId;

// A pMOS current-source stage: the classic NBTI victim (gate grounded,
// source at VDD -> constant negative gate bias). Sized so the device sits
// in saturation (out well below |vdsat|).
Circuit pmos_bias_stage(const TechNode& tech) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_mosfet("MP", out, kGround, vdd, vdd,
               spice::make_mos_params(tech, 0.5, 0.5, true));
  c.add_resistor("RL", out, kGround, 5e3);
  return c;
}

TEST(AgingEngineTest, StandardEngineHasThreeModels) {
  EXPECT_EQ(AgingEngine::standard().model_count(), 3u);
}

TEST(AgingEngineTest, PmosStageDegradesOverMission) {
  const auto& tech = tech_65nm();
  Circuit c = pmos_bias_stage(tech);
  const double fresh_out = dc_operating_point(c).v(c.find_node("out"));

  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  AgingOptions opt;
  opt.mission.years = 10.0;
  opt.mission.epochs = 5;
  const AgingReport report = engine.age(c, opt);

  ASSERT_EQ(report.epochs.size(), 5u);
  const auto drift = report.final_drift("MP");
  EXPECT_GT(drift.dvt, 0.01);
  // The degraded stage sources less current -> output droops.
  const double aged_out = dc_operating_point(c).v(c.find_node("out"));
  EXPECT_LT(aged_out, fresh_out - 0.01);
}

TEST(AgingEngineTest, DriftIsMonotonePerEpoch) {
  const auto& tech = tech_65nm();
  Circuit c = pmos_bias_stage(tech);
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  engine.add_model(std::make_unique<HciModel>());
  AgingOptions opt;
  opt.mission.epochs = 8;
  const auto report = engine.age(c, opt);
  double prev = 0.0;
  for (const auto& epoch : report.epochs) {
    const double dvt = epoch.device_drift.at("MP").dvt;
    EXPECT_GE(dvt, prev);
    prev = dvt;
  }
}

TEST(AgingEngineTest, StressFeedbackSlowsDegradation) {
  // With feedback, NBTI on the pMOS lowers |vgs| stress over time in this
  // self-biased stage... here the gate is hard-grounded so |vgs| is fixed;
  // use a diode-connected stage where the operating point moves instead.
  const auto& tech = tech_65nm();
  auto build = [&]() {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId d = c.node("d");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    c.add_resistor("R1", d, kGround, 20e3);
    // Diode-connected pMOS: |vgs| = vdd - v(d); as VT grows, v(d) falls and
    // |vgs| grows -> feedback INCREASES stress here. Either way the two
    // results must differ measurably.
    c.add_mosfet("MP", d, d, vdd, vdd,
                 spice::make_mos_params(tech, 2.0, 0.2, true));
    return c;
  };
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  AgingOptions with_fb;
  with_fb.mission.epochs = 10;
  AgingOptions no_fb = with_fb;
  no_fb.refresh_stress_each_epoch = false;

  Circuit c1 = build();
  Circuit c2 = build();
  const double dvt_fb = engine.age(c1, with_fb).final_drift("MP").dvt;
  const double dvt_nofb = engine.age(c2, no_fb).final_drift("MP").dvt;
  EXPECT_GT(dvt_fb, dvt_nofb * 1.001);
}

TEST(AgingEngineTest, TddbEventuallyBreaksUnderBurnIn) {
  // Over-voltage burn-in: TDDB must produce hard breakdowns and report
  // them; the circuit still solves (gate leak paths in place).
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId stress_rail = c.node("vstress");
  const NodeId g = c.node("g");
  c.add_vsource("VS", stress_rail, kGround, 3.0 * tech.vdd);
  c.add_resistor("RG", stress_rail, g, 1e3);
  c.add_mosfet("MN", kGround, g, kGround, kGround,
               spice::make_mos_params(tech, 10.0, 1.0, false));
  AgingEngine engine;
  engine.add_model(std::make_unique<TddbModel>());
  AgingOptions opt;
  opt.mission.years = 10.0;
  opt.mission.epochs = 20;
  opt.seed = 123;
  const auto report = engine.age(c, opt);
  EXPECT_FALSE(report.hard_breakdowns.empty());
  // Post-HBD the gate pulls mA-range current through RG: g node droops.
  const DcResult r = dc_operating_point(c);
  EXPECT_LT(r.v(g), 0.9 * 3.0 * tech.vdd);
}

TEST(AgingEngineTest, EmWireFailureRaisesResistance) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add_vsource("V1", n1, kGround, 1.0);
  auto& r = c.add_resistor("RW", n1, kGround, 10.0);  // 100 mA: EM death
  r.set_wire_geometry({0.5, 2000.0, 0.35});
  AgingEngine engine;  // no transistor models needed
  const EmModel em(tech.em);
  AgingOptions opt;
  opt.mission.years = 10.0;
  opt.mission.epochs = 10;
  const auto report = engine.age(c, opt, {}, &em);
  ASSERT_EQ(report.wire_failures.size(), 1u);
  EXPECT_EQ(report.wire_failures[0].wire, "RW");
  EXPECT_GT(r.resistance(), 1e6);
}

TEST(AgingEngineTest, SafeWireSurvives) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add_vsource("V1", n1, kGround, 1.0);
  auto& r = c.add_resistor("RW", n1, kGround, 1e4);  // 100 uA: safe
  r.set_wire_geometry({1.0, 50.0, 0.35});
  AgingEngine engine;
  const EmModel em(tech.em);
  AgingOptions opt;
  const auto report = engine.age(c, opt, {}, &em);
  EXPECT_TRUE(report.wire_failures.empty());
  EXPECT_DOUBLE_EQ(r.resistance(), 1e4);
}

TEST(AgingEngineTest, HotOperatingPointChangesStressExtraction) {
  // With set_circuit_temperature the devices are simulated hot: lower VT
  // moves the self-biased operating point, so the extracted stress (and
  // hence the drift) differs from the cold-extraction default.
  const auto& tech = tech_65nm();
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  AgingOptions cold_extract;
  cold_extract.mission.epochs = 3;
  AgingOptions hot_extract = cold_extract;
  hot_extract.set_circuit_temperature = true;
  // Self-biased stage: |vgs| tracks VT, so the hot (lower-VT) operating
  // point carries less gate stress than the cold extraction assumes.
  auto build = [&]() {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId d = c.node("d");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    c.add_resistor("R1", d, kGround, 20e3);
    c.add_mosfet("MP", d, d, vdd, vdd,
                 spice::make_mos_params(tech, 2.0, 0.2, true));
    return c;
  };
  Circuit c1 = build();
  Circuit c2 = build();
  const double d_cold = engine.age(c1, cold_extract).final_drift("MP").dvt;
  const double d_hot = engine.age(c2, hot_extract).final_drift("MP").dvt;
  EXPECT_GT(d_cold, 0.0);
  EXPECT_GT(d_hot, 0.0);
  EXPECT_NE(d_cold, d_hot);
  // The hot circuit stays hot afterwards (the knob is sticky by design).
  EXPECT_DOUBLE_EQ(c2.device_as<Mosfet>("MP").params().temp_k, 398.0);
}

TEST(AgingEngineTest, LowerActivityMeansLessDrift) {
  const auto& tech = tech_65nm();
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  AgingOptions always_on;
  always_on.mission.epochs = 4;
  AgingOptions half_on = always_on;
  half_on.mission.activity = 0.5;
  AgingOptions off = always_on;
  off.mission.activity = 0.0;

  Circuit c1 = pmos_bias_stage(tech);
  Circuit c2 = pmos_bias_stage(tech);
  Circuit c3 = pmos_bias_stage(tech);
  const double full = engine.age(c1, always_on).final_drift("MP").dvt;
  const double half = engine.age(c2, half_on).final_drift("MP").dvt;
  const double none = engine.age(c3, off).final_drift("MP").dvt;
  EXPECT_GT(full, half);
  EXPECT_GT(half, 0.0);
  EXPECT_DOUBLE_EQ(none, 0.0);

  AgingOptions bad = always_on;
  bad.mission.activity = 1.5;
  Circuit c4 = pmos_bias_stage(tech);
  EXPECT_THROW(engine.age(c4, bad), Error);
}

TEST(AgingEngineTest, ReportIsDeterministicForSeed) {
  const auto& tech = tech_65nm();
  AgingEngine engine = AgingEngine::standard();
  AgingOptions opt;
  opt.seed = 99;
  opt.mission.epochs = 4;
  Circuit c1 = pmos_bias_stage(tech);
  Circuit c2 = pmos_bias_stage(tech);
  const auto r1 = engine.age(c1, opt);
  const auto r2 = engine.age(c2, opt);
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  EXPECT_DOUBLE_EQ(r1.final_drift("MP").dvt, r2.final_drift("MP").dvt);
  EXPECT_DOUBLE_EQ(r1.final_drift("MP").beta_factor,
                   r2.final_drift("MP").beta_factor);
}

TEST(AgingEngineTest, CustomTransientStressRunner) {
  // Stress from a switching workload: use a transient runner on an
  // inverter; the nMOS then carries duty < 1 and ages less than under DC.
  const auto& tech = tech_65nm();
  auto build = [&]() {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    c.add_vsource("VIN", in, kGround,
                  std::make_unique<spice::PulseWaveform>(
                      0.0, tech.vdd, 0.0, 10e-12, 10e-12, 3e-9, 10e-9));
    c.add_mosfet("MN", out, in, kGround, kGround,
                 spice::make_mos_params(tech, 1.0, 0.1, false));
    c.add_mosfet("MP", out, in, vdd, vdd,
                 spice::make_mos_params(tech, 2.0, 0.1, true));
    c.add_capacitor("CL", out, kGround, 5e-15);
    return c;
  };
  const StressRunner transient_runner = [](Circuit& circuit) {
    circuit.enable_stress_recording();
    spice::TransientOptions topt;
    topt.dt = 20e-12;
    topt.t_stop = 30e-9;
    spice::transient_analysis(circuit, topt, {});
  };
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  AgingOptions opt;
  opt.mission.epochs = 3;
  Circuit ac = build();
  const auto ac_report = engine.age(ac, opt, transient_runner);
  Circuit dc = build();
  // DC stress comparison: input low forever -> pMOS |vgs| = vdd, duty 1.
  dc.device_as<spice::VoltageSource>("VIN").set_dc(0.0);
  const auto dc_report = engine.age(dc, opt);
  EXPECT_LT(ac_report.final_drift("MP").dvt,
            0.9 * dc_report.final_drift("MP").dvt);
  EXPECT_GT(ac_report.final_drift("MP").dvt, 0.0);
}

}  // namespace
}  // namespace relsim::aging
