// Temperature behaviour of the device models (Circuit::set_temperature):
// threshold tempco, mobility power law, the classic ZTC crossover, and the
// "reversed temperature dependence" of scaled digital circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/netlist_parser.h"
#include "spice/probes.h"
#include "tech/tech.h"

namespace relsim::spice {
namespace {

MosParams nmos_at(double temp_k) {
  auto p = make_mos_params(tech_65nm(), 2.0, 0.1, false);
  p.temp_k = temp_k;
  return p;
}

TEST(TemperatureTest, ThresholdDropsWhenHot) {
  Mosfet cold("Mc", 1, 2, 3, 4, nmos_at(300.0));
  Mosfet hot("Mh", 1, 2, 3, 4, nmos_at(400.0));
  const auto opc = cold.evaluate(1.0, 0.6, 0.0, 0.0);
  const auto oph = hot.evaluate(1.0, 0.6, 0.0, 0.0);
  EXPECT_NEAR(opc.vt_eff - oph.vt_eff, 0.1, 1e-12);  // 1 mV/K over 100 K
}

TEST(TemperatureTest, ZtcCrossover) {
  // Low overdrive: the VT drop wins -> more current when hot.
  // High overdrive: mobility loss wins -> less current when hot.
  Mosfet cold("Mc", 1, 2, 3, 4, nmos_at(300.0));
  Mosfet hot("Mh", 1, 2, 3, 4, nmos_at(400.0));
  const double low_vgs = 0.45;
  const double high_vgs = 1.1;
  EXPECT_GT(hot.evaluate(1.0, low_vgs, 0.0, 0.0).id,
            cold.evaluate(1.0, low_vgs, 0.0, 0.0).id);
  EXPECT_LT(hot.evaluate(1.0, high_vgs, 0.0, 0.0).id,
            cold.evaluate(1.0, high_vgs, 0.0, 0.0).id);
}

TEST(TemperatureTest, CircuitWideSetTemperature) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId d = c.node("d");
  const NodeId a = c.node("a");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_resistor("R1", vdd, d, 5e3);
  c.add_mosfet("M1", d, d, kGround, kGround,
               make_mos_params(tech, 2.0, 0.2, false));
  c.add_resistor("R2", vdd, a, 5e3);
  c.add_diode("D1", a, kGround);
  const double vd_cold = dc_operating_point(c).v(d);
  const double va_cold = dc_operating_point(c).v(a);
  c.set_temperature(400.0);
  EXPECT_DOUBLE_EQ(c.device_as<Mosfet>("M1").params().temp_k, 400.0);
  const double vd_hot = dc_operating_point(c).v(d);
  const double va_hot = dc_operating_point(c).v(a);
  // Diode forward drop decreases when hot... thermal voltage rises but IS
  // is fixed in this model, so V = n*VT*ln(I/IS) RISES; assert it moved.
  EXPECT_NE(vd_hot, vd_cold);
  EXPECT_GT(va_hot, va_cold);
}

TEST(TemperatureTest, RingOscillatorSlowsWhenHot) {
  // Classic digital behaviour at healthy overdrive: mobility dominates.
  const auto& tech = tech_65nm();
  auto freq_at = [&](double temp) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    std::vector<NodeId> n;
    for (int i = 0; i < 5; ++i) n.push_back(c.node("n" + std::to_string(i)));
    for (int i = 0; i < 5; ++i) {
      c.add_mosfet("i" + std::to_string(i) + "n", n[(i + 1) % 5], n[i],
                   kGround, kGround, make_mos_params(tech, 1.0, 0.1, false));
      c.add_mosfet("i" + std::to_string(i) + "p", n[(i + 1) % 5], n[i], vdd,
                   vdd, make_mos_params(tech, 2.0, 0.1, true));
      c.add_capacitor("c" + std::to_string(i), n[(i + 1) % 5], kGround,
                      5e-15);
    }
    c.set_temperature(temp);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 3e-9;
    opt.use_initial_conditions = true;
    opt.initial_conditions[1] = tech.vdd;
    for (int i = 0; i < 5; ++i) {
      opt.initial_conditions[i + 2] = (i % 2 == 0) ? 0.0 : tech.vdd;
    }
    const auto res = transient_analysis(c, opt, {n[0]});
    return estimate_frequency(res.time(), res.node(n[0]), 1e-9, 3e-9);
  };
  const double f_cold = freq_at(300.0);
  const double f_hot = freq_at(400.0);
  ASSERT_GT(f_cold, 0.0);
  ASSERT_GT(f_hot, 0.0);
  EXPECT_LT(f_hot, 0.95 * f_cold);
}

TEST(TemperatureTest, NetlistTempDirective) {
  const auto parsed = parse_netlist(R"(temp card
.tech 65nm
.temp 398
VDD vdd 0 1.1
M1 d vdd 0 0 nmos W=1u L=0.1u
RD vdd d 5k
)");
  EXPECT_DOUBLE_EQ(
      parsed.circuit->device_as<Mosfet>("M1").params().temp_k, 398.0);
  EXPECT_THROW(parse_netlist("t\n.temp -10\n"), NetlistError);
}

TEST(TemperatureTest, InvalidTemperatureRejected) {
  Circuit c;
  EXPECT_THROW(c.set_temperature(0.0), Error);
  EXPECT_THROW(c.set_temperature(-5.0), Error);
}

}  // namespace
}  // namespace relsim::spice
