// Distributed-sharding substrate contracts (variability/shard.h):
//  * shard plans are contiguous, disjoint, chunk-aligned covers of [0, n);
//  * a windowed run is the exact slice of the full run, and merging the
//    shard checkpoints + resuming reassembles the bit-identical result;
//  * merge refuses overlapping bitmaps and mismatched runs;
//  * importance-sampling shards merge with their likelihood-ratio weights
//    bit-exact; missing parts merge as identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"
#include "variability/mc_checkpoint.h"
#include "variability/mc_session.h"
#include "variability/shard.h"

namespace relsim {
namespace {

McRequest base_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = 2;
  req.chunk = 16;
  return req;
}

bool coin_pass(Xoshiro256& rng, std::size_t) { return rng.uniform01() < 0.8; }

bool tail_event(McSamplePoint& p) {
  return 0.8 * p.normal(0) + 0.6 * p.normal(1) > 2.0;
}

SampleStrategyConfig importance_config(std::vector<double> shift) {
  SampleStrategyConfig c;
  c.kind = McSampleStrategy::kImportance;
  c.shift = std::move(shift);
  return c;
}

class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// A minimal consistent checkpoint image with `done_lo..done_hi` marked
/// done — for merge-validation tests that need precise bitmaps.
McCheckpointImage make_image(std::uint64_t seed, std::size_t n,
                             std::size_t done_lo, std::size_t done_hi) {
  McCheckpointImage image;
  image.seed = seed;
  image.n = n;
  image.kind = McCheckpointRunKind::kYield;
  image.strategy_kind = 0;
  image.strategy_digest = 0;
  image.done.assign(n, 0);
  image.status.assign(n, 0);
  image.attempts.assign(n, 0);
  image.values.assign(n, 0.0);
  for (std::size_t i = done_lo; i < done_hi; ++i) {
    image.done[i] = 1;
    image.values[i] = static_cast<double>(i) * 0.5;
    image.attempts[i] = 1;
  }
  return image;
}

// ---------------------------------------------------------------------------
// Shard plans

TEST(ShardPlanTest, CoversRangeContiguouslyChunkAligned) {
  for (const auto& [n, shards, chunk] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1000, 4, 16},
        {1000, 3, 32},
        {17, 4, 16},
        {4096, 7, 64},
        {5, 8, 2}}) {
    const std::vector<McShard> plan = make_shard_plan(n, shards, chunk, "p");
    ASSERT_FALSE(plan.empty());
    ASSERT_LE(plan.size(), shards);
    std::size_t expect_lo = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
      EXPECT_EQ(plan[s].index, s);
      EXPECT_EQ(plan[s].lo, expect_lo) << "gap before shard " << s;
      EXPECT_LT(plan[s].lo, plan[s].hi) << "empty shard " << s;
      if (plan[s].hi != n) {
        EXPECT_EQ(plan[s].hi % chunk, 0u)
            << "shard " << s << " boundary not chunk-aligned";
      }
      EXPECT_EQ(plan[s].checkpoint_path,
                "p.shard" + std::to_string(s) + ".rsmckpt");
      expect_lo = plan[s].hi;
    }
    EXPECT_EQ(expect_lo, n) << "plan does not cover [0, n)";
  }
}

TEST(ShardPlanTest, ShardsAreBalancedToWithinOneChunk) {
  const std::vector<McShard> plan = make_shard_plan(10000, 4, 16, "");
  ASSERT_EQ(plan.size(), 4u);
  std::size_t lo = plan[0].size(), hi = plan[0].size();
  for (const McShard& s : plan) {
    lo = std::min(lo, s.size());
    hi = std::max(hi, s.size());
  }
  EXPECT_LE(hi - lo, 16u);
}

// ---------------------------------------------------------------------------
// Windowed runs

TEST(ShardWindowTest, WindowedRunIsTheExactSliceOfTheFullRun) {
  McRequest full = base_request(123, 600);
  full.keep_values = true;
  const McResult reference = McSession(full).run_yield(coin_pass);
  ASSERT_EQ(reference.values.size(), 600u);

  McRequest window = full;
  window.shard_lo = 200;
  window.shard_hi = 400;
  const McResult slice = McSession(window).run_yield(coin_pass);
  EXPECT_EQ(slice.requested, 200u);
  EXPECT_EQ(slice.completed, 200u);
  ASSERT_EQ(slice.values.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(slice.values[i], reference.values[200 + i]) << "sample " << i;
  }
}

TEST(ShardWindowTest, RejectsInvalidWindowsAndStoppingRules) {
  McRequest bad = base_request(1, 100);
  bad.shard_lo = 50;
  bad.shard_hi = 50;  // empty
  EXPECT_THROW(McSession(bad).run_yield(coin_pass), Error);
  bad.shard_hi = 200;  // past n
  EXPECT_THROW(McSession(bad).run_yield(coin_pass), Error);

  McRequest stopping = base_request(1, 100);
  stopping.shard_lo = 0;
  stopping.shard_hi = 50;
  stopping.stopping.ci_half_width = 0.01;
  EXPECT_THROW(McSession(stopping).run_yield(coin_pass), Error);
}

// ---------------------------------------------------------------------------
// Merge + reassembly

TEST(ShardMergeTest, FourShardMergeAndResumeEqualsTheDirectRun) {
  const std::size_t n = 1000;
  McRequest direct = base_request(2026, n);
  direct.keep_values = true;
  const McResult reference = McSession(direct).run_yield(coin_pass);

  const std::string prefix = ::testing::TempDir() + "shard_merge4";
  const std::vector<McShard> plan = make_shard_plan(n, 4, direct.chunk, prefix);
  ASSERT_EQ(plan.size(), 4u);
  for (const McShard& shard : plan) {
    std::remove(shard.checkpoint_path.c_str());
    McRequest req = base_request(2026, n);
    req.shard_lo = shard.lo;
    req.shard_hi = shard.hi;
    req.checkpoint_path = shard.checkpoint_path;
    const McResult part = McSession(req).run_yield(coin_pass);
    EXPECT_EQ(part.completed, shard.size());
  }

  ScratchFile merged("shard_merge4.merged.rsmckpt");
  std::vector<std::string> parts;
  for (const McShard& shard : plan) parts.push_back(shard.checkpoint_path);
  const McCheckpointMergeStats stats =
      merge_checkpoints(parts, merged.path());
  EXPECT_EQ(stats.parts_found, 4u);
  EXPECT_EQ(stats.parts_missing, 0u);
  EXPECT_EQ(stats.samples, n);

  // Everything is done in the merged image, so the assembly resume must
  // not evaluate a single sample — and must equal the direct run bit for
  // bit.
  McRequest assemble = base_request(2026, n);
  assemble.keep_values = true;
  assemble.checkpoint_path = merged.path();
  const McResult assembled = McSession(assemble).run_yield(
      [](Xoshiro256&, std::size_t) -> bool {
        throw Error("merged run must not re-evaluate");
      });
  EXPECT_EQ(assembled.resumed, n);
  EXPECT_EQ(assembled.completed, reference.completed);
  EXPECT_EQ(assembled.estimate.passed, reference.estimate.passed);
  EXPECT_EQ(assembled.estimate.total, reference.estimate.total);
  ASSERT_EQ(assembled.values.size(), reference.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(assembled.values[i], reference.values[i]) << "sample " << i;
  }
  for (const McShard& shard : plan) {
    std::remove(shard.checkpoint_path.c_str());
  }
}

TEST(ShardMergeTest, PartialShardsMergeAndTheResumeFinishesTheRest) {
  // Only 2 of 3 shards ran: the merged image resumes and evaluates the
  // missing middle window in-process — the coordinator's degraded path.
  const std::size_t n = 900;
  McRequest direct = base_request(515, n);
  direct.keep_values = true;
  const McResult reference = McSession(direct).run_yield(coin_pass);

  const std::string prefix = ::testing::TempDir() + "shard_partial";
  const std::vector<McShard> plan = make_shard_plan(n, 3, direct.chunk, prefix);
  ASSERT_EQ(plan.size(), 3u);
  for (const McShard& shard : plan) std::remove(shard.checkpoint_path.c_str());
  for (std::size_t s : {std::size_t{0}, std::size_t{2}}) {
    McRequest req = base_request(515, n);
    req.shard_lo = plan[s].lo;
    req.shard_hi = plan[s].hi;
    req.checkpoint_path = plan[s].checkpoint_path;
    McSession(req).run_yield(coin_pass);
  }

  ScratchFile merged("shard_partial.merged.rsmckpt");
  const McCheckpointMergeStats stats = merge_checkpoints(
      {plan[0].checkpoint_path, plan[1].checkpoint_path,
       plan[2].checkpoint_path},
      merged.path());
  EXPECT_EQ(stats.parts_found, 2u);
  EXPECT_EQ(stats.parts_missing, 1u);

  McRequest assemble = base_request(515, n);
  assemble.keep_values = true;
  assemble.checkpoint_path = merged.path();
  const McResult assembled = McSession(assemble).run_yield(coin_pass);
  EXPECT_EQ(assembled.resumed, plan[0].size() + plan[2].size());
  ASSERT_EQ(assembled.values.size(), reference.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(assembled.values[i], reference.values[i]) << "sample " << i;
  }
  for (const McShard& shard : plan) std::remove(shard.checkpoint_path.c_str());
}

TEST(ShardMergeTest, SinglePartMergeIsByteIdentical) {
  ScratchFile part("shard_single.part.rsmckpt");
  ScratchFile out("shard_single.merged.rsmckpt");
  save_checkpoint_image(part.path(), make_image(9, 64, 0, 32));
  merge_checkpoints({part.path()}, out.path());
  EXPECT_EQ(slurp(part.path()), slurp(out.path()));
}

TEST(ShardMergeTest, RejectsOverlappingParts) {
  ScratchFile a("shard_overlap.a.rsmckpt");
  ScratchFile b("shard_overlap.b.rsmckpt");
  ScratchFile out("shard_overlap.merged.rsmckpt");
  save_checkpoint_image(a.path(), make_image(7, 32, 0, 10));
  save_checkpoint_image(b.path(), make_image(7, 32, 8, 20));  // 8,9 overlap
  try {
    merge_checkpoints({a.path(), b.path()}, out.path());
    FAIL() << "overlapping parts must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
  }
}

TEST(ShardMergeTest, RejectsPartsOfDifferentRuns) {
  ScratchFile a("shard_mismatch.a.rsmckpt");
  ScratchFile b("shard_mismatch.b.rsmckpt");
  ScratchFile out("shard_mismatch.merged.rsmckpt");
  save_checkpoint_image(a.path(), make_image(7, 32, 0, 10));
  save_checkpoint_image(b.path(), make_image(8, 32, 16, 20));  // other seed
  EXPECT_THROW(merge_checkpoints({a.path(), b.path()}, out.path()), Error);

  McCheckpointImage other_digest = make_image(7, 32, 16, 20);
  other_digest.strategy_digest = 0xBEEF;
  save_checkpoint_image(b.path(), other_digest);
  EXPECT_THROW(merge_checkpoints({a.path(), b.path()}, out.path()), Error);
}

TEST(ShardMergeTest, ThrowsWhenEveryPartIsMissing) {
  ScratchFile out("shard_none.merged.rsmckpt");
  EXPECT_THROW(
      merge_checkpoints({::testing::TempDir() + "does_not_exist.rsmckpt"},
                        out.path()),
      Error);
}

TEST(ShardMergeTest, ImportanceShardsMergeWithWeightsBitExact) {
  const std::size_t n = 800;
  McRequest direct = base_request(88, n);
  direct.strategy = importance_config({1.2, 0.9});
  ScratchFile ref_ckpt("shard_is.ref.rsmckpt");
  McRequest ref_req = direct;
  ref_req.checkpoint_path = ref_ckpt.path();
  const McResult reference = McSession(ref_req).run_yield(tail_event);
  McCheckpointImage ref_image;
  ASSERT_TRUE(load_checkpoint_image(ref_ckpt.path(), ref_image));
  ASSERT_TRUE(ref_image.has_weights());

  const std::string prefix = ::testing::TempDir() + "shard_is";
  const std::vector<McShard> plan = make_shard_plan(n, 2, direct.chunk, prefix);
  ASSERT_EQ(plan.size(), 2u);
  for (const McShard& shard : plan) {
    std::remove(shard.checkpoint_path.c_str());
    McRequest req = direct;
    req.shard_lo = shard.lo;
    req.shard_hi = shard.hi;
    req.checkpoint_path = shard.checkpoint_path;
    McSession(req).run_yield(tail_event);
  }
  ScratchFile merged("shard_is.merged.rsmckpt");
  const McCheckpointMergeStats stats = merge_checkpoints(
      {plan[0].checkpoint_path, plan[1].checkpoint_path}, merged.path());
  EXPECT_TRUE(stats.has_weights);

  McCheckpointImage merged_image;
  ASSERT_TRUE(load_checkpoint_image(merged.path(), merged_image));
  ASSERT_TRUE(merged_image.has_weights());
  ASSERT_EQ(merged_image.weights.size(), ref_image.weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(merged_image.weights[i], ref_image.weights[i])
        << "LR weight drifted at sample " << i;
    ASSERT_EQ(merged_image.values[i], ref_image.values[i]);
  }

  // And the weighted estimate survives the reassembly bit-exact.
  McRequest assemble = direct;
  assemble.checkpoint_path = merged.path();
  const McResult assembled = McSession(assemble).run_yield(
      [](McSamplePoint&) -> bool {
        throw Error("merged IS run must not re-evaluate");
      });
  EXPECT_TRUE(assembled.weighted.enabled);
  EXPECT_EQ(assembled.weighted.ess, reference.weighted.ess);
  EXPECT_EQ(assembled.estimate.interval.estimate,
            reference.estimate.interval.estimate);
  for (const McShard& shard : plan) std::remove(shard.checkpoint_path.c_str());
}

}  // namespace
}  // namespace relsim
