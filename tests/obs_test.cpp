// Tests for relsim::obs — JSON writer, metrics registry, span tracer and
// run manifests. The trace/manifest tests parse the emitted documents with
// a small recursive-descent JSON parser so well-formedness is checked
// structurally, not with string matching.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json_writer.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "variability/mc_session.h"

// --- allocation counting for the zero-cost-disabled-tracer test -------------
//
// Global operator new/delete are replaced for the whole test binary; every
// allocation on the current thread bumps a thread_local counter. The
// hot-path test reads the counter around a loop of disabled TraceSpans.
namespace {
thread_local std::size_t t_alloc_count = 0;
}  // namespace

// GCC pairs the `new` expressions it sees with the library free(); the
// pairing is correct here because BOTH sides are replaced.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace relsim {
namespace {

// --- mini JSON parser --------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* find(const std::string& k) const {
    for (const auto& [key, v] : obj) {
      if (key == k) return &v;
    }
    return nullptr;
  }
  const Json& at(const std::string& k) const {
    const Json* v = find(k);
    RELSIM_REQUIRE(v != nullptr, "missing key " + k);
    return *v;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  Json parse() {
    Json v = parse_value();
    skip_ws();
    RELSIM_REQUIRE(pos_ == text_.size(), "trailing garbage after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    RELSIM_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    RELSIM_REQUIRE(peek() == c, std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return {};
      default:
        return parse_number();
    }
  }
  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      RELSIM_REQUIRE(pos_ < text_.size() && text_[pos_] == *p,
                     std::string("bad literal, wanted ") + lit);
      ++pos_;
    }
  }
  Json parse_bool() {
    Json v;
    v.type = Json::Type::kBool;
    if (peek() == 't') {
      parse_literal("true");
      v.b = true;
    } else {
      parse_literal("false");
      v.b = false;
    }
    return v;
  }
  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    RELSIM_REQUIRE(pos_ > start, "expected a number");
    Json v;
    v.type = Json::Type::kNumber;
    v.num = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }
  Json parse_string() {
    expect('"');
    Json v;
    v.type = Json::Type::kString;
    while (true) {
      RELSIM_REQUIRE(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      RELSIM_REQUIRE(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u':
          RELSIM_REQUIRE(pos_ + 4 <= text_.size(), "bad \\u escape");
          pos_ += 4;
          v.str += '?';  // enough for structural checks
          break;
        default:
          RELSIM_REQUIRE(false, "unknown escape");
      }
    }
    return v;
  }
  Json parse_array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (consume(']')) return v;
    while (true) {
      v.arr.push_back(parse_value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }
  Json parse_object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (consume('}')) return v;
    while (true) {
      Json key = parse_string();
      expect(':');
      v.obj.emplace_back(std::move(key.str), parse_value());
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

Json parse_file(const std::string& path) {
  std::ifstream is(path);
  RELSIM_REQUIRE(bool(is), "cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return JsonParser(os.str()).parse();
}

// --- JsonWriter --------------------------------------------------------------

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_escape("plain"), "plain");
}

TEST(JsonWriterTest, StableKeyOrderAndNumberFormat) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("z", 1);
  w.kv("a", 2.5);
  w.kv("whole", 3.0);
  w.kv("s", "x");
  w.kv("flag", true);
  w.end_object();
  EXPECT_TRUE(w.complete());
  // Keys in insertion order (not sorted); integral doubles keep a ".0" so
  // the value round-trips as a double.
  EXPECT_EQ(os.str(),
            "{\"z\":1,\"a\":2.5,\"whole\":3.0,\"s\":\"x\",\"flag\":true}");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, NestedDocumentParses) {
  std::ostringstream os;
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.key("rows");
  w.begin_array();
  w.begin_object();
  w.kv("name", "a\nb");
  w.kv("v", 0.125);
  w.end_object();
  w.end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  const Json doc = JsonParser(os.str()).parse();
  ASSERT_EQ(doc.type, Json::Type::kObject);
  const Json& rows = doc.at("rows");
  ASSERT_EQ(rows.arr.size(), 1u);
  EXPECT_EQ(rows.arr[0].at("name").str, "a\nb");
  EXPECT_DOUBLE_EQ(rows.arr[0].at("v").num, 0.125);
}

TEST(JsonWriterTest, MalformedStructureThrows) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  EXPECT_THROW(w.value(1), Error);       // value without a key
  EXPECT_THROW(w.end_array(), Error);    // wrong scope close
}

// --- metrics -----------------------------------------------------------------

TEST(MetricsTest, CounterSumsConcurrentIncrements) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIncs);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, HistogramTracksMinMaxAndBuckets) {
  obs::Histogram h;
  h.observe(1.0);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(0.25);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  // 1.0 and 1.5 share the [1,2) bucket; 3.0 is in [2,4); 0.25 in [0.25,0.5).
  std::int64_t total = 0;
  for (const auto& [lo, n] : s.buckets) {
    total += n;
    if (lo == 1.0) {
      EXPECT_EQ(n, 2);
    }
    if (lo == 2.0) {
      EXPECT_EQ(n, 1);
    }
    if (lo == 0.25) {
      EXPECT_EQ(n, 1);
    }
  }
  EXPECT_EQ(total, 4);
}

TEST(MetricsTest, HistogramCountsNonFiniteSeparately) {
  // NaN/Inf used to land silently in the edge buckets (and ±Inf poisoned
  // min/max); now they are rejected into a dedicated counter.
  obs::Histogram h;
  h.observe(1.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(2.0);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.nonfinite, 3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  h.reset();
  EXPECT_EQ(h.snapshot().nonfinite, 0);
}

TEST(MetricsTest, HistogramNonFiniteCountReachesJson) {
  obs::MetricsRegistry reg;
  reg.histogram("h.sick").observe(std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  reg.snapshot().to_json(w);
  EXPECT_NE(os.str().find("\"nonfinite\":1"), std::string::npos) << os.str();
}

TEST(MetricsTest, HistogramSnapshotIsOrderIndependent) {
  obs::Histogram a;
  obs::Histogram b;
  const std::vector<double> values{0.5, 2.0, 8.0, 2.5, 1e-9, 1e9};
  for (double v : values) a.observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) b.observe(*it);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(MetricsTest, RegistryRejectsCrossKindNames) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_NO_THROW(reg.counter("x"));
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
}

TEST(MetricsTest, SnapshotJsonParses) {
  obs::MetricsRegistry reg;
  reg.counter("c.one").inc(3);
  reg.gauge("g.one").set(2.5);
  reg.histogram("h.one").observe(1.0);
  std::ostringstream os;
  obs::JsonWriter w(os, 2);
  reg.snapshot().to_json(w);
  ASSERT_TRUE(w.complete());
  const Json doc = JsonParser(os.str()).parse();
  EXPECT_DOUBLE_EQ(doc.at("counters").at("c.one").num, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("g.one").num, 2.5);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("h.one").at("count").num, 1.0);
}

// Work counters must be bit-identical for any worker count on a full run of
// the same seed — the manifest acceptance guarantee.
TEST(MetricsTest, McCountersIdenticalAcrossThreadCounts) {
  auto run_and_snapshot = [](unsigned threads) {
    obs::metrics().reset();
    McRequest req;
    req.seed = 2026;
    req.n = 512;
    req.threads = threads;
    req.chunk = 16;
    McSession(req).run_yield([](Xoshiro256& rng, std::size_t) {
      return rng.uniform01() < 0.8;
    });
    return obs::metrics().snapshot().counters;
  };
  const auto one = run_and_snapshot(1);
  const auto four = run_and_snapshot(4);
  const auto eight = run_and_snapshot(8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.at("mc.samples_evaluated"), 512);
  EXPECT_EQ(one.at("mc.chunks_retired"), 512 / 16);
}

// --- tracer ------------------------------------------------------------------

TEST(TraceTest, DisabledSpanIsAllocationFree) {
  ASSERT_FALSE(obs::trace_enabled());
  // Warm the instruments so registry lookups are out of the loop.
  static obs::Counter& c = obs::metrics().counter("obs_test.hot");
  c.inc();
  const std::size_t before = t_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    obs::TraceSpan span("newton.solve", "i", static_cast<double>(i));
    obs::trace_instant("mark");
    c.inc();
  }
  EXPECT_EQ(t_alloc_count, before);
}

TEST(TraceTest, SessionWritesWellFormedNestedSpans) {
  const std::string path = "obs_test_trace.json";
  std::remove(path.c_str());
  {
    obs::TraceSession session(path);
    ASSERT_TRUE(obs::trace_enabled());
    McRequest req;
    req.seed = 99;
    req.n = 96;
    req.threads = 8;
    req.chunk = 4;
    McSession(req).run_yield([](Xoshiro256& rng, std::size_t) {
      const obs::TraceSpan inner("sample.work");
      return rng.uniform01() < 0.5;
    });
    ASSERT_TRUE(session.flush());
  }
  EXPECT_FALSE(obs::trace_enabled());

  const Json doc = parse_file(path);
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);
  ASSERT_FALSE(events.arr.empty());

  struct Span {
    std::string name;
    double ts = 0.0, dur = 0.0;
  };
  std::vector<std::pair<double, std::vector<Span>>> by_tid;  // (tid, spans)
  auto spans_of = [&](double tid) -> std::vector<Span>& {
    for (auto& [t, spans] : by_tid) {
      if (t == tid) return spans;
    }
    by_tid.push_back({tid, {}});
    return by_tid.back().second;
  };
  std::size_t samples = 0, works = 0;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    const std::string& ph = e.at("ph").str;
    if (ph != "X") continue;
    Span s{e.at("name").str, e.at("ts").num, e.at("dur").num};
    if (s.name == "mc.sample") ++samples;
    if (s.name == "sample.work") ++works;
    spans_of(e.at("tid").num).push_back(s);
  }
  EXPECT_EQ(samples, 96u);
  EXPECT_EQ(works, 96u);

  // Per thread, spans must strictly nest: each pair is disjoint in time or
  // one contains the other. Every sample.work span sits inside an
  // mc.sample span, which sits inside an mc.chunk span.
  for (const auto& [tid, spans] : by_tid) {
    auto contains = [](const Span& outer, const Span& inner) {
      return outer.ts <= inner.ts &&
             inner.ts + inner.dur <= outer.ts + outer.dur;
    };
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const Span& a = spans[i];
        const Span& b = spans[j];
        const bool disjoint = a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts;
        EXPECT_TRUE(disjoint || contains(a, b) || contains(b, a))
            << a.name << " and " << b.name << " overlap without nesting";
      }
    }
    for (const Span& s : spans) {
      auto inside_named = [&](const char* name) {
        for (const Span& outer : spans) {
          if (outer.name == name && contains(outer, s)) return true;
        }
        return false;
      };
      if (s.name == "sample.work") {
        EXPECT_TRUE(inside_named("mc.sample"));
      }
      if (s.name == "mc.sample") {
        EXPECT_TRUE(inside_named("mc.chunk"));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceTest, FlushEmitsProcessAndThreadNameMetadata) {
  const std::string path = "obs_test_trace_meta.json";
  std::remove(path.c_str());
  {
    obs::TraceSession session(path);
    obs::trace_set_thread_name("test.main");
    { const obs::TraceSpan span("named.work"); }
    std::thread unnamed([] { const obs::TraceSpan span("worker.span"); });
    unnamed.join();
    ASSERT_TRUE(session.flush());
  }

  const Json doc = parse_file(path);
  const Json& events = doc.at("traceEvents");
  bool process_named = false;
  bool main_named = false;
  bool fallback_named = false;
  for (const Json& e : events.arr) {
    if (e.at("ph").str != "M") continue;
    const std::string& name = e.at("name").str;
    const std::string& value = e.at("args").at("name").str;
    if (name == "process_name" && value == "relsim") process_named = true;
    if (name == "thread_name" && value == "test.main") main_named = true;
    // A thread that never called trace_set_thread_name still gets a
    // stable "thread/<tid>" label.
    if (name == "thread_name" && value.rfind("thread/", 0) == 0) {
      fallback_named = true;
    }
  }
  EXPECT_TRUE(process_named);
  EXPECT_TRUE(main_named);
  EXPECT_TRUE(fallback_named);
  std::remove(path.c_str());
}

// --- manifest ----------------------------------------------------------------

TEST(ManifestTest, McSessionWritesParsableManifest) {
  const std::string path = "obs_test_manifest.json";
  std::remove(path.c_str());
  obs::metrics().reset();
  McRequest req;
  req.seed = 77;
  req.n = 128;
  req.threads = 4;
  req.chunk = 8;
  req.run_label = "obs_test.run";
  req.manifest_path = path;
  const McResult result =
      McSession(req).run_yield([](Xoshiro256& rng, std::size_t) {
        return rng.uniform01() < 0.9;
      });

  const Json doc = parse_file(path);
  EXPECT_EQ(doc.at("run").str, "obs_test.run");
  EXPECT_EQ(doc.at("kind").str, "yield");
  const Json& config = doc.at("config");
  EXPECT_DOUBLE_EQ(config.at("seed").num, 77.0);
  EXPECT_DOUBLE_EQ(config.at("threads").num, 4.0);
  EXPECT_EQ(config.at("partition").str, "work-stealing");
  const Json& outcome = doc.at("outcome");
  EXPECT_DOUBLE_EQ(outcome.at("completed").num, 128.0);
  EXPECT_EQ(outcome.at("stop_reason").str, "completed");
  const Json& build = doc.at("build");
  EXPECT_FALSE(build.at("compiler").str.empty());
  const Json& counters = doc.at("metrics").at("counters");
  EXPECT_DOUBLE_EQ(counters.at("mc.samples_evaluated").num, 128.0);
  EXPECT_EQ(doc.at("workers").arr.size(), result.workers().size());
  std::remove(path.c_str());
}

TEST(ManifestTest, BuildInfoIsPopulated) {
  const obs::BuildInfo& info = obs::build_info();
  EXPECT_FALSE(info.git_describe.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.cxx_standard.empty());
}

}  // namespace
}  // namespace relsim
