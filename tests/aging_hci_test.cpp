#include <gtest/gtest.h>

#include <cmath>

#include "aging/hci.h"
#include "stats/regression.h"
#include "util/mathx.h"
#include "util/units.h"

namespace relsim::aging {
namespace {

DeviceStress nmos_dc(double vgs = 1.1, double vds = 1.1, double temp = 398.0,
                     double l_um = 0.1, double w_um = 1.0) {
  return DeviceStress::dc(/*is_pmos=*/false, vgs, vds, 1.8, temp, w_um, l_um);
}

TEST(HciTest, NoSaturationNoDegradation) {
  HciModel m;
  // vds below vdsat: no pinch-off region, no hot carriers.
  auto s = nmos_dc(1.1, 0.3);
  EXPECT_DOUBLE_EQ(m.lateral_field_v_per_um(s), 0.0);
  EXPECT_DOUBLE_EQ(m.delta_vt(s, 1e8), 0.0);
}

TEST(HciTest, TenYearShiftPlausible) {
  HciModel m;
  const double dvt = m.delta_vt(nmos_dc(), 10 * units::kSecondsPerYear);
  EXPECT_GT(dvt, 0.005);
  EXPECT_LT(dvt, 0.2);
}

TEST(HciTest, PowerLawExponent) {
  HciModel m;
  std::vector<double> t, dvt;
  for (double ts : logspace(1e2, 1e8, 12)) {
    t.push_back(ts);
    dvt.push_back(m.delta_vt(nmos_dc(), ts));
  }
  const auto fit = fit_power_law(t, dvt);
  EXPECT_NEAR(fit.slope, m.params().n, 1e-9);
}

TEST(HciTest, SuperlinearInDrainVoltage) {
  HciModel m;
  const double t = 1e7;
  const double d1 = m.delta_vt(nmos_dc(1.1, 0.9), t);
  const double d2 = m.delta_vt(nmos_dc(1.1, 1.1), t);
  const double d3 = m.delta_vt(nmos_dc(1.1, 1.3), t);
  ASSERT_GT(d1, 0.0);
  // exp(-phi/(q lambda Em)) acceleration: each 0.2V step multiplies the
  // degradation by an increasing... by a large factor, and the ratio
  // itself shrinks as Em grows (exponential in -1/Em saturates).
  EXPECT_GT(d2 / d1, 3.0);
  EXPECT_GT(d3 / d2, 2.0);
  EXPECT_LT(d3 / d2, d2 / d1);
}

TEST(HciTest, ShorterChannelDegradesFaster) {
  HciModel m;
  const double t = 1e7;
  const double l_long = m.delta_vt(nmos_dc(1.1, 1.1, 398.0, 0.25), t);
  const double l_short = m.delta_vt(nmos_dc(1.1, 1.1, 398.0, 0.1), t);
  EXPECT_GT(l_short, 5.0 * l_long);
}

TEST(HciTest, NmosWorseThanPmos) {
  HciModel m;
  auto pmos = nmos_dc();
  pmos.is_pmos = true;
  const double t = 1e8;
  EXPECT_NEAR(m.delta_vt(pmos, t) / m.delta_vt(nmos_dc(), t),
              m.params().pmos_factor, 1e-9);
}

TEST(HciTest, HotterIsWorseInDeepSubmicron) {
  HciModel m;  // default temp_ea_ev < 0 per [44]
  const double t = 1e7;
  EXPECT_GT(m.delta_vt(nmos_dc(1.1, 1.1, 398.0), t),
            m.delta_vt(nmos_dc(1.1, 1.1, 300.0), t));
}

TEST(HciTest, WiderDevicesDegradeLess) {
  HciModel m;
  const double t = 1e7;
  EXPECT_GT(m.delta_vt(nmos_dc(1.1, 1.1, 398.0, 0.1, 1.0), t),
            m.delta_vt(nmos_dc(1.1, 1.1, 398.0, 0.1, 4.0), t));
}

TEST(HciTest, DutyScalesEquivalentTime) {
  HciModel m;
  auto ac = nmos_dc();
  ac.duty = 0.25;
  const double t = 1e8;
  EXPECT_NEAR(m.delta_vt(ac, t), m.delta_vt(nmos_dc(), 0.25 * t), 1e-12);
}

TEST(HciTest, RecoveryIsMinorComparedToNbti) {
  HciModel m;
  const double dvt0 = 0.05;
  // Even after very long relaxation, at most recovery_frac anneals out.
  const double floor = (1.0 - m.params().recovery_frac) * dvt0;
  EXPECT_GE(m.relaxed_delta_vt(dvt0, 1e15), floor - 1e-15);
  EXPECT_GE(floor, 0.8 * dvt0);  // "negligible in comparison to NBTI" [17]
}

TEST(HciTest, OutputResistanceDegrades) {
  HciModel m;
  const auto d = m.drift_from_dvt(0.04);
  EXPECT_GT(d.lambda_factor, 1.05);
  EXPECT_LT(d.beta_factor, 1.0);
}

TEST(HciTest, IncrementalMatchesClosedForm) {
  HciModel m;
  const auto stress = nmos_dc();
  Xoshiro256 rng(1);
  auto state = m.init_state(stress, rng);
  ParameterDrift last;
  for (int e = 0; e < 5; ++e) last = m.advance(*state, stress, 2e7);
  EXPECT_NEAR(last.dvt / m.delta_vt(stress, 1e8), 1.0, 1e-9);
}

// Property: degradation is monotone in stress time for all drain voltages.
class HciTimeMonotone : public ::testing::TestWithParam<double> {};

TEST_P(HciTimeMonotone, MonotoneInTime) {
  HciModel m;
  const double vds = GetParam();
  double prev = -1.0;
  for (double t : logspace(1.0, 1e9, 10)) {
    const double v = m.delta_vt(nmos_dc(1.1, vds), t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(DrainVoltages, HciTimeMonotone,
                         ::testing::Values(0.9, 1.0, 1.1, 1.2, 1.3));

}  // namespace
}  // namespace relsim::aging
