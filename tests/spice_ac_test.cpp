#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "spice/ac_analysis.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/mathx.h"

namespace relsim::spice {
namespace {

TEST(AcTest, RcLowPassMagnitudeAndPhase) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& src = c.add_vsource("V1", in, kGround, 0.0);
  src.set_ac_magnitude(1.0);
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, kGround, 1e-9);
  const double fc = 1.0 / (2 * std::numbers::pi * 1e3 * 1e-9);  // ~159 kHz

  const auto res = ac_analysis(c, {fc / 100.0, fc, 100.0 * fc});
  // Passband: unity. At fc: 1/sqrt(2) and -45 degrees. Stopband: -40dB/2dec.
  EXPECT_NEAR(std::abs(res.v(0, out)), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(res.v(1, out)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(res.phase(out)[1], -std::numbers::pi / 4.0, 1e-3);
  EXPECT_NEAR(res.magnitude_db(out)[2], -40.0, 0.1);
}

TEST(AcTest, CornerFrequencyExtraction) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& src = c.add_vsource("V1", in, kGround, 0.0);
  src.set_ac_magnitude(1.0);
  c.add_resistor("R1", in, out, 10e3);
  c.add_capacitor("C1", out, kGround, 100e-12);
  const double fc = 1.0 / (2 * std::numbers::pi * 10e3 * 100e-12);
  const auto res = ac_analysis(c, logspace(1e3, 1e8, 60));
  EXPECT_NEAR(res.corner_frequency(out) / fc, 1.0, 0.02);
}

TEST(AcTest, DividerIsFrequencyFlat) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  auto& src = c.add_vsource("V1", in, kGround, 5.0);  // DC value irrelevant
  src.set_ac_magnitude(2.0);
  c.add_resistor("R1", in, mid, 1e3);
  c.add_resistor("R2", mid, kGround, 3e3);
  const auto res = ac_analysis(c, {1e3, 1e6, 1e9});
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(std::abs(res.v(k, mid)), 1.5, 1e-6);
    EXPECT_NEAR(res.phase(mid)[k], 0.0, 1e-9);
  }
}

TEST(AcTest, CommonSourceAmpGainMatchesGmRo) {
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vin = c.add_vsource("VIN", in, kGround, 0.55);
  vin.set_ac_magnitude(1.0);
  c.add_resistor("RL", vdd, out, 5e3);
  auto& m = c.add_mosfet("M1", out, in, kGround, kGround,
                         make_mos_params(tech, 2.0, 0.2, false));

  // Low-frequency gain must be gm*(RL || ro).
  const DcResult op = dc_operating_point(c);
  const auto mos = m.operating_point(op.x());
  const double ro = 1.0 / mos.gds;
  const double expected = mos.gm * (5e3 * ro) / (5e3 + ro);

  const auto res = ac_analysis(c, {1e3});
  EXPECT_NEAR(std::abs(res.v(0, out)) / expected, 1.0, 1e-3);
  // Inverting stage: phase ~ 180 degrees.
  EXPECT_NEAR(std::abs(res.phase(out)[0]), std::numbers::pi, 1e-2);
}

TEST(AcTest, AmplifierBandwidthSetByLoadCap) {
  const auto& tech = tech_65nm();
  auto corner_for = [&](double cl) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    auto& vin = c.add_vsource("VIN", in, kGround, 0.55);
    vin.set_ac_magnitude(1.0);
    c.add_resistor("RL", vdd, out, 5e3);
    c.add_capacitor("CL", out, kGround, cl);
    c.add_mosfet("M1", out, in, kGround, kGround,
                 make_mos_params(tech, 2.0, 0.2, false));
    const auto res = ac_analysis(c, logspace(1e4, 1e11, 80));
    return res.corner_frequency(out);
  };
  const double f1 = corner_for(1e-12);
  const double f2 = corner_for(4e-12);
  ASSERT_GT(f1, 0.0);
  ASSERT_GT(f2, 0.0);
  // 4x the load cap -> ~1/4 the bandwidth (load pole dominates).
  EXPECT_NEAR(f1 / f2, 4.0, 0.5);
}

TEST(AcTest, CrossCheckAgainstTransientSine) {
  // The AC magnitude at one frequency must match the settled amplitude of
  // a small-signal transient at that frequency — two completely different
  // code paths through the simulator.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double f = 2e6;
  auto& src = c.add_vsource(
      "V1", in, kGround, std::make_unique<SineWaveform>(0.0, 0.01, f));
  src.set_ac_magnitude(0.01);
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, kGround, 200e-12);

  const auto ac = ac_analysis(c, {f});
  const double ac_amp = std::abs(ac.v(0, out));

  TransientOptions topt;
  topt.dt = 1.0 / f / 200;
  topt.t_stop = 20.0 / f;
  const auto tr = transient_analysis(c, topt, {out});
  const double tran_amp =
      0.5 * peak_to_peak(tr.time(), tr.node(out), 10.0 / f, topt.t_stop);
  EXPECT_NEAR(tran_amp / ac_amp, 1.0, 0.01);
}

TEST(AcTest, DegradedDeviceLosesGain) {
  const auto& tech = tech_65nm();
  auto gain_for = [&](const MosDegradation& d) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("VDD", vdd, kGround, tech.vdd);
    auto& vin = c.add_vsource("VIN", in, kGround, 0.55);
    vin.set_ac_magnitude(1.0);
    c.add_resistor("RL", vdd, out, 5e3);
    auto& m = c.add_mosfet("M1", out, in, kGround, kGround,
                           make_mos_params(tech, 2.0, 0.2, false));
    m.set_degradation(d);
    const auto res = ac_analysis(c, {1e3});
    return std::abs(res.v(0, out));
  };
  MosDegradation aged;
  aged.dvt = 0.05;
  aged.beta_factor = 0.9;
  EXPECT_LT(gain_for(aged), gain_for(MosDegradation{}));
}

// The common result shape (AnalysisResultBase): AC reports solver stats,
// convergence and abort reason under the same member names as DC/transient.
TEST(AcTest, ReportsCommonAnalysisResultShape) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, kGround, 1e-9);
  const auto res = ac_analysis(c, {1e3, 1e6, 1e9});
  EXPECT_TRUE(res.converged());
  EXPECT_TRUE(res.abort_reason().empty());
  // One complex LU per frequency point, on top of the DC linearization.
  EXPECT_EQ(res.solver_stats().complex_factorizations, 3);
  EXPECT_GT(res.solver_stats().newton_iterations, 0);
}

TEST(AcTest, InvalidFrequencyRejected) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_resistor("R1", in, kGround, 1e3);
  EXPECT_THROW(ac_analysis(c, {0.0}), Error);
  EXPECT_THROW(ac_analysis(c, {}), Error);
}

}  // namespace
}  // namespace relsim::spice
