// Chaos contracts of the fault-tolerant Monte-Carlo layer
// (variability/mc_session.h + testing/fault_injection.h):
//  * a 1000-sample run with injected singular pivots, non-convergence,
//    NaN metrics AND checkpoint corruption completes under kSkip /
//    kRetryThenSkip, with surviving-sample values bit-identical across
//    1/4/8 workers and to a fault-free run of the surviving indices;
//  * failed samples carry index, replay seed, failure kind, attempt count
//    and reason into McResult and the run manifest;
//  * kRetryThenSkip recovers samples whose fault clears on a retry and
//    reports the retry/recovery totals;
//  * kAbort reproduces the legacy stop-and-rethrow behaviour, now with
//    EVERY worker error recorded in the manifest before the rethrow;
//  * censored samples enter the yield statistics per CensoredPolicy;
//  * a truncated or bit-flipped checkpoint is detected via CRC-32 and
//    either throws (kThrow) or restarts cleanly (kDiscardCorrupt) —
//    never read as valid data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "testing/fault_injection.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim {
namespace {

using testing::FaultRule;
using testing::FaultScope;
using testing::FaultSite;

McRequest chaos_request(std::uint64_t seed, std::size_t n, unsigned threads) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = threads;
  req.chunk = 16;
  return req;
}

double smooth_metric(Xoshiro256& rng, std::size_t) {
  return 1.0 + 0.25 * rng.uniform01();
}

bool biased_pass(Xoshiro256& rng, std::size_t) {
  return rng.uniform01() < 0.75;
}

/// Arms the three per-sample fault kinds on disjoint residue classes:
/// singular on i % 13 == 3, non-convergence on i % 17 == 5, NaN on
/// i % 19 == 7. `max_attempt` bounds the attempts that fail (INT_MAX =
/// every attempt, 1 = only the first).
void arm_sample_faults(int max_attempt) {
  FaultRule singular;
  singular.sample_modulus = 13;
  singular.sample_remainder = 3;
  singular.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalThrowSingular, singular);

  FaultRule nonconv;
  nonconv.sample_modulus = 17;
  nonconv.sample_remainder = 5;
  nonconv.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalThrowConvergence, nonconv);

  FaultRule nan;
  nan.sample_modulus = 19;
  nan.sample_remainder = 7;
  nan.max_attempt = max_attempt;
  testing::arm(FaultSite::kMcEvalNan, nan);
}

std::set<std::size_t> expected_failed_indices(std::size_t n) {
  std::set<std::size_t> failed;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 13 == 3 || i % 17 == 5 || i % 19 == 7) failed.insert(i);
  }
  return failed;
}

class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Element-wise equality where censored NaN entries compare equal (IEEE
/// NaN != NaN would otherwise hide that two runs agree).
void expect_same_values(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    EXPECT_EQ(a[i], b[i]) << "sample " << i;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// The acceptance scenario: 1000 samples, every fault kind, kSkip.

TEST(McChaosTest, SkipSurvivesAllFaultKindsBitIdenticalAcrossWorkerCounts) {
  const std::size_t n = 1000;
  const std::set<std::size_t> expect_failed = expected_failed_indices(n);
  ASSERT_FALSE(expect_failed.empty());

  std::vector<McResult> results;
  for (unsigned threads : {1u, 4u, 8u}) {
    FaultScope scope;
    arm_sample_faults(std::numeric_limits<int>::max());
    McRequest req = chaos_request(99, n, threads);
    req.failure_policy = McFailurePolicy::kSkip;
    results.push_back(McSession(req).run_metric(smooth_metric));
  }

  // Fault-free reference for the surviving values.
  const McResult clean =
      McSession(chaos_request(99, n, 4)).run_metric(smooth_metric);

  for (const McResult& r : results) {
    EXPECT_EQ(r.completed, n);
    EXPECT_EQ(r.stop_reason(), McStopReason::kCompleted);
    EXPECT_EQ(r.run.failed_total, expect_failed.size());
    ASSERT_EQ(r.values.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (expect_failed.count(i)) {
        EXPECT_TRUE(std::isnan(r.values[i])) << "sample " << i;
      } else {
        // Bit-identical to the fault-free evaluation of the same sample.
        EXPECT_EQ(r.values[i], clean.values[i]) << "sample " << i;
      }
    }
    // The failure records are index-ordered and carry replay seeds and
    // classified kinds.
    ASSERT_EQ(r.failed_samples().size(), expect_failed.size());
    std::size_t k = 0;
    for (const std::size_t i : expect_failed) {
      const McFailedSample& f = r.failed_samples()[k++];
      EXPECT_EQ(f.index, i);
      EXPECT_EQ(f.seed, derive_seed(99, {static_cast<std::uint64_t>(i)}));
      EXPECT_EQ(f.attempts, 1);
      const McFailureKind want = i % 13 == 3 ? McFailureKind::kSingular
                                 : i % 17 == 5 ? McFailureKind::kConvergence
                                               : McFailureKind::kNonFinite;
      EXPECT_EQ(f.kind, want) << "sample " << i;
      EXPECT_FALSE(f.reason.empty());
    }
  }

  // Every worker count produced the identical result.
  for (std::size_t w = 1; w < results.size(); ++w) {
    expect_same_values(results[w].values, results[0].values);
    EXPECT_EQ(results[w].metric.count(), results[0].metric.count());
    EXPECT_EQ(results[w].metric.mean(), results[0].metric.mean());
    EXPECT_EQ(results[w].run.failed_total, results[0].run.failed_total);
  }

  // Censored samples never enter the metric moments.
  EXPECT_EQ(results[0].metric.count(), n - expect_failed.size());
}

TEST(McChaosTest, RetryThenSkipRecoversTransientFaults) {
  const std::size_t n = 1000;
  const std::set<std::size_t> faulted = expected_failed_indices(n);

  std::vector<McResult> results;
  for (unsigned threads : {1u, 4u, 8u}) {
    FaultScope scope;
    arm_sample_faults(/*max_attempt=*/1);  // only the first attempt fails
    McRequest req = chaos_request(7, n, threads);
    req.failure_policy = McFailurePolicy::kRetryThenSkip;
    req.max_retries = 2;
    results.push_back(McSession(req).run_metric(smooth_metric));
  }
  const McResult clean =
      McSession(chaos_request(7, n, 4)).run_metric(smooth_metric);

  for (const McResult& r : results) {
    // Every fault was transient: the retry (fresh RNG, same derived seed)
    // recovered every sample, so NOTHING is censored and the run equals
    // the fault-free run bit for bit.
    EXPECT_EQ(r.run.failed_total, 0u);
    EXPECT_EQ(r.run.recovered_total, faulted.size());
    EXPECT_EQ(r.run.retried_total, faulted.size());
    EXPECT_EQ(r.values, clean.values);
    EXPECT_EQ(r.metric.mean(), clean.metric.mean());
  }
}

TEST(McChaosTest, RetryLadderExhaustionRecordsAttemptCount) {
  FaultScope scope;
  FaultRule rule;
  rule.samples = {5};
  testing::arm(FaultSite::kMcEvalThrowConvergence, rule);

  McRequest req = chaos_request(3, 32, 2);
  req.failure_policy = McFailurePolicy::kRetryThenSkip;
  req.max_retries = 3;
  const McResult r = McSession(req).run_metric(smooth_metric);

  EXPECT_EQ(r.run.failed_total, 1u);
  EXPECT_EQ(r.run.recovered_total, 0u);
  EXPECT_EQ(r.run.retried_total, 3u);
  ASSERT_EQ(r.failed_samples().size(), 1u);
  EXPECT_EQ(r.failed_samples()[0].index, 5u);
  EXPECT_EQ(r.failed_samples()[0].attempts, 4);  // 1 try + 3 retries
  EXPECT_EQ(r.failed_samples()[0].kind, McFailureKind::kConvergence);
}

// ---------------------------------------------------------------------------
// kAbort: the legacy behaviour, plus full error reporting.

TEST(McChaosTest, AbortRethrowsAndRecordsWorkerErrorsInManifest) {
  ScratchFile manifest("mc_chaos_abort.manifest.json");
  FaultScope scope;
  FaultRule rule;
  rule.samples = {11};
  testing::arm(FaultSite::kMcEvalThrowSingular, rule);

  McRequest req = chaos_request(5, 256, 2);
  req.manifest_path = manifest.path();
  EXPECT_THROW(McSession(req).run_metric(smooth_metric),
               SingularMatrixError);

  const std::string doc = slurp(manifest.path());
  EXPECT_NE(doc.find("\"stop_reason\": \"aborted\""), std::string::npos);
  EXPECT_NE(doc.find("worker_errors"), std::string::npos);
  EXPECT_NE(doc.find("injected: singular matrix"), std::string::npos);
}

TEST(McChaosTest, AbortIsBitIdenticalToLegacyOnFaultFreeRuns) {
  // Default-policy runs with no armed faults must not change at all.
  McRequest req = chaos_request(21, 500, 4);
  req.keep_values = true;
  const McResult a = McSession(req).run_yield(biased_pass);
  EXPECT_EQ(a.run.failed_total, 0u);
  EXPECT_EQ(a.run.retried_total, 0u);
  EXPECT_EQ(a.estimate.censored, 0u);
  EXPECT_EQ(a.estimate.total, a.completed);

  req.failure_policy = McFailurePolicy::kSkip;
  const McResult b = McSession(req).run_yield(biased_pass);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.estimate.passed, b.estimate.passed);
  EXPECT_EQ(a.estimate.interval.lo, b.estimate.interval.lo);
}

// ---------------------------------------------------------------------------
// Censored yield statistics.

TEST(McChaosTest, CensoredPolicyShapesYieldDenominator) {
  const std::size_t n = 400;
  auto run_with = [&](CensoredPolicy policy) {
    FaultScope scope;
    FaultRule rule;
    rule.sample_modulus = 10;
    rule.sample_remainder = 1;  // 40 of 400 censored
    testing::arm(FaultSite::kMcEvalThrowConvergence, rule);
    McRequest req = chaos_request(77, n, 4);
    req.failure_policy = McFailurePolicy::kSkip;
    req.censored = policy;
    return McSession(req).run_yield(biased_pass);
  };

  const McResult fail = run_with(CensoredPolicy::kTreatAsFail);
  const McResult excl = run_with(CensoredPolicy::kExclude);

  EXPECT_EQ(fail.estimate.censored, 40u);
  EXPECT_EQ(excl.estimate.censored, 40u);
  EXPECT_EQ(fail.estimate.passed, excl.estimate.passed);
  EXPECT_EQ(fail.estimate.total, n);
  EXPECT_EQ(excl.estimate.total, n - 40);
  // The intervals match the censored wilson_interval overload exactly.
  const ProportionInterval want_fail = wilson_interval(
      fail.estimate.passed, n, 40, CensoredPolicy::kTreatAsFail);
  const ProportionInterval want_excl = wilson_interval(
      excl.estimate.passed, n, 40, CensoredPolicy::kExclude);
  EXPECT_EQ(fail.estimate.interval.estimate, want_fail.estimate);
  EXPECT_EQ(excl.estimate.interval.estimate, want_excl.estimate);
  EXPECT_GT(excl.estimate.yield(), fail.estimate.yield());
}

// ---------------------------------------------------------------------------
// Checkpoint integrity.

TEST(McChaosTest, CorruptedCheckpointIsDetectedAndHandledPerPolicy) {
  ScratchFile ckpt("mc_chaos_corrupt.ckpt");
  McRequest req = chaos_request(13, 300, 2);
  req.checkpoint_path = ckpt.path();

  {
    // The fault site flips one byte of the image AFTER the (valid) file is
    // written — a model of on-disk rot.
    FaultScope scope;
    FaultRule rule;
    rule.nth = 1;
    testing::arm(FaultSite::kCheckpointCorrupt, rule);
    McSession(req).run_metric(smooth_metric);
    EXPECT_EQ(testing::fires(FaultSite::kCheckpointCorrupt), 1u);
  }

  // kThrow (default): the CRC mismatch is an error, never valid data.
  EXPECT_THROW(McSession(req).run_metric(smooth_metric), Error);

  // kDiscardCorrupt: logged, dropped, restarted — and the restarted run
  // equals a fresh one bit for bit.
  req.checkpoint_recovery = McCheckpointRecovery::kDiscardCorrupt;
  const McResult recovered = McSession(req).run_metric(smooth_metric);
  EXPECT_EQ(recovered.resumed, 0u);
  EXPECT_TRUE(recovered.run.checkpoint_discarded);

  McRequest fresh = chaos_request(13, 300, 2);
  const McResult clean = McSession(fresh).run_metric(smooth_metric);
  EXPECT_EQ(recovered.values, clean.values);
  EXPECT_EQ(recovered.metric.mean(), clean.metric.mean());
}

TEST(McChaosTest, TruncatedCheckpointIsDetected) {
  ScratchFile ckpt("mc_chaos_truncated.ckpt");
  McRequest req = chaos_request(17, 200, 2);
  req.checkpoint_path = ckpt.path();
  McSession(req).run_metric(smooth_metric);

  // Truncate the file to half its size.
  const std::string full = slurp(ckpt.path());
  ASSERT_GT(full.size(), 16u);
  {
    std::ofstream os(ckpt.path(), std::ios::binary | std::ios::trunc);
    os.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_THROW(McSession(req).run_metric(smooth_metric), Error);

  req.checkpoint_recovery = McCheckpointRecovery::kDiscardCorrupt;
  const McResult r = McSession(req).run_metric(smooth_metric);
  EXPECT_EQ(r.resumed, 0u);
  EXPECT_TRUE(r.run.checkpoint_discarded);
}

TEST(McChaosTest, MismatchedCheckpointStillThrowsUnderDiscardCorrupt) {
  // An INTACT checkpoint for a different request is a caller error, not
  // corruption: kDiscardCorrupt must not silently swallow it.
  ScratchFile ckpt("mc_chaos_mismatch.ckpt");
  McRequest req = chaos_request(19, 100, 2);
  req.checkpoint_path = ckpt.path();
  McSession(req).run_metric(smooth_metric);

  McRequest other = chaos_request(20, 100, 2);  // different seed
  other.checkpoint_path = ckpt.path();
  other.checkpoint_recovery = McCheckpointRecovery::kDiscardCorrupt;
  EXPECT_THROW(McSession(other).run_metric(smooth_metric), Error);
}

TEST(McChaosTest, FailureStateSurvivesCheckpointResume) {
  // Kill a chaos run partway (via early-stop-free two-phase trick: run
  // once with a checkpoint, then resume with faults disarmed) and check
  // that censored samples are NOT re-evaluated and keep their records.
  ScratchFile ckpt("mc_chaos_resume.ckpt");
  const std::size_t n = 500;
  McRequest req = chaos_request(23, n, 2);
  req.checkpoint_path = ckpt.path();
  req.failure_policy = McFailurePolicy::kSkip;

  McResult first;
  {
    FaultScope scope;
    arm_sample_faults(std::numeric_limits<int>::max());
    first = McSession(req).run_metric(smooth_metric);
  }
  ASSERT_GT(first.run.failed_total, 0u);

  // Resume the finished run with NO faults armed: everything restores from
  // the checkpoint, so the failure kinds/attempts must come from the file.
  const McResult resumed = McSession(req).run_metric(smooth_metric);
  EXPECT_EQ(resumed.resumed, n);
  EXPECT_EQ(resumed.run.failed_total, first.run.failed_total);
  ASSERT_EQ(resumed.failed_samples().size(), first.failed_samples().size());
  for (std::size_t k = 0; k < resumed.failed_samples().size(); ++k) {
    EXPECT_EQ(resumed.failed_samples()[k].index,
              first.failed_samples()[k].index);
    EXPECT_EQ(resumed.failed_samples()[k].kind,
              first.failed_samples()[k].kind);
    EXPECT_EQ(resumed.failed_samples()[k].attempts,
              first.failed_samples()[k].attempts);
  }
  expect_same_values(resumed.values, first.values);
}

// ---------------------------------------------------------------------------
// Manifest plumbing.

TEST(McChaosTest, ManifestCarriesFailedSamplesAndPolicies) {
  ScratchFile manifest("mc_chaos_manifest.json");
  FaultScope scope;
  FaultRule rule;
  rule.samples = {4, 9};
  testing::arm(FaultSite::kMcEvalThrowSingular, rule);

  McRequest req = chaos_request(31, 64, 2);
  req.failure_policy = McFailurePolicy::kRetryThenSkip;
  req.max_retries = 1;
  req.manifest_path = manifest.path();
  const McResult r = McSession(req).run_metric(smooth_metric);
  EXPECT_EQ(r.run.failed_total, 2u);

  const std::string doc = slurp(manifest.path());
  EXPECT_NE(doc.find("\"failure_policy\": \"retry-then-skip\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"censored_policy\": \"treat-as-fail\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"failed\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"failed_samples\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"singular\""), std::string::npos);
  EXPECT_NE(doc.find("\"attempts\": 2"), std::string::npos);
}

TEST(McChaosTest, FailedRecordListIsCappedButTotalIsNot) {
  FaultScope scope;
  FaultRule rule;
  rule.sample_modulus = 2;
  rule.sample_remainder = 0;  // half of all samples fail
  testing::arm(FaultSite::kMcEvalThrowConvergence, rule);

  McRequest req = chaos_request(41, 200, 2);
  req.failure_policy = McFailurePolicy::kSkip;
  req.keep_failed_samples = 5;
  const McResult r = McSession(req).run_metric(smooth_metric);
  EXPECT_EQ(r.run.failed_total, 100u);
  ASSERT_EQ(r.failed_samples().size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(r.failed_samples()[k].index, 2 * k);  // first five, in order
  }
}

}  // namespace
}  // namespace relsim
