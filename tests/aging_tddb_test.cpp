#include <gtest/gtest.h>

#include <cmath>

#include "aging/tddb.h"
#include "rng/distributions.h"
#include "stats/weibull_fit.h"
#include "util/units.h"

namespace relsim::aging {
namespace {

DeviceStress oxide(double tox_nm, double vgs, double temp = 398.0,
                   double w = 1.0, double l = 0.1) {
  return DeviceStress::dc(false, vgs, 0.0, tox_nm, temp, w, l);
}

TEST(TddbTest, ShapeGrowsWithThickness) {
  TddbModel m;
  EXPECT_LT(m.weibull_shape(1.2), m.weibull_shape(2.5));
  EXPECT_LT(m.weibull_shape(2.5), m.weibull_shape(5.0));
  EXPECT_GT(m.weibull_shape(1.0), 0.0);
}

TEST(TddbTest, ScaleDropsExponentiallyWithField) {
  TddbModel m;
  const double eta1 = m.weibull_scale_s(oxide(2.0, 1.0));
  const double eta2 = m.weibull_scale_s(oxide(2.0, 1.2));
  const double expected =
      std::exp(m.params().gamma_nm_per_v * (1.2 - 1.0) / 2.0);
  EXPECT_NEAR(eta1 / eta2, expected, expected * 1e-9);
}

TEST(TddbTest, HotterFailsSooner) {
  TddbModel m;
  EXPECT_GT(m.weibull_scale_s(oxide(2.0, 1.0, 300.0)),
            m.weibull_scale_s(oxide(2.0, 1.0, 400.0)));
}

TEST(TddbTest, AreaScalingWeakestLink) {
  TddbModel m;
  // 100x the area -> eta scales by (1/100)^(1/beta).
  const auto small = oxide(2.0, 1.0, 398.0, 1.0, 0.1);
  const auto large = oxide(2.0, 1.0, 398.0, 10.0, 1.0);
  const double beta = m.weibull_shape(2.0);
  EXPECT_NEAR(m.weibull_scale_s(large) / m.weibull_scale_s(small),
              std::pow(0.01, 1.0 / beta), 1e-9);
}

TEST(TddbTest, SampledTimesFollowConfiguredWeibull) {
  TddbModel m;
  const auto stress = oxide(2.0, 1.3);
  Xoshiro256 rng(77);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) {
    times.push_back(m.sample_timeline(stress, rng).t_sbd_s);
  }
  const auto est = fit_weibull_mle(times);
  EXPECT_NEAR(est.shape / m.weibull_shape(2.0), 1.0, 0.05);
  EXPECT_NEAR(est.scale / m.weibull_scale_s(stress), 1.0, 0.05);
}

TEST(TddbTest, ModeSequenceByThickness) {
  TddbModel m;
  Xoshiro256 rng(3);
  // Thick oxide (>5nm): no SBD phase, straight to HBD.
  const auto thick = m.sample_timeline(oxide(7.0, 3.0), rng);
  EXPECT_FALSE(thick.has_sbd_phase);
  EXPECT_DOUBLE_EQ(thick.t_sbd_s, thick.t_hbd_s);
  // Mid oxide: SBD then abrupt HBD, no PBD.
  const auto mid = m.sample_timeline(oxide(4.0, 2.0), rng);
  EXPECT_TRUE(mid.has_sbd_phase);
  EXPECT_FALSE(mid.has_pbd_phase);
  EXPECT_GT(mid.t_hbd_s, mid.t_sbd_s);
  // Ultra-thin: SBD -> PBD -> HBD.
  const auto thin = m.sample_timeline(oxide(1.5, 1.1), rng);
  EXPECT_TRUE(thin.has_sbd_phase);
  EXPECT_TRUE(thin.has_pbd_phase);
  EXPECT_GT(thin.t_hbd_s, thin.t_sbd_s);
}

TEST(TddbTest, ProgressiveLeakGrowsMonotonically) {
  TddbModel m;
  BreakdownTimeline tl;
  tl.t_sbd_s = 1e6;
  tl.t_hbd_s = 5e6;
  tl.has_sbd_phase = true;
  tl.has_pbd_phase = true;
  EXPECT_DOUBLE_EQ(m.gate_leak_at(tl, 0.5e6), 0.0);
  double prev = 0.0;
  for (double t = 1e6; t <= 6e6; t += 0.5e6) {
    const double g = m.gate_leak_at(tl, t);
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_DOUBLE_EQ(m.gate_leak_at(tl, 1e6), m.params().sbd_gleak_s);
  EXPECT_DOUBLE_EQ(m.gate_leak_at(tl, 6e6), m.params().hbd_gleak_s);
}

TEST(TddbTest, SbdEffectSmallHbdEffectLarge) {
  TddbModel m;
  BreakdownTimeline tl;
  tl.t_sbd_s = 1e6;
  tl.t_hbd_s = 2e6;
  tl.has_sbd_phase = true;
  tl.has_pbd_phase = false;
  tl.spot_near_drain = true;
  const auto sbd = m.drift_at(tl, 1.5e6);
  const auto hbd = m.drift_at(tl, 3e6);
  // [21]: just after SBD a very limited effect; large after HBD.
  EXPECT_GT(sbd.beta_factor, 0.9);
  EXPECT_LT(hbd.beta_factor, 0.6);
  EXPECT_GT(hbd.g_leak_gd, 100.0 * sbd.g_leak_gd);
  EXPECT_TRUE(hbd.hard_breakdown);
  EXPECT_FALSE(sbd.hard_breakdown);
  // Spot near drain -> leak on the gd side only.
  EXPECT_DOUBLE_EQ(sbd.g_leak_gs, 0.0);
}

TEST(TddbTest, SpotLocationIsRandomlyAssigned) {
  TddbModel m;
  Xoshiro256 rng(5);
  int near_drain = 0;
  for (int i = 0; i < 1000; ++i) {
    if (m.sample_timeline(oxide(2.0, 1.2), rng).spot_near_drain) ++near_drain;
  }
  EXPECT_GT(near_drain, 400);
  EXPECT_LT(near_drain, 600);
}

TEST(TddbTest, OperatingFieldGivesLongLife) {
  // At nominal operating field most devices must survive 10 years; at a
  // burn-in field they must not.
  TddbModel m;
  const double ten_years = 10 * units::kSecondsPerYear;
  const auto nominal = oxide(1.8, 1.1);
  const auto burn_in = oxide(1.8, 2.6);
  const WeibullDistribution nom(m.weibull_shape(1.8),
                                m.weibull_scale_s(nominal));
  const WeibullDistribution burn(m.weibull_shape(1.8),
                                 m.weibull_scale_s(burn_in));
  EXPECT_LT(nom.cdf(ten_years), 0.05);
  EXPECT_GT(burn.cdf(ten_years), 0.95);
}

TEST(TddbTest, AdvanceTracksTimeline) {
  TddbModel m;
  const auto stress = oxide(2.0, 1.4);
  Xoshiro256 rng(9);
  auto state = m.init_state(stress, rng);
  // Advance far beyond any plausible eta: must end in hard breakdown.
  ParameterDrift d;
  for (int i = 0; i < 50; ++i) {
    d = m.advance(*state, stress, m.weibull_scale_s(stress));
  }
  EXPECT_TRUE(d.hard_breakdown);
  EXPECT_GT(d.g_leak_gs + d.g_leak_gd, 1e-3);
}

}  // namespace
}  // namespace relsim::aging
