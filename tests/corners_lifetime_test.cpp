// Tests for global process corners and circuit-lifetime estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "variability/corners.h"

namespace relsim {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

TEST(CornerModelTest, NamedCornerShifts) {
  const CornerModel m;
  const auto tt = m.shift(ProcessCorner::kTypical);
  EXPECT_DOUBLE_EQ(tt.nmos_dvt, 0.0);
  EXPECT_DOUBLE_EQ(tt.pmos_dbeta_rel, 0.0);

  const auto ss = m.shift(ProcessCorner::kSlowSlow);
  EXPECT_GT(ss.nmos_dvt, 0.0);
  EXPECT_GT(ss.pmos_dvt, 0.0);
  EXPECT_LT(ss.nmos_dbeta_rel, 0.0);

  const auto sf = m.shift(ProcessCorner::kSlowFast);
  EXPECT_GT(sf.nmos_dvt, 0.0);
  EXPECT_LT(sf.pmos_dvt, 0.0);

  const auto ff = m.shift(ProcessCorner::kFastFast);
  EXPECT_DOUBLE_EQ(ff.nmos_dvt, -ss.nmos_dvt);
}

TEST(CornerModelTest, CornerNames) {
  EXPECT_STREQ(corner_name(ProcessCorner::kSlowFast), "SF");
  EXPECT_STREQ(corner_name(ProcessCorner::kTypical), "TT");
}

TEST(CornerModelTest, SampledShiftsHaveConfiguredSpreadAndCorrelation) {
  CornerParams p;
  p.sigma_vt_global_v = 0.03;
  const CornerModel m(p);
  Xoshiro256 rng(7);
  RunningStats n, pm;
  double cross = 0.0;
  const int count = 20000;
  for (int i = 0; i < count; ++i) {
    const auto s = m.sample(rng, 0.6);
    n.add(s.nmos_dvt);
    pm.add(s.pmos_dvt);
    cross += s.nmos_dvt * s.pmos_dvt;
  }
  EXPECT_NEAR(n.stddev(), 0.03, 0.002);
  EXPECT_NEAR(pm.stddev(), 0.03, 0.002);
  const double corr = cross / count / (n.stddev() * pm.stddev());
  // rho(zn, zp) = c^2 + (1-c^2)*0 ... shared-term construction gives
  // correlation c^2/(c^2 + (1-c^2)) scaled: actual corr = c^2 + ... verify
  // empirically that it is positive and well below 1.
  EXPECT_GT(corr, 0.3);
  EXPECT_LT(corr, 0.9);
}

// Inverter switching threshold across corners: SF pushes VM down (weak
// nMOS? no — slow nMOS raises VM), FS pushes it the other way.
double inverter_vm(const TechNode& tech, const GlobalShift& shift) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto& vin = c.add_vsource("VIN", in, kGround, 0.0);
  c.add_mosfet("MN", out, in, kGround, kGround,
               spice::make_mos_params(tech, 1.0, 0.1, false));
  c.add_mosfet("MP", out, in, vdd, vdd,
               spice::make_mos_params(tech, 2.0, 0.1, true));
  ReliabilitySimulator::apply_global_shift(c, shift);
  double lo = 0.0, hi = tech.vdd;
  for (int i = 0; i < 30; ++i) {
    const double mid = 0.5 * (lo + hi);
    vin.set_dc(mid);
    (spice::dc_operating_point(c).v(out) > mid ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

TEST(CornerApplicationTest, SkewCornersMoveInverterThreshold) {
  const auto& tech = tech_65nm();
  const CornerModel m;
  const double vm_tt = inverter_vm(tech, m.shift(ProcessCorner::kTypical));
  const double vm_sf = inverter_vm(tech, m.shift(ProcessCorner::kSlowFast));
  const double vm_fs = inverter_vm(tech, m.shift(ProcessCorner::kFastSlow));
  // Slow nMOS + fast pMOS: the crossing moves UP; the mirror corner down.
  EXPECT_GT(vm_sf, vm_tt + 0.02);
  EXPECT_LT(vm_fs, vm_tt - 0.02);
}

TEST(CornerApplicationTest, BalancedCornersBarelyMoveThreshold) {
  const auto& tech = tech_65nm();
  const CornerModel m;
  const double vm_tt = inverter_vm(tech, m.shift(ProcessCorner::kTypical));
  const double vm_ss = inverter_vm(tech, m.shift(ProcessCorner::kSlowSlow));
  const double vm_sf = inverter_vm(tech, m.shift(ProcessCorner::kSlowFast));
  // SS moves VM far less than the skewed corner does.
  EXPECT_LT(std::abs(vm_ss - vm_tt), 0.5 * std::abs(vm_sf - vm_tt));
}

// ---------------------------------------------------------------------------
// Lifetime estimation

std::unique_ptr<Circuit> stressed_mirror(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId ref = c->node("ref");
  const NodeId meas = c->node("meas");
  const NodeId out = c->node("out");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_isource("IREF", vdd, ref, 50e-6);
  const auto p = spice::make_mos_params(tech, 2.0, 0.1, false);
  c->add_mosfet("M1", ref, ref, kGround, kGround, p);
  c->add_mosfet("M2", out, ref, kGround, kGround, p);
  // Output held slightly above the diode voltage: the extra V_DS puts M2
  // (and only M2) under HCI stress, so the mirror ratio drifts over life.
  c->add_vsource("VB", meas, kGround, 0.565);
  c->add_vsource("VMEAS", meas, out, 0.0);
  return c;
}

double mirror_out(Circuit& c) {
  const auto r = spice::dc_operating_point(c);
  return c.device_as<spice::VoltageSource>("VMEAS").current(r.x());
}

TEST(LifetimeTest, BisectionFindsFailureTime) {
  const auto& tech = tech_65nm();
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.epochs = 3;
  cfg.enable_tddb = false;
  const ReliabilitySimulator sim(cfg);
  auto factory = [&] { return stressed_mirror(tech); };
  auto nominal_circuit = factory();
  const double nominal = mirror_out(*nominal_circuit);
  auto pass = [&, nominal](Circuit& c) {
    return mirror_out(c) > 0.9 * nominal;
  };
  const double life =
      sim.estimate_lifetime_years(factory, pass, 40.0, 0.2);
  ASSERT_GT(life, 0.0);
  ASSERT_LT(life, 40.0);
  // Verify the bisection result: pass just before, fail just after.
  auto check = [&](double years) {
    auto c = factory();
    ReliabilityConfig cfg2 = cfg;
    cfg2.mission.years = years;
    ReliabilitySimulator(cfg2).age(*c);
    return pass(*c);
  };
  EXPECT_TRUE(check(std::max(life - 0.5, 0.01)));
  EXPECT_FALSE(check(life + 0.5));
}

TEST(LifetimeTest, RelaxedSpecOutlivesHorizon) {
  const auto& tech = tech_65nm();
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.epochs = 2;
  cfg.enable_tddb = false;
  const ReliabilitySimulator sim(cfg);
  auto factory = [&] { return stressed_mirror(tech); };
  auto always = [](Circuit&) { return true; };
  EXPECT_DOUBLE_EQ(sim.estimate_lifetime_years(factory, always, 10.0), 10.0);
  auto never = [](Circuit&) { return false; };
  EXPECT_DOUBLE_EQ(sim.estimate_lifetime_years(factory, never, 10.0), 0.0);
}

TEST(LifetimeTest, HigherTemperatureShortensLife) {
  const auto& tech = tech_65nm();
  auto life_at = [&](double temp) {
    ReliabilityConfig cfg;
    cfg.tech = &tech;
    cfg.mission.epochs = 3;
    cfg.mission.temp_k = temp;
    cfg.enable_tddb = false;
    const ReliabilitySimulator sim(cfg);
    auto factory = [&] { return stressed_mirror(tech); };
    auto nominal_circuit = factory();
    const double nominal = mirror_out(*nominal_circuit);
    auto pass = [&, nominal](Circuit& c) {
      return mirror_out(c) > 0.9 * nominal;
    };
    return sim.estimate_lifetime_years(factory, pass, 60.0, 0.2);
  };
  const double hot = life_at(398.0);
  const double hotter = life_at(425.0);
  ASSERT_GT(hot, 0.0);
  EXPECT_LT(hotter, hot);
}

}  // namespace
}  // namespace relsim
