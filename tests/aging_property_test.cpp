// Property-style sweeps over the aging models' invariants (TEST_P):
// epoch-count invariance, stress-order effects, scaling laws.
#include <gtest/gtest.h>

#include <cmath>

#include "aging/hci.h"
#include "aging/nbti.h"
#include "aging/tddb.h"
#include "rng/rng.h"
#include "util/mathx.h"
#include "util/units.h"

namespace relsim::aging {
namespace {

// --- Epoch invariance: splitting a constant-stress mission into any number
// of epochs must not change the result (the engine's correctness backbone).
class EpochInvariance : public ::testing::TestWithParam<int> {};

TEST_P(EpochInvariance, NbtiIndependentOfEpochCount) {
  const int epochs = GetParam();
  const NbtiModel m;
  const auto stress = DeviceStress::dc(true, 1.1, 0.0, 1.8, 398.0);
  Xoshiro256 rng(1);
  auto state = m.init_state(stress, rng);
  const double total = 10.0 * units::kSecondsPerYear;
  ParameterDrift last;
  for (int e = 0; e < epochs; ++e) {
    last = m.advance(*state, stress, total / epochs);
  }
  EXPECT_NEAR(last.dvt / m.delta_vt(stress, total), 1.0, 1e-9);
}

TEST_P(EpochInvariance, HciIndependentOfEpochCount) {
  const int epochs = GetParam();
  const HciModel m;
  auto stress = DeviceStress::dc(false, 1.1, 1.1, 1.8, 398.0);
  stress.duty = 0.4;
  Xoshiro256 rng(1);
  auto state = m.init_state(stress, rng);
  const double total = 10.0 * units::kSecondsPerYear;
  ParameterDrift last;
  for (int e = 0; e < epochs; ++e) {
    last = m.advance(*state, stress, total / epochs);
  }
  EXPECT_NEAR(last.dvt / m.delta_vt(stress, total), 1.0, 1e-9);
}

TEST_P(EpochInvariance, TddbTimelineIndependentOfEpochCount) {
  const int epochs = GetParam();
  const TddbModel m;
  const auto stress = DeviceStress::dc(false, 1.8, 0.0, 1.8, 398.0);
  // Same per-device seed -> same sampled timeline regardless of epochs.
  Xoshiro256 rng_a(42), rng_b(42);
  auto state_a = m.init_state(stress, rng_a);
  auto state_b = m.init_state(stress, rng_b);
  const double total = m.weibull_scale_s(stress) * 2.0;
  ParameterDrift a, b;
  a = m.advance(*state_a, stress, total);
  for (int e = 0; e < epochs; ++e) {
    b = m.advance(*state_b, stress, total / epochs);
  }
  EXPECT_DOUBLE_EQ(a.g_leak_gs + a.g_leak_gd, b.g_leak_gs + b.g_leak_gd);
  EXPECT_EQ(a.hard_breakdown, b.hard_breakdown);
}

INSTANTIATE_TEST_SUITE_P(EpochCounts, EpochInvariance,
                         ::testing::Values(1, 2, 3, 7, 20, 50));

// --- Stress-order property: hard-then-mild stress must produce MORE total
// damage than mild-then-hard for sublinear (n < 1) power laws? No — the
// equivalent-time construction makes the result order-INDEPENDENT for
// two equal-duration phases... verify the exact invariant: total damage is
// the same whichever order the two phases run in.
class StressOrder : public ::testing::TestWithParam<double> {};

TEST_P(StressOrder, NbtiTwoPhaseOrderInvariance) {
  const double vgs_hard = GetParam();
  const NbtiModel m;
  const auto hard = DeviceStress::dc(true, vgs_hard, 0.0, 1.8, 398.0);
  const auto mild = DeviceStress::dc(true, 0.9, 0.0, 1.8, 398.0);
  const double phase_s = 5e7;
  Xoshiro256 rng(1);
  auto s1 = m.init_state(hard, rng);
  m.advance(*s1, hard, phase_s);
  const double hard_first = m.advance(*s1, mild, phase_s).dvt;
  auto s2 = m.init_state(mild, rng);
  m.advance(*s2, mild, phase_s);
  const double mild_first = m.advance(*s2, hard, phase_s).dvt;
  // Equivalent-time accumulation is commutative for a shared exponent:
  // K2*( (K1/K2)^(1/n) t + t )^n vs K1*( (K2/K1)^(1/n) t + t )^n are equal.
  EXPECT_NEAR(hard_first / mild_first, 1.0, 1e-9);
  // And both exceed mild-only while staying below hard-only.
  EXPECT_GT(hard_first, m.delta_vt(mild, 2 * phase_s));
  EXPECT_LT(hard_first, m.delta_vt(hard, 2 * phase_s));
}

INSTANTIATE_TEST_SUITE_P(HardLevels, StressOrder,
                         ::testing::Values(1.1, 1.2, 1.3, 1.4));

// --- Scaling-law sweeps across technology-like oxide thicknesses.
class OxideSweep : public ::testing::TestWithParam<double> {};

TEST_P(OxideSweep, ThinnerOxideAgesFasterAtFixedVoltage) {
  const double tox = GetParam();
  const NbtiModel m;
  const double t = 1e8;
  const double thin = m.delta_vt(DeviceStress::dc(true, 1.0, 0.0, tox, 398.0), t);
  const double thick =
      m.delta_vt(DeviceStress::dc(true, 1.0, 0.0, tox * 1.5, 398.0), t);
  EXPECT_GT(thin, thick);  // same voltage, higher field
}

TEST_P(OxideSweep, TddbShapeAndScaleTrends) {
  const double tox = GetParam();
  const TddbModel m;
  const auto at = [&](double tx) {
    return DeviceStress::dc(false, tx * 0.61, 0.0, tx, 398.0);
  };
  // Constant-field comparison: thicker oxide -> tighter distribution.
  EXPECT_GT(m.weibull_shape(tox * 1.5), m.weibull_shape(tox));
  // Constant-field scale is area/beta-corrected but comparable order.
  EXPECT_GT(m.weibull_scale_s(at(tox)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Oxides, OxideSweep,
                         ::testing::Values(1.1, 1.4, 1.8, 2.2, 2.8));

// --- Guard-rail: the overflow protection keeps drift finite under any
// absurd stress sequence.
TEST(AgingGuardTest, NoInfUnderCollapsingStress) {
  const HciModel m;
  auto strong = DeviceStress::dc(false, 1.2, 1.3, 1.8, 420.0, 0.2, 0.06);
  auto weak = DeviceStress::dc(false, 0.4, 0.3, 1.8, 300.0);
  Xoshiro256 rng(1);
  auto state = m.init_state(strong, rng);
  // Massive over-stress, then a condition whose prefactor is ~0.
  ParameterDrift d = m.advance(*state, strong, 1e9);
  ASSERT_TRUE(std::isfinite(d.dvt));
  const double before = d.dvt;
  d = m.advance(*state, weak, 1e9);
  EXPECT_TRUE(std::isfinite(d.dvt));
  EXPECT_GE(d.dvt, before);  // never shrinks, never blows up
}

TEST(AgingGuardTest, NbtiNoInfUnderCollapsingStress) {
  const NbtiModel m;
  auto strong = DeviceStress::dc(true, 2.5, 0.0, 1.2, 420.0);
  auto weak = DeviceStress::dc(true, 0.1, 0.0, 1.2, 300.0);
  weak.duty = 1e-6;
  Xoshiro256 rng(1);
  auto state = m.init_state(strong, rng);
  ParameterDrift d = m.advance(*state, strong, 1e9);
  ASSERT_TRUE(std::isfinite(d.dvt));
  d = m.advance(*state, weak, 1e9);
  EXPECT_TRUE(std::isfinite(d.dvt));
}

}  // namespace
}  // namespace relsim::aging
