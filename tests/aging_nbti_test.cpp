#include <gtest/gtest.h>

#include <cmath>

#include "aging/nbti.h"
#include "stats/regression.h"
#include "util/mathx.h"
#include "util/units.h"

namespace relsim::aging {
namespace {

DeviceStress pmos_dc(double vgs = 1.1, double temp = 398.0,
                     double tox = 1.8) {
  return DeviceStress::dc(/*is_pmos=*/true, vgs, 0.0, tox, temp);
}

TEST(NbtiTest, ZeroTimeZeroShift) {
  NbtiModel m;
  EXPECT_DOUBLE_EQ(m.delta_vt(pmos_dc(), 0.0), 0.0);
}

TEST(NbtiTest, TenYearShiftInPlausibleRange) {
  NbtiModel m;
  const double dvt = m.delta_vt(pmos_dc(), 10 * units::kSecondsPerYear);
  EXPECT_GT(dvt, 0.02);
  EXPECT_LT(dvt, 0.15);
}

TEST(NbtiTest, PowerLawExponentRecovered) {
  NbtiModel m;
  std::vector<double> t, dvt;
  for (double ts : logspace(1.0, 1e8, 15)) {
    t.push_back(ts);
    dvt.push_back(m.delta_vt(pmos_dc(), ts));
  }
  const auto fit = fit_power_law(t, dvt);
  EXPECT_NEAR(fit.slope, m.params().n, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(NbtiTest, FieldAccelerationIsExponential) {
  NbtiModel m;
  const double t = 1e7;
  const double lo = m.delta_vt(pmos_dc(0.8), t);
  const double hi = m.delta_vt(pmos_dc(1.2), t);
  // Eq. 3: ratio = exp((E2-E1)/E0) with E in V/nm over 1.8nm oxide.
  const double expected =
      std::exp((1.2 - 0.8) / 1.8 / m.params().e0_v_per_nm);
  EXPECT_NEAR(hi / lo, expected, 1e-9);
}

TEST(NbtiTest, TemperatureAccelerationArrhenius) {
  NbtiModel m;
  const double t = 1e7;
  const double cold = m.delta_vt(pmos_dc(1.1, 300.0), t);
  const double hot = m.delta_vt(pmos_dc(1.1, 400.0), t);
  EXPECT_GT(hot, cold);
  const double expected = std::exp(-m.params().ea_ev / units::kBoltzmannEv *
                                   (1.0 / 400.0 - 1.0 / 300.0));
  EXPECT_NEAR(hot / cold, expected, 1e-9);
}

TEST(NbtiTest, PmosDegradesMuchMoreThanNmos) {
  NbtiModel m;
  auto nmos = pmos_dc();
  nmos.is_pmos = false;
  const double t = 1e8;
  EXPECT_GT(m.delta_vt(pmos_dc(), t), 10.0 * m.delta_vt(nmos, t));
}

TEST(NbtiTest, DutyFactorEndpointsAndMonotonicity) {
  NbtiModel m;
  EXPECT_DOUBLE_EQ(m.duty_factor(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.duty_factor(1.0), 1.0);
  double prev = 0.0;
  for (double d = 0.05; d <= 1.0; d += 0.05) {
    const double f = m.duty_factor(d);
    EXPECT_GT(f, prev);
    prev = f;
  }
  // 50% AC stress degrades clearly less than DC but is not negligible.
  EXPECT_GT(m.duty_factor(0.5), 0.3);
  EXPECT_LT(m.duty_factor(0.5), 0.9);
}

TEST(NbtiTest, RelaxationIsLogarithmicAndPartial) {
  NbtiModel m;
  const double dvt0 = 0.05;
  // Immediately after stress: full shift.
  EXPECT_DOUBLE_EQ(m.relaxed_delta_vt(dvt0, 0.0), dvt0);
  // Monotone non-increasing in relaxation time.
  double prev = dvt0;
  for (double tr : logspace(1e-6, 1e6, 13)) {
    const double v = m.relaxed_delta_vt(dvt0, tr);
    EXPECT_LE(v, prev + 1e-15);
    prev = v;
  }
  // Never below the permanent component [15],[29],[34].
  const double permanent = (1.0 - m.params().recoverable_frac) * dvt0;
  EXPECT_GE(m.relaxed_delta_vt(dvt0, 1e12), permanent - 1e-15);
  EXPECT_NEAR(m.relaxed_delta_vt(dvt0, 1e15), permanent, 1e-12);
}

TEST(NbtiTest, RelaxationSpansMicrosecondsToDays) {
  // [29],[34]: relaxation is observable from us to days. Check that the
  // recoverable part is still partially present after a day.
  NbtiModel m;
  const double dvt0 = 0.05;
  const double after_1us = m.relaxed_delta_vt(dvt0, 1e-6);
  const double after_1day = m.relaxed_delta_vt(dvt0, 86400.0);
  EXPECT_LT(after_1us, dvt0);               // already relaxing at 1 us
  EXPECT_GT(after_1day,
            (1.0 - m.params().recoverable_frac) * dvt0 + 1e-4);  // not done
}

TEST(NbtiTest, MeasurementDelayUnderestimatesShift) {
  // [34]: slow measure-stress-measure readouts miss the fast-relaxing
  // component; ultra-fast VT measurements were invented for this.
  NbtiModel m;
  const auto stress = pmos_dc();
  const double t = 1e8;
  const double truth = m.delta_vt(stress, t);
  const double fast = m.apparent_delta_vt(stress, t, 1e-6);
  const double slow = m.apparent_delta_vt(stress, t, 1.0);
  EXPECT_LT(fast, truth);
  EXPECT_LT(slow, fast);
  EXPECT_GT(slow, (1.0 - m.params().recoverable_frac) * truth);
  EXPECT_DOUBLE_EQ(m.apparent_delta_vt(stress, t, 0.0), truth);
}

TEST(NbtiTest, MobilityDegradationCoupled) {
  NbtiModel m;
  const auto drift = m.drift_from_dvt(0.05);
  EXPECT_LT(drift.beta_factor, 1.0);
  EXPECT_GT(drift.beta_factor, 0.9);
  EXPECT_DOUBLE_EQ(drift.dvt, 0.05);
}

TEST(NbtiTest, IncrementalAdvanceMatchesClosedFormUnderConstantStress) {
  NbtiModel m;
  const auto stress = pmos_dc();
  Xoshiro256 rng(1);
  auto state = m.init_state(stress, rng);
  const double total = 3e8;
  const int epochs = 7;
  ParameterDrift last;
  for (int e = 0; e < epochs; ++e) {
    last = m.advance(*state, stress, total / epochs);
  }
  EXPECT_NEAR(last.dvt / m.delta_vt(stress, total), 1.0, 1e-9);
}

TEST(NbtiTest, EquivalentTimeAccumulationAcrossStressChange) {
  // Stress hard then mild: total must be below hard-only, above mild-only,
  // and exactly the closed form evaluated through the equivalent time.
  NbtiModel m;
  const auto hard = pmos_dc(1.3);
  const auto mild = pmos_dc(0.9);
  Xoshiro256 rng(1);
  auto state = m.init_state(hard, rng);
  m.advance(*state, hard, 1e7);
  const auto total = m.advance(*state, mild, 1e7);
  EXPECT_LT(total.dvt, m.delta_vt(hard, 2e7));
  EXPECT_GT(total.dvt, m.delta_vt(mild, 2e7));
  // Closed-form reference: t_eq such that K_mild*t_eq^n = dvt(hard,1e7).
  const double k_mild = m.stress_prefactor(mild);
  const double dvt1 = m.delta_vt(hard, 1e7);
  const double t_eq = std::pow(dvt1 / k_mild, 1.0 / m.params().n);
  EXPECT_NEAR(total.dvt, k_mild * std::pow(t_eq + 1e7, m.params().n), 1e-12);
}

// Property sweep: dVT is monotone in each stress dimension.
class NbtiMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(NbtiMonotonicity, MonotoneInFieldTempAndTime) {
  NbtiModel m;
  const double t = GetParam();
  double prev = -1.0;
  for (double vgs = 0.6; vgs <= 1.4; vgs += 0.1) {
    const double v = m.delta_vt(pmos_dc(vgs), t);
    EXPECT_GT(v, prev);
    prev = v;
  }
  prev = -1.0;
  for (double temp = 300.0; temp <= 420.0; temp += 20.0) {
    const double v = m.delta_vt(pmos_dc(1.1, temp), t);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Times, NbtiMonotonicity,
                         ::testing::Values(1e2, 1e4, 1e6, 1e8));

}  // namespace
}  // namespace relsim::aging
