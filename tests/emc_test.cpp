#include <gtest/gtest.h>

#include <cmath>

#include "emc/circuits.h"
#include "emc/emi.h"
#include "tech/tech.h"

namespace relsim::emc {
namespace {

// The EMI analyses run short transients; keep the test frequencies high so
// wall time stays low (the physics is frequency-scaled anyway).
EmiOptions fast_options() {
  EmiOptions o;
  o.settle_cycles = 10;
  o.measure_cycles = 15;
  o.steps_per_cycle = 40;
  return o;
}

TEST(EmcBenchTest, BaselineMatchesReferenceCurrent) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  EXPECT_NEAR(analyzer.baseline() / bench.i_ref, 1.0, 0.15);
}

TEST(EmcTest, InterferencePumpsOutputCurrentDown) {
  // Fig. 4: "Due to circuit nonlinearity, the mean output current is pumped
  // to a lower value."
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  const auto p = analyzer.measure(0.8, 100e6, fast_options());
  EXPECT_LT(p.shift(), 0.0);
  EXPECT_GT(std::abs(p.shift_rel()), 0.01);
}

TEST(EmcTest, ShiftGrowsWithAmplitude) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  const auto points =
      analyzer.amplitude_sweep(100e6, {0.2, 0.5, 1.0, 1.5}, fast_options());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].shift(), points[i - 1].shift())
        << "amplitude " << points[i].amplitude_v;
  }
}

TEST(EmcTest, ShiftDependsOnFrequency) {
  // Capacitive coupling: low frequencies barely couple, high frequencies
  // do — the error depends on the frequency of the interference (Sec. 4).
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  // Moderate amplitude: large enough to rectify, small enough that the
  // high-frequency point does not saturate at full collapse.
  const auto lo = analyzer.measure(0.3, 2e6, fast_options());
  const auto hi = analyzer.measure(0.3, 200e6, fast_options());
  EXPECT_GT(std::abs(hi.shift()), 3.0 * std::abs(lo.shift()));
}

TEST(EmcTest, FilteringHarmsThisCircuit) {
  // Fig. 3's point: WITH the gate filter the rectified shift appears; the
  // unfiltered mirror cancels it through its own convexity.
  CurrentReferenceOptions with_filter;
  CurrentReferenceOptions no_filter;
  no_filter.filter_cap_f = 0.0;
  const auto filtered = build_current_reference(tech_65nm(), with_filter);
  const auto open = build_current_reference(tech_65nm(), no_filter);
  EmiAnalyzer fa(*filtered.circuit, filtered.emi_source,
                 Observable::source_current(filtered.output_monitor));
  EmiAnalyzer oa(*open.circuit, open.emi_source,
                 Observable::source_current(open.output_monitor));
  const double f_shift = fa.measure(1.0, 100e6, fast_options()).shift();
  const double o_shift = oa.measure(1.0, 100e6, fast_options()).shift();
  EXPECT_LT(f_shift, 0.0);
  EXPECT_GT(std::abs(f_shift), 2.0 * std::abs(o_shift));
}

TEST(EmcTest, GateVoltageObservableAlsoShifts) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::node_voltage(bench.gate));
  const auto p = analyzer.measure(1.0, 100e6, fast_options());
  // The rectified mean gate voltage drops below the quiet bias.
  EXPECT_LT(p.shift(), -1e-3);
  EXPECT_GT(p.ripple_pp, 0.01);
}

TEST(EmcTest, WaveformRestoredAfterMeasurement) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  const double base_before = analyzer.baseline();
  analyzer.measure(1.0, 100e6, fast_options());
  EXPECT_DOUBLE_EQ(analyzer.baseline(), base_before);
  const auto& src =
      bench.circuit->device_as<spice::VoltageSource>(bench.emi_source);
  EXPECT_DOUBLE_EQ(src.waveform().dc_value(), 0.0);
}

TEST(EmcTest, ImmunityThresholdBisection) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  const double budget = 0.05 * bench.i_ref;  // allow 5% shift
  const double amp =
      analyzer.immunity_threshold(100e6, budget, 2.0, fast_options());
  EXPECT_GT(amp, 0.0);
  EXPECT_LT(amp, 2.0);
  // The threshold point indeed respects the budget...
  EXPECT_LE(std::abs(analyzer.measure(amp, 100e6, fast_options()).shift()),
            budget * 1.05);
  // ...and 2x the threshold violates it.
  EXPECT_GT(
      std::abs(analyzer.measure(2.0 * amp, 100e6, fast_options()).shift()),
      budget);
}

TEST(EmcTest, InvalidArgumentsRejected) {
  const auto bench = build_current_reference(tech_65nm());
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));
  EXPECT_THROW(analyzer.measure(-1.0, 1e6), Error);
  EXPECT_THROW(analyzer.measure(1.0, 0.0), Error);
  EXPECT_THROW(EmiAnalyzer(*bench.circuit, "NOPE",
                           Observable::node_voltage(bench.gate)),
               Error);
}

}  // namespace
}  // namespace relsim::emc
