// Failure injection and robustness: malformed circuits must fail loudly
// with typed exceptions, and hard-but-valid circuits must still converge.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/ac_analysis.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "tech/tech.h"
#include "util/error.h"

namespace relsim::spice {
namespace {

TEST(RobustnessTest, FloatingNodeIsHeldByGmin) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId floating = c.node("floating");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, kGround, 1e3);
  c.add_capacitor("C1", a, floating, 1e-12);  // DC-floating node
  const DcResult r = dc_operating_point(c);
  EXPECT_NEAR(r.v(floating), 0.0, 1e-6);
  EXPECT_NEAR(r.v(a), 1.0, 1e-6);
}

TEST(RobustnessTest, ConflictingVoltageSourcesFail) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_vsource("V2", a, kGround, 2.0);  // direct contradiction
  c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(dc_operating_point(c), Error);
}

TEST(RobustnessTest, CurrentSourceIntoOpenCircuitFails) {
  // A current source with no DC path cannot satisfy KCL; gmin gives it an
  // escape at an absurd voltage rather than a crash — verify we at least
  // get a finite solution or a typed error, never UB.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_isource("I1", kGround, a, 1e-3);
  c.add_capacitor("C1", a, b, 1e-12);
  c.add_resistor("R1", b, kGround, 1e3);
  try {
    const DcResult r = dc_operating_point(c);
    EXPECT_TRUE(std::isfinite(r.v(a)));
    EXPECT_GT(std::abs(r.v(a)), 1e4);  // 1mA through gmin=1e-12 is huge
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST(RobustnessTest, InvalidDeviceValuesRejectedAtConstruction) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 0.0), Error);
  EXPECT_THROW(c.add_resistor("R2", a, kGround, -5.0), Error);
  EXPECT_THROW(c.add_capacitor("C1", a, kGround, 0.0), Error);
  EXPECT_THROW(c.add_resistor("R3", a, a, 1e3), Error);  // same terminals
  EXPECT_THROW(c.add_vsource("V1", a, a, 1.0), Error);
}

TEST(RobustnessTest, CrossCoupledLatchConvergesViaContinuation) {
  // A bistable latch has a repelling middle solution; plain Newton from
  // zero often oscillates, the continuation fallbacks must save it.
  const auto& tech = tech_90nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId q = c.node("q");
  const NodeId qb = c.node("qb");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  auto n = make_mos_params(tech, 1.0, 0.1, false);
  auto p = make_mos_params(tech, 2.0, 0.1, true);
  c.add_mosfet("MN1", q, qb, kGround, kGround, n);
  c.add_mosfet("MP1", q, qb, vdd, vdd, p);
  c.add_mosfet("MN2", qb, q, kGround, kGround, n);
  c.add_mosfet("MP2", qb, q, vdd, vdd, p);
  const DcResult r = dc_operating_point(c);
  // Any consistent solution is fine; the complementary nodes must satisfy
  // the inverter equations (sum roughly VDD at the metastable point, or
  // one rail each).
  EXPECT_TRUE(std::isfinite(r.v(q)));
  EXPECT_TRUE(std::isfinite(r.v(qb)));
  EXPECT_GE(r.v(q), -0.01);
  EXPECT_LE(r.v(q), tech.vdd + 0.01);
}

TEST(RobustnessTest, TransientStepHalvingRecoversFromCoarseStep) {
  // A 1ns-period oscillation stepped at 0.5ns forces halvings but must
  // still complete.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround,
                std::make_unique<SineWaveform>(0.0, 1.0, 1e9));
  c.add_resistor("R1", in, out, 1e3);
  c.add_diode("D1", out, kGround);  // nonlinear load
  c.add_capacitor("C1", out, kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 5e-10;
  opt.t_stop = 1e-8;
  const auto res = transient_analysis(c, opt, {out});
  EXPECT_GT(res.step_count(), 10u);
  for (double v : res.node(out)) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, ExtremeDegradationStillSolves) {
  // A device aged far beyond its specs (runaway HCI sample) must not break
  // the solver: huge VT, halved beta, mA-range gate leak.
  const auto& tech = tech_65nm();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId d = c.node("d");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_isource("IREF", vdd, d, 100e-6);
  auto& m = c.add_mosfet("M1", d, d, kGround, kGround,
                         make_mos_params(tech, 0.5, 0.1, false));
  MosDegradation deg;
  deg.dvt = 1.5;
  deg.beta_factor = 0.5;
  deg.lambda_factor = 6.0;
  deg.g_leak_gd = 2e-3;
  m.set_degradation(deg);
  const DcResult r = dc_operating_point(c);
  EXPECT_TRUE(std::isfinite(r.v(d)));
  // And the AC linearization at that point holds up too.
  EXPECT_NO_THROW(ac_analysis(c, {1e6}));
}

TEST(RobustnessTest, EmptyCircuitAnalysesFailCleanly) {
  Circuit c;
  EXPECT_THROW(dc_operating_point(c), Error);
}

TEST(RobustnessTest, ProbeOfUnknownNodeOrSourceThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 1e-8;
  const auto res = transient_analysis(c, opt, {a});
  EXPECT_THROW(res.node(a + 5), Error);
  EXPECT_THROW(res.source_current("NOPE"), Error);
}

TEST(RobustnessTest, TransientOptionValidation) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, kGround, 1e3);
  TransientOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(transient_analysis(c, bad, {}), Error);
  bad.dt = 1e-9;
  bad.t_stop = -1.0;
  EXPECT_THROW(transient_analysis(c, bad, {}), Error);
}

TEST(RobustnessTest, InitialConditionOnUnknownNodeRejected) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 1e-8;
  opt.use_initial_conditions = true;
  opt.initial_conditions[a + 9] = 1.0;
  EXPECT_THROW(transient_analysis(c, opt, {}), Error);
}

}  // namespace
}  // namespace relsim::spice
