// End-to-end daemon tests over a real Unix socket: round-trip
// bit-identity against direct McSession runs, disconnect/cancel/resume
// semantics, and compiled-circuit cache reuse across jobs.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/compiled_cache.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket_io.h"
#include "service/workload.h"
#include "util/error.h"

namespace relsim::service {
namespace {

constexpr const char* kDivider = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

JobSpec divider_spec(std::size_t n) {
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = kDivider;
  spec.constraints.push_back({"d", 0.55, 0.75});
  spec.seed = 99;
  spec.n = n;
  spec.keep_values = true;
  return spec;
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "relsim_srv_test.sock";
    options.executors = 2;
    server_ = std::make_unique<Server>(std::move(options));
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  Client connect() {
    return Client::connect_unix(server_->options().socket_path);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerFixture, DcYieldRoundTripIsBitIdenticalToDirectRun) {
  const JobSpec spec = divider_spec(1024);

  Client client = connect();
  const std::uint64_t id = client.submit("tenant-a", 0, spec);
  const obs::JsonValue reply = client.wait(id);
  ASSERT_EQ(reply.get_string("state", ""), "done");
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);

  // The same JobSpec run directly (no daemon, no cache) must agree bit
  // for bit: identical counts and an identical CRC over the per-sample
  // value stream.
  const McResult direct = run_job(spec, nullptr);
  EXPECT_EQ(result->get_u64("completed", 0), direct.completed);
  EXPECT_EQ(result->get_u64("passed", 0), direct.estimate.passed);
  EXPECT_EQ(result->get_u64("total", 0), direct.estimate.total);
  EXPECT_EQ(result->get_double("yield", -1.0),
            direct.estimate.interval.estimate);
  EXPECT_EQ(result->get_u64("values_crc32", 0), values_crc32(direct));
  EXPECT_GT(result->get_u64("values_crc32", 0), 0u);
}

TEST_F(ServerFixture, EvalModesAgreeThroughTheDaemon) {
  JobSpec batched = divider_spec(512);
  batched.eval_mode = McEvalMode::kBatched;
  JobSpec per_sample = divider_spec(512);
  per_sample.eval_mode = McEvalMode::kPerSample;

  Client client = connect();
  const std::uint64_t id_b = client.submit("tenant-a", 0, batched);
  const std::uint64_t id_p = client.submit("tenant-a", 0, per_sample);
  const obs::JsonValue rb = client.wait(id_b);
  const obs::JsonValue rp = client.wait(id_p);
  const obs::JsonValue* b = rb.find("result");
  const obs::JsonValue* p = rp.find("result");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(b->get_u64("values_crc32", 1), p->get_u64("values_crc32", 2));
}

TEST_F(ServerFixture, JobSurvivesClientDisconnectMidRun) {
  // Slow enough to still be running when the submitter vanishes:
  // per-sample mode re-parses the netlist for every sample.
  JobSpec spec = divider_spec(20000);
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 1;

  std::uint64_t id = 0;
  {
    Client submitter = connect();
    id = submitter.submit("tenant-a", 0, spec);
    ASSERT_GT(id, 0u);
  }  // submitter's socket closes here, mid-run

  Client other = connect();
  const obs::JsonValue reply = other.wait(id);
  EXPECT_EQ(reply.get_string("state", ""), "done");
  ASSERT_NE(reply.find("result"), nullptr);
  EXPECT_EQ(reply.find("result")->get_u64("completed", 0), spec.n);
}

TEST_F(ServerFixture, CancelMidRunTruncatesAndReportsCancelled) {
  JobSpec spec = divider_spec(100000);  // minutes if left alone
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 1;

  Client client = connect();
  const std::uint64_t id = client.submit("tenant-a", 0, spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  client.cancel(id);
  const obs::JsonValue reply = client.wait(id);
  EXPECT_EQ(reply.get_string("state", ""), "cancelled");
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get_string("stop_reason", ""), "cancelled");
  EXPECT_LT(result->get_u64("completed", spec.n), spec.n);
}

TEST_F(ServerFixture, CancelledJobResumesFromCheckpointBitExact) {
  const std::string ckpt = ::testing::TempDir() + "service_resume.rsmckpt";
  std::remove(ckpt.c_str());

  JobSpec spec = divider_spec(20000);
  spec.eval_mode = McEvalMode::kPerSample;
  spec.threads = 1;
  spec.checkpoint_path = ckpt;
  spec.checkpoint_every = 64;

  Client client = connect();
  const std::uint64_t first = client.submit("tenant-a", 0, spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.cancel(first);
  const obs::JsonValue interrupted = client.wait(first);
  ASSERT_EQ(interrupted.get_string("state", ""), "cancelled");
  ASSERT_LT(interrupted.find("result")->get_u64("completed", spec.n),
            spec.n);

  // Resubmit the same spec: the job resumes from the checkpoint and the
  // final value stream matches an uninterrupted run bit for bit.
  const std::uint64_t second = client.submit("tenant-a", 0, spec);
  const obs::JsonValue resumed = client.wait(second);
  ASSERT_EQ(resumed.get_string("state", ""), "done");
  const obs::JsonValue* result = resumed.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->get_u64("resumed", 0), 0u);
  EXPECT_EQ(result->get_u64("completed", 0), spec.n);

  JobSpec uninterrupted = divider_spec(20000);
  uninterrupted.eval_mode = McEvalMode::kPerSample;
  uninterrupted.threads = 1;
  const McResult reference = run_job(uninterrupted, nullptr);
  EXPECT_EQ(result->get_u64("passed", 0), reference.estimate.passed);
  EXPECT_EQ(result->get_u64("values_crc32", 0), values_crc32(reference));
  std::remove(ckpt.c_str());
}

TEST_F(ServerFixture, CompiledCircuitIsBuiltOnceAcrossManyJobs) {
  constexpr int kJobs = 8;
  Client client = connect();
  std::vector<std::uint64_t> ids;
  for (int j = 0; j < kJobs; ++j) {
    JobSpec spec = divider_spec(256);
    spec.seed = 1000 + static_cast<std::uint64_t>(j);
    ids.push_back(client.submit("tenant-" + std::to_string(j % 3), 0, spec));
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(client.wait(id).get_string("state", ""), "done");
  }

  // One compile served every job: the cached entry's own stats say the
  // stamp pattern was captured exactly once...
  const CompiledCircuitCache::Entry entry = server_->cache().get(kDivider);
  EXPECT_EQ(entry.compiled->compile_stats().pattern_builds, 1u);
  // ...and the daemon counted one miss (plus our probe's hit).
  const obs::JsonValue m = client.metrics();
  EXPECT_EQ(m.get_u64("cache_misses", 0), 1u);
  EXPECT_GE(m.get_u64("cache_hits", 0), static_cast<std::uint64_t>(kJobs - 1));
  EXPECT_EQ(m.get_u64("cache_entries", 0), 1u);
}

TEST_F(ServerFixture, TruncatedFrameGetsErrorNotCrash) {
  // Raw socket: send a frame with no terminating newline, then close.
  const int fd = connect_unix(server_->options().socket_path);
  ASSERT_TRUE(write_all(fd, R"({"op":"ping")"));
  ::shutdown(fd, SHUT_WR);  // EOF -> server sees a truncated frame
  LineReader reader(fd);
  std::string reply_line;
  // The server still answers (an error frame) before closing.
  ASSERT_TRUE(reader.read_line(reply_line));
  const obs::JsonValue reply = obs::JsonValue::parse(reply_line);
  EXPECT_FALSE(reply.get_bool("ok", true));
  ::close(fd);

  // And the daemon is alive for the next client.
  Client client = connect();
  client.ping();
}

TEST_F(ServerFixture, SyntheticJobsRunConcurrentlyUnderFairShare) {
  Client client = connect();
  std::vector<std::uint64_t> ids;
  for (int j = 0; j < 12; ++j) {
    JobSpec spec;
    spec.kind = JobKind::kSynthetic;
    spec.n = 5000;
    spec.seed = static_cast<std::uint64_t>(j);
    spec.pass_prob = 0.25 + 0.05 * j;
    ids.push_back(
        client.submit("tenant-" + std::to_string(j % 4), j % 2, spec));
  }
  for (const std::uint64_t id : ids) {
    const obs::JsonValue reply = client.wait(id);
    EXPECT_EQ(reply.get_string("state", ""), "done");
    EXPECT_EQ(reply.find("result")->get_u64("completed", 0), 5000u);
  }
}

}  // namespace
}  // namespace relsim::service
