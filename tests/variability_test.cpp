#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.h"
#include "tech/tech.h"
#include "variability/montecarlo.h"
#include "variability/pelgrom.h"
#include "variability/sampler.h"

namespace relsim {
namespace {

PelgromParams plain_params(double avt = 4.0, double abeta = 1.5,
                           double svt = 3.0) {
  PelgromParams p;
  p.avt_mv_um = avt;
  p.abeta_pct_um = abeta;
  p.svt_uv_per_um = svt;
  p.asc_mv_um15 = 0.0;
  p.anc_mv_um15 = 0.0;
  return p;
}

TEST(PelgromTest, AreaScalingEq1) {
  const PelgromModel m(plain_params());
  // sigma(dVT) = A_VT / sqrt(WL): 4 mV*um over 1um x 1um -> 4 mV.
  EXPECT_NEAR(m.sigma_dvt_pair(1.0, 1.0), 4.0e-3, 1e-12);
  // Quadrupling the area halves sigma.
  EXPECT_NEAR(m.sigma_dvt_pair(2.0, 2.0), 2.0e-3, 1e-12);
}

TEST(PelgromTest, DistanceTermAddsInQuadrature) {
  const PelgromModel m(plain_params());
  // S_VT = 3 uV/um; at D = 1000 um the gradient alone is 3 mV.
  const double sigma = m.sigma_dvt_pair(1.0, 1.0, 1000.0);
  EXPECT_NEAR(sigma, std::sqrt(16.0 + 9.0) * 1e-3, 1e-12);
}

TEST(PelgromTest, SingleDeviceIsPairOverSqrt2) {
  const PelgromModel m(plain_params());
  EXPECT_NEAR(m.sigma_dvt_single(1.0, 1.0) * std::sqrt(2.0),
              m.sigma_dvt_pair(1.0, 1.0), 1e-15);
}

TEST(PelgromTest, ShortChannelTermGrowsAtSmallL) {
  PelgromParams p = plain_params();
  p.asc_mv_um15 = 2.0;
  const PelgromModel ext(p);
  const PelgromModel base(plain_params());
  // Same area, shorter L: extension term must matter more.
  const double wide = ext.sigma_dvt_pair(0.25, 4.0) / base.sigma_dvt_pair(0.25, 4.0);
  const double narrow = ext.sigma_dvt_pair(4.0, 0.25) / base.sigma_dvt_pair(4.0, 0.25);
  EXPECT_GT(narrow, wide);
  EXPECT_GT(narrow, 1.3);
}

TEST(PelgromTest, BetaScaling) {
  const PelgromModel m(plain_params());
  EXPECT_NEAR(m.sigma_dbeta_pair(1.0, 1.0), 0.015, 1e-12);
  EXPECT_NEAR(m.sigma_dbeta_pair(9.0, 1.0), 0.005, 1e-12);
}

TEST(PelgromTest, FromTechUsesNodeConstants) {
  const auto p = PelgromParams::from_tech(tech_65nm());
  EXPECT_DOUBLE_EQ(p.avt_mv_um, tech_65nm().avt_mv_um);
  EXPECT_GT(p.asc_mv_um15, 0.0);
}

TEST(TuinhoutTest, BenchmarkIsLinearInTox) {
  EXPECT_DOUBLE_EQ(tuinhout_benchmark_avt(10.0), 10.0);
  EXPECT_DOUBLE_EQ(tuinhout_benchmark_avt(2.0), 2.0);
}

TEST(SamplerTest, SingleDeviceSigmaMatchesModel) {
  const PelgromModel m(plain_params());
  const MismatchSampler s(m, 0.5, 0.2);
  Xoshiro256 rng(99);
  RunningStats vt, beta;
  for (int i = 0; i < 40000; ++i) {
    const auto d = s.sample_single(rng);
    vt.add(d.dvt);
    beta.add(d.dbeta_rel);
  }
  EXPECT_NEAR(vt.mean(), 0.0, 2e-4);
  EXPECT_NEAR(vt.stddev() / m.sigma_dvt_single(0.5, 0.2), 1.0, 0.02);
  EXPECT_NEAR(beta.stddev() / m.sigma_dbeta_single(0.5, 0.2), 1.0, 0.02);
}

TEST(SamplerTest, PairDifferenceReproducesEq1) {
  const PelgromModel m(plain_params());
  const MismatchSampler s(m, 1.0, 0.5);
  Xoshiro256 rng(7);
  const double d_um = 500.0;
  RunningStats diff;
  for (int i = 0; i < 40000; ++i) {
    const auto [a, b] = s.sample_pair(rng, d_um);
    diff.add(a.dvt - b.dvt);
  }
  EXPECT_NEAR(diff.stddev() / m.sigma_dvt_pair(1.0, 0.5, d_um), 1.0, 0.02);
}

// Property sweep over geometries: MC sigma of the pair difference always
// matches the closed form of Eq. 1 (this is experiment E2's invariant).
struct GeomCase {
  double w, l, d;
};
class PairSigmaSweep : public ::testing::TestWithParam<GeomCase> {};

TEST_P(PairSigmaSweep, McMatchesClosedForm) {
  const auto g = GetParam();
  PelgromParams p = plain_params();
  p.asc_mv_um15 = 1.0;
  p.anc_mv_um15 = 0.8;
  const PelgromModel m(p);
  const MismatchSampler s(m, g.w, g.l);
  Xoshiro256 rng(derive_seed(2024, {static_cast<std::uint64_t>(g.w * 100),
                                    static_cast<std::uint64_t>(g.l * 100),
                                    static_cast<std::uint64_t>(g.d)}));
  RunningStats diff;
  for (int i = 0; i < 20000; ++i) {
    const auto [a, b] = s.sample_pair(rng, g.d);
    diff.add(a.dvt - b.dvt);
  }
  EXPECT_NEAR(diff.stddev() / m.sigma_dvt_pair(g.w, g.l, g.d), 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PairSigmaSweep,
    ::testing::Values(GeomCase{0.12, 0.065, 0.0}, GeomCase{1.0, 1.0, 0.0},
                      GeomCase{10.0, 10.0, 0.0}, GeomCase{0.5, 0.1, 200.0},
                      GeomCase{2.0, 0.25, 1000.0}));

TEST(MonteCarloTest, SampleSeedsAreReproducible) {
  MonteCarloEngine mc(42);
  Xoshiro256 a = mc.rng_for(17);
  Xoshiro256 b = mc.rng_for(17);
  Xoshiro256 c = mc.rng_for(18);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2 = mc.rng_for(17);
  EXPECT_NE(a2(), c());
}

TEST(MonteCarloTest, YieldOfFairCoin) {
  MonteCarloEngine mc(7);
  const auto est = mc.estimate_yield(
      20000, [](Xoshiro256& rng, std::size_t) { return rng.uniform01() < 0.8; });
  EXPECT_NEAR(est.yield(), 0.8, 0.01);
  EXPECT_LT(est.interval.lo, 0.8);
  EXPECT_GT(est.interval.hi, 0.8);
  EXPECT_EQ(est.total, 20000u);
}

TEST(MonteCarloTest, SessionMetricMatchesSerialBitExactly) {
  MonteCarloEngine mc(555);
  auto metric = [](Xoshiro256& rng, std::size_t) {
    double acc = 0.0;
    const NormalDistribution d(0.0, 1.0);
    for (int k = 0; k < 50; ++k) acc += d(rng);
    return acc;
  };
  const auto serial = mc.run_metric(500, metric);
  for (unsigned threads : {1u, 2u, 7u}) {
    McRequest req;
    req.seed = 555;
    req.n = 500;
    req.threads = threads;
    const McResult parallel = McSession(req).run_metric(metric);
    ASSERT_EQ(parallel.values.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.values[i], serial[i]) << "threads=" << threads;
    }
  }
}

TEST(MonteCarloTest, SessionYieldMatchesSerial) {
  MonteCarloEngine mc(777);
  auto pass = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.6;
  };
  const auto serial = mc.estimate_yield(2000, pass);
  McRequest req;
  req.seed = 777;
  req.n = 2000;
  req.threads = 5;
  const McResult par = McSession(req).run_yield(pass);
  EXPECT_EQ(serial.passed, par.estimate.passed);
  EXPECT_EQ(serial.total, par.estimate.total);
  EXPECT_EQ(par.stop_reason(), McStopReason::kCompleted);
}

TEST(MonteCarloTest, SessionPropagatesExceptions) {
  McRequest req;
  req.seed = 1;
  req.n = 100;
  req.threads = 4;
  EXPECT_THROW(McSession(req).run_metric([](Xoshiro256&,
                                            std::size_t i) -> double {
    if (i == 57) throw Error("boom");
    return 0.0;
  }),
               Error);
}

TEST(MonteCarloTest, SessionHandlesEdgeSizes) {
  auto metric = [](Xoshiro256& rng, std::size_t) { return rng.uniform01(); };
  McRequest req;
  req.seed = 2;
  req.n = 0;
  req.threads = 8;
  EXPECT_TRUE(McSession(req).run_metric(metric).values.empty());
  req.n = 3;
  EXPECT_EQ(McSession(req).run_metric(metric).values.size(), 3u);
}

TEST(MonteCarloTest, RunMetricCollectsAll) {
  MonteCarloEngine mc(7);
  const auto xs = mc.run_metric(
      100, [](Xoshiro256&, std::size_t i) { return static_cast<double>(i); });
  ASSERT_EQ(xs.size(), 100u);
  EXPECT_DOUBLE_EQ(xs[99], 99.0);
}

}  // namespace
}  // namespace relsim
