// Migration coverage for the positional parallel Monte-Carlo entry points
// (montecarlo.h). The run_metric_parallel / estimate_yield_parallel shims
// have been [[deprecated]] for three PRs; in-repo usage is migrated to
// McSession, and exactly ONE pinned compat test below (behind the pragma)
// keeps the forwarding contract honest until the shims are removed — see
// README "Migrating from the positional parallel MC entry points" for the
// schedule.
#include <gtest/gtest.h>

#include "variability/mc_session.h"
#include "variability/montecarlo.h"

namespace relsim {
namespace {

// The migrated shape of the old shim calls: an explicit McRequest into
// McSession, bit-identical to the serial engine for any thread count.
TEST(McShimTest, SessionRunMetricMatchesSerialEngine) {
  const MonteCarloEngine engine(2718);
  auto metric = [](Xoshiro256& rng, std::size_t) { return rng.uniform01(); };
  const std::vector<double> serial = engine.run_metric(257, metric);

  McRequest req;
  req.seed = engine.base_seed();
  req.n = 257;
  req.threads = 4;
  const McSession session(req);
  const std::vector<double> parallel = session.run_metric(metric).values;
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "sample=" << i;
  }
}

TEST(McShimTest, SessionRunYieldMatchesSerialEngine) {
  const MonteCarloEngine engine(314159);
  auto pass = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.7;
  };
  const YieldEstimate serial = engine.estimate_yield(1003, pass);

  McRequest req;
  req.seed = engine.base_seed();
  req.n = 1003;
  req.threads = 3;
  const McSession session(req);
  const YieldEstimate parallel = session.run_yield(pass).estimate;
  EXPECT_EQ(parallel.passed, serial.passed);
  EXPECT_EQ(parallel.total, serial.total);
  EXPECT_EQ(parallel.interval.estimate, serial.interval.estimate);
  EXPECT_EQ(parallel.interval.lo, serial.interval.lo);
  EXPECT_EQ(parallel.interval.hi, serial.interval.hi);
}

// The ONE pinned compat test: deprecated shims must keep compiling and
// forwarding to McSession bit-identically until their removal PR.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(McShimTest, DeprecatedShimsStillForwardBitIdentically) {
  const MonteCarloEngine engine(1);
  auto metric = [](Xoshiro256& rng, std::size_t) { return rng.uniform01(); };
  auto pass = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.5;
  };
  const std::vector<double> serial_metric = engine.run_metric(101, metric);
  const std::vector<double> shim_metric =
      engine.run_metric_parallel(101, metric, 4);
  ASSERT_EQ(shim_metric.size(), serial_metric.size());
  for (std::size_t i = 0; i < serial_metric.size(); ++i) {
    EXPECT_EQ(shim_metric[i], serial_metric[i]) << "sample=" << i;
  }

  const YieldEstimate serial_yield = engine.estimate_yield(101, pass);
  const YieldEstimate shim_yield = engine.estimate_yield_parallel(101, pass);
  EXPECT_EQ(shim_yield.passed, serial_yield.passed);
  EXPECT_EQ(shim_yield.total, serial_yield.total);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace relsim
