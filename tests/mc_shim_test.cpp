// Compile-and-run coverage for the deprecated parallel Monte-Carlo shims
// (montecarlo.h). Existing out-of-tree callers still use the positional
// run_metric_parallel / estimate_yield_parallel entry points; this test
// pins the migration contract: the shims keep compiling, forward to
// McSession, and return results bit-identical to the serial engine.
#include <gtest/gtest.h>

#include "variability/montecarlo.h"

// The whole point of this file is to call deprecated API on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace relsim {
namespace {

TEST(McShimTest, RunMetricParallelForwardsToSession) {
  const MonteCarloEngine engine(2718);
  auto metric = [](Xoshiro256& rng, std::size_t) { return rng.uniform01(); };
  const std::vector<double> serial = engine.run_metric(257, metric);
  const std::vector<double> shim = engine.run_metric_parallel(257, metric, 4);
  ASSERT_EQ(shim.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(shim[i], serial[i]) << "sample=" << i;
  }
}

TEST(McShimTest, EstimateYieldParallelForwardsToSession) {
  const MonteCarloEngine engine(314159);
  auto pass = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.7;
  };
  const YieldEstimate serial = engine.estimate_yield(1003, pass);
  const YieldEstimate shim = engine.estimate_yield_parallel(1003, pass, 3);
  EXPECT_EQ(shim.passed, serial.passed);
  EXPECT_EQ(shim.total, serial.total);
  EXPECT_EQ(shim.interval.estimate, serial.interval.estimate);
  EXPECT_EQ(shim.interval.lo, serial.interval.lo);
  EXPECT_EQ(shim.interval.hi, serial.interval.hi);
}

TEST(McShimTest, DefaultThreadCountStillWorks) {
  const MonteCarloEngine engine(1);
  auto metric = [](Xoshiro256& rng, std::size_t) { return rng.uniform01(); };
  EXPECT_EQ(engine.run_metric_parallel(10, metric).size(), 10u);
}

}  // namespace
}  // namespace relsim

#pragma GCC diagnostic pop
