#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "adaptive/system.h"
#include "spice/analysis.h"
#include "tech/tech.h"
#include "util/error.h"

namespace relsim::adaptive {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

// An NMOS source-degenerated bias stage: VBIAS drives the gate, the drain
// current through VMEAS is the performance of interest. Aging (VT shift)
// lowers the current; raising VBIAS (the knob) restores it.
std::unique_ptr<Circuit> bias_stage(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  const NodeId g = c->node("g");
  const NodeId d = c->node("d");
  const NodeId meas = c->node("meas");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  c->add_vsource("VBIAS", g, kGround, 0.6);
  c->add_vsource("VMEAS", vdd, meas, 0.0);
  c->add_resistor("RD", meas, d, 2e3);
  c->add_mosfet("M1", d, g, kGround, kGround,
                spice::make_mos_params(tech, 2.0, 0.2, false));
  return c;
}

TEST(SpecTest, ViolationDistance) {
  Spec s{"m", 1.0, 2.0};
  EXPECT_DOUBLE_EQ(s.violation(1.5), 0.0);
  EXPECT_DOUBLE_EQ(s.violation(0.5), 0.5);
  EXPECT_DOUBLE_EQ(s.violation(2.75), 0.75);
  EXPECT_TRUE(s.satisfied_by(1.0));
  EXPECT_TRUE(s.satisfied_by(2.0));
  EXPECT_FALSE(s.satisfied_by(2.0001));
}

TEST(MonitorTest, SourceCurrentMonitorReadsDrainCurrent) {
  auto c = bias_stage(tech_90nm());
  SourceCurrentMonitor mon("iout", "VMEAS");
  const double i = mon.measure(*c);
  EXPECT_GT(i, 1e-5);
  EXPECT_LT(i, 1e-3);
}

TEST(MonitorTest, DcNodeMonitor) {
  auto c = bias_stage(tech_90nm());
  DcNodeMonitor mon("vd", c->find_node("d"));
  const double vd = mon.measure(*c);
  EXPECT_GT(vd, 0.0);
  EXPECT_LT(vd, tech_90nm().vdd);
}

TEST(KnobTest, VoltageKnobAppliesAndCosts) {
  auto c = bias_stage(tech_90nm());
  VoltageKnob knob("bias", "VBIAS", {0.5, 0.6, 0.7});
  knob.apply(2, *c);
  EXPECT_EQ(knob.setting(), 2);
  EXPECT_DOUBLE_EQ(
      c->device_as<spice::VoltageSource>("VBIAS").waveform().dc_value(), 0.7);
  EXPECT_GT(knob.cost(2), knob.cost(0));
  EXPECT_THROW(knob.apply(3, *c), Error);
}

TEST(KnobTest, ResistorKnob) {
  auto c = bias_stage(tech_90nm());
  ResistorKnob knob("rd", "RD", {1e3, 2e3, 4e3});
  knob.apply(0, *c);
  EXPECT_DOUBLE_EQ(c->device_as<spice::Resistor>("RD").resistance(), 1e3);
  EXPECT_GT(knob.cost(0), knob.cost(2));  // lower R burns more current
}

AdaptiveSystem make_system(Circuit& c, double i_min, double i_max) {
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(
      std::make_unique<SourceCurrentMonitor>("iout", "VMEAS"));
  std::vector<std::unique_ptr<Knob>> knobs;
  knobs.push_back(std::make_unique<VoltageKnob>(
      "bias", "VBIAS",
      std::vector<double>{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80}));
  std::vector<Spec> specs{{"iout", i_min, i_max}};
  return AdaptiveSystem(c, std::move(monitors), std::move(knobs),
                        std::move(specs));
}

TEST(AdaptiveSystemTest, TunePicksCheapestPassingConfig) {
  auto c = bias_stage(tech_90nm());
  // Target band chosen to be reachable by several settings.
  auto sys = make_system(*c, 100e-6, 400e-6);
  const auto state = sys.tune();
  EXPECT_TRUE(state.in_spec);
  // Every lower-cost (lower-voltage) setting must fail the spec.
  const int chosen = state.knob_settings[0];
  VoltageKnob probe("bias", "VBIAS",
                    {0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80});
  SourceCurrentMonitor mon("iout", "VMEAS");
  for (int s = 0; s < chosen; ++s) {
    probe.apply(s, *c);
    const double i = mon.measure(*c);
    EXPECT_FALSE(i >= 100e-6 && i <= 400e-6) << "setting " << s;
  }
}

TEST(AdaptiveSystemTest, CompensatesAgingDrift) {
  // Fig. 6 story: degradation pushes the system out of spec; the control
  // loop retunes the knob and recovers correct operation.
  auto c = bias_stage(tech_90nm());
  auto sys = make_system(*c, 150e-6, 300e-6);
  const auto fresh = sys.tune();
  ASSERT_TRUE(fresh.in_spec);

  // Apply a heavy threshold shift (10-year HCI/NBTI class drift).
  spice::MosDegradation d;
  d.dvt = 0.08;
  d.beta_factor = 0.93;
  c->device_as<spice::Mosfet>("M1").set_degradation(d);

  const auto drifted = sys.evaluate();
  EXPECT_FALSE(drifted.in_spec);  // open loop: out of spec

  const auto retuned = sys.tune();
  EXPECT_TRUE(retuned.in_spec);   // closed loop: recovered
  // Compensation costs something: a higher bias setting.
  EXPECT_GT(retuned.knob_settings[0], fresh.knob_settings[0]);
  EXPECT_GT(retuned.cost, fresh.cost);
}

TEST(AdaptiveSystemTest, ReportsBestEffortWhenNothingPasses) {
  auto c = bias_stage(tech_90nm());
  auto sys = make_system(*c, 10e-3, 20e-3);  // unreachable band
  const auto state = sys.tune();
  EXPECT_FALSE(state.in_spec);
  EXPECT_GT(state.total_violation, 0.0);
  // Best effort = the highest-current setting.
  EXPECT_EQ(state.knob_settings[0], 6);
}

TEST(AdaptiveSystemTest, UnknownMonitorInSpecRejected) {
  auto c = bias_stage(tech_90nm());
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(
      std::make_unique<SourceCurrentMonitor>("iout", "VMEAS"));
  std::vector<std::unique_ptr<Knob>> knobs;
  std::vector<Spec> specs{{"nope", 0.0, 1.0}};
  EXPECT_THROW(AdaptiveSystem(*c, std::move(monitors), std::move(knobs),
                              std::move(specs)),
               Error);
}

TEST(AdaptiveSystemTest, MultiKnobSearchSpace) {
  auto c = bias_stage(tech_90nm());
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(
      std::make_unique<SourceCurrentMonitor>("iout", "VMEAS"));
  std::vector<std::unique_ptr<Knob>> knobs;
  knobs.push_back(std::make_unique<VoltageKnob>(
      "bias", "VBIAS", std::vector<double>{0.55, 0.65, 0.75}));
  knobs.push_back(std::make_unique<ResistorKnob>(
      "rd", "RD", std::vector<double>{1e3, 2e3, 4e3}));
  std::vector<Spec> specs{{"iout", 150e-6, 350e-6}};
  AdaptiveSystem sys(*c, std::move(monitors), std::move(knobs),
                     std::move(specs));
  EXPECT_EQ(sys.configuration_count(), 9u);
  const auto state = sys.tune();
  EXPECT_TRUE(state.in_spec);
}

}  // namespace
}  // namespace relsim::adaptive
