// McSession orchestration contracts (mc_session.h):
//  * an early-stopped run is EXACTLY the committed prefix of the full run,
//    and the stopping point is scheduling-independent;
//  * a checkpointed run killed mid-flight resumes to the bit-identical
//    uninterrupted result without re-evaluating finished samples;
//  * threshold stopping decides pass/fail at the configured confidence;
//  * failing-sample seeds replay the failure in isolation;
//  * resolve_threads honors the RELSIM_THREADS environment override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rng/distributions.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim {
namespace {

McRequest base_request(std::uint64_t seed, std::size_t n) {
  McRequest req;
  req.seed = seed;
  req.n = n;
  req.threads = 2;
  req.chunk = 16;
  return req;
}

double noisy_metric(Xoshiro256& rng, std::size_t) {
  NormalDistribution normal(0.0, 1.0);
  double acc = 0.0;
  for (int k = 0; k < 8; ++k) acc += normal(rng);
  return acc;
}

bool coin_pass(Xoshiro256& rng, std::size_t) { return rng.uniform01() < 0.8; }

/// Scratch checkpoint path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Early stopping

TEST(McSessionTest, EarlyStopIsExactPrefixOfFullRun) {
  McRequest full = base_request(2024, 6000);
  full.keep_values = true;
  const McResult reference = McSession(full).run_yield(coin_pass);
  ASSERT_EQ(reference.completed, 6000u);

  McRequest early = full;
  early.stopping.ci_half_width = 0.04;  // fires well before 6000 samples
  const McResult stopped = McSession(early).run_yield(coin_pass);
  EXPECT_EQ(stopped.stop_reason(), McStopReason::kCiTarget);
  ASSERT_GT(stopped.completed, 0u);
  ASSERT_LT(stopped.completed, reference.completed);

  // Per-sample outcomes on the overlapping prefix are bit-identical...
  ASSERT_EQ(stopped.values.size(), stopped.completed);
  std::size_t passed = 0;
  for (std::size_t i = 0; i < stopped.completed; ++i) {
    EXPECT_EQ(stopped.values[i], reference.values[i]) << "sample=" << i;
    if (stopped.values[i] != 0.0) ++passed;
  }
  // ...and the reported estimate is exactly the prefix tally.
  EXPECT_EQ(stopped.estimate.passed, passed);
  EXPECT_EQ(stopped.estimate.total, stopped.completed);
}

TEST(McSessionTest, EarlyStopPointIsSchedulingIndependent) {
  McRequest req = base_request(77, 8000);
  req.stopping.ci_half_width = 0.05;
  req.threads = 1;
  const McResult one = McSession(req).run_yield(coin_pass);
  ASSERT_EQ(one.stop_reason(), McStopReason::kCiTarget);
  for (const unsigned threads : {2u, 8u}) {
    req.threads = threads;
    const McResult many = McSession(req).run_yield(coin_pass);
    EXPECT_EQ(many.completed, one.completed) << "threads=" << threads;
    EXPECT_EQ(many.estimate.passed, one.estimate.passed);
    EXPECT_EQ(many.estimate.interval.lo, one.estimate.interval.lo);
    EXPECT_EQ(many.estimate.interval.hi, one.estimate.interval.hi);
  }
}

TEST(McSessionTest, ThresholdStoppingDecidesPassAndFail) {
  auto good = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.995;
  };
  McRequest req = base_request(11, 20000);
  req.stopping.yield_threshold = 0.9;
  const McResult passed = McSession(req).run_yield(good);
  EXPECT_EQ(passed.stop_reason(), McStopReason::kThresholdPassed);
  EXPECT_LT(passed.completed, req.n / 3);  // decided with a fraction of n
  EXPECT_GT(passed.estimate.interval.lo, 0.9);

  auto bad = [](Xoshiro256& rng, std::size_t) {
    return rng.uniform01() < 0.3;
  };
  const McResult failed = McSession(req).run_yield(bad);
  EXPECT_EQ(failed.stop_reason(), McStopReason::kThresholdFailed);
  EXPECT_LT(failed.completed, req.n / 3);
  EXPECT_LT(failed.estimate.interval.hi, 0.9);
}

TEST(McSessionTest, MetricCiStoppingShrinksRun) {
  McRequest req = base_request(3, 100000);
  req.stopping.ci_half_width = 0.2;
  req.stopping.min_samples = 128;
  const McResult result = McSession(req).run_metric(noisy_metric);
  EXPECT_EQ(result.stop_reason(), McStopReason::kCiTarget);
  EXPECT_LT(result.completed, req.n);
  EXPECT_GE(result.completed, 128u);
  EXPECT_EQ(result.values.size(), result.completed);
  EXPECT_EQ(result.metric.count(), result.completed);
}

TEST(McSessionTest, DisabledStoppingRunsEverything) {
  McRequest req = base_request(8, 500);
  EXPECT_FALSE(req.stopping.enabled());
  const McResult result = McSession(req).run_yield(coin_pass);
  EXPECT_EQ(result.stop_reason(), McStopReason::kCompleted);
  EXPECT_EQ(result.completed, 500u);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

TEST(McSessionTest, CheckpointKillResumeEqualsUninterruptedRun) {
  const std::size_t n = 600;
  McRequest plain = base_request(404, n);
  const McResult reference = McSession(plain).run_metric(noisy_metric);

  ScratchFile ckpt("mc_session_kill_resume.ckpt");
  McRequest req = plain;
  req.checkpoint_path = ckpt.path();
  req.checkpoint_every = 32;

  // First attempt dies mid-run (a worker exception stands in for a kill:
  // the committed prefix is persisted before the error propagates).
  auto crashing = [](Xoshiro256& rng, std::size_t i) -> double {
    if (i == 417) throw Error("simulated crash");
    return noisy_metric(rng, i);
  };
  EXPECT_THROW(McSession(req).run_metric(crashing), Error);

  // Second attempt resumes: finished samples are restored, not re-run.
  std::atomic<std::size_t> evaluated{0};
  auto counting = [&evaluated](Xoshiro256& rng, std::size_t i) {
    evaluated.fetch_add(1, std::memory_order_relaxed);
    return noisy_metric(rng, i);
  };
  const McResult resumed = McSession(req).run_metric(counting);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_LT(evaluated.load(), n);
  EXPECT_EQ(resumed.resumed + evaluated.load(), n);

  // The resumed result is bit-identical to the uninterrupted run.
  EXPECT_EQ(resumed.completed, reference.completed);
  ASSERT_EQ(resumed.values.size(), reference.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(resumed.values[i], reference.values[i]) << "sample=" << i;
  }
  EXPECT_EQ(resumed.metric.mean(), reference.metric.mean());
  EXPECT_EQ(resumed.metric.stddev(), reference.metric.stddev());
}

TEST(McSessionTest, ResumeOfCompletedRunEvaluatesNothing) {
  ScratchFile ckpt("mc_session_completed.ckpt");
  McRequest req = base_request(9, 300);
  req.checkpoint_path = ckpt.path();
  const McResult first = McSession(req).run_yield(coin_pass);
  ASSERT_EQ(first.completed, 300u);

  auto forbidden = [](Xoshiro256&, std::size_t) -> bool {
    throw Error("must not be evaluated on resume");
  };
  const McResult second = McSession(req).run_yield(forbidden);
  EXPECT_EQ(second.resumed, 300u);
  EXPECT_EQ(second.estimate.passed, first.estimate.passed);
  EXPECT_EQ(second.estimate.interval.lo, first.estimate.interval.lo);
}

TEST(McSessionTest, CheckpointRejectsMismatchedRequest) {
  ScratchFile ckpt("mc_session_mismatch.ckpt");
  McRequest req = base_request(1, 128);
  req.checkpoint_path = ckpt.path();
  McSession(req).run_yield(coin_pass);

  McRequest other_seed = req;
  other_seed.seed = 2;
  EXPECT_THROW(McSession(other_seed).run_yield(coin_pass), Error);

  McRequest other_n = req;
  other_n.n = 256;
  EXPECT_THROW(McSession(other_n).run_yield(coin_pass), Error);

  // A yield checkpoint must not silently seed a metric run.
  EXPECT_THROW(McSession(req).run_metric(noisy_metric), Error);
}

// ---------------------------------------------------------------------------
// Failing-sample replay, progress, thread resolution

TEST(McSessionTest, FailingSampleSeedsReplayTheFailure) {
  McRequest req = base_request(654, 500);
  req.keep_failing_seeds = 4;
  const McResult result = McSession(req).run_yield(coin_pass);
  ASSERT_FALSE(result.failing_samples().empty());
  ASSERT_LE(result.failing_samples().size(), 4u);
  for (const McFailingSample& f : result.failing_samples()) {
    Xoshiro256 rng(f.seed);  // isolated replay: no session machinery needed
    EXPECT_FALSE(coin_pass(rng, f.index)) << "index=" << f.index;
  }
}

TEST(McSessionTest, ProgressCallbackSeesMonotonePrefix) {
  McRequest req = base_request(21, 400);
  req.threads = 3;
  req.chunk = 8;
  req.progress_every = 50;
  std::size_t calls = 0;
  std::size_t last = 0;
  req.progress = [&](const McProgress& p) {
    ++calls;
    EXPECT_GT(p.completed, last);
    EXPECT_EQ(p.total, 400u);
    EXPECT_LE(p.passed, p.completed);
    last = p.completed;
  };
  McSession(req).run_yield(coin_pass);
  EXPECT_GE(calls, 4u);
}

// The McProgress determinism contract: for a fixed request, the SEQUENCE
// of snapshot contents — everything except the wall-clock block — is
// bit-identical for any worker count. This is what lets a daemon stream
// live progress without weakening the run's reproducibility story.
TEST(McSessionTest, ProgressSnapshotsIdenticalAcrossWorkerCounts) {
  const auto collect = [](unsigned threads) {
    McRequest req = base_request(77, 3000);
    req.threads = threads;
    req.chunk = 16;
    req.progress_every = 250;
    std::vector<McProgress> snaps;
    req.progress = [&](const McProgress& p) { snaps.push_back(p); };
    McSession(req).run_yield(coin_pass);
    return snaps;
  };

  const std::vector<McProgress> baseline = collect(1);
  ASSERT_GE(baseline.size(), 10u);
  for (const unsigned threads : {4u, 8u}) {
    const std::vector<McProgress> snaps = collect(threads);
    ASSERT_EQ(snaps.size(), baseline.size()) << threads << " workers";
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const McProgress& a = baseline[i];
      const McProgress& b = snaps[i];
      EXPECT_EQ(b.seq, a.seq);
      EXPECT_EQ(b.completed, a.completed);
      EXPECT_EQ(b.total, a.total);
      EXPECT_EQ(b.passed, a.passed);
      EXPECT_EQ(b.failed, a.failed);
      EXPECT_EQ(b.retried, a.retried);
      EXPECT_EQ(b.interval.estimate, a.interval.estimate);  // bit-exact
      EXPECT_EQ(b.interval.lo, a.interval.lo);
      EXPECT_EQ(b.interval.hi, a.interval.hi);
      EXPECT_EQ(b.ci_half_width, a.ci_half_width);
      EXPECT_EQ(b.weighted, a.weighted);
      EXPECT_EQ(b.ess, a.ess);
    }
  }
}

// failed/retried in a snapshot are accumulated over the committed prefix,
// so censoring under kRetryThenSkip surfaces deterministically.
TEST(McSessionTest, ProgressReportsCensoredAndRetriedCounts) {
  McRequest req = base_request(5, 600);
  req.threads = 4;
  req.chunk = 16;
  req.progress_every = 100;
  req.failure_policy = McFailurePolicy::kRetryThenSkip;
  req.max_retries = 2;
  std::vector<McProgress> snaps;
  req.progress = [&](const McProgress& p) { snaps.push_back(p); };
  const McResult result =
      McSession(req).run_yield([](Xoshiro256& rng, std::size_t i) {
        if (i % 50 == 0) throw Error("synthetic failure");
        return rng.uniform01() < 0.8;
      });

  // Indices 0, 50, ..., 550 fail every attempt: 12 censored samples, each
  // burning max_retries retry attempts.
  EXPECT_EQ(result.run.failed_total, 12u);
  ASSERT_FALSE(snaps.empty());
  const McProgress& last = snaps.back();
  EXPECT_EQ(last.completed, 600u);
  EXPECT_EQ(last.failed, 12u);
  EXPECT_EQ(last.retried, 24u);
  EXPECT_EQ(last.passed, result.estimate.passed);
  EXPECT_EQ(last.interval.estimate, result.estimate.interval.estimate);
}

TEST(McSessionTest, OnCheckpointFiresForMidRunWritesOnly) {
  ScratchFile ckpt("mc_session_on_checkpoint.ckpt");
  McRequest req = base_request(31, 1000);
  req.chunk = 16;
  req.checkpoint_path = ckpt.path();
  req.checkpoint_every = 200;
  std::size_t hooks = 0;
  req.on_checkpoint = [&] { ++hooks; };
  McSession(req).run_yield(coin_pass);
  // Mid-run writes only: the final end-of-run checkpoint must not fire
  // the hook (the daemon publishes a terminal event instead).
  EXPECT_GE(hooks, 2u);
  EXPECT_LE(hooks, 5u);
}

TEST(McSessionTest, ResolveThreadsHonorsEnvOverride) {
  const char* saved = std::getenv("RELSIM_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("RELSIM_THREADS", "7", 1);
  EXPECT_EQ(resolve_threads(0), 7u);
  EXPECT_EQ(resolve_threads(3), 3u);  // explicit request beats the env

  ::setenv("RELSIM_THREADS", "not-a-number", 1);
  EXPECT_GE(resolve_threads(0), 1u);  // invalid value ignored with a warning

  if (saved != nullptr) {
    ::setenv("RELSIM_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("RELSIM_THREADS");
  }
}

TEST(McSessionTest, ResolveThreadsAppliesBudgetCap) {
  const char* saved = std::getenv("RELSIM_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("RELSIM_THREADS", "8", 1);
  EXPECT_EQ(resolve_threads(0, 3), 3u);   // budget caps the env default
  EXPECT_EQ(resolve_threads(6, 3), 3u);   // budget caps an explicit request
  EXPECT_EQ(resolve_threads(2, 3), 2u);   // request below budget untouched
  EXPECT_EQ(resolve_threads(6, 0), 6u);   // zero budget = no cap

  if (saved != nullptr) {
    ::setenv("RELSIM_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("RELSIM_THREADS");
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation

TEST(McSessionTest, CancelTokenStopsRunAndReportsCancelled) {
  McRequest req = base_request(77, 200000);
  req.keep_values = true;
  std::atomic<std::size_t> evaluated{0};
  std::atomic<bool> cancel{false};
  req.cancel = [&cancel] { return cancel.load(); };

  const McResult result = McSession(req).run_yield(
      [&](Xoshiro256& rng, std::size_t) {
        if (evaluated.fetch_add(1) == 5000) cancel.store(true);
        return coin_pass(rng, 0);
      });

  EXPECT_EQ(result.stop_reason(), McStopReason::kCancelled);
  EXPECT_GT(result.completed, 0u);
  EXPECT_LT(result.completed, result.requested);

  // The committed prefix is bit-identical to the uninterrupted run: a
  // cancelled job is a truncation, never a different run.
  McRequest full = base_request(77, 200000);
  full.keep_values = true;
  const McResult reference = McSession(full).run_yield(coin_pass);
  ASSERT_LE(result.completed, reference.completed);
  for (std::size_t i = 0; i < result.completed; ++i) {
    ASSERT_EQ(result.values[i], reference.values[i]) << "sample=" << i;
  }
}

TEST(McSessionTest, CancelBeforeStartCompletesNothing) {
  McRequest req = base_request(5, 5000);
  req.cancel = [] { return true; };
  const McResult result = McSession(req).run_yield(coin_pass);
  EXPECT_EQ(result.stop_reason(), McStopReason::kCancelled);
  EXPECT_EQ(result.completed, 0u);
}

TEST(McSessionTest, CancelledRunResumesFromCheckpoint) {
  const ScratchFile ckpt("cancel_resume.rsmckpt");
  McRequest interrupted = base_request(31, 4000);
  interrupted.keep_values = true;
  interrupted.checkpoint_path = ckpt.path();
  interrupted.checkpoint_every = 64;
  std::atomic<std::size_t> evaluated{0};
  std::atomic<bool> cancel{false};
  interrupted.cancel = [&cancel] { return cancel.load(); };
  const McResult first = McSession(interrupted).run_yield(
      [&](Xoshiro256& rng, std::size_t) {
        if (evaluated.fetch_add(1) == 1000) cancel.store(true);
        return coin_pass(rng, 0);
      });
  ASSERT_EQ(first.stop_reason(), McStopReason::kCancelled);
  ASSERT_LT(first.completed, 4000u);

  McRequest resumed_req = base_request(31, 4000);
  resumed_req.keep_values = true;
  resumed_req.checkpoint_path = ckpt.path();
  const McResult resumed = McSession(resumed_req).run_yield(coin_pass);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_EQ(resumed.completed, 4000u);

  McRequest clean = base_request(31, 4000);
  clean.keep_values = true;
  const McResult reference = McSession(clean).run_yield(coin_pass);
  EXPECT_EQ(resumed.estimate.passed, reference.estimate.passed);
  ASSERT_EQ(resumed.values.size(), reference.values.size());
  for (std::size_t i = 0; i < reference.values.size(); ++i) {
    ASSERT_EQ(resumed.values[i], reference.values[i]) << "sample=" << i;
  }
}

TEST(McSessionTest, KeepValuesExposesPassFlags) {
  McRequest req = base_request(12, 100);
  req.keep_values = true;
  const McResult result = McSession(req).run_yield(coin_pass);
  ASSERT_EQ(result.values.size(), 100u);
  std::size_t passed = 0;
  for (double v : result.values) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
    if (v == 1.0) ++passed;
  }
  EXPECT_EQ(passed, result.estimate.passed);
}

}  // namespace
}  // namespace relsim
