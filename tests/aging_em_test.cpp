#include <gtest/gtest.h>

#include <cmath>

#include "aging/em.h"
#include "stats/summary.h"
#include "tech/tech.h"
#include "util/units.h"

namespace relsim::aging {
namespace {

WireStress wire(double i_a, double w_um = 1.0, double len_um = 100.0,
                double temp = 378.0, double th_um = 0.35) {
  WireStress s;
  s.width_um = w_um;
  s.length_um = len_um;
  s.thickness_um = th_um;
  s.dc_current_a = i_a;
  s.rms_current_a = i_a;
  s.temp_k = temp;
  return s;
}

EmModel copper() { return EmModel(tech_65nm().em); }

TEST(EmTest, CurrentDensityComputation) {
  // 1 mA through 1um x 0.35um = 3.5e-9 cm^2 -> ~2.86e5 A/cm^2.
  EXPECT_NEAR(copper().current_density_a_cm2(wire(1e-3)), 1e-3 / 3.5e-9,
              1.0);
}

TEST(EmTest, BlackLawInverseSquare) {
  const EmModel m = copper();
  // Stay above the Blech product: use long wires and high currents.
  const double mttf1 = m.mttf_s(wire(2e-3, 1.0, 1e4));
  const double mttf2 = m.mttf_s(wire(4e-3, 1.0, 1e4));
  EXPECT_NEAR(mttf1 / mttf2, 4.0, 1e-9);  // J^-2
}

TEST(EmTest, ArrheniusTemperature) {
  const EmModel m = copper();
  const double hot = m.mttf_s(wire(2e-3, 1.0, 1e4, 398.0));
  const double cold = m.mttf_s(wire(2e-3, 1.0, 1e4, 348.0));
  const double expected = std::exp(m.tech().activation_ev /
                                   units::kBoltzmannEv *
                                   (1.0 / 348.0 - 1.0 / 398.0));
  EXPECT_NEAR(cold / hot, expected, expected * 1e-9);
}

TEST(EmTest, WiderWireLivesLonger) {
  const EmModel m = copper();
  EXPECT_GT(m.mttf_s(wire(2e-3, 2.0, 1e4)), 3.0 * m.mttf_s(wire(2e-3, 1.0, 1e4)));
}

TEST(EmTest, BlechShortWiresAreImmune) {
  const EmModel m = copper();
  // J ~ 2.86e5 A/cm^2 for 1mA: Blech length = 3000/J cm ~ 105 um.
  EXPECT_TRUE(m.blech_immune(wire(1e-3, 1.0, 50.0)));
  EXPECT_FALSE(m.blech_immune(wire(1e-3, 1.0, 500.0)));
  EXPECT_TRUE(std::isinf(m.mttf_s(wire(1e-3, 1.0, 50.0))));
}

TEST(EmTest, BambooNarrowWiresImprove) {
  const EmModel m = copper();
  EXPECT_DOUBLE_EQ(m.bamboo_factor(1.0), 1.0);
  EXPECT_GT(m.bamboo_factor(0.1), 5.0);
  // Monotone improvement as width shrinks below the grain size.
  EXPECT_GT(m.bamboo_factor(0.05), m.bamboo_factor(0.1));
}

TEST(EmTest, ReservoirEffectPenalty) {
  const EmModel m = copper();
  WireStress bad = wire(2e-3, 1.0, 1e4);
  bad.good_via_reservoir = false;
  EXPECT_NEAR(m.mttf_s(wire(2e-3, 1.0, 1e4)) / m.mttf_s(bad), 2.0, 1e-9);
}

TEST(EmTest, ZeroCurrentNeverFails) {
  const EmModel m = copper();
  EXPECT_TRUE(std::isinf(m.mttf_s(wire(0.0))));
}

TEST(EmTest, SampledLifetimesMedianAtMttf) {
  const EmModel m = copper();
  const auto w = wire(2e-3, 1.0, 1e4);
  Xoshiro256 rng(11);
  std::vector<double> lifetimes;
  for (int i = 0; i < 20001; ++i) lifetimes.push_back(m.sample_lifetime_s(w, rng));
  EXPECT_NEAR(median(lifetimes) / m.mttf_s(w), 1.0, 0.03);
}

TEST(EmTest, MinWidthSizingMeetsTarget) {
  const EmModel m = copper();
  const double target = 10 * units::kSecondsPerYear;
  const double w = m.min_width_for_lifetime_um(5e-3, 1e4, 378.0, target);
  ASSERT_GT(w, 0.0);
  WireStress check = wire(5e-3, w, 1e4);
  check.thickness_um = m.tech().metal_thickness_um;
  EXPECT_GE(m.mttf_s(check), target * 0.99);
  // And a slightly narrower wire must miss the target (tight sizing),
  // unless the plateau of the bamboo regime was hit.
  if (w > 1.1 * m.tech().grain_size_um) {
    WireStress narrow = check;
    narrow.width_um = 0.8 * w;
    EXPECT_LT(m.mttf_s(narrow), target);
  }
}

TEST(EmTest, AluminumVsCopperActivation) {
  EXPECT_LT(technology("0.35um").em.activation_ev,
            tech_65nm().em.activation_ev);
}

}  // namespace
}  // namespace relsim::aging
