// Protocol-layer tests: JobSpec <-> JSON round-trip and the frame
// dispatcher's handling of malformed, truncated, and unknown requests.
// Driven through Server::handle_frame with no sockets — the server is
// constructed but never start()ed, so no threads or fds are involved.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json_value.h"
#include "obs/json_writer.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/error.h"

namespace relsim::service {
namespace {

JobSpec full_spec() {
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.netlist = "divider\nVDD vdd 0 1.2\nRD vdd d 4k\n";
  spec.constraints.push_back({"d", 0.4, 0.9});
  spec.constraints.push_back({"vdd", 1.1, 1.3});
  spec.seed = 0xDEADBEEFCAFEBABEull;  // > 2^53: must survive exactly
  spec.n = 4096;
  spec.threads = 3;
  spec.thread_budget = 2;
  spec.chunk = 64;
  spec.eval_mode = McEvalMode::kBatched;
  spec.keep_values = true;
  spec.checkpoint_path = "/tmp/job.rsmckpt";
  spec.checkpoint_every = 512;
  spec.manifest_path = "/tmp/job.manifest.json";
  spec.label = "round-trip";
  return spec;
}

std::string to_json(const JobSpec& spec) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  write_job_spec(w, spec);
  w.complete();
  return os.str();
}

TEST(ServiceProtocolTest, JobSpecSurvivesJsonRoundTrip) {
  const JobSpec spec = full_spec();
  const JobSpec back = parse_job_spec(obs::JsonValue::parse(to_json(spec)));

  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.netlist, spec.netlist);
  ASSERT_EQ(back.constraints.size(), spec.constraints.size());
  for (std::size_t i = 0; i < spec.constraints.size(); ++i) {
    EXPECT_EQ(back.constraints[i].node, spec.constraints[i].node);
    EXPECT_EQ(back.constraints[i].lo, spec.constraints[i].lo);
    EXPECT_EQ(back.constraints[i].hi, spec.constraints[i].hi);
  }
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.thread_budget, spec.thread_budget);
  EXPECT_EQ(back.chunk, spec.chunk);
  EXPECT_EQ(back.eval_mode, spec.eval_mode);
  EXPECT_EQ(back.keep_values, spec.keep_values);
  EXPECT_EQ(back.checkpoint_path, spec.checkpoint_path);
  EXPECT_EQ(back.checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(back.manifest_path, spec.manifest_path);
  EXPECT_EQ(back.label, spec.label);
}

TEST(ServiceProtocolTest, ParseJobSpecValidates) {
  // n is required and positive.
  EXPECT_THROW(parse_job_spec(obs::JsonValue::parse(R"({"kind":"synthetic"})")),
               Error);
  // dc_yield needs a netlist...
  EXPECT_THROW(parse_job_spec(obs::JsonValue::parse(
                   R"({"kind":"dc_yield","n":10})")),
               Error);
  // ...and at least one constraint.
  EXPECT_THROW(parse_job_spec(obs::JsonValue::parse(
                   R"({"kind":"dc_yield","n":10,"netlist":"x\n"})")),
               Error);
  // Unknown enum spellings are rejected, not defaulted.
  EXPECT_THROW(parse_job_spec(obs::JsonValue::parse(
                   R"({"kind":"warp_drive","n":10})")),
               Error);
  EXPECT_THROW(parse_job_spec(obs::JsonValue::parse(
                   R"({"kind":"synthetic","n":10,"eval_mode":"quantum"})")),
               Error);
  // Constraints must name a node.
  EXPECT_THROW(
      parse_job_spec(obs::JsonValue::parse(
          R"({"kind":"dc_yield","n":10,"netlist":"x\n",)"
          R"("constraints":[{"lo":0.1}]})")),
      Error);
  // Unknown fields are ignored (forward compatibility).
  const JobSpec ok = parse_job_spec(obs::JsonValue::parse(
      R"({"kind":"synthetic","n":10,"future_field":42})"));
  EXPECT_EQ(ok.n, 10u);
}

// ---------------------------------------------------------------------------
// Frame dispatcher

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest() : server_({/*socket_path=*/::testing::TempDir() +
                            "relsim_dispatch.sock"}) {}
  // Never start()ed: handle_frame is exercised directly, jobs stay queued.
  Server server_;

  obs::JsonValue reply(const std::string& frame) {
    return obs::JsonValue::parse(server_.handle_frame(frame));
  }
};

TEST_F(DispatchTest, PingAndErrorsCarryOkFlag) {
  EXPECT_TRUE(reply(R"({"op":"ping"})").get_bool("ok", false));

  for (const char* bad : {
           "",                                  // empty frame
           "not json at all",                   // garbage
           R"({"op":"ping")",                   // truncated frame (no brace)
           R"({"op":"ping"} trailing)",         // trailing garbage
           R"([1,2,3])",                        // not an object
           R"({})",                             // missing op
           R"({"op":"warp"})",                  // unknown op
           R"({"op":"submit"})",                // submit without job
           R"({"op":"submit","job":{"kind":"synthetic"}})",  // invalid job
           R"({"op":"wait"})",                  // missing job_id
           R"({"op":"wait","job_id":"seven"})",  // wrong-typed job_id
       }) {
    const obs::JsonValue r = reply(bad);
    EXPECT_FALSE(r.get_bool("ok", true)) << "frame: " << bad;
    EXPECT_FALSE(r.get_string("error", "").empty()) << "frame: " << bad;
  }
}

TEST_F(DispatchTest, UnknownJobIdIsAnError) {
  for (const char* op : {"status", "wait", "result", "cancel"}) {
    const obs::JsonValue r =
        reply(std::string(R"({"op":")") + op + R"(","job_id":424242})");
    EXPECT_FALSE(r.get_bool("ok", true)) << op;
  }
}

TEST_F(DispatchTest, SubmitQueuesAndCancelResolvesQueuedJob) {
  const obs::JsonValue submitted = reply(
      R"({"op":"submit","tenant":"t0","priority":2,)"
      R"("job":{"kind":"synthetic","n":64}})");
  ASSERT_TRUE(submitted.get_bool("ok", false));
  const std::uint64_t id = submitted.get_u64("job_id", 0);
  ASSERT_GT(id, 0u);
  EXPECT_EQ(server_.queue_depth(), 1u);

  const std::string id_str = std::to_string(id);
  obs::JsonValue status = reply(R"({"op":"status","job_id":)" + id_str + "}");
  EXPECT_EQ(status.get_string("state", ""), "queued");
  EXPECT_EQ(status.get_string("tenant", ""), "t0");

  // result refuses while not finished.
  EXPECT_FALSE(reply(R"({"op":"result","job_id":)" + id_str + "}")
                   .get_bool("ok", true));

  // Cancel pulls it out of the queue and resolves it immediately (no
  // executor threads exist in this fixture).
  EXPECT_TRUE(reply(R"({"op":"cancel","job_id":)" + id_str + "}")
                  .get_bool("ok", false));
  EXPECT_EQ(server_.queue_depth(), 0u);
  status = reply(R"({"op":"status","job_id":)" + id_str + "}");
  EXPECT_EQ(status.get_string("state", ""), "cancelled");
}

TEST_F(DispatchTest, ShutdownOpOnlyLatchesTheFlag) {
  EXPECT_FALSE(server_.shutdown_requested());
  EXPECT_TRUE(reply(R"({"op":"shutdown"})").get_bool("ok", false));
  EXPECT_TRUE(server_.shutdown_requested());
}

TEST_F(DispatchTest, MetricsFrameReportsQueueDepth) {
  reply(R"({"op":"submit","job":{"kind":"synthetic","n":8}})");
  const obs::JsonValue m = reply(R"({"op":"metrics"})");
  ASSERT_TRUE(m.get_bool("ok", false));
  EXPECT_EQ(m.get_u64("queue_depth", 0), 1u);
  EXPECT_GE(m.get_u64("jobs_submitted", 0), 1u);
}

}  // namespace
}  // namespace relsim::service
