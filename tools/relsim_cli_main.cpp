// relsim-cli — command-line client for relsimd.
//
//   relsim-cli --socket /tmp/relsim.sock ping
//   relsim-cli --socket S submit --netlist f.sp --constraint d:0.4:0.9
//              --n 4096 [--wait]
//   relsim-cli --socket S status|wait|result|cancel JOB_ID
//   relsim-cli --socket S metrics | metrics-text | shutdown
//   relsim-cli --socket S subscribe [--job ID] [--count N] [--duration S]
//   relsim-cli --socket S top [--job ID] [--duration S]
//   relsim-cli --socket S drive --clients 8 --jobs 4 --n 2048
//              [--json BENCH_service_cli.json]
//
// `drive` is the synthetic many-client smoke: N client threads each submit
// M jobs and wait for every result, then the tool reports sustained
// jobs/sec and client-observed p50/p99 latency (and can write them as a
// BENCH_*.json for CI upload).
//
// `subscribe` dumps the daemon's raw event stream as line-delimited JSON
// (CI captures it as an artifact); `top` renders the same stream as a
// live terminal dashboard; `wait` streams progress to stderr while it
// blocks, falling back to status polling on daemons that predate the
// subscribe op.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/coordinator.h"
#include "service/protocol.h"
#include "util/error.h"

namespace {

using relsim::Error;
using relsim::service::Client;
using relsim::service::JobKind;
using relsim::service::JobSpec;
using relsim::service::NodeConstraint;

// The built-in workload for `drive` when no netlist is given: a mos
// divider whose output node sits mid-rail, so mismatch actually moves the
// pass/fail outcome.
constexpr const char* kBuiltinNetlist = R"(mos divider
.tech 90nm
VDD vdd 0 1.2
VB g 0 0.7
M1 d g 0 0 nmos W=0.3u L=0.09u
RD vdd d 4k
)";

struct Cli {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;

  Client connect() const {
    if (!socket_path.empty()) return Client::connect_unix(socket_path);
    if (port >= 0) return Client::connect_tcp(host, port);
    throw Error("no endpoint: pass --socket PATH or --port N");
  }
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | [--host H] --port N) COMMAND ...\n"
      "commands:\n"
      "  ping | metrics | metrics-text | shutdown\n"
      "  status ID | wait ID | result ID | cancel ID\n"
      "  submit [job flags] [--tenant T] [--priority N] [--wait]\n"
      "  subscribe [--job ID] [--count N] [--duration S]\n"
      "  top [--job ID] [--duration S]\n"
      "  drive [job flags] [--clients N] [--jobs M] [--json FILE]\n"
      "  run-sharded [job flags] --workers EP[,EP...] --ckpt-dir DIR\n"
      "              [--shards N] [--lease S] [--max-reissues N]\n"
      "              [--straggler-factor F] [--abort-on-loss]\n"
      "              [--coord-manifest PATH] [--json FILE]\n"
      "              (EP = unix socket path, or HOST:PORT for TCP)\n"
      "job flags:\n"
      "  --kind dc_yield|synthetic   (default dc_yield)\n"
      "  --netlist FILE              (default: built-in mos divider)\n"
      "  --constraint NODE:LO:HI     (repeatable; default d:0.55:0.75)\n"
      "  --pass-prob P --n N --seed S --threads T --thread-budget B\n"
      "  --chunk C --eval-mode auto|per-sample|batched --keep-values\n"
      "  --checkpoint PATH --checkpoint-every K --progress-every K\n"
      "  --manifest PATH --label L\n",
      argv0);
  return 2;
}

NodeConstraint parse_constraint(const std::string& text) {
  const std::size_t a = text.find(':');
  const std::size_t b = a == std::string::npos ? a : text.find(':', a + 1);
  if (a == std::string::npos || b == std::string::npos) {
    throw Error("bad --constraint '" + text + "' (want NODE:LO:HI)");
  }
  NodeConstraint c;
  c.node = text.substr(0, a);
  c.lo = std::stod(text.substr(a + 1, b - a - 1));
  c.hi = std::stod(text.substr(b + 1));
  return c;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read netlist file '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Latency quantiles through the SAME log-bucketed histogram math the
/// daemon's Prometheus exporter uses (obs::histogram_quantile) — no
/// second ad-hoc percentile implementation to drift.
relsim::obs::Histogram::Snapshot latency_snapshot(
    const std::vector<double>& values) {
  relsim::obs::Histogram h;
  for (double v : values) h.observe(v);
  return h.snapshot();
}

/// Detached timer that hard-exits the process after `seconds`: streaming
/// commands block on recv with no events arriving on an idle daemon, so a
/// --duration bound must fire independently of the stream.
void arm_exit_timer(double seconds) {
  if (seconds <= 0) return;
  std::thread([seconds] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    std::fflush(stdout);
    std::_Exit(0);
  }).detach();
}

int run_subscribe(const Cli& cli, std::uint64_t job_filter, int count_limit,
                  double duration_s) {
  Client client = cli.connect();
  arm_exit_timer(duration_s);
  const auto t0 = std::chrono::steady_clock::now();
  int seen = 0;
  client.subscribe(job_filter, [&](const relsim::obs::JsonValue&) {
    std::printf("%s\n", client.last_reply().c_str());
    std::fflush(stdout);
    ++seen;
    if (count_limit > 0 && seen >= count_limit) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    return duration_s <= 0 || elapsed.count() < duration_s;
  });
  return 0;
}

struct TopJob {
  std::string tenant;
  std::string kind;
  std::string state;
  unsigned long long n = 0;
  unsigned long long completed = 0;
  double yield = 0.0;
  double ci = 0.0;
  double rate = 0.0;
  double eta = 0.0;
  bool has_progress = false;
};

int run_top(const Cli& cli, std::uint64_t job_filter, double duration_s) {
  Client client = cli.connect();
  arm_exit_timer(duration_s);
  std::map<std::uint64_t, TopJob> jobs;
  unsigned long long queue_depth = 0;
  unsigned long long running = 0;
  unsigned long long submitted = 0;
  unsigned long long finished = 0;
  unsigned long long dropped = 0;
  std::uint64_t events = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto last_render = t0 - std::chrono::seconds(1);

  const auto render = [&] {
    const std::chrono::duration<double> up =
        std::chrono::steady_clock::now() - t0;
    // Home + clear-to-end keeps the screen stable without full clears.
    std::printf("\x1b[H\x1b[J");
    std::printf(
        "relsim top   up %6.1fs   events %" PRIu64
        "   dropped %llu\nqueue %llu   running %llu   submitted %llu   "
        "finished %llu\n\n",
        up.count(), events, dropped, queue_depth, running, submitted,
        finished);
    std::printf("%6s  %-10s %-9s %-9s %12s %8s %8s %9s %8s\n", "JOB",
                "TENANT", "KIND", "STATE", "DONE/N", "YIELD", "±CI",
                "RATE/s", "ETA");
    int rows = 0;
    for (auto it = jobs.rbegin(); it != jobs.rend() && rows < 20;
         ++it, ++rows) {
      const TopJob& j = it->second;
      char done[32];
      std::snprintf(done, sizeof done, "%llu/%llu", j.completed, j.n);
      if (j.has_progress) {
        std::printf("%6llu  %-10s %-9s %-9s %12s %8.4f %8.4f %9.0f %7.0fs\n",
                    static_cast<unsigned long long>(it->first),
                    j.tenant.c_str(), j.kind.c_str(), j.state.c_str(), done,
                    j.yield, j.ci, j.rate, j.eta);
      } else {
        std::printf("%6llu  %-10s %-9s %-9s %12s %8s %8s %9s %8s\n",
                    static_cast<unsigned long long>(it->first),
                    j.tenant.c_str(), j.kind.c_str(), j.state.c_str(), done,
                    "-", "-", "-", "-");
      }
    }
    std::fflush(stdout);
  };

  client.subscribe(job_filter, [&](const relsim::obs::JsonValue& e) {
    ++events;
    const std::string ev = e.get_string("event", "");
    if (ev == "job") {
      TopJob& j = jobs[e.get_u64("job_id", 0)];
      j.tenant = e.get_string("tenant", j.tenant);
      j.kind = e.get_string("kind", j.kind);
      j.state = e.get_string("state", j.state);
      j.n = e.get_u64("n", j.n);
      if (j.state == "done" || j.state == "cancelled" ||
          j.state == "failed") {
        ++finished;
        if (j.state == "done") j.completed = j.n;
      }
    } else if (ev == "progress") {
      TopJob& j = jobs[e.get_u64("job_id", 0)];
      j.tenant = e.get_string("tenant", j.tenant);
      if (j.state.empty()) j.state = "running";
      j.completed = e.get_u64("completed", 0);
      j.n = e.get_u64("total", j.n);
      j.yield = e.get_double("yield", 0.0);
      j.ci = e.get_double("ci_half_width", 0.0);
      j.rate = e.get_double("samples_per_sec", 0.0);
      j.eta = e.get_double("eta_seconds", 0.0);
      j.has_progress = true;
    } else if (ev == "stats") {
      queue_depth = e.get_u64("queue_depth", queue_depth);
      running = e.get_u64("running", running);
      submitted = e.get_u64("jobs_submitted", submitted);
    } else if (ev == "dropped") {
      dropped += e.get_u64("count", 0);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_render >= std::chrono::milliseconds(250)) {
      last_render = now;
      render();
    }
    const std::chrono::duration<double> elapsed = now - t0;
    return duration_s <= 0 || elapsed.count() < duration_s;
  });
  render();
  return 0;
}

/// `--workers` element: a unix socket path, or HOST:PORT for loopback TCP.
relsim::service::WorkerEndpoint parse_worker(const std::string& text) {
  relsim::service::WorkerEndpoint ep;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos && colon + 1 < text.size() &&
      text.find('/') == std::string::npos) {
    ep.host = text.substr(0, colon);
    ep.port = std::stoi(text.substr(colon + 1));
  } else {
    ep.socket_path = text;
  }
  return ep;
}

int run_sharded_cmd(JobSpec spec,
                    const relsim::service::CoordinatorOptions& options,
                    const std::string& json_path) {
  // The whole point of the command is comparing merged results against a
  // single-process reference run, so the assembled values must be kept.
  spec.keep_values = true;
  const auto t0 = std::chrono::steady_clock::now();
  const relsim::service::CoordinatorResult out =
      relsim::service::run_sharded(spec, options);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  const std::uint32_t crc = relsim::service::values_crc32(out.result);

  std::printf(
      "run-sharded: %zu/%zu samples over %zu workers / %zu shards in "
      "%.3f s\n  yield %.6f ±%.6f  values_crc32 %u\n  reissues %zu  "
      "lease_expiries %zu  worker_crashes %zu  speculative %zu  "
      "in-process shards %zu\n",
      out.result.completed, out.result.requested, options.workers.size(),
      out.shards.size(), wall.count(), out.result.estimate.yield(),
      0.5 * (out.result.estimate.interval.hi -
             out.result.estimate.interval.lo),
      crc, out.reissues, out.lease_expiries, out.worker_crashes,
      out.speculative_launches, out.shards_inprocess);

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    relsim::obs::JsonWriter w(f, 2);
    w.begin_object();
    w.kv("bench", "run_sharded");
    w.kv("n", static_cast<unsigned long long>(spec.n));
    w.kv("seed", static_cast<unsigned long long>(spec.seed));
    w.kv("workers", static_cast<unsigned long long>(options.workers.size()));
    w.kv("shards", static_cast<unsigned long long>(out.shards.size()));
    w.kv("completed", static_cast<unsigned long long>(out.result.completed));
    w.kv("yield", out.result.estimate.yield());
    w.kv("ci_half_width", 0.5 * (out.result.estimate.interval.hi -
                                 out.result.estimate.interval.lo));
    w.kv("values_crc32", static_cast<unsigned long long>(crc));
    w.kv("wall_seconds", wall.count());
    w.kv("reissues", static_cast<unsigned long long>(out.reissues));
    w.kv("lease_expiries",
         static_cast<unsigned long long>(out.lease_expiries));
    w.kv("worker_crashes",
         static_cast<unsigned long long>(out.worker_crashes));
    w.kv("speculative_launches",
         static_cast<unsigned long long>(out.speculative_launches));
    w.kv("shards_inprocess",
         static_cast<unsigned long long>(out.shards_inprocess));
    w.kv("merge_parts_found",
         static_cast<unsigned long long>(out.merge.parts_found));
    w.kv("merged_checkpoint", out.merged_checkpoint);
    w.end_object();
    f << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return out.result.completed == out.result.requested ? 0 : 1;
}

int run_drive(const Cli& cli, const JobSpec& base, int clients, int jobs,
              const std::string& json_path) {
  std::mutex mu;
  std::vector<double> latencies;  // seconds, client-observed submit->wait
  std::vector<std::string> errors;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = cli.connect();
        const std::string tenant = "tenant" + std::to_string(c);
        for (int j = 0; j < jobs; ++j) {
          JobSpec spec = base;
          // Distinct seeds keep the jobs statistically independent while
          // every job still shares one compiled netlist in the cache.
          spec.seed = base.seed + static_cast<std::uint64_t>(c * jobs + j);
          const auto s0 = std::chrono::steady_clock::now();
          const std::uint64_t id = client.submit(tenant, 0, spec);
          client.wait(id);
          const std::chrono::duration<double> dt =
              std::chrono::steady_clock::now() - s0;
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(dt.count());
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        errors.emplace_back(e.what());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  for (const std::string& e : errors) {
    std::fprintf(stderr, "drive client error: %s\n", e.c_str());
  }
  const double done = static_cast<double>(latencies.size());
  const double jobs_per_sec = wall.count() > 0 ? done / wall.count() : 0.0;
  const relsim::obs::Histogram::Snapshot lat = latency_snapshot(latencies);
  const double p50 = relsim::obs::histogram_quantile(lat, 0.50);
  const double p99 = relsim::obs::histogram_quantile(lat, 0.99);
  std::printf(
      "drive: %zu/%d jobs ok over %d clients in %.3f s  "
      "(%.1f jobs/s, p50 %.1f ms, p99 %.1f ms)\n",
      latencies.size(), clients * jobs, clients, wall.count(), jobs_per_sec,
      1e3 * p50, 1e3 * p99);

  Client probe = cli.connect();
  const relsim::obs::JsonValue server_metrics = probe.metrics();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    relsim::obs::JsonWriter w(out, 2);
    w.begin_object();
    w.kv("bench", "service_cli_drive");
    w.kv("clients", clients);
    w.kv("jobs_per_client", jobs);
    w.kv("jobs_done", static_cast<unsigned long long>(latencies.size()));
    w.kv("errors", static_cast<unsigned long long>(errors.size()));
    w.kv("wall_seconds", wall.count());
    w.kv("jobs_per_sec", jobs_per_sec);
    w.kv("latency_p50_seconds", p50);
    w.kv("latency_p99_seconds", p99);
    w.key("server_metrics").begin_object();
    for (const char* k :
         {"queue_depth", "jobs_submitted", "jobs_completed", "jobs_failed",
          "jobs_cancelled", "cache_hits", "cache_misses", "cache_entries"}) {
      w.kv(k, static_cast<unsigned long long>(server_metrics.get_u64(k, 0)));
    }
    w.end_object();
    w.end_object();
    w.complete();
    out << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return errors.empty() && latencies.size() ==
                               static_cast<std::size_t>(clients * jobs)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  JobSpec spec;
  spec.kind = JobKind::kDcYield;
  spec.n = 1024;
  std::string tenant = "cli";
  int priority = 0;
  bool wait_after_submit = false;
  int clients = 4;
  int jobs = 4;
  std::string json_path;
  std::uint64_t job_filter = 0;
  int count_limit = 0;
  double duration_s = 0.0;
  relsim::service::CoordinatorOptions coord;
  std::string workers_csv;
  std::string command;
  std::vector<std::string> positional;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("flag " + arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--socket") cli.socket_path = value();
      else if (arg == "--host") cli.host = value();
      else if (arg == "--port") cli.port = std::stoi(value());
      else if (arg == "--kind")
        spec.kind = relsim::service::parse_job_kind(value());
      else if (arg == "--netlist") spec.netlist = read_file(value());
      else if (arg == "--constraint")
        spec.constraints.push_back(parse_constraint(value()));
      else if (arg == "--pass-prob") spec.pass_prob = std::stod(value());
      else if (arg == "--n")
        spec.n = static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--seed") spec.seed = std::stoull(value());
      else if (arg == "--threads")
        spec.threads = static_cast<unsigned>(std::stoi(value()));
      else if (arg == "--thread-budget")
        spec.thread_budget = static_cast<unsigned>(std::stoi(value()));
      else if (arg == "--chunk")
        spec.chunk = static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--eval-mode")
        spec.eval_mode = relsim::service::parse_eval_mode(value());
      else if (arg == "--keep-values") spec.keep_values = true;
      else if (arg == "--checkpoint") spec.checkpoint_path = value();
      else if (arg == "--checkpoint-every")
        spec.checkpoint_every = static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--progress-every")
        spec.progress_every = static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--manifest") spec.manifest_path = value();
      else if (arg == "--label") spec.label = value();
      else if (arg == "--tenant") tenant = value();
      else if (arg == "--priority") priority = std::stoi(value());
      else if (arg == "--wait") wait_after_submit = true;
      else if (arg == "--clients") clients = std::stoi(value());
      else if (arg == "--jobs") jobs = std::stoi(value());
      else if (arg == "--json") json_path = value();
      else if (arg == "--job") job_filter = std::stoull(value());
      else if (arg == "--count") count_limit = std::stoi(value());
      else if (arg == "--duration") duration_s = std::stod(value());
      else if (arg == "--workers") workers_csv = value();
      else if (arg == "--ckpt-dir") coord.checkpoint_dir = value();
      else if (arg == "--shards")
        coord.shards = static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--lease") coord.lease_seconds = std::stod(value());
      else if (arg == "--max-reissues")
        coord.max_reissues = static_cast<unsigned>(std::stoi(value()));
      else if (arg == "--straggler-factor")
        coord.straggler_factor = std::stod(value());
      else if (arg == "--abort-on-loss")
        coord.failure_policy = relsim::service::ShardFailurePolicy::kAbort;
      else if (arg == "--coord-manifest") coord.manifest_path = value();
      else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
      else if (command.empty()) command = arg;
      else positional.push_back(arg);
    }
    if (command.empty()) return usage(argv[0]);

    // Defaults for the built-in dc_yield workload.
    if (spec.kind == JobKind::kDcYield && spec.netlist.empty()) {
      spec.netlist = kBuiltinNetlist;
      if (spec.constraints.empty()) {
        spec.constraints.push_back({"d", 0.55, 0.75});
      }
    }

    if (command == "run-sharded") {
      std::stringstream ss(workers_csv);
      for (std::string tok; std::getline(ss, tok, ',');) {
        if (!tok.empty()) coord.workers.push_back(parse_worker(tok));
      }
      return run_sharded_cmd(spec, coord, json_path);
    }
    if (command == "drive") {
      return run_drive(cli, spec, clients, jobs, json_path);
    }
    if (command == "subscribe") {
      return run_subscribe(cli, job_filter, count_limit, duration_s);
    }
    if (command == "top") {
      return run_top(cli, job_filter, duration_s);
    }

    Client client = cli.connect();
    if (command == "ping") {
      client.ping();
      std::printf("%s\n", client.last_reply().c_str());
    } else if (command == "metrics") {
      client.metrics();
      std::printf("%s\n", client.last_reply().c_str());
    } else if (command == "metrics-text") {
      std::fputs(client.metrics_text().c_str(), stdout);
    } else if (command == "shutdown") {
      client.shutdown();
      std::printf("%s\n", client.last_reply().c_str());
    } else if (command == "submit") {
      const std::uint64_t id = client.submit(tenant, priority, spec);
      std::printf("%s\n", client.last_reply().c_str());
      if (wait_after_submit) {
        client.wait(id);
        std::printf("%s\n", client.last_reply().c_str());
      }
    } else if (command == "wait") {
      if (positional.empty()) return usage(argv[0]);
      const std::uint64_t id = std::stoull(positional[0]);
      // Stream progress to stderr while blocked; the daemon-side wait (or
      // the polling fallback on a pre-telemetry daemon) settles the final
      // state, then a plain wait on an already-terminal job fetches the
      // raw reply frame for stdout.
      relsim::service::wait_with_events(
          id, [&] { return cli.connect(); },
          [](const relsim::obs::JsonValue& e) {
            if (e.get_string("event", "") == "progress") {
              std::fprintf(stderr,
                           "progress %llu/%llu yield=%.4f ±%.4f (%.0f/s)\n",
                           static_cast<unsigned long long>(
                               e.get_u64("completed", 0)),
                           static_cast<unsigned long long>(
                               e.get_u64("total", 0)),
                           e.get_double("yield", 0.0),
                           e.get_double("ci_half_width", 0.0),
                           e.get_double("samples_per_sec", 0.0));
            }
          });
      client.wait(id);
      std::printf("%s\n", client.last_reply().c_str());
    } else if (command == "status" || command == "result" ||
               command == "cancel") {
      if (positional.empty()) return usage(argv[0]);
      const std::uint64_t id = std::stoull(positional[0]);
      if (command == "status") client.status(id);
      else if (command == "result") client.result(id);
      else client.cancel(id);
      std::printf("%s\n", client.last_reply().c_str());
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "relsim-cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
