// relsimd — the relsim yield-analysis daemon.
//
// Serves the line-delimited-JSON protocol (see src/service/protocol.h)
// over a Unix-domain socket and, optionally, a loopback TCP port. Runs
// until a client sends {"op":"shutdown"} or the process receives
// SIGINT/SIGTERM.
//
//   relsimd --socket /tmp/relsim.sock [--tcp-port 0] [--executors 4]
//           [--cache-capacity 16] [--max-job-threads 8]
//           [--metrics-port 9901] [--event-log /var/log/relsim/events.jsonl]
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.h"
#include "util/error.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--tcp-port N] [--executors N]\n"
               "          [--cache-capacity N] [--max-job-threads N]\n"
               "  --socket PATH        Unix-domain socket to listen on\n"
               "  --tcp-port N         also listen on 127.0.0.1:N (0 = "
               "ephemeral; default off)\n"
               "  --executors N        concurrent jobs (default 2)\n"
               "  --cache-capacity N   compiled netlists kept (default 16)\n"
               "  --max-job-threads N  per-job worker cap (default 0 = "
               "unlimited)\n"
               "  --metrics-port N     serve Prometheus text on "
               "127.0.0.1:N/metrics (0 = ephemeral; default off)\n"
               "  --event-log PATH     rotating JSONL job-event log "
               "(default $RELSIM_EVENT_LOG)\n"
               "  --event-log-max-bytes N  rotate threshold "
               "(default 8 MiB)\n"
               "  --subscriber-queue N per-subscriber event queue depth "
               "(default 256)\n"
               "  --io-timeout SECS    drop clients that stall a "
               "request/reply read or write this long (default 0 = off)\n"
               "  --worker-of NAME     run as shard worker NAME of a "
               "coordinator; SIGTERM drains (checkpoint + exit) instead "
               "of stopping immediately\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  relsim::service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--socket" && value != nullptr) {
      options.socket_path = value;
      ++i;
    } else if (arg == "--tcp-port" && value != nullptr) {
      options.tcp_port = std::atoi(value);
      ++i;
    } else if (arg == "--executors" && value != nullptr) {
      options.executors = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (arg == "--cache-capacity" && value != nullptr) {
      options.cache_capacity = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--max-job-threads" && value != nullptr) {
      options.max_job_threads = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (arg == "--metrics-port" && value != nullptr) {
      options.metrics_http_port = std::atoi(value);
      ++i;
    } else if (arg == "--event-log" && value != nullptr) {
      options.event_log_path = value;
      ++i;
    } else if (arg == "--event-log-max-bytes" && value != nullptr) {
      options.event_log_max_bytes =
          static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else if (arg == "--subscriber-queue" && value != nullptr) {
      options.subscriber_queue = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--io-timeout" && value != nullptr) {
      options.io_timeout_seconds = std::atof(value);
      ++i;
    } else if (arg == "--worker-of" && value != nullptr) {
      options.worker_name = value;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    relsim::service::Server server(std::move(options));
    server.start();
    std::printf("relsimd listening on %s", server.options().socket_path.c_str());
    if (server.tcp_port() >= 0) {
      std::printf(" and 127.0.0.1:%d", server.tcp_port());
    }
    if (server.metrics_http_port() >= 0) {
      std::printf(" (metrics http://127.0.0.1:%d/metrics)",
                  server.metrics_http_port());
    }
    std::printf("\n");
    std::fflush(stdout);

    // wait_shutdown_requested() only wakes on the protocol op; poll so
    // SIGINT/SIGTERM also end the daemon.
    while (!server.shutdown_requested() && g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    // SIGTERM = deliberate decommission (systemd stop, coordinator
    // scale-down): drain so every running job lands its final checkpoint
    // and "checkpointed" event. SIGINT / the shutdown op keep the old
    // fast stop — checkpoints still flush, but without waiting for the
    // cooperative-cancel handshake first.
    if (g_signal == SIGTERM) {
      std::printf("relsimd draining (SIGTERM)\n");
      std::fflush(stdout);
      server.drain();
      std::printf("relsimd drained\n");
    } else {
      std::printf("relsimd shutting down (%s)\n",
                  g_signal != 0 ? "signal" : "shutdown op");
      server.stop();
    }
  } catch (const relsim::Error& e) {
    std::fprintf(stderr, "relsimd: %s\n", e.what());
    return 1;
  }
  return 0;
}
