file(REMOVE_RECURSE
  "CMakeFiles/ro_aging.dir/ro_aging.cpp.o"
  "CMakeFiles/ro_aging.dir/ro_aging.cpp.o.d"
  "ro_aging"
  "ro_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ro_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
