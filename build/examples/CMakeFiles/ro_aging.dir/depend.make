# Empty dependencies file for ro_aging.
# This may be replaced when dependencies are built.
