file(REMOVE_RECURSE
  "CMakeFiles/adaptive_bias.dir/adaptive_bias.cpp.o"
  "CMakeFiles/adaptive_bias.dir/adaptive_bias.cpp.o.d"
  "adaptive_bias"
  "adaptive_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
