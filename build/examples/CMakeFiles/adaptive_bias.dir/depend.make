# Empty dependencies file for adaptive_bias.
# This may be replaced when dependencies are built.
