file(REMOVE_RECURSE
  "CMakeFiles/emc_immunity.dir/emc_immunity.cpp.o"
  "CMakeFiles/emc_immunity.dir/emc_immunity.cpp.o.d"
  "emc_immunity"
  "emc_immunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_immunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
