# Empty compiler generated dependencies file for emc_immunity.
# This may be replaced when dependencies are built.
