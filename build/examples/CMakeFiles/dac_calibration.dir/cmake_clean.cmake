file(REMOVE_RECURSE
  "CMakeFiles/dac_calibration.dir/dac_calibration.cpp.o"
  "CMakeFiles/dac_calibration.dir/dac_calibration.cpp.o.d"
  "dac_calibration"
  "dac_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
