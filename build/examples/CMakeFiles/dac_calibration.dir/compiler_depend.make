# Empty compiler generated dependencies file for dac_calibration.
# This may be replaced when dependencies are built.
