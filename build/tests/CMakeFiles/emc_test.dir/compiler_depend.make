# Empty compiler generated dependencies file for emc_test.
# This may be replaced when dependencies are built.
