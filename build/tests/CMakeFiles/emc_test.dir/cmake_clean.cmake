file(REMOVE_RECURSE
  "CMakeFiles/emc_test.dir/emc_test.cpp.o"
  "CMakeFiles/emc_test.dir/emc_test.cpp.o.d"
  "emc_test"
  "emc_test.pdb"
  "emc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
