file(REMOVE_RECURSE
  "CMakeFiles/aging_tddb_test.dir/aging_tddb_test.cpp.o"
  "CMakeFiles/aging_tddb_test.dir/aging_tddb_test.cpp.o.d"
  "aging_tddb_test"
  "aging_tddb_test.pdb"
  "aging_tddb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_tddb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
