file(REMOVE_RECURSE
  "CMakeFiles/aging_engine_test.dir/aging_engine_test.cpp.o"
  "CMakeFiles/aging_engine_test.dir/aging_engine_test.cpp.o.d"
  "aging_engine_test"
  "aging_engine_test.pdb"
  "aging_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
