# Empty compiler generated dependencies file for aging_engine_test.
# This may be replaced when dependencies are built.
