file(REMOVE_RECURSE
  "CMakeFiles/aging_property_test.dir/aging_property_test.cpp.o"
  "CMakeFiles/aging_property_test.dir/aging_property_test.cpp.o.d"
  "aging_property_test"
  "aging_property_test.pdb"
  "aging_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
