# Empty compiler generated dependencies file for aging_property_test.
# This may be replaced when dependencies are built.
