file(REMOVE_RECURSE
  "CMakeFiles/spice_robustness_test.dir/spice_robustness_test.cpp.o"
  "CMakeFiles/spice_robustness_test.dir/spice_robustness_test.cpp.o.d"
  "spice_robustness_test"
  "spice_robustness_test.pdb"
  "spice_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
