# Empty compiler generated dependencies file for spice_robustness_test.
# This may be replaced when dependencies are built.
