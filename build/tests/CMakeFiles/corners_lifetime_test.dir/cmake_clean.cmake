file(REMOVE_RECURSE
  "CMakeFiles/corners_lifetime_test.dir/corners_lifetime_test.cpp.o"
  "CMakeFiles/corners_lifetime_test.dir/corners_lifetime_test.cpp.o.d"
  "corners_lifetime_test"
  "corners_lifetime_test.pdb"
  "corners_lifetime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corners_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
