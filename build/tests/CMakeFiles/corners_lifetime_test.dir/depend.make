# Empty dependencies file for corners_lifetime_test.
# This may be replaced when dependencies are built.
