file(REMOVE_RECURSE
  "CMakeFiles/aging_hci_test.dir/aging_hci_test.cpp.o"
  "CMakeFiles/aging_hci_test.dir/aging_hci_test.cpp.o.d"
  "aging_hci_test"
  "aging_hci_test.pdb"
  "aging_hci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_hci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
