# Empty dependencies file for aging_hci_test.
# This may be replaced when dependencies are built.
