# Empty dependencies file for spice_inductor_test.
# This may be replaced when dependencies are built.
