file(REMOVE_RECURSE
  "CMakeFiles/spice_inductor_test.dir/spice_inductor_test.cpp.o"
  "CMakeFiles/spice_inductor_test.dir/spice_inductor_test.cpp.o.d"
  "spice_inductor_test"
  "spice_inductor_test.pdb"
  "spice_inductor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_inductor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
