file(REMOVE_RECURSE
  "CMakeFiles/variability_ext_test.dir/variability_ext_test.cpp.o"
  "CMakeFiles/variability_ext_test.dir/variability_ext_test.cpp.o.d"
  "variability_ext_test"
  "variability_ext_test.pdb"
  "variability_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
