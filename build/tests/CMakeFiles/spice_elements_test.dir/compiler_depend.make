# Empty compiler generated dependencies file for spice_elements_test.
# This may be replaced when dependencies are built.
