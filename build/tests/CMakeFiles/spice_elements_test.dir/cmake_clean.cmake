file(REMOVE_RECURSE
  "CMakeFiles/spice_elements_test.dir/spice_elements_test.cpp.o"
  "CMakeFiles/spice_elements_test.dir/spice_elements_test.cpp.o.d"
  "spice_elements_test"
  "spice_elements_test.pdb"
  "spice_elements_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_elements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
