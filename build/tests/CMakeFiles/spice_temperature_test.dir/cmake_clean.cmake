file(REMOVE_RECURSE
  "CMakeFiles/spice_temperature_test.dir/spice_temperature_test.cpp.o"
  "CMakeFiles/spice_temperature_test.dir/spice_temperature_test.cpp.o.d"
  "spice_temperature_test"
  "spice_temperature_test.pdb"
  "spice_temperature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_temperature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
