# Empty compiler generated dependencies file for spice_temperature_test.
# This may be replaced when dependencies are built.
