# Empty compiler generated dependencies file for spice_mosfet_test.
# This may be replaced when dependencies are built.
