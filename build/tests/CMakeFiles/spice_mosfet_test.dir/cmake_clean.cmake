file(REMOVE_RECURSE
  "CMakeFiles/spice_mosfet_test.dir/spice_mosfet_test.cpp.o"
  "CMakeFiles/spice_mosfet_test.dir/spice_mosfet_test.cpp.o.d"
  "spice_mosfet_test"
  "spice_mosfet_test.pdb"
  "spice_mosfet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_mosfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
