# Empty compiler generated dependencies file for em_layout_test.
# This may be replaced when dependencies are built.
