file(REMOVE_RECURSE
  "CMakeFiles/em_layout_test.dir/em_layout_test.cpp.o"
  "CMakeFiles/em_layout_test.dir/em_layout_test.cpp.o.d"
  "em_layout_test"
  "em_layout_test.pdb"
  "em_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
