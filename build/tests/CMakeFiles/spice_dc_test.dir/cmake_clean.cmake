file(REMOVE_RECURSE
  "CMakeFiles/spice_dc_test.dir/spice_dc_test.cpp.o"
  "CMakeFiles/spice_dc_test.dir/spice_dc_test.cpp.o.d"
  "spice_dc_test"
  "spice_dc_test.pdb"
  "spice_dc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_dc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
