# Empty dependencies file for aging_em_test.
# This may be replaced when dependencies are built.
