
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aging_em_test.cpp" "tests/CMakeFiles/aging_em_test.dir/aging_em_test.cpp.o" "gcc" "tests/CMakeFiles/aging_em_test.dir/aging_em_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aging/CMakeFiles/relsim_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/relsim_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/relsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/relsim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/relsim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/relsim_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
