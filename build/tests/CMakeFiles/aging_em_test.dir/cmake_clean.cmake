file(REMOVE_RECURSE
  "CMakeFiles/aging_em_test.dir/aging_em_test.cpp.o"
  "CMakeFiles/aging_em_test.dir/aging_em_test.cpp.o.d"
  "aging_em_test"
  "aging_em_test.pdb"
  "aging_em_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_em_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
