# Empty compiler generated dependencies file for aging_nbti_test.
# This may be replaced when dependencies are built.
