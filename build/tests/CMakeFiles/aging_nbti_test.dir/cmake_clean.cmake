file(REMOVE_RECURSE
  "CMakeFiles/aging_nbti_test.dir/aging_nbti_test.cpp.o"
  "CMakeFiles/aging_nbti_test.dir/aging_nbti_test.cpp.o.d"
  "aging_nbti_test"
  "aging_nbti_test.pdb"
  "aging_nbti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_nbti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
