file(REMOVE_RECURSE
  "CMakeFiles/relsim_core.dir/reliability_sim.cpp.o"
  "CMakeFiles/relsim_core.dir/reliability_sim.cpp.o.d"
  "librelsim_core.a"
  "librelsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
