file(REMOVE_RECURSE
  "librelsim_core.a"
)
