# Empty compiler generated dependencies file for relsim_core.
# This may be replaced when dependencies are built.
