# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("rng")
subdirs("stats")
subdirs("linalg")
subdirs("tech")
subdirs("spice")
subdirs("variability")
subdirs("aging")
subdirs("emc")
subdirs("calibration")
subdirs("adaptive")
subdirs("em_layout")
subdirs("core")
