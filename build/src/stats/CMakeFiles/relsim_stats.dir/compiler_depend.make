# Empty compiler generated dependencies file for relsim_stats.
# This may be replaced when dependencies are built.
