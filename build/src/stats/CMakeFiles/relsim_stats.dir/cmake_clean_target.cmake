file(REMOVE_RECURSE
  "librelsim_stats.a"
)
