file(REMOVE_RECURSE
  "CMakeFiles/relsim_stats.dir/histogram.cpp.o"
  "CMakeFiles/relsim_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/relsim_stats.dir/regression.cpp.o"
  "CMakeFiles/relsim_stats.dir/regression.cpp.o.d"
  "CMakeFiles/relsim_stats.dir/summary.cpp.o"
  "CMakeFiles/relsim_stats.dir/summary.cpp.o.d"
  "CMakeFiles/relsim_stats.dir/weibull_fit.cpp.o"
  "CMakeFiles/relsim_stats.dir/weibull_fit.cpp.o.d"
  "librelsim_stats.a"
  "librelsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
