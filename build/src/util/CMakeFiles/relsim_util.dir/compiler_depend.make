# Empty compiler generated dependencies file for relsim_util.
# This may be replaced when dependencies are built.
