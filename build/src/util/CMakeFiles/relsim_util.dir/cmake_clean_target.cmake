file(REMOVE_RECURSE
  "librelsim_util.a"
)
