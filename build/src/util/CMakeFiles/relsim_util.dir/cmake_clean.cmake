file(REMOVE_RECURSE
  "CMakeFiles/relsim_util.dir/error.cpp.o"
  "CMakeFiles/relsim_util.dir/error.cpp.o.d"
  "CMakeFiles/relsim_util.dir/log.cpp.o"
  "CMakeFiles/relsim_util.dir/log.cpp.o.d"
  "CMakeFiles/relsim_util.dir/mathx.cpp.o"
  "CMakeFiles/relsim_util.dir/mathx.cpp.o.d"
  "CMakeFiles/relsim_util.dir/table.cpp.o"
  "CMakeFiles/relsim_util.dir/table.cpp.o.d"
  "librelsim_util.a"
  "librelsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
