file(REMOVE_RECURSE
  "librelsim_linalg.a"
)
