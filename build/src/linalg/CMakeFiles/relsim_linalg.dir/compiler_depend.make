# Empty compiler generated dependencies file for relsim_linalg.
# This may be replaced when dependencies are built.
