file(REMOVE_RECURSE
  "CMakeFiles/relsim_linalg.dir/complex_matrix.cpp.o"
  "CMakeFiles/relsim_linalg.dir/complex_matrix.cpp.o.d"
  "CMakeFiles/relsim_linalg.dir/lu.cpp.o"
  "CMakeFiles/relsim_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/relsim_linalg.dir/matrix.cpp.o"
  "CMakeFiles/relsim_linalg.dir/matrix.cpp.o.d"
  "librelsim_linalg.a"
  "librelsim_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
