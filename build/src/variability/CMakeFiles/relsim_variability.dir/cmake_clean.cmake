file(REMOVE_RECURSE
  "CMakeFiles/relsim_variability.dir/corners.cpp.o"
  "CMakeFiles/relsim_variability.dir/corners.cpp.o.d"
  "CMakeFiles/relsim_variability.dir/defect_yield.cpp.o"
  "CMakeFiles/relsim_variability.dir/defect_yield.cpp.o.d"
  "CMakeFiles/relsim_variability.dir/ler.cpp.o"
  "CMakeFiles/relsim_variability.dir/ler.cpp.o.d"
  "CMakeFiles/relsim_variability.dir/montecarlo.cpp.o"
  "CMakeFiles/relsim_variability.dir/montecarlo.cpp.o.d"
  "CMakeFiles/relsim_variability.dir/pelgrom.cpp.o"
  "CMakeFiles/relsim_variability.dir/pelgrom.cpp.o.d"
  "CMakeFiles/relsim_variability.dir/sampler.cpp.o"
  "CMakeFiles/relsim_variability.dir/sampler.cpp.o.d"
  "librelsim_variability.a"
  "librelsim_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
