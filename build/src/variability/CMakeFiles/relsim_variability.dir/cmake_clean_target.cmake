file(REMOVE_RECURSE
  "librelsim_variability.a"
)
