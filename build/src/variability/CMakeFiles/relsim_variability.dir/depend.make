# Empty dependencies file for relsim_variability.
# This may be replaced when dependencies are built.
