
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variability/corners.cpp" "src/variability/CMakeFiles/relsim_variability.dir/corners.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/corners.cpp.o.d"
  "/root/repo/src/variability/defect_yield.cpp" "src/variability/CMakeFiles/relsim_variability.dir/defect_yield.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/defect_yield.cpp.o.d"
  "/root/repo/src/variability/ler.cpp" "src/variability/CMakeFiles/relsim_variability.dir/ler.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/ler.cpp.o.d"
  "/root/repo/src/variability/montecarlo.cpp" "src/variability/CMakeFiles/relsim_variability.dir/montecarlo.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/montecarlo.cpp.o.d"
  "/root/repo/src/variability/pelgrom.cpp" "src/variability/CMakeFiles/relsim_variability.dir/pelgrom.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/pelgrom.cpp.o.d"
  "/root/repo/src/variability/sampler.cpp" "src/variability/CMakeFiles/relsim_variability.dir/sampler.cpp.o" "gcc" "src/variability/CMakeFiles/relsim_variability.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/relsim_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/relsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/relsim_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
