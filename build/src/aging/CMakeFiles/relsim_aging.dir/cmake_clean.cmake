file(REMOVE_RECURSE
  "CMakeFiles/relsim_aging.dir/device_stress.cpp.o"
  "CMakeFiles/relsim_aging.dir/device_stress.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/em.cpp.o"
  "CMakeFiles/relsim_aging.dir/em.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/engine.cpp.o"
  "CMakeFiles/relsim_aging.dir/engine.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/hci.cpp.o"
  "CMakeFiles/relsim_aging.dir/hci.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/model.cpp.o"
  "CMakeFiles/relsim_aging.dir/model.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/nbti.cpp.o"
  "CMakeFiles/relsim_aging.dir/nbti.cpp.o.d"
  "CMakeFiles/relsim_aging.dir/tddb.cpp.o"
  "CMakeFiles/relsim_aging.dir/tddb.cpp.o.d"
  "librelsim_aging.a"
  "librelsim_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
