# Empty compiler generated dependencies file for relsim_aging.
# This may be replaced when dependencies are built.
