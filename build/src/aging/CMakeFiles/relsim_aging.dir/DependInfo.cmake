
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aging/device_stress.cpp" "src/aging/CMakeFiles/relsim_aging.dir/device_stress.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/device_stress.cpp.o.d"
  "/root/repo/src/aging/em.cpp" "src/aging/CMakeFiles/relsim_aging.dir/em.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/em.cpp.o.d"
  "/root/repo/src/aging/engine.cpp" "src/aging/CMakeFiles/relsim_aging.dir/engine.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/engine.cpp.o.d"
  "/root/repo/src/aging/hci.cpp" "src/aging/CMakeFiles/relsim_aging.dir/hci.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/hci.cpp.o.d"
  "/root/repo/src/aging/model.cpp" "src/aging/CMakeFiles/relsim_aging.dir/model.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/model.cpp.o.d"
  "/root/repo/src/aging/nbti.cpp" "src/aging/CMakeFiles/relsim_aging.dir/nbti.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/nbti.cpp.o.d"
  "/root/repo/src/aging/tddb.cpp" "src/aging/CMakeFiles/relsim_aging.dir/tddb.cpp.o" "gcc" "src/aging/CMakeFiles/relsim_aging.dir/tddb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/relsim_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/relsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/relsim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/relsim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/relsim_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
