file(REMOVE_RECURSE
  "librelsim_aging.a"
)
