file(REMOVE_RECURSE
  "librelsim_spice.a"
)
