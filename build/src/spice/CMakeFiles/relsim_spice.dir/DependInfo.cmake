
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac_analysis.cpp" "src/spice/CMakeFiles/relsim_spice.dir/ac_analysis.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/ac_analysis.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/relsim_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/dc_analysis.cpp" "src/spice/CMakeFiles/relsim_spice.dir/dc_analysis.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/dc_analysis.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "src/spice/CMakeFiles/relsim_spice.dir/elements.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/elements.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/spice/CMakeFiles/relsim_spice.dir/mosfet.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/mosfet.cpp.o.d"
  "/root/repo/src/spice/netlist_parser.cpp" "src/spice/CMakeFiles/relsim_spice.dir/netlist_parser.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/spice/probes.cpp" "src/spice/CMakeFiles/relsim_spice.dir/probes.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/probes.cpp.o.d"
  "/root/repo/src/spice/stress.cpp" "src/spice/CMakeFiles/relsim_spice.dir/stress.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/stress.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/spice/CMakeFiles/relsim_spice.dir/transient.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/transient.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/spice/CMakeFiles/relsim_spice.dir/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/relsim_spice.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/relsim_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/relsim_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
