file(REMOVE_RECURSE
  "CMakeFiles/relsim_spice.dir/ac_analysis.cpp.o"
  "CMakeFiles/relsim_spice.dir/ac_analysis.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/circuit.cpp.o"
  "CMakeFiles/relsim_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/dc_analysis.cpp.o"
  "CMakeFiles/relsim_spice.dir/dc_analysis.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/elements.cpp.o"
  "CMakeFiles/relsim_spice.dir/elements.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/mosfet.cpp.o"
  "CMakeFiles/relsim_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/netlist_parser.cpp.o"
  "CMakeFiles/relsim_spice.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/probes.cpp.o"
  "CMakeFiles/relsim_spice.dir/probes.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/stress.cpp.o"
  "CMakeFiles/relsim_spice.dir/stress.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/transient.cpp.o"
  "CMakeFiles/relsim_spice.dir/transient.cpp.o.d"
  "CMakeFiles/relsim_spice.dir/waveform.cpp.o"
  "CMakeFiles/relsim_spice.dir/waveform.cpp.o.d"
  "librelsim_spice.a"
  "librelsim_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
