# Empty dependencies file for relsim_spice.
# This may be replaced when dependencies are built.
