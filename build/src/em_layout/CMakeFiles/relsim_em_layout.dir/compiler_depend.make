# Empty compiler generated dependencies file for relsim_em_layout.
# This may be replaced when dependencies are built.
