file(REMOVE_RECURSE
  "librelsim_em_layout.a"
)
