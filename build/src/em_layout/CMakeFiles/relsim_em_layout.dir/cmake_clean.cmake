file(REMOVE_RECURSE
  "CMakeFiles/relsim_em_layout.dir/planner.cpp.o"
  "CMakeFiles/relsim_em_layout.dir/planner.cpp.o.d"
  "librelsim_em_layout.a"
  "librelsim_em_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_em_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
