# CMake generated Testfile for 
# Source directory: /root/repo/src/em_layout
# Build directory: /root/repo/build/src/em_layout
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
