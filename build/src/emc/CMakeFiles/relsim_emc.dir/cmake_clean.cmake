file(REMOVE_RECURSE
  "CMakeFiles/relsim_emc.dir/circuits.cpp.o"
  "CMakeFiles/relsim_emc.dir/circuits.cpp.o.d"
  "CMakeFiles/relsim_emc.dir/emi.cpp.o"
  "CMakeFiles/relsim_emc.dir/emi.cpp.o.d"
  "librelsim_emc.a"
  "librelsim_emc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_emc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
