file(REMOVE_RECURSE
  "librelsim_emc.a"
)
