# Empty dependencies file for relsim_emc.
# This may be replaced when dependencies are built.
