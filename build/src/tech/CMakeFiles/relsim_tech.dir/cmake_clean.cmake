file(REMOVE_RECURSE
  "CMakeFiles/relsim_tech.dir/tech.cpp.o"
  "CMakeFiles/relsim_tech.dir/tech.cpp.o.d"
  "librelsim_tech.a"
  "librelsim_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
