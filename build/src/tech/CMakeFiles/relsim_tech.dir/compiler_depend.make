# Empty compiler generated dependencies file for relsim_tech.
# This may be replaced when dependencies are built.
