file(REMOVE_RECURSE
  "librelsim_tech.a"
)
