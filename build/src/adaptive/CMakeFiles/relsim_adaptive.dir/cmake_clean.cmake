file(REMOVE_RECURSE
  "CMakeFiles/relsim_adaptive.dir/knobs.cpp.o"
  "CMakeFiles/relsim_adaptive.dir/knobs.cpp.o.d"
  "CMakeFiles/relsim_adaptive.dir/system.cpp.o"
  "CMakeFiles/relsim_adaptive.dir/system.cpp.o.d"
  "librelsim_adaptive.a"
  "librelsim_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
