# Empty dependencies file for relsim_adaptive.
# This may be replaced when dependencies are built.
