file(REMOVE_RECURSE
  "librelsim_adaptive.a"
)
