file(REMOVE_RECURSE
  "librelsim_calibration.a"
)
