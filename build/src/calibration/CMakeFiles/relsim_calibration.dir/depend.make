# Empty dependencies file for relsim_calibration.
# This may be replaced when dependencies are built.
