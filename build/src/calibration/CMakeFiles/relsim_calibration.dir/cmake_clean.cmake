file(REMOVE_RECURSE
  "CMakeFiles/relsim_calibration.dir/dac.cpp.o"
  "CMakeFiles/relsim_calibration.dir/dac.cpp.o.d"
  "CMakeFiles/relsim_calibration.dir/sspa.cpp.o"
  "CMakeFiles/relsim_calibration.dir/sspa.cpp.o.d"
  "librelsim_calibration.a"
  "librelsim_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
