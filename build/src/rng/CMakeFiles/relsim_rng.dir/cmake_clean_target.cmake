file(REMOVE_RECURSE
  "librelsim_rng.a"
)
