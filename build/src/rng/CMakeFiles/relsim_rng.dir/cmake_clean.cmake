file(REMOVE_RECURSE
  "CMakeFiles/relsim_rng.dir/distributions.cpp.o"
  "CMakeFiles/relsim_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/relsim_rng.dir/rng.cpp.o"
  "CMakeFiles/relsim_rng.dir/rng.cpp.o.d"
  "librelsim_rng.a"
  "librelsim_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
