# Empty compiler generated dependencies file for relsim_rng.
# This may be replaced when dependencies are built.
