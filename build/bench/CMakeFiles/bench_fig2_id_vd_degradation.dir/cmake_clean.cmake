file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_id_vd_degradation.dir/bench_fig2_id_vd_degradation.cpp.o"
  "CMakeFiles/bench_fig2_id_vd_degradation.dir/bench_fig2_id_vd_degradation.cpp.o.d"
  "bench_fig2_id_vd_degradation"
  "bench_fig2_id_vd_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_id_vd_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
