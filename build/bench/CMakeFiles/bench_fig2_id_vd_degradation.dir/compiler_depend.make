# Empty compiler generated dependencies file for bench_fig2_id_vd_degradation.
# This may be replaced when dependencies are built.
