# Empty dependencies file for bench_eq3_nbti.
# This may be replaced when dependencies are built.
