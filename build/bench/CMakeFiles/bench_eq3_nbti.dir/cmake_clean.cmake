file(REMOVE_RECURSE
  "CMakeFiles/bench_eq3_nbti.dir/bench_eq3_nbti.cpp.o"
  "CMakeFiles/bench_eq3_nbti.dir/bench_eq3_nbti.cpp.o.d"
  "bench_eq3_nbti"
  "bench_eq3_nbti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq3_nbti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
