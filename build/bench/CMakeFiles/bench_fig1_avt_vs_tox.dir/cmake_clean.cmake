file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_avt_vs_tox.dir/bench_fig1_avt_vs_tox.cpp.o"
  "CMakeFiles/bench_fig1_avt_vs_tox.dir/bench_fig1_avt_vs_tox.cpp.o.d"
  "bench_fig1_avt_vs_tox"
  "bench_fig1_avt_vs_tox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_avt_vs_tox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
