# Empty dependencies file for bench_fig1_avt_vs_tox.
# This may be replaced when dependencies are built.
