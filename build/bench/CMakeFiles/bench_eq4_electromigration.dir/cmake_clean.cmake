file(REMOVE_RECURSE
  "CMakeFiles/bench_eq4_electromigration.dir/bench_eq4_electromigration.cpp.o"
  "CMakeFiles/bench_eq4_electromigration.dir/bench_eq4_electromigration.cpp.o.d"
  "bench_eq4_electromigration"
  "bench_eq4_electromigration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq4_electromigration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
