# Empty dependencies file for bench_eq4_electromigration.
# This may be replaced when dependencies are built.
