# Empty dependencies file for bench_eq2_hci.
# This may be replaced when dependencies are built.
