file(REMOVE_RECURSE
  "CMakeFiles/bench_eq2_hci.dir/bench_eq2_hci.cpp.o"
  "CMakeFiles/bench_eq2_hci.dir/bench_eq2_hci.cpp.o.d"
  "bench_eq2_hci"
  "bench_eq2_hci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq2_hci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
