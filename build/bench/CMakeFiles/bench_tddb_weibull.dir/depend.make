# Empty dependencies file for bench_tddb_weibull.
# This may be replaced when dependencies are built.
