file(REMOVE_RECURSE
  "CMakeFiles/bench_tddb_weibull.dir/bench_tddb_weibull.cpp.o"
  "CMakeFiles/bench_tddb_weibull.dir/bench_tddb_weibull.cpp.o.d"
  "bench_tddb_weibull"
  "bench_tddb_weibull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tddb_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
