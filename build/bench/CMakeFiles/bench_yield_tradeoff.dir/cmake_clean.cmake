file(REMOVE_RECURSE
  "CMakeFiles/bench_yield_tradeoff.dir/bench_yield_tradeoff.cpp.o"
  "CMakeFiles/bench_yield_tradeoff.dir/bench_yield_tradeoff.cpp.o.d"
  "bench_yield_tradeoff"
  "bench_yield_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yield_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
