# Empty compiler generated dependencies file for bench_yield_tradeoff.
# This may be replaced when dependencies are built.
