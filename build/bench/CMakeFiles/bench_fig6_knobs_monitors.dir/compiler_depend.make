# Empty compiler generated dependencies file for bench_fig6_knobs_monitors.
# This may be replaced when dependencies are built.
