file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_knobs_monitors.dir/bench_fig6_knobs_monitors.cpp.o"
  "CMakeFiles/bench_fig6_knobs_monitors.dir/bench_fig6_knobs_monitors.cpp.o.d"
  "bench_fig6_knobs_monitors"
  "bench_fig6_knobs_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_knobs_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
