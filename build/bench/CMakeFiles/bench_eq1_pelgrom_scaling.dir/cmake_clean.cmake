file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_pelgrom_scaling.dir/bench_eq1_pelgrom_scaling.cpp.o"
  "CMakeFiles/bench_eq1_pelgrom_scaling.dir/bench_eq1_pelgrom_scaling.cpp.o.d"
  "bench_eq1_pelgrom_scaling"
  "bench_eq1_pelgrom_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_pelgrom_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
