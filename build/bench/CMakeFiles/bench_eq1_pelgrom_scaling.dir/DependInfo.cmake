
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_eq1_pelgrom_scaling.cpp" "bench/CMakeFiles/bench_eq1_pelgrom_scaling.dir/bench_eq1_pelgrom_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_eq1_pelgrom_scaling.dir/bench_eq1_pelgrom_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/variability/CMakeFiles/relsim_variability.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/relsim_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/relsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/relsim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
