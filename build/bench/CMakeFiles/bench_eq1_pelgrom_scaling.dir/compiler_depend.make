# Empty compiler generated dependencies file for bench_eq1_pelgrom_scaling.
# This may be replaced when dependencies are built.
