# Empty compiler generated dependencies file for bench_fig5_dac_sspa.
# This may be replaced when dependencies are built.
