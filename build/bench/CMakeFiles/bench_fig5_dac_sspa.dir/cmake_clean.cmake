file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dac_sspa.dir/bench_fig5_dac_sspa.cpp.o"
  "CMakeFiles/bench_fig5_dac_sspa.dir/bench_fig5_dac_sspa.cpp.o.d"
  "bench_fig5_dac_sspa"
  "bench_fig5_dac_sspa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dac_sspa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
