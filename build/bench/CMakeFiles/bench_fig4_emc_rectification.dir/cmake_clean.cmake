file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_emc_rectification.dir/bench_fig4_emc_rectification.cpp.o"
  "CMakeFiles/bench_fig4_emc_rectification.dir/bench_fig4_emc_rectification.cpp.o.d"
  "bench_fig4_emc_rectification"
  "bench_fig4_emc_rectification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_emc_rectification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
