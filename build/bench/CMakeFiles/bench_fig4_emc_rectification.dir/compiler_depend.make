# Empty compiler generated dependencies file for bench_fig4_emc_rectification.
# This may be replaced when dependencies are built.
