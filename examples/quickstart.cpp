// Quickstart: build a circuit, check its fresh operating point, age it
// over a 10-year mission, and look at the drift — the core relsim flow.
//
//   $ ./quickstart
#include <iostream>

#include "core/reliability_sim.h"
#include "spice/analysis.h"
#include "tech/tech.h"

using namespace relsim;
using spice::kGround;

int main() {
  // 1. Pick a technology node.
  const TechNode& tech = tech_65nm();

  // 2. Build a CMOS inverter with a resistive load monitor.
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  c.add_vsource("VIN", in, kGround, 0.0);  // input held low: pMOS stressed
  c.add_mosfet("MN", out, in, kGround, kGround,
               spice::make_mos_params(tech, 1.0, 0.1, false));
  c.add_mosfet("MP", out, in, vdd, vdd,
               spice::make_mos_params(tech, 2.0, 0.1, true));

  // 3. Fresh behaviour: the inverter's switching threshold (the input
  //    voltage where the VTC crosses v(out) == v(in)).
  auto switching_threshold = [&]() {
    auto& vin = c.device_as<spice::VoltageSource>("VIN");
    double lo = 0.0, hi = tech.vdd;
    for (int i = 0; i < 30; ++i) {
      const double mid = 0.5 * (lo + hi);
      vin.set_dc(mid);
      (spice::dc_operating_point(c).v(out) > mid ? lo : hi) = mid;
    }
    vin.set_dc(0.0);  // park the input low again (pMOS under NBTI stress)
    return 0.5 * (lo + hi);
  };
  const double vm_fresh = switching_threshold();
  std::cout << "fresh: switching threshold VM = " << vm_fresh << " V\n";

  // 4. Age the circuit: 10 years at 125C, NBTI + HCI + TDDB.
  ReliabilityConfig cfg;
  cfg.tech = &tech;
  cfg.mission.years = 10.0;
  cfg.mission.temp_k = 398.0;
  cfg.mission.epochs = 10;
  const ReliabilitySimulator sim(cfg);
  const auto report = sim.age(c);

  // 5. Inspect the drift: with the input low, the pMOS sits under constant
  //    negative gate bias — the classic NBTI victim.
  for (const auto& name : {"MN", "MP"}) {
    const auto d = report.final_drift(name);
    std::cout << name << ":  dVT = " << d.dvt * 1e3
              << " mV, beta x" << d.beta_factor
              << ", gate leak = " << (d.g_leak_gs + d.g_leak_gd) * 1e6
              << " uS\n";
  }

  // 6. Aged behaviour: the weakened pMOS loses drive, so the VTC midpoint
  //    moves toward ground.
  const double vm_aged = switching_threshold();
  std::cout << "aged:  switching threshold VM = " << vm_aged << " V  (shift = "
            << (vm_aged - vm_fresh) * 1e3 << " mV)\n";
  return 0;
}
