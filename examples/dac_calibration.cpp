// Post-fabrication calibration scenario (Sec. 5.1): one virtual 14-bit
// current-steering DAC is fabricated with deliberately undersized (noisy)
// unary cells, measured with the on-chip comparator, and calibrated by
// Switching-Sequence Post-Adjustment. Prints the INL envelope per segment
// before and after.
//
//   $ ./dac_calibration [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "calibration/dac.h"
#include "calibration/sspa.h"
#include "util/table.h"

using namespace relsim;
using namespace relsim::calibration;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  DacConfig cfg;
  cfg.total_bits = 14;
  cfg.unary_bits = 6;
  const double sigma_intrinsic = required_unit_sigma_intrinsic(14, 0.5, 3.0);
  cfg.sigma_unit_rel = 4.0 * sigma_intrinsic;   // 16x less cell area
  cfg.sigma_unit_binary_rel = sigma_intrinsic;  // LSB section not calibrated

  Xoshiro256 rng(seed);
  CurrentSteeringDac dac(cfg, rng);

  const auto before = dac.linearity();
  std::cout << "unary unit sigma: " << cfg.sigma_unit_rel * 100
            << " % (4x the intrinsic-accuracy requirement)\n";
  std::cout << "as fabricated:  INL = " << before.inl_max_abs
            << " LSB, DNL = " << before.dnl_max_abs << " LSB\n";

  // Measure each unary source with the current comparator and reorder.
  Xoshiro256 cal_rng(seed ^ 0xCA1);
  calibrate_sspa(dac, /*sigma_meas_rel=*/1e-4, cal_rng);

  const auto after = dac.linearity();
  std::cout << "after SSPA:     INL = " << after.inl_max_abs
            << " LSB, DNL = " << after.dnl_max_abs << " LSB\n\n";

  // Per-segment INL envelope: worst |INL| inside each unary segment.
  const auto inl = dac.inl_lsb();
  const int seg_codes = 1 << cfg.binary_bits();
  TablePrinter table({"segment", "worst_abs_INL_LSB"});
  table.set_precision(3);
  for (int seg = 0; seg < cfg.unary_sources() + 1; seg += 8) {
    double worst = 0.0;
    for (int low = 0; low < seg_codes; ++low) {
      const std::size_t code = static_cast<std::size_t>(seg * seg_codes + low);
      if (code < inl.size()) worst = std::max(worst, std::abs(inl[code]));
    }
    table.add_row({static_cast<long long>(seg), worst});
  }
  table.print(std::cout);

  std::cout << "\nswitching sequence (first 16 of "
            << dac.switching_sequence().size() << "): ";
  for (int i = 0; i < 16; ++i) std::cout << dac.switching_sequence()[static_cast<std::size_t>(i)] << ' ';
  std::cout << "\n";
  return after.inl_max_abs < before.inl_max_abs ? 0 : 1;
}
