// Digital aging scenario: a 5-stage ring oscillator slows down over a
// 10-year mission (Sec. 3: "In digital electronics this translates to
// slower circuits"). The stress is the ring's own switching workload,
// recorded from a transient run — every device sees duty ~50%.
//
//   $ ./ro_aging
#include <iostream>
#include <memory>

#include "aging/engine.h"
#include "aging/hci.h"
#include "aging/nbti.h"
#include "spice/analysis.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/table.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

constexpr int kStages = 5;

std::unique_ptr<Circuit> build_ring(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  std::vector<NodeId> n;
  for (int i = 0; i < kStages; ++i) n.push_back(c->node("n" + std::to_string(i)));
  for (int i = 0; i < kStages; ++i) {
    const NodeId a = n[static_cast<std::size_t>(i)];
    const NodeId b = n[static_cast<std::size_t>((i + 1) % kStages)];
    c->add_mosfet("inv" + std::to_string(i) + "_n", b, a, kGround, kGround,
                  spice::make_mos_params(tech, 1.0, 0.1, false));
    c->add_mosfet("inv" + std::to_string(i) + "_p", b, a, vdd, vdd,
                  spice::make_mos_params(tech, 2.0, 0.1, true));
    c->add_capacitor("cl" + std::to_string(i), b, kGround, 5e-15);
  }
  return c;
}

spice::TransientOptions ring_transient(const TechNode& tech) {
  spice::TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 4e-9;
  opt.use_initial_conditions = true;
  opt.initial_conditions[1] = tech.vdd;
  for (int i = 0; i < kStages; ++i) {
    opt.initial_conditions[i + 2] = (i % 2 == 0) ? 0.0 : tech.vdd;
  }
  return opt;
}

double frequency(Circuit& c, const TechNode& tech) {
  const auto opt = ring_transient(tech);
  const auto res = spice::transient_analysis(c, opt, {c.find_node("n0")});
  return spice::estimate_frequency(res.time(), res.node(c.find_node("n0")),
                                   1.5e-9, opt.t_stop);
}

}  // namespace

int main() {
  const TechNode& tech = tech_65nm();
  auto ring = build_ring(tech);
  const double f0 = frequency(*ring, tech);
  std::cout << "fresh ring frequency: " << f0 / 1e9 << " GHz\n\n";

  aging::AgingEngine engine;
  engine.add_model(std::make_unique<aging::NbtiModel>());
  engine.add_model(std::make_unique<aging::HciModel>());
  aging::AgingOptions opt;
  opt.mission.years = 10.0;
  opt.mission.temp_k = 398.0;
  opt.mission.epochs = 5;
  const auto report = engine.age(*ring, opt, [&](Circuit& c) {
    c.enable_stress_recording();
    spice::transient_analysis(c, ring_transient(tech), {});
  });

  TablePrinter table({"t_years", "freq_GHz", "slowdown_pct", "worst_dVT_mV"});
  table.set_precision(4);
  auto replay = build_ring(tech);
  for (const auto& epoch : report.epochs) {
    double worst = 0.0;
    for (spice::Mosfet* m : replay->mosfets()) {
      const auto d = epoch.device_drift.at(m->name());
      m->set_degradation(d.to_degradation());
      worst = std::max(worst, d.dvt);
    }
    const double f = frequency(*replay, tech);
    table.add_row({epoch.t_years, f / 1e9, 100.0 * (1.0 - f / f0),
                   worst * 1e3});
  }
  table.print(std::cout);
  return 0;
}
