// Knobs & monitors scenario (Sec. 5.2 / Fig. 6), using the AdaptiveSystem
// API end to end: a 5-stage ring oscillator's frequency (the monitor) drifts
// below spec as NBTI/HCI slow the inverters down; a discrete supply knob
// (the tunable circuit part) is retuned by the control algorithm after
// every mission epoch.
//
//   $ ./adaptive_bias
#include <iostream>
#include <memory>

#include "adaptive/system.h"
#include "aging/engine.h"
#include "aging/hci.h"
#include "aging/nbti.h"
#include "spice/analysis.h"
#include "spice/probes.h"
#include "tech/tech.h"
#include "util/table.h"

using namespace relsim;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;

namespace {

constexpr int kStages = 5;

std::unique_ptr<Circuit> build_ring(const TechNode& tech) {
  auto c = std::make_unique<Circuit>();
  const NodeId vdd = c->node("vdd");
  c->add_vsource("VDD", vdd, kGround, tech.vdd);
  std::vector<NodeId> n;
  for (int i = 0; i < kStages; ++i) n.push_back(c->node("n" + std::to_string(i)));
  for (int i = 0; i < kStages; ++i) {
    const NodeId a = n[static_cast<std::size_t>(i)];
    const NodeId b = n[static_cast<std::size_t>((i + 1) % kStages)];
    c->add_mosfet("inv" + std::to_string(i) + "_n", b, a, kGround, kGround,
                  spice::make_mos_params(tech, 1.0, 0.1, false));
    c->add_mosfet("inv" + std::to_string(i) + "_p", b, a, vdd, vdd,
                  spice::make_mos_params(tech, 2.0, 0.1, true));
    c->add_capacitor("cl" + std::to_string(i), b, kGround, 5e-15);
  }
  return c;
}

spice::TransientOptions ring_transient(const TechNode& tech) {
  spice::TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 4e-9;
  opt.use_initial_conditions = true;
  opt.initial_conditions[1] = tech.vdd;
  for (int i = 0; i < kStages; ++i) {
    opt.initial_conditions[i + 2] = (i % 2 == 0) ? 0.0 : tech.vdd;
  }
  return opt;
}

}  // namespace

int main() {
  const TechNode& tech = tech_65nm();

  // Age a replica over the mission to obtain the drift timeline (the
  // workload stress is the ring's own switching).
  auto victim = build_ring(tech);
  aging::AgingEngine engine;
  engine.add_model(std::make_unique<aging::NbtiModel>());
  engine.add_model(std::make_unique<aging::HciModel>());
  aging::AgingOptions aopt;
  aopt.mission.years = 10.0;
  aopt.mission.temp_k = 398.0;
  aopt.mission.epochs = 5;
  const auto report = engine.age(*victim, aopt, [&](Circuit& c) {
    c.enable_stress_recording();
    spice::transient_analysis(c, ring_transient(tech), {});
  });

  // Wrap a replay circuit in the adaptive system: frequency monitor +
  // supply knob + minimum-frequency spec.
  auto plant = build_ring(tech);
  Circuit& c = *plant;
  adaptive::RingFrequencyMonitor::Setup setup;
  setup.probe = c.find_node("n0");
  setup.transient = ring_transient(tech);
  setup.window_begin_s = 1.5e-9;
  std::vector<std::unique_ptr<adaptive::Monitor>> monitors;
  monitors.push_back(
      std::make_unique<adaptive::RingFrequencyMonitor>("freq", setup));
  const std::vector<double> vdds{tech.vdd, 1.04 * tech.vdd, 1.08 * tech.vdd,
                                 1.13 * tech.vdd, 1.18 * tech.vdd};
  std::vector<std::unique_ptr<adaptive::Knob>> knobs;
  knobs.push_back(
      std::make_unique<adaptive::VoltageKnob>("supply", "VDD", vdds));

  // Spec: at most 3% below the fresh frequency.
  adaptive::RingFrequencyMonitor probe("probe", setup);
  const double f0 = probe.measure(c);
  std::vector<adaptive::Spec> specs{{"freq", 0.97 * f0, 1e18}};
  adaptive::AdaptiveSystem system(c, std::move(monitors), std::move(knobs),
                                  std::move(specs));
  std::cout << "fresh frequency " << f0 / 1e9 << " GHz, spec >= "
            << 0.97 * f0 / 1e9 << " GHz\n\n";

  TablePrinter table({"t_years", "f_open_GHz", "open_in_spec", "knob_VDD_V",
                      "f_closed_GHz", "closed_in_spec", "rel_power"});
  table.set_precision(4);
  for (const auto& epoch : report.epochs) {
    for (spice::Mosfet* m : c.mosfets()) {
      m->set_degradation(epoch.device_drift.at(m->name()).to_degradation());
    }
    // Open loop: supply parked at nominal.
    c.device_as<spice::VoltageSource>("VDD").set_dc(tech.vdd);
    const double f_open = probe.measure(c);
    // Closed loop: one control iteration over the knob space.
    const auto closed = system.tune();
    const double v = vdds[static_cast<std::size_t>(closed.knob_settings[0])];
    const double f_closed = closed.readings.at("freq");
    table.add_row({epoch.t_years, f_open / 1e9,
                   std::string(f_open >= 0.97 * f0 ? "yes" : "NO"), v,
                   f_closed / 1e9,
                   std::string(closed.in_spec ? "yes" : "NO"),
                   (v * v * f_closed) / (tech.vdd * tech.vdd * f0)});
  }
  table.print(std::cout);
  std::cout << "\nThe loop buys back the aging slowdown with a slightly\n"
               "higher supply — power rises only when and as much as the\n"
               "degradation demands, instead of worst-case overdesign.\n";
  return 0;
}
