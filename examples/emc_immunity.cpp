// EMC susceptibility scenario (Sec. 4): DPI-style immunity scan of the
// Fig. 3 current reference across the regulated 150 kHz - 1 GHz band [13],
// reporting the rectified output shift and the immunity threshold.
//
//   $ ./emc_immunity
#include <iostream>

#include "emc/circuits.h"
#include "emc/emi.h"
#include "tech/tech.h"
#include "util/table.h"

using namespace relsim;
using emc::EmiAnalyzer;
using emc::Observable;

int main() {
  const TechNode& tech = tech_65nm();
  const auto bench = emc::build_current_reference(tech);
  EmiAnalyzer analyzer(*bench.circuit, bench.emi_source,
                       Observable::source_current(bench.output_monitor));

  std::cout << "current reference, I_REF = " << bench.i_ref * 1e6
            << " uA, quiet I_OUT = " << analyzer.baseline() * 1e6 << " uA\n"
            << "spec: mean output shift below 5%\n\n";

  emc::EmiOptions opt;
  opt.settle_cycles = 12;
  opt.measure_cycles = 20;

  TablePrinter table(
      {"f_MHz", "shift_pct_at_0V3", "immunity_threshold_V"});
  table.set_precision(4);
  for (double f : {1e6, 5e6, 20e6, 100e6, 400e6, 1000e6}) {
    const auto p = analyzer.measure(0.3, f, opt);
    const double amp =
        analyzer.immunity_threshold(f, 0.05 * bench.i_ref, 2.0, opt);
    table.add_row({f / 1e6, 100.0 * p.shift_rel(), amp});
  }
  table.print(std::cout);

  std::cout << "\nThe shift is always negative: the diode-connected mirror\n"
               "input rectifies the interference and the filtered gate\n"
               "carries the lowered mean (Figs. 3-4 of the paper).\n";
  return 0;
}
