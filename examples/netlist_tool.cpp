// netlist_tool: a miniature command-line front end over the whole library —
// parse a SPICE-style netlist, then run DC / transient / AC / aging on it.
//
//   $ ./netlist_tool <file.cir> op
//   $ ./netlist_tool <file.cir> tran <t_stop_s> <dt_s> [node...]
//   $ ./netlist_tool <file.cir> ac <f_lo_hz> <f_hi_hz> <points> <node>
//   $ ./netlist_tool <file.cir> age <years> [temp_k]
//
// Without arguments it runs a built-in demo netlist through all four.
#include <iostream>
#include <string>
#include <vector>

#include "aging/engine.h"
#include "spice/ac_analysis.h"
#include "spice/analysis.h"
#include "spice/netlist_parser.h"
#include "util/mathx.h"
#include "tech/tech.h"
#include "util/table.h"

using namespace relsim;
using namespace relsim::spice;

namespace {

constexpr const char* kDemoNetlist = R"(demo: common-source amplifier (65nm)
.tech 65nm
VDD vdd 0 1.1
VIN in 0 DC 0.55 AC 1
RL vdd out 5k
M1 out in 0 0 nmos W=2u L=0.2u
CL out 0 100f
.end
)";

int run_op(Circuit& c) {
  const DcResult r = dc_operating_point(c);
  TablePrinter table({"node", "V"});
  table.set_precision(6);
  for (int n = 1; n <= c.node_count(); ++n) {
    table.add_row({c.node_name(n), r.v(n)});
  }
  table.print(std::cout);
  const auto mosfets = c.mosfets();
  if (!mosfets.empty()) {
    TablePrinter devs({"device", "region", "ID_uA", "gm_mS", "ro_kOhm",
                       "vgs_V", "vds_V"});
    devs.set_precision(5);
    for (spice::Mosfet* m : mosfets) {
      const auto op = m->operating_point(r.x());
      const char* region = std::abs(op.vgs) < op.vt_eff
                               ? "subthr"
                               : (op.saturated ? "sat" : "triode");
      devs.add_row({m->name(), std::string(region), op.id * 1e6,
                    std::abs(op.gm) * 1e3,
                    op.gds != 0.0 ? 1.0 / std::abs(op.gds) / 1e3 : 0.0,
                    op.vgs, op.vds});
    }
    devs.print(std::cout);
  }
  std::cout << "(converged in " << r.iterations() << " Newton iterations)\n";
  return 0;
}

int run_tran(Circuit& c, double t_stop, double dt,
             const std::vector<std::string>& nodes) {
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = dt;
  std::vector<NodeId> probes;
  std::vector<std::string> headers{"t_s"};
  if (nodes.empty()) {
    for (int n = 1; n <= c.node_count(); ++n) probes.push_back(n);
  } else {
    for (const auto& name : nodes) probes.push_back(c.find_node(name));
  }
  for (NodeId n : probes) headers.push_back("v(" + c.node_name(n) + ")");
  const auto res = transient_analysis(c, opt, probes);
  TablePrinter table(headers);
  table.set_precision(6);
  // Print ~25 evenly spaced rows regardless of step count.
  const std::size_t stride = std::max<std::size_t>(1, res.step_count() / 25);
  for (std::size_t k = 0; k < res.step_count(); k += stride) {
    std::vector<TablePrinter::Cell> row{res.time()[k]};
    for (NodeId n : probes) row.push_back(res.node(n)[k]);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

int run_ac(Circuit& c, double f_lo, double f_hi, int points,
           const std::string& node) {
  const NodeId probe = c.find_node(node);
  const auto res = ac_analysis(c, logspace(f_lo, f_hi, points));
  TablePrinter table({"f_Hz", "mag_dB", "phase_deg"});
  table.set_precision(5);
  const auto db = res.magnitude_db(probe);
  const auto ph = res.phase(probe);
  for (std::size_t k = 0; k < res.point_count(); ++k) {
    table.add_row({res.frequencies()[k], db[k], ph[k] * 180.0 / 3.14159265});
  }
  table.print(std::cout);
  const double fc = res.corner_frequency(probe);
  if (fc > 0.0) std::cout << "-3dB corner: " << fc << " Hz\n";
  return 0;
}

int run_age(Circuit& c, double years, double temp_k, const TechNode* tech) {
  aging::AgingEngine engine = aging::AgingEngine::standard();
  aging::AgingOptions opt;
  opt.mission.years = years;
  opt.mission.temp_k = temp_k;
  opt.mission.epochs = 10;
  // EM checks need the interconnect constants of a technology node.
  std::unique_ptr<aging::EmModel> em;
  if (tech != nullptr) em = std::make_unique<aging::EmModel>(tech->em);
  const auto report = engine.age(c, opt, {}, em.get());
  TablePrinter table({"device", "dVT_mV", "beta_factor", "gate_leak_uS"});
  table.set_precision(5);
  for (const auto& [name, drift] : report.final_epoch().device_drift) {
    table.add_row({name, drift.dvt * 1e3, drift.beta_factor,
                   (drift.g_leak_gs + drift.g_leak_gd) * 1e6});
  }
  table.print(std::cout);
  for (const auto& hbd : report.hard_breakdowns) {
    std::cout << "HARD BREAKDOWN: " << hbd << '\n';
  }
  for (const auto& wf : report.wire_failures) {
    std::cout << "EM WIRE FAILURE: " << wf.wire << " at " << wf.t_fail_years
              << " years\n";
  }
  std::cout << "(re-run op/tran/ac on the same file to see the aged "
               "behaviour via the library API)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) {
      std::cout << "no arguments: running the built-in demo netlist\n";
      auto parsed = parse_netlist(kDemoNetlist);
      std::cout << "\n-- " << parsed.title << " : op --\n";
      run_op(*parsed.circuit);
      std::cout << "\n-- ac 1k..100G, v(out) --\n";
      run_ac(*parsed.circuit, 1e3, 1e11, 13, "out");
      std::cout << "\n-- age 10 years --\n";
      run_age(*parsed.circuit, 10.0, 398.0, parsed.tech);
      std::cout << "\n-- op after aging --\n";
      run_op(*parsed.circuit);
      return 0;
    }
    auto parsed = parse_netlist_file(argv[1]);
    Circuit& c = *parsed.circuit;
    const std::string cmd = argv[2];
    std::cout << parsed.title << "\n";
    if (cmd == "op") return run_op(c);
    if (cmd == "tran") {
      if (argc < 5) throw Error("tran needs <t_stop> <dt>");
      std::vector<std::string> nodes(argv + 5, argv + argc);
      return run_tran(c, parse_spice_number(argv[3]),
                      parse_spice_number(argv[4]), nodes);
    }
    if (cmd == "ac") {
      if (argc < 7) throw Error("ac needs <f_lo> <f_hi> <points> <node>");
      return run_ac(c, parse_spice_number(argv[3]),
                    parse_spice_number(argv[4]), std::stoi(argv[5]), argv[6]);
    }
    if (cmd == "age") {
      if (argc < 4) throw Error("age needs <years> [temp_k]");
      return run_age(c, parse_spice_number(argv[3]),
                     argc > 4 ? parse_spice_number(argv[4]) : 398.0,
                     parsed.tech);
    }
    throw Error("unknown command '" + cmd + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
