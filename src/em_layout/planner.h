// EM-aware physical design helpers — Sec. 3.4 of the paper:
// "the effect must be considered in the layout phase of a design. Because of
// the fixed thickness of the interconnect in a standard CMOS process, wires
// must be widened to reduce the degradation. Special layout techniques such
// as Slotted Wires [25] and good orientation of vias (Reservoir effect) [30]
// can also be used ... Some of these techniques can be applied automatically
// by the use of an EM-aware design flow [25]."
//
// EmAwarePlanner is that flow's sizing kernel: it turns (current, length,
// temperature, lifetime target) into wire widths, optionally via slotting,
// and audits existing circuits whose wires carry recorded currents.
#pragma once

#include <string>
#include <vector>

#include "aging/em.h"
#include "spice/circuit.h"

namespace relsim::em_layout {

struct WireRequest {
  std::string name;
  double current_a = 0.0;
  double length_um = 10.0;
  double temp_k = 378.0;
  bool good_via_reservoir = true;
};

struct WirePlan {
  WireRequest request;
  double width_um = 0.0;
  /// Number of parallel slotted fingers (1 = solid wire).
  int slots = 1;
  double current_density_a_cm2 = 0.0;
  double mttf_years = 0.0;
  bool blech_immune = false;
};

class EmAwarePlanner {
 public:
  EmAwarePlanner(const aging::EmModel& em, double target_lifetime_years);

  double target_lifetime_years() const { return target_years_; }

  /// Sizes a solid wire for the lifetime target.
  WirePlan plan(const WireRequest& request) const;

  /// Sizes a slotted wire [25]: the current is split over `slots` parallel
  /// fingers, each narrow enough to be bamboo. Total metal width is
  /// returned in width_um (slots * finger width); the per-finger lifetime
  /// gain comes from the bamboo factor.
  WirePlan plan_slotted(const WireRequest& request, int slots) const;

  /// Plans every request; solid wires, shared target.
  std::vector<WirePlan> plan_all(const std::vector<WireRequest>& requests) const;

  /// Evaluates (does not size) a wire of known width.
  WirePlan evaluate(const WireRequest& request, double width_um,
                    int slots = 1) const;

 private:
  aging::EmModel em_;
  double target_years_;
};

/// Audit entry for one wire of an existing circuit.
struct WireAuditEntry {
  std::string name;
  double width_um = 0.0;
  double dc_current_a = 0.0;
  double current_density_a_cm2 = 0.0;
  bool blech_immune = false;
  double mttf_years = 0.0;
  bool passes = false;
  double required_width_um = 0.0;  ///< suggested fix when failing
};

/// Audits every geometry-carrying resistor in the circuit against the
/// lifetime target. Wires must have recorded current stress (run a
/// workload with stress recording, or the DC stress runner, first).
std::vector<WireAuditEntry> audit_circuit(spice::Circuit& circuit,
                                          const aging::EmModel& em,
                                          double temp_k,
                                          double target_lifetime_years);

}  // namespace relsim::em_layout
