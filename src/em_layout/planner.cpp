#include "em_layout/planner.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace relsim::em_layout {

using aging::EmModel;
using aging::WireStress;

namespace {

WireStress to_stress(const WireRequest& req, double width_um,
                     double thickness_um) {
  WireStress s;
  s.width_um = width_um;
  s.length_um = req.length_um;
  s.thickness_um = thickness_um;
  s.dc_current_a = req.current_a;
  s.rms_current_a = req.current_a;
  s.temp_k = req.temp_k;
  s.good_via_reservoir = req.good_via_reservoir;
  return s;
}

}  // namespace

EmAwarePlanner::EmAwarePlanner(const EmModel& em, double target_lifetime_years)
    : em_(em), target_years_(target_lifetime_years) {
  RELSIM_REQUIRE(target_lifetime_years > 0.0,
                 "lifetime target must be positive");
}

WirePlan EmAwarePlanner::evaluate(const WireRequest& request, double width_um,
                                  int slots) const {
  RELSIM_REQUIRE(width_um > 0.0, "width must be positive");
  RELSIM_REQUIRE(slots >= 1, "slots must be >= 1");
  WirePlan plan;
  plan.request = request;
  plan.width_um = width_um;
  plan.slots = slots;
  // A slotted wire splits the current over `slots` identical fingers.
  WireRequest finger = request;
  finger.current_a = request.current_a / slots;
  const WireStress stress =
      to_stress(finger, width_um / slots, em_.tech().metal_thickness_um);
  plan.current_density_a_cm2 = em_.current_density_a_cm2(stress);
  plan.blech_immune = em_.blech_immune(stress);
  plan.mttf_years = em_.mttf_s(stress) / units::kSecondsPerYear;
  return plan;
}

WirePlan EmAwarePlanner::plan(const WireRequest& request) const {
  const double target_s = target_years_ * units::kSecondsPerYear;
  const double width = em_.min_width_for_lifetime_um(
      std::abs(request.current_a), request.length_um, request.temp_k,
      target_s);
  return evaluate(request, std::max(width, 1e-3));
}

WirePlan EmAwarePlanner::plan_slotted(const WireRequest& request,
                                      int slots) const {
  RELSIM_REQUIRE(slots >= 1, "slots must be >= 1");
  const double target_s = target_years_ * units::kSecondsPerYear;
  const double finger_width = em_.min_width_for_lifetime_um(
      std::abs(request.current_a) / slots, request.length_um, request.temp_k,
      target_s);
  return evaluate(request, std::max(finger_width, 1e-3) * slots, slots);
}

std::vector<WirePlan> EmAwarePlanner::plan_all(
    const std::vector<WireRequest>& requests) const {
  std::vector<WirePlan> plans;
  plans.reserve(requests.size());
  for (const auto& req : requests) plans.push_back(plan(req));
  return plans;
}

std::vector<WireAuditEntry> audit_circuit(spice::Circuit& circuit,
                                          const EmModel& em, double temp_k,
                                          double target_lifetime_years) {
  RELSIM_REQUIRE(target_lifetime_years > 0.0,
                 "lifetime target must be positive");
  std::vector<WireAuditEntry> audit;
  for (spice::Resistor* wire : circuit.wires()) {
    const WireStress stress = WireStress::from_resistor(*wire, temp_k);
    WireAuditEntry entry;
    entry.name = wire->name();
    entry.width_um = stress.width_um;
    entry.dc_current_a = stress.dc_current_a;
    entry.current_density_a_cm2 = em.current_density_a_cm2(stress);
    entry.blech_immune = em.blech_immune(stress);
    entry.mttf_years = em.mttf_s(stress) / units::kSecondsPerYear;
    entry.passes = entry.mttf_years >= target_lifetime_years;
    entry.required_width_um =
        entry.passes
            ? stress.width_um
            : em.min_width_for_lifetime_um(
                  std::abs(stress.dc_current_a), stress.length_um, temp_k,
                  target_lifetime_years * units::kSecondsPerYear);
    audit.push_back(entry);
  }
  return audit;
}

}  // namespace relsim::em_layout
