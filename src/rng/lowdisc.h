// Low-discrepancy and stratified point sets for quasi-Monte-Carlo sampling.
//
// Both generators share the framework's reproducibility contract: point i
// is a pure function of (construction parameters, i), so any sample can be
// regenerated in isolation by any worker in any order — the property the
// McSession commit path relies on for bit-identical parallel runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace relsim {

/// Dimensions covered by the built-in Joe-Kuo direction-number table.
/// Sized for the SRAM workloads: a 6T cell plus bitline/wordline
/// peripherals needs ~3 Pelgrom inputs per transistor, so 64 covers a
/// cell with margin to spare.
inline constexpr unsigned kSobolMaxDimensions = 64;

/// Sobol' sequence, evaluated directly (non-Gray-code) from the binary
/// digits of the point index, using the new-joe-kuo-6 initial direction
/// numbers for the first kSobolMaxDimensions dimensions.
///
/// A non-zero `scramble_seed` applies an Owen-style random digital shift
/// (per-dimension XOR word derived through derive_seed), decorrelating
/// repeated runs while preserving the net's equidistribution. The raw
/// point 0 is the origin in every dimension; coordinates are therefore
/// returned as (x ^ shift + 1/2) * 2^-32, which keeps every value strictly
/// inside (0, 1) — safe to push through an inverse CDF.
class SobolSequence {
 public:
  explicit SobolSequence(unsigned dimensions, std::uint64_t scramble_seed = 0);

  unsigned dimensions() const { return static_cast<unsigned>(direction_.size()); }

  /// Coordinate `dim` of point `index`, in (0, 1).
  double coordinate(std::uint64_t index, unsigned dim) const;

 private:
  std::vector<std::array<std::uint32_t, 32>> direction_;
  std::vector<std::uint32_t> shift_;
};

/// Latin-hypercube point set: n points in [0, 1)^d where every dimension's
/// coordinates occupy each of the n equal strata exactly once. Strata are
/// assigned through an independent Fisher-Yates permutation per dimension
/// (stream derive_seed(seed, {tag, dim})) and jittered inside the stratum
/// from a per-point stream (derive_seed(seed, {tag, index})), so point i
/// is independent of the order points are requested in.
class LatinHypercube {
 public:
  LatinHypercube(std::size_t n, unsigned dimensions, std::uint64_t seed);

  std::size_t size() const { return n_; }
  unsigned dimensions() const { return static_cast<unsigned>(perm_.size()); }

  /// All coordinates of point `index` (jitter drawn in dimension order).
  std::vector<double> point(std::size_t index) const;

  /// Stratum of point `index` in dimension `dim` — the Latin property is
  /// that for fixed dim this is a bijection {0..n-1} -> {0..n-1}.
  std::uint32_t stratum(std::size_t index, unsigned dim) const;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  std::vector<std::vector<std::uint32_t>> perm_;  // [dim][index] -> stratum
};

}  // namespace relsim
