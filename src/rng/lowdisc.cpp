#include "rng/lowdisc.h"

#include <numeric>

#include "rng/rng.h"
#include "util/error.h"

namespace relsim {
namespace {

// Stream tags keeping the scramble / permutation / jitter streams of one
// base seed decorrelated from each other and from sample evaluation.
constexpr std::uint64_t kSobolScrambleTag = 0x536f626f6c736372ull;  // "Sobolscr"
constexpr std::uint64_t kLhsPermTag = 0x4c48537065726d30ull;        // "LHSperm0"
constexpr std::uint64_t kLhsJitterTag = 0x4c48536a69747430ull;      // "LHSjitt0"

// Primitive-polynomial degree s, coefficient word a, and initial direction
// numbers m for Sobol dimensions 1..20 (dimension 0 is van der Corput).
// First rows of the Joe-Kuo "new-joe-kuo-6" table.
struct JoeKuoRow {
  unsigned s;
  std::uint32_t a;
  std::uint32_t m[7];
};

constexpr JoeKuoRow kJoeKuo[kSobolMaxDimensions - 1] = {
    {1, 0, {1}},
    {2, 1, {1, 3}},
    {3, 1, {1, 3, 1}},
    {3, 2, {1, 1, 1}},
    {4, 1, {1, 1, 3, 3}},
    {4, 4, {1, 3, 5, 13}},
    {5, 2, {1, 1, 5, 5, 17}},
    {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
    {5, 11, {1, 1, 5, 1, 1}},
    {5, 13, {1, 1, 1, 3, 11}},
    {5, 14, {1, 3, 5, 5, 31}},
    {6, 1, {1, 3, 3, 9, 7, 49}},
    {6, 13, {1, 1, 1, 15, 21, 21}},
    {6, 16, {1, 3, 1, 13, 27, 49}},
    {6, 19, {1, 1, 1, 15, 7, 5}},
    {6, 22, {1, 3, 1, 15, 13, 25}},
    {6, 25, {1, 1, 5, 5, 19, 61}},
    {7, 1, {1, 3, 7, 11, 23, 15, 103}},
    {7, 4, {1, 3, 7, 13, 13, 21, 79}},
};

std::array<std::uint32_t, 32> direction_numbers(unsigned dim) {
  std::array<std::uint32_t, 32> v{};
  if (dim == 0) {
    for (unsigned b = 0; b < 32; ++b) v[b] = 1u << (31 - b);
    return v;
  }
  const JoeKuoRow& row = kJoeKuo[dim - 1];
  for (unsigned b = 0; b < row.s && b < 32; ++b) {
    v[b] = row.m[b] << (31 - b);
  }
  for (unsigned b = row.s; b < 32; ++b) {
    v[b] = v[b - row.s] ^ (v[b - row.s] >> row.s);
    for (unsigned k = 1; k < row.s; ++k) {
      if ((row.a >> (row.s - 1 - k)) & 1u) v[b] ^= v[b - k];
    }
  }
  return v;
}

}  // namespace

SobolSequence::SobolSequence(unsigned dimensions,
                             std::uint64_t scramble_seed) {
  RELSIM_REQUIRE(dimensions >= 1, "Sobol sequence needs >= 1 dimension");
  RELSIM_REQUIRE(dimensions <= kSobolMaxDimensions,
                 "Sobol direction-number table covers 21 dimensions");
  direction_.reserve(dimensions);
  shift_.reserve(dimensions);
  for (unsigned d = 0; d < dimensions; ++d) {
    direction_.push_back(direction_numbers(d));
    shift_.push_back(
        scramble_seed == 0
            ? 0u
            : static_cast<std::uint32_t>(
                  derive_seed(scramble_seed, {kSobolScrambleTag, d}) >> 32));
  }
}

double SobolSequence::coordinate(std::uint64_t index, unsigned dim) const {
  RELSIM_REQUIRE(dim < direction_.size(), "Sobol dimension out of range");
  const auto& v = direction_[dim];
  std::uint32_t x = 0;
  std::uint32_t bits = static_cast<std::uint32_t>(index);
  for (unsigned b = 0; bits != 0; ++b, bits >>= 1) {
    if (bits & 1u) x ^= v[b];
  }
  x ^= shift_[dim];
  // Half-ulp offset keeps the origin point (and every other) inside (0,1).
  return (static_cast<double>(x) + 0.5) * 0x1p-32;
}

LatinHypercube::LatinHypercube(std::size_t n, unsigned dimensions,
                               std::uint64_t seed)
    : n_(n), seed_(seed) {
  RELSIM_REQUIRE(n >= 1, "Latin hypercube needs >= 1 point");
  RELSIM_REQUIRE(dimensions >= 1, "Latin hypercube needs >= 1 dimension");
  perm_.reserve(dimensions);
  for (unsigned d = 0; d < dimensions; ++d) {
    std::vector<std::uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0u);
    Xoshiro256 rng(derive_seed(seed, {kLhsPermTag, d}));
    for (std::size_t i = n; i > 1; --i) {
      const std::uint64_t j = rng.uniform_index(i);
      std::swap(p[i - 1], p[j]);
    }
    perm_.push_back(std::move(p));
  }
}

std::vector<double> LatinHypercube::point(std::size_t index) const {
  RELSIM_REQUIRE(index < n_, "Latin hypercube point index out of range");
  Xoshiro256 rng(derive_seed(seed_, {kLhsJitterTag, index}));
  std::vector<double> coords(perm_.size());
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t d = 0; d < perm_.size(); ++d) {
    coords[d] =
        (static_cast<double>(perm_[d][index]) + rng.uniform01()) * inv_n;
  }
  return coords;
}

std::uint32_t LatinHypercube::stratum(std::size_t index, unsigned dim) const {
  RELSIM_REQUIRE(index < n_, "Latin hypercube point index out of range");
  RELSIM_REQUIRE(dim < perm_.size(), "Latin hypercube dimension out of range");
  return perm_[dim][index];
}

}  // namespace relsim
