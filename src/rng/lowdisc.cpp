#include "rng/lowdisc.h"

#include <numeric>
#include <string>

#include "rng/rng.h"
#include "util/error.h"

namespace relsim {
namespace {

// Stream tags keeping the scramble / permutation / jitter streams of one
// base seed decorrelated from each other and from sample evaluation.
constexpr std::uint64_t kSobolScrambleTag = 0x536f626f6c736372ull;  // "Sobolscr"
constexpr std::uint64_t kLhsPermTag = 0x4c48537065726d30ull;        // "LHSperm0"
constexpr std::uint64_t kLhsJitterTag = 0x4c48536a69747430ull;      // "LHSjitt0"

// Primitive-polynomial degree s, coefficient word a, and initial direction
// numbers m for Sobol dimensions 1..63 (dimension 0 is van der Corput).
// Dimensions 1..20 are the first rows of the Joe-Kuo "new-joe-kuo-6"
// table, kept verbatim so draws in those dimensions are bit-identical to
// the original 21-dimension build. Dimensions 21..63 continue the same
// polynomial sequence — all primitive polynomials over GF(2), ordered by
// degree then by coefficient word a (the Joe-Kuo ordering, verified
// against the published degree-<=7 rows) — with odd initial direction
// numbers m_i < 2^i, which is exactly the condition for a valid digital
// net (the published m values only optimize 2D projections). The m values
// are additionally chosen so every dimension's first five direction
// numbers are pairwise distinct — otherwise two dimensions would emit
// identical 32-point prefixes.
struct JoeKuoRow {
  unsigned s;
  std::uint32_t a;
  std::uint32_t m[9];
};

constexpr JoeKuoRow kJoeKuo[kSobolMaxDimensions - 1] = {
    {1, 0, {1}},
    {2, 1, {1, 3}},
    {3, 1, {1, 3, 1}},
    {3, 2, {1, 1, 1}},
    {4, 1, {1, 1, 3, 3}},
    {4, 4, {1, 3, 5, 13}},
    {5, 2, {1, 1, 5, 5, 17}},
    {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
    {5, 11, {1, 1, 5, 1, 1}},
    {5, 13, {1, 1, 1, 3, 11}},
    {5, 14, {1, 3, 5, 5, 31}},
    {6, 1, {1, 3, 3, 9, 7, 49}},
    {6, 13, {1, 1, 1, 15, 21, 21}},
    {6, 16, {1, 3, 1, 13, 27, 49}},
    {6, 19, {1, 1, 1, 15, 7, 5}},
    {6, 22, {1, 3, 1, 15, 13, 25}},
    {6, 25, {1, 1, 5, 5, 19, 61}},
    {7, 1, {1, 3, 7, 11, 23, 15, 103}},
    {7, 4, {1, 3, 7, 13, 13, 21, 79}},
    {7, 7, {1, 3, 1, 13, 9, 41, 75}},
    {7, 8, {1, 3, 7, 5, 13, 57, 17}},
    {7, 14, {1, 1, 7, 11, 17, 5, 115}},
    {7, 19, {1, 3, 7, 3, 25, 33, 113}},
    {7, 21, {1, 1, 5, 7, 11, 11, 25}},
    {7, 28, {1, 3, 3, 11, 23, 5, 97}},
    {7, 31, {1, 3, 1, 7, 9, 61, 97}},
    {7, 32, {1, 1, 1, 13, 11, 55, 125}},
    {7, 37, {1, 1, 5, 13, 27, 37, 103}},
    {7, 41, {1, 3, 1, 3, 7, 33, 35}},
    {7, 42, {1, 1, 5, 9, 13, 35, 83}},
    {7, 50, {1, 1, 5, 15, 11, 41, 125}},
    {7, 55, {1, 1, 3, 5, 21, 27, 91}},
    {7, 56, {1, 3, 5, 13, 9, 29, 11}},
    {7, 59, {1, 3, 3, 13, 21, 23, 95}},
    {7, 62, {1, 3, 3, 1, 27, 57, 79}},
    {8, 14, {1, 1, 1, 7, 25, 3, 7, 39}},
    {8, 21, {1, 1, 7, 5, 3, 11, 83, 101}},
    {8, 22, {1, 3, 1, 11, 19, 19, 33, 37}},
    {8, 38, {1, 1, 3, 7, 17, 21, 57, 255}},
    {8, 47, {1, 3, 5, 7, 31, 19, 123, 127}},
    {8, 49, {1, 3, 5, 3, 17, 51, 65, 245}},
    {8, 50, {1, 1, 1, 3, 25, 35, 9, 79}},
    {8, 52, {1, 3, 1, 5, 7, 43, 115, 193}},
    {8, 56, {1, 3, 7, 11, 29, 15, 83, 145}},
    {8, 67, {1, 3, 3, 11, 7, 45, 3, 19}},
    {8, 70, {1, 3, 7, 7, 25, 17, 103, 237}},
    {8, 84, {1, 3, 7, 9, 9, 19, 59, 121}},
    {8, 97, {1, 1, 5, 13, 21, 45, 37, 153}},
    {8, 103, {1, 1, 7, 13, 27, 49, 41, 227}},
    {8, 115, {1, 3, 1, 1, 19, 23, 1, 171}},
    {8, 122, {1, 3, 1, 11, 7, 59, 109, 103}},
    {9, 8, {1, 1, 1, 13, 17, 35, 53, 101, 123}},
    {9, 13, {1, 1, 7, 7, 19, 11, 121, 61, 37}},
    {9, 16, {1, 3, 1, 5, 25, 31, 17, 51, 191}},
    {9, 22, {1, 3, 1, 5, 19, 45, 35, 141, 15}},
    {9, 25, {1, 1, 5, 11, 25, 21, 23, 145, 511}},
    {9, 44, {1, 3, 7, 5, 27, 35, 23, 203, 83}},
    {9, 47, {1, 3, 5, 7, 17, 25, 91, 199, 249}},
    {9, 52, {1, 1, 1, 15, 5, 47, 107, 229, 259}},
    {9, 55, {1, 3, 1, 15, 31, 17, 17, 59, 79}},
    {9, 59, {1, 3, 1, 1, 13, 21, 21, 191, 491}},
    {9, 62, {1, 3, 1, 7, 5, 31, 81, 65, 453}},
};

std::array<std::uint32_t, 32> direction_numbers(unsigned dim) {
  std::array<std::uint32_t, 32> v{};
  if (dim == 0) {
    for (unsigned b = 0; b < 32; ++b) v[b] = 1u << (31 - b);
    return v;
  }
  const JoeKuoRow& row = kJoeKuo[dim - 1];
  for (unsigned b = 0; b < row.s && b < 32; ++b) {
    v[b] = row.m[b] << (31 - b);
  }
  for (unsigned b = row.s; b < 32; ++b) {
    v[b] = v[b - row.s] ^ (v[b - row.s] >> row.s);
    for (unsigned k = 1; k < row.s; ++k) {
      if ((row.a >> (row.s - 1 - k)) & 1u) v[b] ^= v[b - k];
    }
  }
  return v;
}

}  // namespace

SobolSequence::SobolSequence(unsigned dimensions,
                             std::uint64_t scramble_seed) {
  RELSIM_REQUIRE(dimensions >= 1, "Sobol sequence needs >= 1 dimension");
  RELSIM_REQUIRE(dimensions <= kSobolMaxDimensions,
                 "Sobol direction-number table covers " +
                     std::to_string(kSobolMaxDimensions) +
                     " dimensions; requested " + std::to_string(dimensions));
  direction_.reserve(dimensions);
  shift_.reserve(dimensions);
  for (unsigned d = 0; d < dimensions; ++d) {
    direction_.push_back(direction_numbers(d));
    shift_.push_back(
        scramble_seed == 0
            ? 0u
            : static_cast<std::uint32_t>(
                  derive_seed(scramble_seed, {kSobolScrambleTag, d}) >> 32));
  }
}

double SobolSequence::coordinate(std::uint64_t index, unsigned dim) const {
  RELSIM_REQUIRE(dim < direction_.size(), "Sobol dimension out of range");
  const auto& v = direction_[dim];
  std::uint32_t x = 0;
  std::uint32_t bits = static_cast<std::uint32_t>(index);
  for (unsigned b = 0; bits != 0; ++b, bits >>= 1) {
    if (bits & 1u) x ^= v[b];
  }
  x ^= shift_[dim];
  // Half-ulp offset keeps the origin point (and every other) inside (0,1).
  return (static_cast<double>(x) + 0.5) * 0x1p-32;
}

LatinHypercube::LatinHypercube(std::size_t n, unsigned dimensions,
                               std::uint64_t seed)
    : n_(n), seed_(seed) {
  RELSIM_REQUIRE(n >= 1, "Latin hypercube needs >= 1 point");
  RELSIM_REQUIRE(dimensions >= 1, "Latin hypercube needs >= 1 dimension");
  perm_.reserve(dimensions);
  for (unsigned d = 0; d < dimensions; ++d) {
    std::vector<std::uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0u);
    Xoshiro256 rng(derive_seed(seed, {kLhsPermTag, d}));
    for (std::size_t i = n; i > 1; --i) {
      const std::uint64_t j = rng.uniform_index(i);
      std::swap(p[i - 1], p[j]);
    }
    perm_.push_back(std::move(p));
  }
}

std::vector<double> LatinHypercube::point(std::size_t index) const {
  RELSIM_REQUIRE(index < n_, "Latin hypercube point index out of range");
  Xoshiro256 rng(derive_seed(seed_, {kLhsJitterTag, index}));
  std::vector<double> coords(perm_.size());
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t d = 0; d < perm_.size(); ++d) {
    coords[d] =
        (static_cast<double>(perm_[d][index]) + rng.uniform01()) * inv_n;
  }
  return coords;
}

std::uint32_t LatinHypercube::stratum(std::size_t index, unsigned dim) const {
  RELSIM_REQUIRE(index < n_, "Latin hypercube point index out of range");
  RELSIM_REQUIRE(dim < perm_.size(), "Latin hypercube dimension out of range");
  return perm_[dim][index];
}

}  // namespace relsim
