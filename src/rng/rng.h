// Reproducible random number generation.
//
// Monte-Carlo results in relsim must be bit-reproducible across platforms
// and across parallel decompositions, so we do not use std:: engines or
// std:: distributions (their stream is implementation-defined). The engine
// is xoshiro256++, seeded through SplitMix64. derive_seed() hashes an
// arbitrary list of stream identifiers into an independent seed so that
// (experiment, sample-index) pairs get decorrelated streams — any MC sample
// can be regenerated in isolation.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

namespace relsim {

/// SplitMix64 step; also used as the seed-derivation hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 as recommended by the
  /// xoshiro authors; any 64-bit seed (including 0) is valid.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Derives a decorrelated seed from a base seed and a list of stream ids
/// (e.g. {experiment_id, sample_index}). Deterministic and order-sensitive.
std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> stream);

}  // namespace relsim
