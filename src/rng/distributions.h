// Portable, reproducible sampling distributions.
//
// The standard-library distributions produce implementation-defined streams;
// these implementations are fully specified so MC experiments reproduce
// bit-for-bit everywhere. Each distribution is a small value type holding
// its parameters; sampling takes the engine explicitly.
#pragma once

#include "rng/rng.h"

namespace relsim {

/// Normal(mean, sigma) via the Marsaglia polar method. Each sample draws a
/// fresh pair (no cached spare), so a given (seed, call index) always yields
/// the same value regardless of which distributions were sampled before.
class NormalDistribution {
 public:
  NormalDistribution(double mean, double sigma);
  double operator()(Xoshiro256& rng) const;
  double mean() const { return mean_; }
  double sigma() const { return sigma_; }

 private:
  double mean_;
  double sigma_;
};

/// LogNormal: exp(Normal(mu, sigma)) — mu/sigma are the parameters of the
/// underlying normal (the convention used for EM lifetime spread).
class LogNormalDistribution {
 public:
  LogNormalDistribution(double mu, double sigma);
  double operator()(Xoshiro256& rng) const;

  /// Builds the distribution from the median t50 and log-space sigma
  /// (EM convention: mu = ln t50).
  static LogNormalDistribution from_median(double median, double sigma);

 private:
  NormalDistribution normal_;
};

/// Weibull(shape k, scale lambda) via inverse-CDF sampling.
/// CDF: F(t) = 1 - exp(-(t/lambda)^k). Used for time-to-breakdown (TDDB).
class WeibullDistribution {
 public:
  WeibullDistribution(double shape, double scale);
  double operator()(Xoshiro256& rng) const;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// Quantile function (inverse CDF) at probability p in (0,1).
  double quantile(double p) const;

  /// CDF at time t >= 0.
  double cdf(double t) const;

 private:
  double shape_;
  double scale_;
};

/// Exponential(rate) via inverse CDF.
class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double rate);
  double operator()(Xoshiro256& rng) const;

 private:
  double rate_;
};

/// Bernoulli(p) -> bool.
class BernoulliDistribution {
 public:
  explicit BernoulliDistribution(double p);
  bool operator()(Xoshiro256& rng) const;

 private:
  double p_;
};

}  // namespace relsim
