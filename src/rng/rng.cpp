#include "rng/rng.h"

#include "util/error.h"

namespace relsim {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  RELSIM_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> stream) {
  std::uint64_t state = base ^ 0xd6e8feb86659fd93ull;
  std::uint64_t acc = splitmix64(state);
  for (std::uint64_t id : stream) {
    state ^= id + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
    acc = splitmix64(state);
  }
  return acc;
}

}  // namespace relsim
