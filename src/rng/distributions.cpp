#include "rng/distributions.h"

#include <cmath>

#include "util/error.h"

namespace relsim {

NormalDistribution::NormalDistribution(double mean, double sigma)
    : mean_(mean), sigma_(sigma) {
  RELSIM_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
}

double NormalDistribution::operator()(Xoshiro256& rng) const {
  // Marsaglia polar method; the second variate of the pair is discarded so
  // that the sample stream has no hidden state.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      return mean_ + sigma_ * u * factor;
    }
  }
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : normal_(mu, sigma) {}

double LogNormalDistribution::operator()(Xoshiro256& rng) const {
  return std::exp(normal_(rng));
}

LogNormalDistribution LogNormalDistribution::from_median(double median,
                                                         double sigma) {
  RELSIM_REQUIRE(median > 0.0, "lognormal median must be positive");
  return LogNormalDistribution(std::log(median), sigma);
}

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  RELSIM_REQUIRE(shape > 0.0 && scale > 0.0,
                 "Weibull shape and scale must be positive");
}

double WeibullDistribution::quantile(double p) const {
  RELSIM_REQUIRE(p > 0.0 && p < 1.0, "Weibull quantile needs p in (0,1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double WeibullDistribution::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(t / scale_, shape_));
}

double WeibullDistribution::operator()(Xoshiro256& rng) const {
  // 1 - u is uniform on (0,1]; guard the u==0 endpoint explicitly.
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  RELSIM_REQUIRE(rate > 0.0, "exponential rate must be positive");
}

double ExponentialDistribution::operator()(Xoshiro256& rng) const {
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -std::log1p(-u) / rate_;
}

BernoulliDistribution::BernoulliDistribution(double p) : p_(p) {
  RELSIM_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli p must be in [0,1]");
}

bool BernoulliDistribution::operator()(Xoshiro256& rng) const {
  return rng.uniform01() < p_;
}

}  // namespace relsim
