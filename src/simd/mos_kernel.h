// Batched (lane-parallel) MOSFET evaluation kernels with runtime dispatch.
//
// The batched Monte-Carlo path evaluates the SAME device at K samples'
// terminal voltages and per-sample parameters in lockstep. The work is
// embarrassingly lane-parallel, so it vectorizes: the AVX2+FMA kernel
// processes 4 lanes per instruction, with a scalar kernel as both the
// fallback and the golden reference (it calls mos_eval_core, the exact
// function spice::Mosfet::evaluate uses — bit-identical by construction).
//
// Dispatch policy: active_simd_level() picks AVX2 when the CPU supports
// it, overridable with RELSIM_SIMD=scalar|avx2|auto. Every lane result is
// independent of its neighbours (element-wise ops only, no horizontal
// reductions), so a K-lane batch and K single-lane calls produce the same
// bits at either level — which keeps batched MC runs deterministic across
// chunk fallbacks and worker counts.
#pragma once

#include <cstddef>

#include "simd/mos_eval_core.h"

namespace relsim::simd {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

const char* to_string(SimdLevel level);

/// True when the CPU can run the AVX2+FMA kernel.
bool cpu_supports_avx2();

/// Resolves a RELSIM_SIMD-style override ("scalar", "avx2", "auto",
/// null/empty = auto). Auto picks the best supported level; an explicit
/// "avx2" on a CPU without it warns and falls back to scalar; an unknown
/// value warns and resolves as auto.
SimdLevel resolve_simd_level(const char* override_value);

/// Process-wide dispatch decision: resolve_simd_level(getenv("RELSIM_SIMD")),
/// computed once on first use.
SimdLevel active_simd_level();

/// One device's lane arrays, all of length `count` (no alignment
/// requirement). Inputs: per-lane terminal voltages and effective
/// per-sample parameters (see mos_eval_core.h for the vt_base/beta/lambda
/// conventions). Outputs: actual-frame id/gm/gds/gmb per lane.
struct MosLaneView {
  const double* vd = nullptr;
  const double* vg = nullptr;
  const double* vs = nullptr;
  const double* vb = nullptr;
  const double* vt_base = nullptr;
  const double* beta = nullptr;
  const double* lambda = nullptr;
  double* id = nullptr;
  double* gm = nullptr;
  double* gds = nullptr;
  double* gmb = nullptr;
};

/// Scalar reference kernel: mos_eval_core per lane.
void mos_eval_lanes_scalar(const MosDeviceConsts& c, const MosLaneView& v,
                           std::size_t count);

/// AVX2+FMA kernel (4 lanes per op, scalar tail). Call only when
/// cpu_supports_avx2(); without AVX2 support compiled in, it forwards to
/// the scalar kernel.
void mos_eval_lanes_avx2(const MosDeviceConsts& c, const MosLaneView& v,
                         std::size_t count);

/// Kernel at an explicit level (equivalence tests and benches compare
/// levels side by side within one process).
void mos_eval_lanes_at(SimdLevel level, const MosDeviceConsts& c,
                       const MosLaneView& v, std::size_t count);

/// Runtime-dispatched kernel: mos_eval_lanes_at(active_simd_level(), ...).
void mos_eval_lanes(const MosDeviceConsts& c, const MosLaneView& v,
                    std::size_t count);

}  // namespace relsim::simd
