#include "simd/mos_kernel.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/log.h"

namespace relsim::simd {

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool cpu_supports_avx2() {
#if RELSIM_SIMD_HAVE_AVX2 && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdLevel resolve_simd_level(const char* override_value) {
  const bool avx2_ok = cpu_supports_avx2();
  if (override_value != nullptr && *override_value != '\0') {
    if (std::strcmp(override_value, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(override_value, "avx2") == 0) {
      if (avx2_ok) return SimdLevel::kAvx2;
      static std::once_flag warned;
      std::call_once(warned, [] {
        log_warn("RELSIM_SIMD=avx2 requested but the CPU (or this build) "
                 "does not support AVX2+FMA; using the scalar kernel");
      });
      return SimdLevel::kScalar;
    }
    if (std::strcmp(override_value, "auto") != 0) {
      static std::once_flag warned;
      std::call_once(warned, [override_value] {
        log_warn("ignoring unknown RELSIM_SIMD value \"", override_value,
                 "\" (expected scalar|avx2|auto)");
      });
    }
  }
  return avx2_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

SimdLevel active_simd_level() {
  static const SimdLevel level = resolve_simd_level(std::getenv("RELSIM_SIMD"));
  return level;
}

void mos_eval_lanes_scalar(const MosDeviceConsts& c, const MosLaneView& v,
                           std::size_t count) {
  for (std::size_t l = 0; l < count; ++l) {
    const MosEvalResult r =
        mos_eval_core(c, v.vt_base[l], v.beta[l], v.lambda[l], v.vd[l],
                      v.vg[l], v.vs[l], v.vb[l]);
    v.id[l] = r.id;
    v.gm[l] = r.gm;
    v.gds[l] = r.gds;
    v.gmb[l] = r.gmb;
  }
}

#if !RELSIM_SIMD_HAVE_AVX2
void mos_eval_lanes_avx2(const MosDeviceConsts& c, const MosLaneView& v,
                         std::size_t count) {
  mos_eval_lanes_scalar(c, v, count);
}
#endif

void mos_eval_lanes_at(SimdLevel level, const MosDeviceConsts& c,
                       const MosLaneView& v, std::size_t count) {
  if (level == SimdLevel::kAvx2) {
    mos_eval_lanes_avx2(c, v, count);
  } else {
    mos_eval_lanes_scalar(c, v, count);
  }
}

void mos_eval_lanes(const MosDeviceConsts& c, const MosLaneView& v,
                    std::size_t count) {
  mos_eval_lanes_at(active_simd_level(), c, v, count);
}

}  // namespace relsim::simd
