// AVX2+FMA lane kernel for the level-1 MOSFET evaluation.
//
// Mirrors mos_eval_core branch for branch, with every piecewise decision
// turned into a blend mask so four lanes advance in lockstep. The only
// transcendental inputs are softplus/softplus_deriv, built here from a
// vector exp on (-inf, 0] (Cody-Waite range reduction, degree-13 Taylor,
// exponent bit-trick scaling) and a vector log1p on [0, 1] (atanh series):
// both sub-ulp-accurate on those restricted domains, so the kernel lands
// within ~1e-14 relative of the scalar oracle — well inside the 1e-12
// equivalence bound the tests enforce. FMA contraction and the shared-sqrt
// blend make results differ from scalar in the last bits, which is why
// scalar-vs-avx2 equivalence is tolerance-based rather than bitwise.
//
// Every op is element-wise (no horizontal reductions) and the tail is
// padded through the same 4-wide path, so a lane's outputs depend only on
// its own inputs — batch width never changes results.
//
// This translation unit is compiled with -mavx2 -mfma; it must contain no
// code that runs before cpu_supports_avx2() has been consulted.
#include "simd/mos_kernel.h"

#if RELSIM_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace relsim::simd {
namespace {

inline __m256d vset1(double x) { return _mm256_set1_pd(x); }

/// exp(x) for x <= 0. Inputs below -708 are clamped (the true result is
/// subnormal-or-zero there; the clamp keeps the 2^n exponent trick inside
/// the normal range and the ~1e-308 answer is harmless slack in log1p).
inline __m256d vexp_nonpos(__m256d x) {
  x = _mm256_max_pd(x, vset1(-708.0));
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, vset1(1.4426950408889634074)),  // log2(e)
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - n*ln2, split high/low so the reduction is exact to ~1e-19.
  __m256d r = _mm256_fnmadd_pd(n, vset1(6.93147180369123816490e-1), x);
  r = _mm256_fnmadd_pd(n, vset1(1.90821492927058770002e-10), r);
  // Taylor to degree 13: |r| <= ln2/2 makes the truncation ~2e-16 relative.
  __m256d p = vset1(1.0 / 6227020800.0);
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 479001600.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 39916800.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 362880.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 40320.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 5040.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 720.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 120.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 24.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0 / 6.0));
  p = _mm256_fmadd_pd(p, r, vset1(0.5));
  p = _mm256_fmadd_pd(p, r, vset1(1.0));
  p = _mm256_fmadd_pd(p, r, vset1(1.0));
  // 2^n via the exponent field; n in [-1022, 0] after the clamp.
  const __m256i n64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
  const __m256d scale = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52));
  return _mm256_mul_pd(p, scale);
}

/// log1p(u) for u in [0, 1]: log(1+u) = 2*atanh(u/(2+u)); the argument
/// w <= 1/3 keeps the 18-term odd series below 1e-17 truncation error.
inline __m256d vlog1p01(__m256d u) {
  const __m256d w = _mm256_div_pd(u, _mm256_add_pd(vset1(2.0), u));
  const __m256d w2 = _mm256_mul_pd(w, w);
  __m256d p = vset1(1.0 / 35.0);
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 33.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 31.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 29.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 27.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 25.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 23.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 21.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 19.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 17.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 15.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 13.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 11.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 9.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 7.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 5.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0 / 3.0));
  p = _mm256_fmadd_pd(p, w2, vset1(1.0));
  return _mm256_mul_pd(_mm256_add_pd(w, w), p);
}

struct SoftplusPair {
  __m256d sp;   ///< softplus(x, s)
  __m256d dsp;  ///< d softplus / dx (logistic of x/s)
};

/// Stable joint softplus/derivative: with u = exp(-|x/s|) in (0, 1],
///   softplus = max(x, 0) + s*log1p(u)
///   deriv    = x > 0 ? 1/(1+u) : u/(1+u)
/// which reproduces the scalar piecewise definition (mathx.cpp) within
/// ~1e-16 across the whole real line with no overflow.
inline SoftplusPair vsoftplus(__m256d x, double smooth) {
  const __m256d s = vset1(smooth);
  const __m256d z = _mm256_div_pd(x, s);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d pos = _mm256_cmp_pd(z, zero, _CMP_GT_OQ);
  const __m256d u = vexp_nonpos(_mm256_min_pd(z, _mm256_sub_pd(zero, z)));
  const __m256d one_plus_u = _mm256_add_pd(vset1(1.0), u);
  SoftplusPair out;
  out.sp = _mm256_add_pd(_mm256_and_pd(pos, x),
                         _mm256_mul_pd(s, vlog1p01(u)));
  out.dsp = _mm256_blendv_pd(_mm256_div_pd(u, one_plus_u),
                             _mm256_div_pd(vset1(1.0), one_plus_u), pos);
  return out;
}

struct Lanes4 {
  __m256d id, gm, gds, gmb;
};

inline Lanes4 eval4(const MosDeviceConsts& c, __m256d vd, __m256d vg,
                    __m256d vs, __m256d vb, __m256d vt_base, __m256d beta,
                    __m256d lambda) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = vset1(1.0);
  const __m256d s = vset1(c.type_sign);

  // Equivalent-NMOS frame; drain/source reversal handled by min/max plus a
  // mask instead of a swap.
  const __m256d vde = _mm256_mul_pd(s, vd);
  const __m256d vge = _mm256_mul_pd(s, vg);
  const __m256d vse = _mm256_mul_pd(s, vs);
  const __m256d vbe = _mm256_mul_pd(s, vb);
  const __m256d rev = _mm256_cmp_pd(vde, vse, _CMP_LT_OQ);
  const __m256d vhi = _mm256_max_pd(vde, vse);
  const __m256d vlo = _mm256_min_pd(vde, vse);
  const __m256d vgs = _mm256_sub_pd(vge, vlo);
  const __m256d vds = _mm256_sub_pd(vhi, vlo);
  const __m256d vbs = _mm256_sub_pd(vbe, vlo);

  // Body effect with the smoothed forward-bias clamp (see mos_eval_core).
  __m256d body = zero;
  __m256d dvt_dvbs = zero;
  if (c.gamma > 0.0) {
    const __m256d gamma = vset1(c.gamma);
    const __m256d y = _mm256_sub_pd(vset1(0.9 * c.phi), vbs);
    const __m256d far_mask =
        _mm256_cmp_pd(y, vset1(40.0 * kVbsClampSmoothV), _CMP_GT_OQ);
    const SoftplusPair gap = vsoftplus(y, kVbsClampSmoothV);
    // Far lanes use the raw bias (exact branch); near lanes the smoothed
    // clamp. Blending the bias before the shared sqrt keeps its argument
    // positive in every lane.
    const __m256d vbs_c = _mm256_sub_pd(vset1(0.9 * c.phi), gap.sp);
    const __m256d bias = _mm256_blendv_pd(vbs_c, vbs, far_mask);
    const __m256d root = _mm256_sqrt_pd(_mm256_sub_pd(vset1(c.phi), bias));
    body = _mm256_mul_pd(gamma, _mm256_sub_pd(root, vset1(std::sqrt(c.phi))));
    const __m256d slope = _mm256_div_pd(gamma, _mm256_add_pd(root, root));
    const __m256d fade = _mm256_blendv_pd(gap.dsp, one, far_mask);
    dvt_dvbs = _mm256_sub_pd(zero, _mm256_mul_pd(slope, fade));
  }
  const __m256d vt_eff = _mm256_add_pd(vt_base, body);

  const SoftplusPair ov = vsoftplus(_mm256_sub_pd(vgs, vt_eff), c.ss_v);
  const __m256d vov = ov.sp;
  const __m256d dvov_dvgs = ov.dsp;
  const __m256d dvov_dvbs =
      _mm256_sub_pd(zero, _mm256_mul_pd(dvov_dvgs, dvt_dvbs));

  // Saturation/triode selected per lane; both right-hand sides are cheap
  // polynomials so computing both and blending beats a branch.
  const __m256d sat = _mm256_cmp_pd(vds, vov, _CMP_GE_OQ);
  const __m256d clm = _mm256_fmadd_pd(lambda, vds, one);
  const __m256d half_beta = _mm256_mul_pd(vset1(0.5), beta);
  const __m256d vov2 = _mm256_mul_pd(vov, vov);
  const __m256d i_sat = _mm256_mul_pd(_mm256_mul_pd(half_beta, vov2), clm);
  const __m256d gm_sat =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(beta, vov), clm), dvov_dvgs);
  const __m256d gds_sat = _mm256_mul_pd(_mm256_mul_pd(half_beta, vov2), lambda);
  const __m256d q = _mm256_fmsub_pd(vov, vds, _mm256_mul_pd(
                                                  _mm256_mul_pd(vset1(0.5), vds),
                                                  vds));
  const __m256d i_tri = _mm256_mul_pd(_mm256_mul_pd(beta, q), clm);
  const __m256d gm_tri =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(beta, vds), clm), dvov_dvgs);
  const __m256d gds_tri = _mm256_mul_pd(
      beta, _mm256_fmadd_pd(_mm256_sub_pd(vov, vds), clm,
                            _mm256_mul_pd(q, lambda)));
  const __m256d i_e = _mm256_blendv_pd(i_tri, i_sat, sat);
  const __m256d gm_e = _mm256_blendv_pd(gm_tri, gm_sat, sat);
  const __m256d gds_e = _mm256_blendv_pd(gds_tri, gds_sat, sat);
  const __m256d gmb_e = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_blendv_pd(vds, vov, sat), _mm256_mul_pd(beta, clm)),
      dvov_dvbs);

  // Back to the actual terminal frame. Negation is exact, so the sign-flip
  // trick matches the scalar core's s*sr*i / -gm_e / -gmb_e expressions.
  const __m256d flip = _mm256_and_pd(rev, vset1(-0.0));
  Lanes4 out;
  out.id = _mm256_xor_pd(_mm256_mul_pd(s, i_e), flip);
  out.gm = _mm256_xor_pd(gm_e, flip);
  out.gds = _mm256_blendv_pd(
      gds_e, _mm256_add_pd(_mm256_add_pd(gm_e, gds_e), gmb_e), rev);
  out.gmb = _mm256_xor_pd(gmb_e, flip);
  return out;
}

}  // namespace

void mos_eval_lanes_avx2(const MosDeviceConsts& c, const MosLaneView& v,
                         std::size_t count) {
  std::size_t l = 0;
  for (; l + 4 <= count; l += 4) {
    const Lanes4 r = eval4(c, _mm256_loadu_pd(v.vd + l),
                           _mm256_loadu_pd(v.vg + l), _mm256_loadu_pd(v.vs + l),
                           _mm256_loadu_pd(v.vb + l),
                           _mm256_loadu_pd(v.vt_base + l),
                           _mm256_loadu_pd(v.beta + l),
                           _mm256_loadu_pd(v.lambda + l));
    _mm256_storeu_pd(v.id + l, r.id);
    _mm256_storeu_pd(v.gm + l, r.gm);
    _mm256_storeu_pd(v.gds + l, r.gds);
    _mm256_storeu_pd(v.gmb + l, r.gmb);
  }
  const std::size_t rem = count - l;
  if (rem != 0) {
    // Pad the tail with lane-0 copies and run the same 4-wide path, so a
    // lane's result never depends on where the batch boundary fell.
    double in[7][4];
    const double* src[7] = {v.vd, v.vg, v.vs, v.vb, v.vt_base, v.beta,
                            v.lambda};
    for (int a = 0; a < 7; ++a) {
      for (std::size_t k = 0; k < 4; ++k) {
        in[a][k] = src[a][l + (k < rem ? k : 0)];
      }
    }
    const Lanes4 r = eval4(c, _mm256_loadu_pd(in[0]), _mm256_loadu_pd(in[1]),
                           _mm256_loadu_pd(in[2]), _mm256_loadu_pd(in[3]),
                           _mm256_loadu_pd(in[4]), _mm256_loadu_pd(in[5]),
                           _mm256_loadu_pd(in[6]));
    double out[4][4];
    _mm256_storeu_pd(out[0], r.id);
    _mm256_storeu_pd(out[1], r.gm);
    _mm256_storeu_pd(out[2], r.gds);
    _mm256_storeu_pd(out[3], r.gmb);
    for (std::size_t k = 0; k < rem; ++k) {
      v.id[l + k] = out[0][k];
      v.gm[l + k] = out[1][k];
      v.gds[l + k] = out[2][k];
      v.gmb[l + k] = out[3][k];
    }
  }
}

}  // namespace relsim::simd

#endif  // RELSIM_SIMD_HAVE_AVX2
