// Scalar core of the level-1 MOSFET evaluation.
//
// Single source of truth for the device math: spice::Mosfet::evaluate (the
// golden oracle every equivalence test compares against) and the batched
// lane kernels (mos_kernel.h) both call this exact function, so the scalar
// kernel is bit-identical to the oracle by construction and the AVX2 kernel
// only has to match ONE reference formulation.
//
// The caller pre-computes the per-sample effective parameters in the same
// expression order Mosfet::evaluate always used:
//
//   vt_base = s*(vt0 + dvt_mismatch) + vt_tc*(T - Tnom) + dvt_aging
//   beta    = beta0 * (1 + dbeta_rel) * beta_factor * (T/Tnom)^mob_exp
//   lambda  = lambda0 * lambda_factor
//
// so a batched lane fed the same sample as a per-sample Circuit produces
// the same bits through the scalar dispatch.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/mathx.h"

namespace relsim::simd {

/// Smoothing voltage of the forward-body-bias clamp. The hard clamp
/// (vbs_c = min(vbs_e, 0.9*phi)) made gmb jump from a finite value to zero
/// exactly at the clamp edge, which broke the C0 contract the Newton
/// jacobian relies on. The softplus-smoothed clamp below is C1; for
/// vbs_e < 0.9*phi - 40*kVbsClampSmoothV the smoothed path is taken over
/// by an exact branch, so every reverse/weak-forward bias point is
/// bit-identical to the historic hard clamp.
inline constexpr double kVbsClampSmoothV = 0.01;

/// Per-device invariants of the evaluation (identical across samples).
struct MosDeviceConsts {
  double type_sign = 1.0;  ///< +1 NMOS, -1 PMOS
  double gamma = 0.0;      ///< body effect, sqrt(V)
  double phi = 0.85;       ///< surface potential, V
  double ss_v = 0.078;     ///< overdrive smoothing voltage, V
};

struct MosEvalResult {
  double id = 0.0;   ///< current into the actual drain, A
  double gm = 0.0;   ///< d id / d vg (actual frame)
  double gds = 0.0;  ///< d id / d vd
  double gmb = 0.0;  ///< d id / d vb
  double vov = 0.0;  ///< smoothed overdrive, equivalent-NMOS frame
  double vt_eff = 0.0;
  bool saturated = false;
  bool reversed = false;
};

/// One device evaluation at explicit terminal voltages with fully-formed
/// per-sample parameters. See the file comment for the vt_base/beta/lambda
/// conventions.
inline MosEvalResult mos_eval_core(const MosDeviceConsts& c, double vt_base,
                                   double beta, double lambda, double vd,
                                   double vg, double vs, double vb) {
  const double s = c.type_sign;

  // Map to the equivalent-NMOS frame.
  double vde = s * vd, vge = s * vg, vse = s * vs, vbe = s * vb;
  const bool reversed = vde < vse;
  if (reversed) std::swap(vde, vse);

  const double vgs_e = vge - vse;
  const double vds_e = vde - vse;  // >= 0 by construction
  const double vbs_e = vbe - vse;

  // Threshold in the equivalent frame (positive) with the body effect. The
  // forward-bias side of the sqrt saturates at 0.9*phi through a smoothed
  // clamp so the derivative fades continuously instead of jumping to zero.
  const double phi = c.phi;
  double dvt_dvbs = 0.0;
  double body = 0.0;
  if (c.gamma > 0.0) {
    const double vbs_max = 0.9 * phi;
    const double y = vbs_max - vbs_e;  // distance below the clamp edge
    if (y > 40.0 * kVbsClampSmoothV) {
      // Far from the clamp: the smoothing term underflows, take the exact
      // legacy expressions (bit-identical to the historic hard clamp).
      const double root = std::sqrt(phi - vbs_e);
      body = c.gamma * (root - std::sqrt(phi));
      dvt_dvbs = -c.gamma / (2.0 * root);
    } else {
      const double gap = softplus(y, kVbsClampSmoothV);
      const double vbs_c = vbs_max - gap;  // <= vbs_max, -> vbs_e far below
      const double root = std::sqrt(phi - vbs_c);
      body = c.gamma * (root - std::sqrt(phi));
      dvt_dvbs =
          -c.gamma / (2.0 * root) * softplus_deriv(y, kVbsClampSmoothV);
    }
  }
  const double vt_eff = vt_base + body;

  // Smoothed overdrive: strong inversion for vgs >> vt, exponential-like
  // tail below threshold; C1 everywhere.
  const double vov = softplus(vgs_e - vt_eff, c.ss_v);
  const double dvov_dvgs = softplus_deriv(vgs_e - vt_eff, c.ss_v);
  const double dvov_dvbs = -dvov_dvgs * dvt_dvbs;

  double i = 0.0, gm_e = 0.0, gds_e = 0.0;
  const bool saturated = vds_e >= vov;
  if (saturated) {
    const double clm = 1.0 + lambda * vds_e;
    i = 0.5 * beta * vov * vov * clm;
    gm_e = beta * vov * clm * dvov_dvgs;
    gds_e = 0.5 * beta * vov * vov * lambda;
  } else {
    const double clm = 1.0 + lambda * vds_e;
    const double q = vov * vds_e - 0.5 * vds_e * vds_e;
    i = beta * q * clm;
    gm_e = beta * vds_e * clm * dvov_dvgs;
    gds_e = beta * ((vov - vds_e) * clm + q * lambda);
  }
  const double gmb_e = saturated
                           ? beta * vov * (1.0 + lambda * vds_e) * dvov_dvbs
                           : beta * vds_e * (1.0 + lambda * vds_e) * dvov_dvbs;

  // Map back to the actual terminal frame: I_D = s * sr * i_eq with
  // sr = -1 when the drain/source roles were swapped; the published
  // gm/gds/gmb are actual-frame partials of I_D.
  MosEvalResult r;
  const double sr = reversed ? -1.0 : 1.0;
  r.id = s * sr * i;
  if (reversed) {
    r.gm = -gm_e;
    r.gds = gm_e + gds_e + gmb_e;
    r.gmb = -gmb_e;
  } else {
    r.gm = gm_e;
    r.gds = gds_e;
    r.gmb = gmb_e;
  }
  r.vov = vov;
  r.vt_eff = vt_eff;
  r.saturated = saturated;
  r.reversed = reversed;
  return r;
}

}  // namespace relsim::simd
