#include "testing/fault_injection.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <optional>

namespace relsim::testing {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kDenseLuFactor:
      return "dense-lu-factor";
    case FaultSite::kSparseLuFactor:
      return "sparse-lu-factor";
    case FaultSite::kSparseLuRefactor:
      return "sparse-lu-refactor";
    case FaultSite::kNewtonConverge:
      return "newton-converge";
    case FaultSite::kMcEvalThrowSingular:
      return "mc-eval-throw-singular";
    case FaultSite::kMcEvalThrowConvergence:
      return "mc-eval-throw-convergence";
    case FaultSite::kMcEvalNan:
      return "mc-eval-nan";
    case FaultSite::kCheckpointCorrupt:
      return "checkpoint-corrupt";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

namespace detail {

std::atomic<bool> g_any_armed{false};

namespace {

constexpr int kSiteCount = static_cast<int>(FaultSite::kSiteCount);

struct SiteState {
  std::optional<FaultRule> rule;
  std::uint64_t occurrences = 0;  ///< fire() calls since the rule was armed
  std::uint64_t fires = 0;
};

// One mutex guards all site state. Injection is a test-time facility: the
// fast path never reaches here, and armed runs are tolerant of a lock.
std::mutex g_mu;
std::array<SiteState, kSiteCount> g_sites;

thread_local McSampleContext t_sample;

bool any_armed_locked() {
  return std::any_of(g_sites.begin(), g_sites.end(),
                     [](const SiteState& s) { return s.rule.has_value(); });
}

}  // namespace

bool fire_slow(FaultSite site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& s = g_sites[static_cast<std::size_t>(site)];
  if (!s.rule.has_value()) return false;
  const FaultRule& rule = *s.rule;
  ++s.occurrences;

  bool hit = rule.nth > 0 && s.occurrences >= rule.nth &&
             s.occurrences < rule.nth + rule.count;

  if (!hit && t_sample.active && t_sample.attempt < rule.max_attempt) {
    const std::size_t i = t_sample.index;
    if (rule.sample_modulus > 0 &&
        i % rule.sample_modulus == rule.sample_remainder) {
      hit = true;
    } else {
      hit = std::find(rule.samples.begin(), rule.samples.end(), i) !=
            rule.samples.end();
    }
  }
  if (hit) ++s.fires;
  return hit;
}

}  // namespace detail

void arm(FaultSite site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(detail::g_mu);
  detail::SiteState& s = detail::g_sites[static_cast<std::size_t>(site)];
  s.rule = std::move(rule);
  s.occurrences = 0;
  s.fires = 0;
  detail::g_any_armed.store(true, std::memory_order_relaxed);
}

void disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(detail::g_mu);
  detail::g_sites[static_cast<std::size_t>(site)].rule.reset();
  detail::g_any_armed.store(detail::any_armed_locked(),
                            std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(detail::g_mu);
  for (detail::SiteState& s : detail::g_sites) s.rule.reset();
  detail::g_any_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t fires(FaultSite site) {
  std::lock_guard<std::mutex> lock(detail::g_mu);
  return detail::g_sites[static_cast<std::size_t>(site)].fires;
}

const McSampleContext& current_mc_sample() { return detail::t_sample; }

ScopedMcSample::ScopedMcSample(std::size_t index, int attempt)
    : prev_(detail::t_sample) {
  detail::t_sample = {index, attempt, true};
}

ScopedMcSample::~ScopedMcSample() { detail::t_sample = prev_; }

}  // namespace relsim::testing
