// Deterministic fault-injection harness.
//
// The yield claims of the paper live in the distribution tails — exactly
// the pathological variability draws most likely to make Newton diverge or
// a Jacobian go singular. Fault tolerance code for those paths is
// untestable without a way to MAKE them happen on demand, reproducibly.
// This harness provides that: named injection points compiled permanently
// into the solver and Monte-Carlo layers (linalg LU pivots, Newton
// convergence, McSession sample evaluation, checkpoint serialization) that
// fire according to rules armed by tests and benches.
//
// Design constraints, in order:
//  1. Near-zero cost when disarmed. fire() is a single relaxed atomic load
//     on the hot path (the same discipline as obs/trace.h), so injection
//     points can live inside the Newton loop and the LU factorizations
//     without a build-time switch.
//  2. Deterministic for any worker count. A rule can be keyed on the
//     MONTE-CARLO SAMPLE INDEX (published thread-locally by McSession
//     around every evaluation): sample 4317 fails no matter which worker
//     draws it, which is what makes chaos runs bit-reproducible across
//     1/4/8 threads. Occurrence-keyed rules ("the Nth factorization")
//     count per site and are deterministic for single-threaded runs.
//  3. Tests clean up after themselves. FaultScope disarms everything on
//     destruction; a stray armed rule cannot leak into the next test.
//
// The injector decides only WHETHER a site fires; each site implements its
// own fault (throw SingularMatrixError, report non-convergence, poison a
// value with NaN, flip a checkpoint byte).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace relsim::testing {

/// Compiled-in injection points. Each value names one call site (or one
/// family of call sites) in the production libraries.
enum class FaultSite : int {
  kDenseLuFactor = 0,       ///< linalg: dense LU pivot goes singular
  kSparseLuFactor,          ///< linalg: sparse LU full factorization
  kSparseLuRefactor,        ///< linalg: sparse LU numeric refactorization
  kNewtonConverge,          ///< spice: newton_solve reports non-convergence
  kMcEvalThrowSingular,     ///< McSession: eval throws SingularMatrixError
  kMcEvalThrowConvergence,  ///< McSession: eval throws ConvergenceError
  kMcEvalNan,               ///< McSession: eval result poisoned with NaN
  kCheckpointCorrupt,       ///< McSession: one byte of the checkpoint flips
  kSiteCount,
};

const char* to_string(FaultSite site);

/// When an armed site fires. A rule may combine both triggers; the site
/// fires when EITHER matches.
struct FaultRule {
  /// Occurrence trigger: fire on occurrences [nth, nth + count) of the
  /// site, 1-based, counted from the moment the rule was armed. 0 disables
  /// the trigger. Deterministic for single-threaded runs only.
  std::uint64_t nth = 0;
  std::uint64_t count = 1;

  /// Sample trigger: fire whenever the calling thread is evaluating one of
  /// these Monte-Carlo sample indices (see ScopedMcSample). Deterministic
  /// for ANY worker count.
  std::vector<std::size_t> samples;
  /// Sample trigger, arithmetic form: fire when index % modulus ==
  /// remainder. 0 disables.
  std::uint64_t sample_modulus = 0;
  std::uint64_t sample_remainder = 0;

  /// Sample-triggered fires happen only while the eval attempt is below
  /// this bound. max_attempt = 1 makes the first attempt fail and every
  /// retry succeed — the kRetryThenSkip recovery scenario.
  int max_attempt = std::numeric_limits<int>::max();
};

/// Arms `rule` on `site`, replacing any previous rule and resetting the
/// site's occurrence counter.
void arm(FaultSite site, FaultRule rule);

void disarm(FaultSite site);
void disarm_all();

/// How many times `site` has fired since it was last armed.
std::uint64_t fires(FaultSite site);

namespace detail {
extern std::atomic<bool> g_any_armed;
bool fire_slow(FaultSite site);
}  // namespace detail

/// The injection-point check. Call exactly once per potential fault; a
/// `true` return means the site must now fail in its own way.
inline bool fire(FaultSite site) {
  if (!detail::g_any_armed.load(std::memory_order_relaxed)) return false;
  return detail::fire_slow(site);
}

// ---------------------------------------------------------------------------
// Monte-Carlo sample context

/// What the calling thread is currently evaluating. Published by McSession
/// so sample-keyed rules can fire deep inside the solver stack.
struct McSampleContext {
  std::size_t index = 0;
  int attempt = 0;    ///< 0 = first evaluation; >0 = retry-ladder rung
  bool active = false;
};

const McSampleContext& current_mc_sample();

/// RAII publisher: sets the thread-local sample context for the duration
/// of one evaluation, restoring the previous context on destruction.
class ScopedMcSample {
 public:
  ScopedMcSample(std::size_t index, int attempt);
  ~ScopedMcSample();
  ScopedMcSample(const ScopedMcSample&) = delete;
  ScopedMcSample& operator=(const ScopedMcSample&) = delete;

 private:
  McSampleContext prev_;
};

/// RAII cleanup for tests: disarms every site on destruction.
class FaultScope {
 public:
  FaultScope() = default;
  ~FaultScope() { disarm_all(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace relsim::testing
