#include "obs/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace relsim::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * indent_; ++i) os_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    RELSIM_REQUIRE(!root_written_, "JsonWriter: second root value");
    root_written_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    RELSIM_REQUIRE(key_pending_, "JsonWriter: object value without a key");
    key_pending_ = false;
    return;  // key() already emitted the separator and indentation
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  RELSIM_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                 "JsonWriter: key() outside an object");
  RELSIM_REQUIRE(!key_pending_, "JsonWriter: two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RELSIM_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject &&
                     !key_pending_,
                 "JsonWriter: unbalanced end_object()");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RELSIM_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray,
                 "JsonWriter: unbalanced end_array()");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  // Shortest round-trip representation, always with a decimal marker so
  // the value reads back as floating-point.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf) - 2, v);
  *res.ptr = '\0';
  std::string_view sv(buf, static_cast<std::size_t>(res.ptr - buf));
  os_ << sv;
  if (sv.find('.') == std::string_view::npos &&
      sv.find('e') == std::string_view::npos &&
      sv.find("inf") == std::string_view::npos) {
    os_ << ".0";
  }
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace relsim::obs
