// Span tracer: RAII scopes flushed to Chrome trace_event JSON.
//
// Open the output of a traced run in chrome://tracing or
// https://ui.perfetto.dev to see, per worker thread, the nested timeline
// MC chunk -> sample -> Newton solve -> LU factorization that a yield run
// actually spends its wall-clock on.
//
// Design constraints (in order):
//  1. Near-zero cost when disabled. TraceSpan's constructor is a single
//     relaxed atomic load; no clock read, no allocation, nothing else
//     happens on the hot path. Instrumentation can therefore live inside
//     the Newton loop and the sparse LU without a build-time switch.
//  2. No cross-thread contention when enabled. Each thread appends
//     fixed-size event records to its own buffer; the global mutex is
//     taken only to register a new thread's buffer and at flush time.
//  3. One session at a time. A TraceSession enables collection on
//     construction and writes the JSON on destruction (or flush()).
//     RELSIM_TRACE=<path> installs a process-lifetime session lazily via
//     init_trace_from_env() — McSession calls it, so library users get
//     env-driven tracing without touching obs directly.
//
// Contract: span names and arg keys must be string literals (or otherwise
// outlive the session) — events store the pointers, not copies. End a
// session only when instrumented threads are quiescent (McSession joins
// its workers before returning, so session boundaries between runs are
// always safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace relsim::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

std::uint64_t trace_now_ns();
void emit_complete(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, const char* k1, double v1,
                   const char* k2, double v2);
void emit_instant(const char* name, const char* k1, double v1);
}  // namespace detail

/// True while a TraceSession is collecting. Relaxed load: safe and cheap
/// to call anywhere, including inner solver loops.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Collects spans from construction until destruction, then writes the
/// Chrome trace_event JSON to `path`. At most one session may be active.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Stops collection and writes the file; idempotent (the destructor
  /// calls it too). Returns false when the file could not be written.
  bool flush();

  static bool active();

 private:
  std::string path_;
  bool flushed_ = false;
};

/// Installs a process-lifetime TraceSession writing to $RELSIM_TRACE, once;
/// no-op when the variable is unset or a session is already active. The
/// trace is written when the process exits normally.
void init_trace_from_env();

/// Labels the calling thread's timeline for the active session: the flush
/// emits a Chrome `thread_name` metadata event so Perfetto shows
/// "executor/0" or "mc.worker/3" instead of a bare tid. No-op when tracing
/// is disabled; call again after starting a new session (buffers — and
/// their names — are per session).
void trace_set_thread_name(const std::string& name);

/// A zero-duration marker event (e.g. an early-stop decision point).
inline void trace_instant(const char* name) {
  if (trace_enabled()) detail::emit_instant(name, nullptr, 0.0);
}
inline void trace_instant(const char* name, const char* key, double value) {
  if (trace_enabled()) detail::emit_instant(name, key, value);
}

/// RAII span: records [construction, destruction) as a complete event on
/// the current thread's timeline. Up to two numeric args are attached.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  TraceSpan(const char* name, const char* key, double value) {
    if (trace_enabled()) {
      begin(name);
      k1_ = key;
      v1_ = value;
    }
  }
  TraceSpan(const char* name, const char* key1, double value1,
            const char* key2, double value2) {
    if (trace_enabled()) {
      begin(name);
      k1_ = key1;
      v1_ = value1;
      k2_ = key2;
      v2_ = value2;
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && trace_enabled()) {
      detail::emit_complete(name_, start_ns_, detail::trace_now_ns(), k1_, v1_,
                            k2_, v2_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name) {
    name_ = name;
    start_ns_ = detail::trace_now_ns();
  }

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  const char* k1_ = nullptr;
  const char* k2_ = nullptr;
  double v1_ = 0.0;
  double v2_ = 0.0;
};

}  // namespace relsim::obs
