#include "obs/manifest.h"

#include <fstream>

#include "obs/json_writer.h"
#include "util/log.h"

#ifndef RELSIM_GIT_DESCRIBE
#define RELSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef RELSIM_BUILD_TYPE
#define RELSIM_BUILD_TYPE "unknown"
#endif

namespace relsim::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{
      RELSIM_GIT_DESCRIBE,
      RELSIM_BUILD_TYPE,
#if defined(__clang__) || defined(__GNUC__)
      __VERSION__,
#else
      "unknown",
#endif
      std::to_string(__cplusplus / 100 % 100),
  };
  return info;
}

void RunManifest::to_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("run", run);
  w.kv("kind", kind);

  w.key("build").begin_object();
  const BuildInfo& b = build_info();
  w.kv("git_describe", b.git_describe);
  w.kv("build_type", b.build_type);
  w.kv("compiler", b.compiler);
  w.kv("cxx_standard", b.cxx_standard);
  w.end_object();

  w.key("config").begin_object();
  w.kv("seed", static_cast<unsigned long long>(seed));
  w.kv("threads_requested", threads_requested);
  w.kv("threads", threads);
  w.kv("chunk", static_cast<unsigned long long>(chunk));
  w.kv("partition", partition);
  if (!failure_policy.empty()) w.kv("failure_policy", failure_policy);
  if (!censored_policy.empty()) w.kv("censored_policy", censored_policy);
  if (!strategy.empty()) {
    w.kv("strategy", strategy);
    if (strategy_dimensions > 0) {
      w.kv("strategy_dimensions", strategy_dimensions);
    }
  }
  for (const auto& [k, v] : extra) w.kv(k, v);
  w.end_object();

  w.key("outcome").begin_object();
  w.kv("requested", static_cast<unsigned long long>(requested));
  w.kv("completed", static_cast<unsigned long long>(completed));
  w.kv("resumed", static_cast<unsigned long long>(resumed));
  w.kv("stop_reason", stop_reason);
  w.kv("elapsed_seconds", elapsed_seconds);
  w.kv("failed", static_cast<unsigned long long>(failed));
  w.kv("retried", static_cast<unsigned long long>(retried));
  w.kv("recovered", static_cast<unsigned long long>(recovered));
  w.kv("checkpoint_discarded", checkpoint_discarded);
  if (has_estimate) {
    w.key("estimate").begin_object();
    w.kv("passed", static_cast<unsigned long long>(passed));
    w.kv("total", static_cast<unsigned long long>(estimate_total));
    w.kv("censored", static_cast<unsigned long long>(censored));
    w.kv("yield", yield);
    w.kv("yield_lo", yield_lo);
    w.kv("yield_hi", yield_hi);
    w.end_object();
  }
  if (has_weighted) {
    w.key("weighted").begin_object();
    w.kv("ess", ess);
    w.kv("weight_sum", weight_sum);
    w.kv("weight_sum_sq", weight_sum_sq);
    w.kv("weight_log_scale", weight_log_scale);
    w.kv("yield", weighted_yield);
    w.kv("yield_lo", weighted_lo);
    w.kv("yield_hi", weighted_hi);
    w.end_object();
  }
  if (!strata.empty()) {
    w.key("strata").begin_array();
    for (const Stratum& s : strata) {
      w.begin_object();
      w.kv("label", s.label);
      w.kv("weight", s.weight);
      w.kv("samples", static_cast<unsigned long long>(s.samples));
      w.kv("passed", static_cast<unsigned long long>(s.passed));
      w.kv("censored", static_cast<unsigned long long>(s.censored));
      w.kv("estimate", s.estimate);
      w.kv("lo", s.lo);
      w.kv("hi", s.hi);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();

  w.key("workers").begin_array();
  for (const Worker& wk : workers) {
    w.begin_object();
    w.kv("worker", wk.worker);
    w.kv("samples", static_cast<unsigned long long>(wk.samples));
    w.kv("chunks", static_cast<unsigned long long>(wk.chunks));
    w.kv("busy_seconds", wk.busy_seconds);
    w.end_object();
  }
  w.end_array();

  w.key("failing_samples").begin_array();
  for (const FailingSample& f : failing_samples) {
    w.begin_object();
    w.kv("index", static_cast<unsigned long long>(f.index));
    w.kv("seed", static_cast<unsigned long long>(f.seed));
    w.end_object();
  }
  w.end_array();

  w.key("failed_samples").begin_array();
  for (const FailedSample& f : failed_samples) {
    w.begin_object();
    w.kv("index", static_cast<unsigned long long>(f.index));
    w.kv("seed", static_cast<unsigned long long>(f.seed));
    w.kv("kind", f.kind);
    w.kv("attempts", f.attempts);
    w.kv("reason", f.reason);
    w.end_object();
  }
  w.end_array();

  w.key("worker_errors").begin_array();
  for (const WorkerError& e : worker_errors) {
    w.begin_object();
    w.kv("worker", e.worker);
    w.kv("message", e.message);
    w.end_object();
  }
  w.end_array();

  w.key("metrics");
  metrics.to_json(w);
  w.end_object();
}

bool RunManifest::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    log_error("cannot write run manifest: ", path);
    return false;
  }
  JsonWriter w(os);
  to_json(w);
  os << '\n';
  return bool(os);
}

}  // namespace relsim::obs
