#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json_writer.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;  ///< == start_ns for instant events
  const char* k1;        ///< nullable
  const char* k2;        ///< nullable
  double v1;
  double v2;
  char phase;  ///< 'X' complete, 'i' instant
};

/// One per (thread, session): owned by the session state so events survive
/// worker threads that exit before the flush.
struct ThreadTraceBuffer {
  explicit ThreadTraceBuffer(unsigned tid_) : tid(tid_) {
    events.reserve(1024);
  }
  unsigned tid;
  std::string name;  ///< optional display name (thread_name metadata)
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers;
  std::chrono::steady_clock::time_point epoch;
  // Bumped on every session start/stop so thread-local cached buffer
  // pointers from a previous session are never reused.
  std::atomic<std::uint32_t> generation{0};
  bool session_active = false;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never destroyed: worker
  return *s;                                // threads may outlive main
}

ThreadTraceBuffer* thread_buffer() {
  struct Slot {
    std::uint32_t generation = 0;  // 0 never matches a live session
    ThreadTraceBuffer* buf = nullptr;
  };
  thread_local Slot slot;
  TraceState& s = state();
  const std::uint32_t gen = s.generation.load(std::memory_order_acquire);
  if (slot.generation != gen) {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.session_active) return nullptr;
    s.buffers.push_back(std::make_unique<ThreadTraceBuffer>(
        static_cast<unsigned>(s.buffers.size())));
    slot.buf = s.buffers.back().get();
    slot.generation = gen;
  }
  return slot.buf;
}

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().epoch)
          .count());
}

void emit_complete(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, const char* k1, double v1,
                   const char* k2, double v2) {
  ThreadTraceBuffer* buf = thread_buffer();
  if (buf == nullptr) return;
  buf->events.push_back({name, start_ns, end_ns, k1, k2, v1, v2, 'X'});
}

void emit_instant(const char* name, const char* k1, double v1) {
  ThreadTraceBuffer* buf = thread_buffer();
  if (buf == nullptr) return;
  const std::uint64_t now = trace_now_ns();
  buf->events.push_back({name, now, now, k1, nullptr, v1, 0.0, 'i'});
}

}  // namespace detail

void trace_set_thread_name(const std::string& name) {
  if (!trace_enabled()) return;
  ThreadTraceBuffer* buf = thread_buffer();
  if (buf != nullptr) buf->name = name;  // thread-owned until flush
}

bool TraceSession::active() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.session_active;
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  RELSIM_REQUIRE(!path_.empty(), "TraceSession needs an output path");
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  RELSIM_REQUIRE(!s.session_active,
                 "a TraceSession is already active (one at a time)");
  s.buffers.clear();
  s.epoch = std::chrono::steady_clock::now();
  s.session_active = true;
  // Odd generations are live sessions; bumping invalidates every cached
  // thread-local buffer pointer.
  s.generation.fetch_add(1, std::memory_order_release);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() { flush(); }

bool TraceSession::flush() {
  if (flushed_) return true;
  flushed_ = true;
  TraceState& s = state();
  detail::g_trace_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(s.mu);
  s.generation.fetch_add(1, std::memory_order_release);
  s.session_active = false;

  std::ofstream os(path_);
  if (!os) {
    log_error("cannot write trace file: ", path_);
    s.buffers.clear();
    return false;
  }
  JsonWriter w(os, 0);  // compact: traces are large and machine-read
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  char num[32];
  auto micros = [&num](std::uint64_t ns) {
    // Microseconds with nanosecond resolution kept in the fraction.
    std::snprintf(num, sizeof(num), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return num;
  };
  // Metadata first: a process_name for the single relsim "process" and a
  // thread_name per buffer, so Perfetto labels timelines instead of
  // showing bare tids. Unnamed threads get a stable "thread/<tid>".
  w.begin_object();
  w.kv("name", "process_name");
  w.key("ph").value("M");
  os << ",\"pid\":1";
  w.key("args").begin_object();
  w.kv("name", "relsim");
  w.end_object();
  w.end_object();
  for (const auto& buf : s.buffers) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.key("ph").value("M");
    os << ",\"pid\":1,\"tid\":" << buf->tid;
    w.key("args").begin_object();
    w.kv("name", buf->name.empty() ? "thread/" + std::to_string(buf->tid)
                                   : buf->name);
    w.end_object();
    w.end_object();
  }
  std::size_t total = 0;
  for (const auto& buf : s.buffers) {
    for (const TraceEvent& e : buf->events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("cat", "relsim");
      w.key("ph").value(std::string_view(&e.phase, 1));
      // Raw-format the timestamps: JsonWriter's double formatting is
      // round-trip exact but we want fixed-point micros for readability.
      os << ",\"ts\":" << micros(e.start_ns);
      if (e.phase == 'X') {
        os << ",\"dur\":" << micros(e.end_ns - e.start_ns);
      } else {
        os << ",\"s\":\"t\"";
      }
      os << ",\"pid\":1,\"tid\":" << buf->tid;
      if (e.k1 != nullptr) {
        w.key("args").begin_object();
        w.kv(e.k1, e.v1);
        if (e.k2 != nullptr) w.kv(e.k2, e.v2);
        w.end_object();
      }
      w.end_object();
      ++total;
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
  s.buffers.clear();
  if (!os) {
    log_error("error writing trace file: ", path_);
    return false;
  }
  log_info("trace: ", total, " events -> ", path_);
  return bool(os);
}

void init_trace_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("RELSIM_TRACE");
    if (path == nullptr || *path == '\0') return;
    if (TraceSession::active()) {
      log_warn("RELSIM_TRACE ignored: a TraceSession is already active");
      return;
    }
    // Process-lifetime session: flushed when static destructors run.
    static TraceSession session{std::string(path)};
  });
}

}  // namespace relsim::obs
