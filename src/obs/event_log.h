// Rotating JSONL event log for SLO accounting.
//
// Append-only, newline-delimited JSON records (the caller supplies the
// serialized line; the log adds the trailing '\n'). When the active file
// would exceed max_bytes the log rotates: path -> path.1 -> ... -> path.K
// with the oldest file dropped, mirroring every logrotate setup an
// operator already knows. Appends are serialized under one mutex — event
// volume is job *transitions* (a handful per job), not per-sample data, so
// contention is irrelevant and ordering within the file is total.
//
// The daemon constructs one from RELSIM_EVENT_LOG=<path> (size cap via
// RELSIM_EVENT_LOG_MAX_BYTES, default 8 MiB) or from ServerOptions.
#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

namespace relsim::obs {

class EventLog {
 public:
  /// Opens `path` for appending (existing bytes count against the cap).
  /// `keep` is how many rotated files survive (path.1 .. path.keep).
  explicit EventLog(std::string path, std::size_t max_bytes = 8u << 20,
                    int keep = 3);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Writes `line` + '\n', rotating first when the append would cross the
  /// cap. Thread-safe. Returns false when the filesystem rejected the
  /// write (the event is dropped, not buffered).
  bool append(const std::string& line);

  const std::string& path() const { return path_; }

  /// Number of rotations performed by THIS instance (tests, metrics).
  std::size_t rotations() const;

 private:
  void rotate_locked();

  mutable std::mutex mu_;
  std::string path_;
  std::size_t max_bytes_;
  int keep_;
  std::ofstream os_;
  std::size_t bytes_ = 0;
  std::size_t rotations_ = 0;
};

/// Builds an EventLog from RELSIM_EVENT_LOG / RELSIM_EVENT_LOG_MAX_BYTES,
/// or returns nullptr when the variable is unset/empty.
std::unique_ptr<EventLog> event_log_from_env();

}  // namespace relsim::obs
