#include "obs/prometheus.h"

#include <charconv>
#include <cmath>

namespace relsim::obs {

namespace {

/// Prometheus numeric literal: shortest round-trip doubles, with the
/// spec's spellings for non-finite values.
std::string fmt(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string fmt(std::int64_t v) { return std::to_string(v); }

void family(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const std::string& name,
            const std::string& value) {
  out += name;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  if (name.rfind("relsim_", 0) != 0) out = "relsim_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = prometheus_name(name);
    family(out, n, "counter");
    sample(out, n, fmt(v));
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    family(out, n, "gauge");
    sample(out, n, fmt(v));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_name(name);
    family(out, n, "histogram");
    // Native buckets are [lower, 2*lower), so each le boundary is the
    // bucket's upper edge; counts are cumulative per the exposition spec.
    std::int64_t cum = 0;
    double approx_sum = 0.0;
    for (const auto& [lower, count] : h.buckets) {
      cum += count;
      sample(out, n + "_bucket{le=\"" + fmt(2.0 * lower) + "\"}", fmt(cum));
      // No running sum in the sharded histogram: approximate with the
      // geometric bucket midpoint lower * sqrt(2).
      approx_sum += static_cast<double>(count) * lower * std::sqrt(2.0);
    }
    sample(out, n + "_bucket{le=\"+Inf\"}", fmt(h.count));
    sample(out, n + "_sum", fmt(h.count > 0 ? approx_sum : 0.0));
    sample(out, n + "_count", fmt(h.count));
    if (h.nonfinite > 0) {
      const std::string nn = n + "_nonfinite";
      family(out, nn, "counter");
      sample(out, nn, fmt(h.nonfinite));
    }
    // Convenience quantile/extreme gauges so dashboards don't need
    // histogram_quantile() in PromQL to get the headline latencies.
    struct Q {
      const char* suffix;
      double value;
    };
    const Q derived[] = {{"_p50", histogram_quantile(h, 0.50)},
                         {"_p90", histogram_quantile(h, 0.90)},
                         {"_p99", histogram_quantile(h, 0.99)},
                         {"_min", h.count > 0 ? h.min : 0.0},
                         {"_max", h.count > 0 ? h.max : 0.0}};
    for (const Q& q : derived) {
      const std::string qn = n + q.suffix;
      family(out, qn, "gauge");
      sample(out, qn, fmt(q.value));
    }
  }
  return out;
}

}  // namespace relsim::obs
