#include "obs/event_log.h"

#include <cstdio>
#include <cstdlib>

#include "util/log.h"

namespace relsim::obs {

namespace {

std::size_t existing_size(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return 0;
  const auto pos = is.tellg();
  return pos > 0 ? static_cast<std::size_t>(pos) : 0;
}

}  // namespace

EventLog::EventLog(std::string path, std::size_t max_bytes, int keep)
    : path_(std::move(path)),
      max_bytes_(max_bytes > 0 ? max_bytes : 1),
      keep_(keep > 0 ? keep : 1) {
  bytes_ = existing_size(path_);
  os_.open(path_, std::ios::app);
  if (!os_) log_error("cannot open event log: ", path_);
}

void EventLog::rotate_locked() {
  os_.close();
  // Shift path.K-1 -> path.K, ..., path -> path.1; the oldest falls off.
  std::remove((path_ + '.' + std::to_string(keep_)).c_str());
  for (int i = keep_ - 1; i >= 1; --i) {
    std::rename((path_ + '.' + std::to_string(i)).c_str(),
                (path_ + '.' + std::to_string(i + 1)).c_str());
  }
  std::rename(path_.c_str(), (path_ + ".1").c_str());
  os_.open(path_, std::ios::trunc);
  bytes_ = 0;
  ++rotations_;
}

bool EventLog::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!os_.is_open()) return false;
  const std::size_t add = line.size() + 1;
  if (bytes_ > 0 && bytes_ + add > max_bytes_) rotate_locked();
  os_ << line << '\n';
  os_.flush();  // transitions are rare; readable-after-crash beats buffering
  if (!os_) return false;
  bytes_ += add;
  return true;
}

std::size_t EventLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

std::unique_ptr<EventLog> event_log_from_env() {
  const char* path = std::getenv("RELSIM_EVENT_LOG");
  if (path == nullptr || *path == '\0') return nullptr;
  std::size_t max_bytes = 8u << 20;
  if (const char* mb = std::getenv("RELSIM_EVENT_LOG_MAX_BYTES")) {
    const long long v = std::atoll(mb);
    if (v > 0) max_bytes = static_cast<std::size_t>(v);
  }
  return std::make_unique<EventLog>(path, max_bytes);
}

}  // namespace relsim::obs
