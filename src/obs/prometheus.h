// Prometheus text exposition (format 0.0.4) for the metrics registry.
//
// Renders a MetricsSnapshot as the plain-text format every Prometheus
// scraper understands: counters as `counter`, gauges as `gauge`, and the
// log-bucketed histograms as native `histogram` families with cumulative
// `_bucket{le="..."}` series plus `_count`/`_sum`, followed by p50/p90/p99
// convenience gauges derived through histogram_quantile(). Metric names
// are sanitized ("service.job_seconds" -> "relsim_service_job_seconds")
// and the output is deterministic: same snapshot, same bytes.
//
// Caveat the scraper should know: the sharded histograms track bucket
// counts and exact min/max but not a running sum, so `_sum` is
// approximated from geometric bucket midpoints. Rates and quantiles — the
// things dashboards actually plot — come from the buckets and are exact
// to bucket resolution.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace relsim::obs {

/// "service.job_seconds" -> "relsim_service_job_seconds": '.' and every
/// other character outside [a-zA-Z0-9_:] become '_', and the "relsim_"
/// namespace prefix is prepended (unless already present).
std::string prometheus_name(const std::string& name);

/// Renders the full snapshot in text exposition format. Every line ends in
/// '\n'; families are sorted by name (map order), so identical snapshots
/// give byte-identical output.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// Bound renderer over a registry — the daemon holds one and serves
/// render() for both the `metrics_text` op and the HTTP /metrics listener.
class MetricsExporter {
 public:
  explicit MetricsExporter(const MetricsRegistry& registry = metrics())
      : registry_(&registry) {}

  std::string render() const { return to_prometheus_text(registry_->snapshot()); }

 private:
  const MetricsRegistry* registry_;
};

}  // namespace relsim::obs
