#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "obs/json_writer.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::obs {

namespace detail {

unsigned thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

double Histogram::bucket_lower_bound(int index) {
  return std::ldexp(1.0, index - kBias);
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) {
    nonfinite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  int index = 0;
  if (v > 0.0) {
    index = std::ilogb(v) + kBias;
    if (index < 0) index = 0;
    if (index >= kBuckets) index = kBuckets - 1;
  }
  buckets_[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  // min/max via CAS: the final values depend only on the SET of observed
  // values, so they stay deterministic under any interleaving.
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c != 0) s.buckets.emplace_back(bucket_lower_bound(i), c);
    s.count += c;
  }
  s.nonfinite = nonfinite_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  nonfinite_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double histogram_quantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // NaN and negatives clamp to the minimum
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(snapshot.count);
  double value = snapshot.max;
  double seen = 0.0;
  for (const auto& [lower, count] : snapshot.buckets) {
    const double next = seen + static_cast<double>(count);
    if (next >= target) {
      // The bucket spans [lower, 2*lower); interpolate geometrically:
      // frac of the way through the bucket's count maps to lower * 2^frac.
      const double frac = (target - seen) / static_cast<double>(count);
      value = lower * std::exp2(frac);
      break;
    }
    seen = next;
  }
  // Exact observed extremes beat bucket-edge artifacts (bucket 0 also
  // absorbs zero/negative observations, whose "lower bound" is 2^-64).
  if (value < snapshot.min) value = snapshot.min;
  if (value > snapshot.max) value = snapshot.max;
  return value;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                  const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RELSIM_REQUIRE(gauges_.find(name) == gauges_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already used by another instrument: " + name);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RELSIM_REQUIRE(counters_.find(name) == counters_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already used by another instrument: " + name);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RELSIM_REQUIRE(counters_.find(name) == counters_.end() &&
                     gauges_.find(name) == gauges_.end(),
                 "metric name already used by another instrument: " + name);
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, h->snapshot());
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked on
  return *registry;  // purpose: instruments outlive static destructors
}

void MetricsSnapshot::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, static_cast<long long>(v));
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", static_cast<long long>(h.count));
    w.kv("nonfinite", static_cast<long long>(h.nonfinite));
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.key("buckets").begin_array();
    for (const auto& [lo, c] : h.buckets) {
      w.begin_object();
      w.kv("ge", lo);
      w.kv("count", static_cast<long long>(c));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

bool write_metrics_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    log_error("cannot write metrics file: ", path);
    return false;
  }
  JsonWriter w(os);
  metrics().snapshot().to_json(w);
  os << '\n';
  return bool(os);
}

}  // namespace relsim::obs
