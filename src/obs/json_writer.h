// Minimal streaming JSON writer shared by every relsim JSON artifact.
//
// One emitter for traces, metrics snapshots, run manifests and the bench
// telemetry files, replacing the ad-hoc string assembly that used to live
// in bench_util.h and the --mc-json paths. Properties the consumers rely
// on:
//  * correct string escaping (control characters, quotes, backslashes);
//  * stable key order — keys are emitted exactly in the order the caller
//    provides them, so identical inputs produce byte-identical documents;
//  * deterministic number formatting — shortest round-trip form for
//    doubles, plain decimal for integers, non-finite values become null
//    (JSON has no NaN/Inf);
//  * nesting is tracked, so a malformed document (unbalanced scopes, a
//    value without a key inside an object) throws instead of emitting
//    garbage.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace relsim::obs {

/// JSON-escapes `s` (quotes, backslashes, control characters). The result
/// does NOT include the surrounding quotes.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// Writes to `os`. `indent` > 0 pretty-prints with that many spaces per
  /// nesting level; 0 emits the compact single-line form (traces).
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// True once the root value is closed (the document is complete).
  bool complete() const { return root_written_ && stack_.empty(); }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();
  void raw(std::string_view s) { os_ << s; }

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  ///< parallel to stack_: comma needed?
  bool key_pending_ = false;
  bool root_written_ = false;
};

}  // namespace relsim::obs
