#include "obs/json_value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace relsim::obs {

namespace {

std::string kind_mismatch(const char* want, JsonValue::Kind got) {
  return std::string("JSON type mismatch: wanted ") + want + ", value is " +
         to_string(got);
}

}  // namespace

const char* to_string(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kUInt: return "uint";
    case JsonValue::Kind::kInt: return "int";
    case JsonValue::Kind::kDouble: return "double";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

/// Single-pass recursive-descent parser over the input view. Depth is
/// bounded so a hostile frame of 100k '[' cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + why);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail(std::string("expected '") + std::string(word) + "'");
    }
    pos_ += word.size();
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return JsonValue();
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    take();  // '{'
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (take() != ':') fail("expected ':' after object key");
      // Last duplicate wins, matching common parser behaviour.
      v.object_[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    take();  // '['
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return code;
  }

  void append_utf8(unsigned code, std::string& out) {
    // Surrogate pairs: a high surrogate must be followed by \uDC00-\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (take() != '\\' || take() != 'u') fail("unpaired UTF-16 surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("stray low surrogate");
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool integral = true;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    errno = 0;
    if (integral) {
      // Exact integer path first — doubles lose seeds above 2^53.
      char* end = nullptr;
      if (token[0] == '-') {
        const long long parsed = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          v.kind_ = JsonValue::Kind::kInt;
          v.i64_ = parsed;
          v.double_ = static_cast<double>(parsed);
          return v;
        }
      } else {
        const unsigned long long parsed =
            std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          v.kind_ = JsonValue::Kind::kUInt;
          v.u64_ = parsed;
          v.double_ = static_cast<double>(parsed);
          return v;
        }
      }
      errno = 0;  // out-of-range integer: fall through to double
    }
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      fail("invalid number '" + token + "'");
    }
    v.kind_ = JsonValue::Kind::kDouble;
    v.double_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonParseError(kind_mismatch("bool", kind_));
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) throw JsonParseError(kind_mismatch("number", kind_));
  return double_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ == Kind::kUInt) return u64_;
  if (kind_ == Kind::kInt && i64_ >= 0) {
    return static_cast<std::uint64_t>(i64_);
  }
  if (kind_ == Kind::kDouble && double_ >= 0.0 &&
      double_ <= 9007199254740992.0 &&  // 2^53: exact in double
      double_ == std::floor(double_)) {
    return static_cast<std::uint64_t>(double_);
  }
  throw JsonParseError(kind_mismatch("uint64", kind_));
}

std::int64_t JsonValue::as_i64() const {
  if (kind_ == Kind::kInt) return i64_;
  if (kind_ == Kind::kUInt &&
      u64_ <= static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
    return static_cast<std::int64_t>(u64_);
  }
  if (kind_ == Kind::kDouble && std::abs(double_) <= 9007199254740992.0 &&
      double_ == std::floor(double_)) {
    return static_cast<std::int64_t>(double_);
  }
  throw JsonParseError(kind_mismatch("int64", kind_));
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw JsonParseError(kind_mismatch("string", kind_));
  }
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    throw JsonParseError(kind_mismatch("array", kind_));
  }
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    throw JsonParseError(kind_mismatch("object", kind_));
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_double();
}

std::uint64_t JsonValue::get_u64(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_u64();
}

std::string JsonValue::get_string(std::string_view key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

}  // namespace relsim::obs
