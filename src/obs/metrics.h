// Metrics registry: named counters, gauges and histograms with a
// deterministically-merging snapshot.
//
// Counters are thread-sharded: inc() is one relaxed fetch_add on a
// cache-line-padded shard picked by a thread-local index, so concurrent
// workers never contend on the same line. snapshot() sums the shards —
// integer addition, so the merged value is identical no matter how the
// increments were distributed over threads. The same holds for histogram
// bucket counts. That is what makes the manifest's work counters (Newton
// iterations, refactorizations, steal events, ...) bit-identical across
// 1/4/8-worker runs of the same seed: the per-sample work is deterministic
// and integer sums commute.
//
// Gauges carry last-written / accumulated doubles (timings, fill-in sizes);
// they are NOT covered by the determinism guarantee and the snapshot keeps
// them in a separate section.
//
// Hot-path usage pattern — resolve once, then increment lock-free:
//   static obs::Counter& iters = obs::metrics().counter("newton.iterations");
//   iters.inc(n);
// The registry lookup takes a mutex; the static local makes it one-time.
// Instruments live for the process lifetime (the registry never deletes).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace relsim::obs {

class JsonWriter;

namespace detail {
/// Stable small shard index for the calling thread.
unsigned thread_shard();
}  // namespace detail

class Counter {
 public:
  void inc(std::int64_t n = 1) {
    shards_[detail::thread_shard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 16;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two bucketed histogram for positive quantities spanning many
/// orders of magnitude (residual norms, durations). Bucket i counts values
/// in [2^(i-kBias), 2^(i-kBias+1)); zero/negative values land in bucket 0,
/// values beyond the range saturate into the edge buckets. Bucket counts
/// merge deterministically; min/max are tracked exactly.
///
/// NaN/Inf observations never enter a bucket (they used to land silently
/// in the edge buckets and poison min/max): they are tallied in a separate
/// `nonfinite` counter so a sick producer is visible in every snapshot.
class Histogram {
 public:
  struct Snapshot {
    std::int64_t count = 0;      ///< finite observations only
    std::int64_t nonfinite = 0;  ///< rejected NaN/±Inf observations
    double min = 0.0;            ///< meaningful when count > 0
    double max = 0.0;
    /// (bucket lower bound, count) for every non-empty bucket, ascending.
    std::vector<std::pair<double, std::int64_t>> buckets;

    bool operator==(const Snapshot&) const = default;
  };

  void observe(double v);
  Snapshot snapshot() const;
  void reset();

  static double bucket_lower_bound(int index);

 private:
  static constexpr int kBuckets = 128;  // exponents 2^-64 .. 2^63
  static constexpr int kBias = 64;
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> nonfinite_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Emits {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// keys in sorted order (maps) — identical snapshots give identical JSON.
  void to_json(JsonWriter& w) const;
};

/// Quantile q in [0, 1] out of a log-bucketed histogram snapshot, with
/// geometric interpolation inside the crossing bucket (the buckets are
/// powers of two, so the geometric midpoint — not the arithmetic one — is
/// the unbiased guess). Clamped to the exact observed [min, max], so the
/// extremes are never an artifact of bucket edges. Returns 0 when the
/// snapshot is empty. This is THE percentile math shared by the Prometheus
/// exporter, bench_service's p50/p99 reporting and relsim-cli's metrics
/// pretty-printing — one implementation, one answer.
double histogram_quantile(const Histogram::Snapshot& snapshot, double q);

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. The returned reference is
  /// valid for the process lifetime. A name may be used for only one
  /// instrument kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (run-scoped deltas, tests).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry (never destroyed).
MetricsRegistry& metrics();

/// Writes metrics().snapshot() as a standalone JSON document.
bool write_metrics_json(const std::string& path);

}  // namespace relsim::obs
