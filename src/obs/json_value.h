// Recursive-descent JSON reader — the inbound half of the obs JSON story
// (json_writer.h is the outbound half). Built for the service protocol's
// line-delimited frames: strict (a frame is one complete value, trailing
// garbage is an error), allocation-light, and integer-exact.
//
// Integer exactness matters here: RNG seeds are full-range uint64 values,
// and a parser that round-trips numbers through double silently corrupts
// any seed above 2^53 — which would break the daemon's bit-identity
// guarantee. Integral tokens are therefore stored as int64/uint64 and only
// converted on an explicit as_double().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace relsim::obs {

/// Thrown on malformed input; what() carries the byte offset and cause,
/// so protocol error replies can echo a useful diagnostic.
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kUInt,    ///< non-negative integral token, exact in uint64
    kInt,     ///< negative integral token, exact in int64
    kDouble,  ///< fractional/exponent token (or integral overflowing 64 bit)
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  /// std::map, not unordered: deterministic iteration keeps error messages
  /// and round-trip dumps stable. Protocol objects are tiny.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  /// Parses exactly one JSON value spanning the whole input (leading and
  /// trailing whitespace allowed, anything else throws JsonParseError).
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kUInt || kind_ == Kind::kInt ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw JsonParseError on a kind mismatch (and on
  /// lossy/ negative conversions for the integer forms).
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. The get_* forms return `fallback` when the member is absent
  /// but still throw when it is present with the wrong type — a typo'd
  /// value should fail loudly, not silently default.
  const JsonValue* find(std::string_view key) const;
  bool get_bool(std::string_view key, bool fallback) const;
  double get_double(std::string_view key, double fallback) const;
  std::uint64_t get_u64(std::string_view key, std::uint64_t fallback) const;
  std::string get_string(std::string_view key,
                         const std::string& fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t u64_ = 0;
  std::int64_t i64_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

const char* to_string(JsonValue::Kind kind);

}  // namespace relsim::obs
