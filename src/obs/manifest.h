// Run manifest: one self-describing JSON document per run.
//
// A bench or CI artifact is only replayable if it records how it was
// produced. The manifest captures the run configuration (seed, thread
// count, chunking, partition), how the run ended (stop reason, completed
// sample count, failing-sample replay seeds), the build that produced it
// (git describe, build type, compiler) and the full metrics snapshot.
// McSession writes one automatically when McRequest::manifest_path is set;
// benches build a bench-level manifest via bench_util helpers.
//
// The layering keeps this header free of simulator types: McSession fills
// the generic worker/failing-sample rows from its own structs
// (variability/mc_session.h: mc_manifest()).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace relsim::obs {

class JsonWriter;

/// Compile/configure-time provenance baked into the obs library.
struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty` or "unknown"
  std::string build_type;    ///< CMAKE_BUILD_TYPE
  std::string compiler;      ///< compiler id + version (__VERSION__)
  std::string cxx_standard;  ///< e.g. "20"
};
const BuildInfo& build_info();

struct RunManifest {
  std::string run;   ///< label, e.g. "bench_yield_tradeoff" or "mc.yield"
  std::string kind;  ///< "yield" | "metric" | "bench"

  // Configuration.
  std::uint64_t seed = 0;
  unsigned threads_requested = 0;  ///< 0 = auto
  unsigned threads = 0;            ///< resolved worker count
  std::size_t chunk = 0;
  std::string partition;
  std::string failure_policy;   ///< "abort" | "skip" | "retry-then-skip"
  std::string censored_policy;  ///< "treat-as-fail" | "exclude"
  /// Sampling strategy: "pseudo-random" | "latin-hypercube" | "sobol" |
  /// "stratified" | "importance" (empty = not an McSession run).
  std::string strategy;
  unsigned strategy_dimensions = 0;  ///< tracked dims (LHS/Sobol)

  // Outcome.
  std::size_t requested = 0;
  std::size_t completed = 0;
  std::size_t resumed = 0;
  std::string stop_reason;
  double elapsed_seconds = 0.0;
  std::size_t failed = 0;     ///< censored samples among `completed`
  std::size_t retried = 0;    ///< total retry attempts spent
  std::size_t recovered = 0;  ///< samples that succeeded on a retry
  bool checkpoint_discarded = false;  ///< a corrupt checkpoint was dropped

  // Yield estimate (yield runs only).
  bool has_estimate = false;
  std::size_t passed = 0;
  std::size_t estimate_total = 0;  ///< estimate denominator (see censored)
  std::size_t censored = 0;        ///< failed evaluations in the estimate
  double yield = 0.0;
  double yield_lo = 0.0;
  double yield_hi = 0.0;

  /// Importance-sampling runs: weighted-estimator diagnostics.
  bool has_weighted = false;
  double ess = 0.0;            ///< Kish effective sample size
  double weight_sum = 0.0;     ///< sum of likelihood-ratio weights, scaled
  double weight_sum_sq = 0.0;  ///< sum of squared weights, scaled
  /// Shared log factor of weight_sum (/ twice of weight_sum_sq): the true
  /// sums are weight_sum * exp(weight_log_scale). 0 for in-range weights;
  /// far negative for high-sigma shifts whose raw ratios underflow.
  double weight_log_scale = 0.0;
  double weighted_yield = 0.0;
  double weighted_lo = 0.0;
  double weighted_hi = 0.0;

  /// Stratified runs: per-stratum tallies + Wilson intervals.
  struct Stratum {
    std::string label;
    double weight = 0.0;
    std::size_t samples = 0;
    std::size_t passed = 0;
    std::size_t censored = 0;
    double estimate = 0.0;
    double lo = 0.0;
    double hi = 0.0;
  };
  std::vector<Stratum> strata;

  struct Worker {
    unsigned worker = 0;
    std::size_t samples = 0;
    std::size_t chunks = 0;
    double busy_seconds = 0.0;
  };
  std::vector<Worker> workers;

  struct FailingSample {
    std::size_t index = 0;
    std::uint64_t seed = 0;
  };
  std::vector<FailingSample> failing_samples;

  /// Samples whose EVALUATION failed (censored), as opposed to samples
  /// that evaluated fine and failed the spec (failing_samples above).
  /// `seed` replays the sample in isolation; `kind` / `reason` say how it
  /// died; `attempts` is how many evaluation attempts were spent on it.
  struct FailedSample {
    std::size_t index = 0;
    std::uint64_t seed = 0;
    std::string kind;  ///< "convergence" | "singular" | "non-finite" | "other"
    int attempts = 0;
    std::string reason;
  };
  std::vector<FailedSample> failed_samples;

  /// Every worker exception of an aborted run (not just the rethrown one).
  struct WorkerError {
    unsigned worker = 0;
    std::string message;
  };
  std::vector<WorkerError> worker_errors;

  /// Free-form (key, value) rows for run-specific context (bench flags,
  /// sample counts, ...). Emitted in insertion order.
  std::vector<std::pair<std::string, std::string>> extra;

  /// Metrics at manifest time; fill with obs::metrics().snapshot().
  MetricsSnapshot metrics;

  void to_json(JsonWriter& w) const;
  /// Writes the manifest as a standalone pretty-printed JSON document.
  bool write(const std::string& path) const;
};

}  // namespace relsim::obs
