#include "linalg/sparse_lu.h"

#include <cmath>
#include <string>

#include "testing/fault_injection.h"
#include "util/error.h"

namespace relsim {

SparseLuFactorization::SparseLuFactorization(const SparseMatrix& a,
                                             double singular_threshold)
    : threshold_(singular_threshold) {
  RELSIM_REQUIRE(a.rows() == a.cols(), "sparse LU needs a square matrix");
  RELSIM_REQUIRE(a.rows() > 0, "sparse LU needs a non-empty matrix");
  if (testing::fire(testing::FaultSite::kSparseLuFactor)) {
    throw SingularMatrixError(
        "sparse LU: injected singular pivot (fault harness)");
  }
  factor_full(a);
}

int SparseLuFactorization::reach_dfs(int i, int j, int top,
                                     std::vector<int>& xi,
                                     std::vector<int>& stack,
                                     std::vector<int>& pstack,
                                     std::vector<int>& flag) {
  int head = 0;
  stack[0] = i;
  while (head >= 0) {
    const int node = stack[static_cast<std::size_t>(head)];
    const int col = pinv_[static_cast<std::size_t>(node)];
    if (flag[static_cast<std::size_t>(node)] != j) {
      flag[static_cast<std::size_t>(node)] = j;
      pstack[static_cast<std::size_t>(head)] =
          col < 0 ? 0 : lcol_ptr_[static_cast<std::size_t>(col)];
    }
    bool descended = false;
    const int pend =
        col < 0 ? 0 : lcol_ptr_[static_cast<std::size_t>(col) + 1];
    for (int q = pstack[static_cast<std::size_t>(head)]; q < pend; ++q) {
      const int child = lrow_ind_[static_cast<std::size_t>(q)];
      if (flag[static_cast<std::size_t>(child)] == j) continue;
      pstack[static_cast<std::size_t>(head)] = q + 1;
      stack[static_cast<std::size_t>(++head)] = child;
      descended = true;
      break;
    }
    if (!descended) {
      --head;
      xi[static_cast<std::size_t>(--top)] = node;
    }
  }
  return top;
}

void SparseLuFactorization::factor_full(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  n_ = n;
  anz_ = a.nnz();

  // CSC mirror of the pattern with a value-source map into the CSR array.
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  acol_ptr_.assign(n + 1, 0);
  for (int c : col_ind) ++acol_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t j = 0; j < n; ++j) acol_ptr_[j + 1] += acol_ptr_[j];
  arow_ind_.assign(anz_, 0);
  aval_src_.assign(anz_, 0);
  std::vector<int> next(acol_ptr_.begin(), acol_ptr_.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (int p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const auto c = static_cast<std::size_t>(col_ind[static_cast<std::size_t>(p)]);
      const auto slot = static_cast<std::size_t>(next[c]++);
      arow_ind_[slot] = static_cast<int>(r);
      aval_src_[slot] = p;
    }
  }

  // Row norms for scaled partial pivoting (pattern-time choice; refactor
  // keeps the pivot order, so scales are not recomputed there).
  const auto& aval = a.values();
  row_scale_.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (int p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      m = std::max(m, std::abs(aval[static_cast<std::size_t>(p)]));
    }
    if (m == 0.0) throw SingularMatrixError("sparse LU: zero row in matrix");
    row_scale_[r] = 1.0 / m;
  }

  pinv_.assign(n, -1);
  p_.assign(n, -1);
  lcol_ptr_.assign(1, 0);
  lrow_ind_.clear();
  lval_.clear();
  ucol_ptr_.assign(1, 0);
  urow_ind_.clear();
  uval_.clear();
  udiag_.assign(n, 0.0);
  topo_ptr_.assign(1, 0);
  topo_row_.clear();
  lrow_ind_.reserve(4 * anz_);
  lval_.reserve(4 * anz_);
  urow_ind_.reserve(4 * anz_);
  uval_.reserve(4 * anz_);

  std::vector<double> x(n, 0.0);
  std::vector<int> xi(n), stack(n), pstack(n), flag(n, -1);

  for (std::size_t j = 0; j < n; ++j) {
    // Symbolic: reach of pattern(A(:,j)) through the pivoted L columns.
    int top = static_cast<int>(n);
    for (int p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
      const int i = arow_ind_[static_cast<std::size_t>(p)];
      if (flag[static_cast<std::size_t>(i)] != static_cast<int>(j)) {
        top = reach_dfs(i, static_cast<int>(j), top, xi, stack, pstack, flag);
      }
    }

    // Numeric: sparse triangular solve x = L \ A(:,j) over the reach.
    for (int t = top; t < static_cast<int>(n); ++t) {
      x[static_cast<std::size_t>(xi[static_cast<std::size_t>(t)])] = 0.0;
    }
    for (int p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
      x[static_cast<std::size_t>(arow_ind_[static_cast<std::size_t>(p)])] +=
          aval[static_cast<std::size_t>(aval_src_[static_cast<std::size_t>(p)])];
    }
    for (int t = top; t < static_cast<int>(n); ++t) {
      const int i = xi[static_cast<std::size_t>(t)];
      const int k = pinv_[static_cast<std::size_t>(i)];
      if (k < 0) continue;  // not yet pivotal: becomes an L entry below
      const double xv = x[static_cast<std::size_t>(i)];
      urow_ind_.push_back(k);
      uval_.push_back(xv);
      for (int q = lcol_ptr_[static_cast<std::size_t>(k)];
           q < lcol_ptr_[static_cast<std::size_t>(k) + 1]; ++q) {
        x[static_cast<std::size_t>(lrow_ind_[static_cast<std::size_t>(q)])] -=
            lval_[static_cast<std::size_t>(q)] * xv;
      }
    }

    // Scaled partial pivoting over the not-yet-pivotal rows of the reach.
    int best = -1;
    double best_mag = -1.0;
    for (int t = top; t < static_cast<int>(n); ++t) {
      const int i = xi[static_cast<std::size_t>(t)];
      if (pinv_[static_cast<std::size_t>(i)] >= 0) continue;
      const double mag = std::abs(x[static_cast<std::size_t>(i)]) *
                         row_scale_[static_cast<std::size_t>(i)];
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    if (best < 0 ||
        std::abs(x[static_cast<std::size_t>(best)]) < threshold_) {
      throw SingularMatrixError("sparse LU: (near-)singular pivot at column " +
                                std::to_string(j));
    }
    const double pivot = x[static_cast<std::size_t>(best)];
    udiag_[j] = pivot;
    pinv_[static_cast<std::size_t>(best)] = static_cast<int>(j);
    p_[j] = best;

    for (int t = top; t < static_cast<int>(n); ++t) {
      const int i = xi[static_cast<std::size_t>(t)];
      if (pinv_[static_cast<std::size_t>(i)] >= 0) continue;
      lrow_ind_.push_back(i);
      lval_.push_back(x[static_cast<std::size_t>(i)] / pivot);
    }
    lcol_ptr_.push_back(static_cast<int>(lrow_ind_.size()));
    ucol_ptr_.push_back(static_cast<int>(urow_ind_.size()));
    for (int t = top; t < static_cast<int>(n); ++t) {
      topo_row_.push_back(xi[static_cast<std::size_t>(t)]);
    }
    topo_ptr_.push_back(static_cast<int>(topo_row_.size()));
  }

  // Permutation parity (for the determinant sign), by cycle decomposition.
  perm_sign_ = 1;
  std::vector<char> seen(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (seen[k]) continue;
    std::size_t len = 0;
    for (std::size_t c = k; !seen[c]; c = static_cast<std::size_t>(p_[c])) {
      seen[c] = 1;
      ++len;
    }
    if (len % 2 == 0) perm_sign_ = -perm_sign_;
  }
}

void SparseLuFactorization::refactor(const SparseMatrix& a) {
  RELSIM_REQUIRE(a.rows() == n_ && a.nnz() == anz_,
                 "sparse LU refactor: matrix structure changed");
  if (testing::fire(testing::FaultSite::kSparseLuRefactor)) {
    throw SingularMatrixError(
        "sparse LU refactor: injected pivot collapse (fault harness)");
  }
  const auto& aval = a.values();
  work_x_.assign(n_, 0.0);
  std::vector<double>& x = work_x_;
  std::size_t lpos = 0;
  std::size_t upos = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    for (int t = topo_ptr_[j]; t < topo_ptr_[j + 1]; ++t) {
      x[static_cast<std::size_t>(topo_row_[static_cast<std::size_t>(t)])] = 0.0;
    }
    for (int p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
      x[static_cast<std::size_t>(arow_ind_[static_cast<std::size_t>(p)])] +=
          aval[static_cast<std::size_t>(aval_src_[static_cast<std::size_t>(p)])];
    }
    // Replay the recorded elimination order; rows pivoted before column j
    // are U entries and trigger the update with their L column.
    for (int t = topo_ptr_[j]; t < topo_ptr_[j + 1]; ++t) {
      const int i = topo_row_[static_cast<std::size_t>(t)];
      const int k = pinv_[static_cast<std::size_t>(i)];
      if (k >= static_cast<int>(j)) continue;
      const double xv = x[static_cast<std::size_t>(i)];
      uval_[upos++] = xv;
      for (int q = lcol_ptr_[static_cast<std::size_t>(k)];
           q < lcol_ptr_[static_cast<std::size_t>(k) + 1]; ++q) {
        x[static_cast<std::size_t>(lrow_ind_[static_cast<std::size_t>(q)])] -=
            lval_[static_cast<std::size_t>(q)] * xv;
      }
    }
    const double pivot = x[static_cast<std::size_t>(p_[j])];
    if (std::abs(pivot) < threshold_) {
      throw SingularMatrixError(
          "sparse LU refactor: pivot collapsed at column " + std::to_string(j));
    }
    udiag_[j] = pivot;
    for (int t = topo_ptr_[j]; t < topo_ptr_[j + 1]; ++t) {
      const int i = topo_row_[static_cast<std::size_t>(t)];
      if (pinv_[static_cast<std::size_t>(i)] <= static_cast<int>(j)) continue;
      lval_[lpos++] = x[static_cast<std::size_t>(i)] / pivot;
    }
  }
}

void SparseLuFactorization::solve_into(const Vector& b, Vector& x) const {
  RELSIM_REQUIRE(b.size() == n_, "sparse LU solve: rhs size mismatch");
  work_y_.resize(n_);
  Vector& y = work_y_;
  for (std::size_t k = 0; k < n_; ++k) {
    y[k] = b[static_cast<std::size_t>(p_[k])];
  }
  // Forward solve L y = P b (unit diagonal; L rows are original ids).
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;
    for (int q = lcol_ptr_[k]; q < lcol_ptr_[k + 1]; ++q) {
      y[static_cast<std::size_t>(
          pinv_[static_cast<std::size_t>(
              lrow_ind_[static_cast<std::size_t>(q)])])] -=
          lval_[static_cast<std::size_t>(q)] * yk;
    }
  }
  // Back solve U x = y (column-oriented; U rows are pivot-order ids).
  for (std::size_t jj = n_; jj-- > 0;) {
    const double xj = y[jj] / udiag_[jj];
    y[jj] = xj;
    for (int q = ucol_ptr_[jj]; q < ucol_ptr_[jj + 1]; ++q) {
      y[static_cast<std::size_t>(urow_ind_[static_cast<std::size_t>(q)])] -=
          uval_[static_cast<std::size_t>(q)] * xj;
    }
  }
  x.assign(y.begin(), y.end());
}

void SparseLuFactorization::save_values(NumericValues& out) const {
  out.lval = lval_;
  out.uval = uval_;
  out.udiag = udiag_;
}

bool SparseLuFactorization::load_values(const NumericValues& in) {
  if (in.lval.size() != lval_.size() || in.uval.size() != uval_.size() ||
      in.udiag.size() != udiag_.size()) {
    return false;
  }
  lval_ = in.lval;
  uval_ = in.uval;
  udiag_ = in.udiag;
  return true;
}

Vector SparseLuFactorization::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

double SparseLuFactorization::determinant() const {
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= udiag_[i];
  return det;
}

}  // namespace relsim
