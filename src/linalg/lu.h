// Partial-pivot LU factorization and solve.
#pragma once

#include "linalg/matrix.h"

namespace relsim {

/// LU factorization with partial (row) pivoting: PA = LU, stored packed.
/// Throws SingularMatrixError when a pivot falls below the singularity
/// threshold.
class LuFactorization {
 public:
  /// Factorizes a square matrix. `A` is copied.
  explicit LuFactorization(const Matrix& a,
                           double singular_threshold = 1e-13);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// In-place solve into `x` (x may alias b's storage after copy).
  void solve_into(const Vector& b, Vector& x) const;

  /// det(A); sign accounts for row swaps.
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// One-shot convenience: solves A x = b.
Vector solve(const Matrix& a, const Vector& b);

}  // namespace relsim
