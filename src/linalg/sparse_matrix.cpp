#include "linalg/sparse_matrix.h"

#include <algorithm>

#include "util/error.h"

namespace relsim {

void SparsityPattern::add_diagonal(std::size_t n) {
  entries_.reserve(entries_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    entries_.emplace_back(static_cast<int>(i), static_cast<int>(i));
  }
}

SparseMatrix::SparseMatrix(std::size_t n, const SparsityPattern& pattern)
    : n_(n) {
  std::vector<std::pair<int, int>> entries = pattern.entries();
  for (const auto& [r, c] : entries) {
    RELSIM_REQUIRE(r < static_cast<int>(n) && c < static_cast<int>(n),
                   "sparsity pattern entry out of range");
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  row_ptr_.assign(n + 1, 0);
  col_ind_.reserve(entries.size());
  for (const auto& [r, c] : entries) {
    ++row_ptr_[static_cast<std::size_t>(r) + 1];
    col_ind_.push_back(c);
  }
  for (std::size_t i = 0; i < n; ++i) row_ptr_[i + 1] += row_ptr_[i];
  values_.assign(col_ind_.size(), 0.0);
}

void SparseMatrix::zero_values() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

int SparseMatrix::find(std::size_t row, std::size_t col) const {
  const auto begin = col_ind_.begin() + row_ptr_[row];
  const auto end = col_ind_.begin() + row_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, static_cast<int>(col));
  if (it == end || *it != static_cast<int>(col)) return -1;
  return static_cast<int>(it - col_ind_.begin());
}

bool SparseMatrix::add_at(std::size_t row, std::size_t col, double value) {
  if (row >= n_ || col >= n_) return false;
  const int pos = find(row, col);
  if (pos < 0) return false;
  values_[static_cast<std::size_t>(pos)] += value;
  return true;
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  RELSIM_REQUIRE(row < n_ && col < n_, "sparse matrix index out of range");
  const int pos = find(row, col);
  return pos < 0 ? 0.0 : values_[static_cast<std::size_t>(pos)];
}

Vector SparseMatrix::multiply(const Vector& x) const {
  RELSIM_REQUIRE(x.size() == n_, "sparse multiply: size mismatch");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (int p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += values_[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(col_ind_[static_cast<std::size_t>(p)])];
    }
    y[r] = acc;
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (int p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      dense(r, static_cast<std::size_t>(col_ind_[static_cast<std::size_t>(p)])) =
          values_[static_cast<std::size_t>(p)];
    }
  }
  return dense;
}

}  // namespace relsim
