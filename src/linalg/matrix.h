// Dense row-major matrix for MNA systems.
//
// relsim's benchmark circuits have at most a few dozen unknowns, so a dense
// matrix with partial-pivot LU beats the bookkeeping cost of a sparse
// structure (see DESIGN.md "Design choices"; bench_kernels measures it).
#pragma once

#include <cstddef>
#include <vector>

namespace relsim {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Sets every element to `value` without reallocating.
  void fill(double value);

  /// y = A*x. x.size() must equal cols().
  Vector multiply(const Vector& x) const;

  /// Max-abs element (used in convergence/conditioning diagnostics).
  double max_abs() const;

  /// Infinity norm (max absolute row sum).
  double norm_inf() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const Vector& v);

/// Infinity norm of a vector.
double norm_inf(const Vector& v);

/// r = a - b elementwise.
Vector subtract(const Vector& a, const Vector& b);

}  // namespace relsim
