#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace relsim {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector Matrix::multiply(const Vector& x) const {
  RELSIM_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::abs((*this)(r, c));
    best = std::max(best, s);
  }
  return best;
}

double norm2(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector subtract(const Vector& a, const Vector& b) {
  RELSIM_REQUIRE(a.size() == b.size(), "vector size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

}  // namespace relsim
