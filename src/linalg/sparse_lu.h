// Sparse LU factorization with a reusable symbolic structure.
//
// Left-looking (Gilbert-Peierls) LU with scaled partial pivoting. The first
// factorization performs the symbolic analysis — per-column elimination
// reach (topological order), pivot order, and the fill patterns of L and U —
// and stores it. refactor() then redoes only the numeric work on a matrix
// with the SAME sparsity pattern, reusing the pivot order and skipping every
// DFS: this is the fast path the Newton loop hits on all iterations and
// timesteps after the first.
//
// The symbolic-reuse contract: refactor(a) requires `a` to have exactly the
// structure of the matrix the factorization was built from (same n, same
// nonzero positions). A pivot that collapses below the singularity threshold
// under the frozen pivot order throws SingularMatrixError — the caller
// rebuilds the factorization (fresh pivot choice) or falls back to dense.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse_matrix.h"

namespace relsim {

class SparseLuFactorization {
 public:
  /// Full symbolic + numeric factorization of PA = LU. `a` must be square.
  explicit SparseLuFactorization(const SparseMatrix& a,
                                 double singular_threshold = 1e-13);

  /// Numeric-only refactorization under the frozen symbolic structure.
  /// Throws SingularMatrixError when a pivot falls below the threshold;
  /// the factorization is then unusable until rebuilt.
  void refactor(const SparseMatrix& a);

  std::size_t size() const { return n_; }
  std::size_t fill_nnz() const { return lval_.size() + uval_.size() + n_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;
  void solve_into(const Vector& b, Vector& x) const;

  /// Snapshot of the numeric factors (L/U values) under the current
  /// symbolic structure. Lets a caller interleave factorizations of several
  /// same-structure matrices through one SparseLuFactorization: refactor(),
  /// save_values(), later load_values() + solve_into() — without paying a
  /// new refactor. load_values() returns false (and changes nothing) if the
  /// snapshot was taken under a different symbolic structure.
  struct NumericValues {
    std::vector<double> lval, uval, udiag;
  };
  void save_values(NumericValues& out) const;
  bool load_values(const NumericValues& in);

  /// det(A); sign accounts for the row permutation.
  double determinant() const;

 private:
  void factor_full(const SparseMatrix& a);
  /// Depth-first search from row `i` through pivoted L columns; prepends
  /// the reach to xi[top..) in topological order and returns the new top.
  int reach_dfs(int i, int j, int top, std::vector<int>& xi,
                std::vector<int>& stack, std::vector<int>& pstack,
                std::vector<int>& flag);

  std::size_t n_ = 0;
  std::size_t anz_ = 0;  ///< nnz of the source matrix (structure check)
  double threshold_;

  // CSC mirror of the source pattern; aval_src_ maps each CSC slot to the
  // index of the same entry in the source matrix's CSR value array.
  std::vector<int> acol_ptr_, arow_ind_, aval_src_;

  // L (unit diagonal implicit) in CSC with ORIGINAL row indices; U in CSC
  // with PIVOT-ORDER row indices; U's diagonal kept separate.
  std::vector<int> lcol_ptr_, lrow_ind_;
  std::vector<double> lval_;
  std::vector<int> ucol_ptr_, urow_ind_;
  std::vector<double> uval_;
  std::vector<double> udiag_;

  std::vector<int> p_;     ///< p_[k] = original row pivoted at step k
  std::vector<int> pinv_;  ///< pinv_[original row] = pivot step
  int perm_sign_ = 1;

  // Per-column elimination reach in topological order (original row ids),
  // replayed verbatim by refactor().
  std::vector<int> topo_ptr_, topo_row_;

  std::vector<double> row_scale_;  ///< scaled-pivoting row norms

  // Dense work vectors reused across refactor()/solve_into() calls so the
  // per-Newton-iteration hot path never allocates.
  std::vector<double> work_x_;
  mutable Vector work_y_;
};

}  // namespace relsim
