#include "linalg/lu.h"

#include <cmath>

#include "testing/fault_injection.h"
#include "util/error.h"

namespace relsim {

LuFactorization::LuFactorization(const Matrix& a, double singular_threshold)
    : lu_(a), perm_(a.rows()) {
  RELSIM_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  if (testing::fire(testing::FaultSite::kDenseLuFactor)) {
    throw SingularMatrixError("LU: injected singular pivot (fault harness)");
  }
  const std::size_t n = lu_.rows();
  // Scale factors for scaled partial pivoting: keeps the pivot choice
  // meaningful when MNA rows mix conductances of very different magnitude.
  std::vector<double> scale(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (std::size_t c = 0; c < n; ++c) m = std::max(m, std::abs(lu_(r, c)));
    if (m == 0.0) throw SingularMatrixError("LU: zero row in matrix");
    scale[r] = 1.0 / m;
  }
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Choose the pivot row.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k)) * scale[k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, k)) * scale[r];
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(scale[k], scale[pivot]);
      std::swap(perm_[k], perm_[pivot]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot_value = lu_(k, k);
    if (std::abs(pivot_value) < singular_threshold) {
      throw SingularMatrixError("LU: (near-)singular pivot at column " +
                                std::to_string(k));
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot_value;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

void LuFactorization::solve_into(const Vector& b, Vector& x) const {
  const std::size_t n = size();
  RELSIM_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  x.resize(n);
  // Forward substitution with the permutation applied on the fly.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

double LuFactorization::determinant() const {
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace relsim
