// Compressed-sparse-row matrix for MNA systems.
//
// MNA Jacobians are extremely sparse (a handful of entries per device), so
// past a few dozen unknowns a sparse factorization beats the dense path by
// orders of magnitude (bench_sparse_solver measures the crossover). The
// structure is split in two pieces so the hot Newton loop never allocates:
//
//   SparsityPattern  — a set of (row, col) positions collected once per
//                      circuit topology ("stamp-pattern builder");
//   SparseMatrix     — CSR storage built from a pattern; values are zeroed
//                      and re-accumulated in place every Newton iteration.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace relsim {

/// Set of structurally nonzero (row, col) positions of a square matrix.
/// Duplicates are allowed and deduplicated when a SparseMatrix is built.
class SparsityPattern {
 public:
  /// Records position (row, col). Negative indices are ignored so MNA
  /// stamps can pass ground (-1) unconditionally, mirroring StampArgs.
  void add(int row, int col) {
    if (row < 0 || col < 0) return;
    entries_.emplace_back(row, col);
  }

  /// Records (i, i) for every i in [0, n): guarantees a structural
  /// diagonal, which the gmin stamp and pivoting both rely on.
  void add_diagonal(std::size_t n);

  void clear() { entries_.clear(); }
  std::size_t entry_count() const { return entries_.size(); }
  const std::vector<std::pair<int, int>>& entries() const { return entries_; }

 private:
  std::vector<std::pair<int, int>> entries_;
};

/// Square CSR matrix with an immutable sparsity structure. Writes outside
/// the structure are reported (not stored) so callers can detect a stale
/// pattern and rebuild it.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds the CSR structure for an n x n matrix from `pattern`
  /// (deduplicated, columns sorted within each row). All values start at 0.
  SparseMatrix(std::size_t n, const SparsityPattern& pattern);

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return n_; }
  std::size_t nnz() const { return col_ind_.size(); }

  /// Zeroes every stored value, keeping the structure.
  void zero_values();

  /// Accumulates `value` at (row, col). Returns false (and stores nothing)
  /// when the position is not part of the structure.
  bool add_at(std::size_t row, std::size_t col, double value);

  /// Value at (row, col); structural zeros read as 0.0.
  double at(std::size_t row, std::size_t col) const;

  /// y = A*x.
  Vector multiply(const Vector& x) const;

  /// Dense copy (dense-fallback path and tests).
  Matrix to_dense() const;

  // Raw CSR access for the factorization.
  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_ind() const { return col_ind_; }
  const std::vector<double>& values() const { return values_; }

  /// Index into values() of (row, col), or -1 when the position is not in
  /// the structure. Callers that restamp the same positions every iteration
  /// (batched Monte-Carlo) resolve slots once and write through
  /// values_data() instead of paying add_at's search per write.
  int value_index(std::size_t row, std::size_t col) const {
    return find(row, col);
  }

  /// Mutable raw value array for precomputed-slot writes.
  double* values_data() { return values_.data(); }

 private:
  /// Index into values_ of (row, col), or -1 when absent.
  int find(std::size_t row, std::size_t col) const;

  std::size_t n_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_ind_;
  std::vector<double> values_;
};

}  // namespace relsim
