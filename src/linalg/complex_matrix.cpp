#include "linalg/complex_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace relsim {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void ComplexMatrix::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

ComplexVector ComplexMatrix::multiply(const ComplexVector& x) const {
  RELSIM_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  ComplexVector y(rows_, Complex(0.0, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc(0.0, 0.0);
    const Complex* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

ComplexLu::ComplexLu(const ComplexMatrix& a, double singular_threshold)
    : lu_(a), perm_(a.rows()) {
  RELSIM_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  std::vector<double> scale(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (std::size_t c = 0; c < n; ++c) m = std::max(m, std::abs(lu_(r, c)));
    if (m == 0.0) throw SingularMatrixError("complex LU: zero row");
    scale[r] = 1.0 / m;
  }
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k)) * scale[k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, k)) * scale[r];
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(scale[k], scale[pivot]);
      std::swap(perm_[k], perm_[pivot]);
    }
    const Complex pivot_value = lu_(k, k);
    if (std::abs(pivot_value) < singular_threshold) {
      throw SingularMatrixError("complex LU: (near-)singular pivot");
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = lu_(r, k) / pivot_value;
      lu_(r, k) = factor;
      if (factor == Complex(0.0, 0.0)) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

ComplexVector ComplexLu::solve(const ComplexVector& b) const {
  const std::size_t n = size();
  RELSIM_REQUIRE(b.size() == n, "complex LU solve: rhs size mismatch");
  ComplexVector x(n);
  for (std::size_t r = 0; r < n; ++r) {
    Complex acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    Complex acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

ComplexVector solve(const ComplexMatrix& a, const ComplexVector& b) {
  return ComplexLu(a).solve(b);
}

}  // namespace relsim
