// Complex dense matrix + LU for AC (small-signal) analysis.
//
// Mirrors matrix.h/lu.h for std::complex<double>. Kept separate from the
// real-valued path on purpose: the transient/DC hot loop stays free of
// complex arithmetic and the two implementations stay independently
// readable (see DESIGN.md "Design choices").
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace relsim {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols,
                Complex fill = Complex(0.0, 0.0));

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void fill(Complex value);

  ComplexVector multiply(const ComplexVector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Partial-pivot LU for complex systems. Throws SingularMatrixError on
/// (near-)singular pivots.
class ComplexLu {
 public:
  explicit ComplexLu(const ComplexMatrix& a,
                     double singular_threshold = 1e-13);

  std::size_t size() const { return lu_.rows(); }
  ComplexVector solve(const ComplexVector& b) const;

 private:
  ComplexMatrix lu_;
  std::vector<std::size_t> perm_;
};

/// One-shot convenience: solves A x = b.
ComplexVector solve(const ComplexMatrix& a, const ComplexVector& b);

}  // namespace relsim
