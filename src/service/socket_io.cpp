#include "service/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace relsim::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

void set_socket_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                         tv.tv_sec)) *
                                          1e6);
    // A sub-microsecond request must still time out, not block forever.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RELSIM_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long (sockaddr_un limit)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a killed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(tcp:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RELSIM_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long (sockaddr_un limit)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO deadline expired mid-frame.
        throw SocketTimeoutError("socket write timed out");
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool LineReader::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buf_.empty()) return false;
      out = std::move(buf_);  // truncated trailing frame
      buf_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO deadline expired: the peer is slow, not gone. The
        // buffered prefix (if any) stays for the next read_line call.
        throw SocketTimeoutError("socket read timed out");
      }
      eof_ = true;
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace relsim::service
