#include "service/compiled_cache.h"

#include "obs/metrics.h"
#include "spice/netlist_parser.h"
#include "util/error.h"
#include "util/hash.h"

namespace relsim::service {

namespace {

struct CacheMetrics {
  obs::Counter& hits = obs::metrics().counter("service.cache.hits");
  obs::Counter& misses = obs::metrics().counter("service.cache.misses");
  obs::Gauge& entries = obs::metrics().gauge("service.cache.entries");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

CompiledCircuitCache::CompiledCircuitCache(std::size_t capacity)
    : capacity_(capacity) {
  RELSIM_REQUIRE(capacity >= 1, "cache capacity must be >= 1");
}

std::uint64_t CompiledCircuitCache::key_of(const std::string& netlist_text) {
  return fnv1a64(netlist_text);
}

CompiledCircuitCache::Entry CompiledCircuitCache::get(
    const std::string& netlist_text,
    const spice::CompiledCircuit::Options& options) {
  const std::uint64_t key = key_of(netlist_text);
  std::lock_guard<std::mutex> lock(mu_);

  const auto [lo, hi] = index_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->text != netlist_text) continue;  // hash collision
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    ++hits_;
    cache_metrics().hits.inc();
    return lru_.front().entry;
  }

  // Miss: parse + compile under the lock. Compiling is milliseconds and
  // holding the lock guarantees concurrent requests for the SAME netlist
  // produce one pattern build, which the bench acceptance criterion
  // (pattern_builds == 1 per unique netlist) checks directly.
  ++misses_;
  cache_metrics().misses.inc();
  spice::ParsedNetlist parsed = spice::parse_netlist(netlist_text);
  Entry entry;
  entry.tech = parsed.tech != nullptr ? parsed.tech : &tech_65nm();
  entry.key = key;
  entry.compiled = std::make_shared<const spice::CompiledCircuit>(
      std::move(parsed.circuit), options);

  lru_.push_front(Slot{netlist_text, entry});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    const Slot& victim = lru_.back();
    const auto [vlo, vhi] = index_.equal_range(victim.entry.key);
    for (auto it = vlo; it != vhi; ++it) {
      if (it->second == std::prev(lru_.end())) {
        index_.erase(it);
        break;
      }
    }
    lru_.pop_back();
  }
  cache_metrics().entries.set(static_cast<double>(lru_.size()));
  return entry;
}

std::size_t CompiledCircuitCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t CompiledCircuitCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t CompiledCircuitCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace relsim::service
