#include "service/fair_queue.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace relsim::service {

namespace {

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("service.queue_depth");
  return g;
}

}  // namespace

bool FairShareQueue::push(std::shared_ptr<Job> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    Tenant& t = tenants_[job->tenant];
    t.pending.emplace(std::make_pair(-job->priority, job->seq), job);
    ++depth_;
    queue_depth_gauge().set(static_cast<double>(depth_));
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<Job> FairShareQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return depth_ > 0 || shutdown_ || paused_; });
  if (paused_) return nullptr;      // draining: backlog kept, not served
  if (depth_ == 0) return nullptr;  // shutdown with empty backlog

  // Least-virtual-work tenant among those with pending jobs; name order
  // breaks ties (map iteration is already name-ordered).
  Tenant* best = nullptr;
  std::uint64_t best_work = std::numeric_limits<std::uint64_t>::max();
  for (auto& [name, tenant] : tenants_) {
    if (tenant.pending.empty()) continue;
    if (tenant.virtual_work < best_work) {
      best = &tenant;
      best_work = tenant.virtual_work;
    }
  }
  auto it = best->pending.begin();
  std::shared_ptr<Job> job = it->second;
  best->pending.erase(it);
  best->virtual_work += std::max<std::uint64_t>(job->spec.n, 1);
  --depth_;
  queue_depth_gauge().set(static_cast<double>(depth_));
  return job;
}

std::shared_ptr<Job> FairShareQueue::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, tenant] : tenants_) {
    for (auto it = tenant.pending.begin(); it != tenant.pending.end(); ++it) {
      if (it->second->id != id) continue;
      std::shared_ptr<Job> job = it->second;
      tenant.pending.erase(it);
      --depth_;
      queue_depth_gauge().set(static_cast<double>(depth_));
      return job;
    }
  }
  return nullptr;
}

void FairShareQueue::pause() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }
  cv_.notify_all();
}

std::vector<std::shared_ptr<Job>> FairShareQueue::shutdown() {
  std::vector<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [name, tenant] : tenants_) {
      for (auto& [key, job] : tenant.pending) orphaned.push_back(job);
      tenant.pending.clear();
    }
    depth_ = 0;
    queue_depth_gauge().set(0.0);
  }
  cv_.notify_all();
  return orphaned;
}

std::size_t FairShareQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

std::uint64_t FairShareQueue::tenant_virtual_work(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.virtual_work;
}

}  // namespace relsim::service
