#include "service/event_hub.h"

#include "obs/metrics.h"

namespace relsim::service {

bool EventHub::Subscription::next(std::string& out,
                                  std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu);
  if (dropped_pending > 0) {
    // Surface the gap before the events that follow it, so a consumer
    // reconstructing state knows it missed something at this point.
    out = "{\"event\":\"dropped\",\"count\":" +
          std::to_string(dropped_pending) + "}";
    dropped_pending = 0;
    return true;
  }
  cv.wait_for(lock, timeout, [this] {
    return !queue.empty() || dropped_pending > 0 || hub_closed;
  });
  if (dropped_pending > 0) {
    out = "{\"event\":\"dropped\",\"count\":" +
          std::to_string(dropped_pending) + "}";
    dropped_pending = 0;
    return true;
  }
  if (queue.empty()) return false;  // timeout, or closed and drained
  out = *queue.front();
  queue.pop_front();
  return true;
}

bool EventHub::Subscription::closed() const {
  std::lock_guard<std::mutex> lock(mu);
  return hub_closed && queue.empty() && dropped_pending == 0;
}

std::uint64_t EventHub::Subscription::dropped() const {
  std::lock_guard<std::mutex> lock(mu);
  return dropped_total;
}

std::shared_ptr<EventHub::Subscription> EventHub::subscribe(
    std::uint64_t job_filter) {
  auto sub = std::make_shared<Subscription>();
  sub->job_filter = job_filter;
  sub->capacity = capacity_;
  std::lock_guard<std::mutex> lock(mu_);
  sub->hub_closed = closed_;
  if (!closed_) {
    subs_.push_back(sub);
    count_.store(subs_.size(), std::memory_order_relaxed);
  }
  return sub;
}

void EventHub::unsubscribe(const std::shared_ptr<Subscription>& sub) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (*it == sub) {
      subs_.erase(it);
      break;
    }
  }
  count_.store(subs_.size(), std::memory_order_relaxed);
}

void EventHub::publish(std::uint64_t job_id, std::string line) {
  static obs::Counter& c_published =
      obs::metrics().counter("service.events_published");
  static obs::Counter& c_dropped =
      obs::metrics().counter("service.events_dropped");
  const auto payload = std::make_shared<const std::string>(std::move(line));
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  c_published.inc();
  for (const auto& sub : subs_) {
    if (sub->job_filter != 0 && sub->job_filter != job_id) continue;
    std::lock_guard<std::mutex> slock(sub->mu);
    sub->queue.push_back(payload);
    if (sub->queue.size() > sub->capacity) {
      sub->queue.pop_front();
      ++sub->dropped_total;
      ++sub->dropped_pending;
      c_dropped.inc();
    }
    sub->cv.notify_one();
  }
}

void EventHub::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (const auto& sub : subs_) {
    std::lock_guard<std::mutex> slock(sub->mu);
    sub->hub_closed = true;
    sub->cv.notify_all();
  }
  subs_.clear();
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace relsim::service
