// The relsim yield-analysis daemon core.
//
// Thread model:
//   * one accept thread (poll over the Unix + optional TCP listeners and a
//     self-pipe used to interrupt it);
//   * one connection thread per client, reading newline-framed JSON
//     requests and writing one reply frame per request ("wait" blocks the
//     connection thread on the job's condition variable — other clients
//     are unaffected);
//   * `executors` executor threads popping the fair-share queue and
//     running jobs through service::run_job (McSession underneath).
//
// Jobs outlive their submitting connection: a client may disconnect
// mid-run and any client may fetch the result later by job id. The job
// table is kept until the server stops.
//
// Shutdown discipline: the "shutdown" op only LATCHES a flag (and wakes
// wait_shutdown_requested()); the owning thread — relsimd's main, or the
// test body — then calls stop(). stop() never runs on a connection
// thread, so joining the connection pool cannot deadlock on self-join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/prometheus.h"
#include "service/compiled_cache.h"
#include "service/event_hub.h"
#include "service/fair_queue.h"
#include "service/job.h"

namespace relsim::service {

struct ServerOptions {
  std::string socket_path;  ///< required: Unix-domain listen path
  int tcp_port = -1;        ///< -1 = no TCP; 0 = ephemeral loopback port
  unsigned executors = 2;   ///< concurrent jobs
  std::size_t cache_capacity = 16;  ///< distinct compiled netlists kept
  /// Hard per-job worker cap applied on top of each job's own
  /// thread_budget (0 = none): multi-tenant deployments set this so no
  /// request can monopolize the host.
  unsigned max_job_threads = 0;
  /// Plain-HTTP /metrics listener on 127.0.0.1 (Prometheus text format).
  /// -1 = disabled; 0 = ephemeral port (see metrics_http_port()).
  int metrics_http_port = -1;
  /// Non-empty: rotating JSONL log of every job transition (falls back to
  /// RELSIM_EVENT_LOG / RELSIM_EVENT_LOG_MAX_BYTES when empty).
  std::string event_log_path;
  std::size_t event_log_max_bytes = 8u << 20;
  /// Per-subscriber event queue depth; overflow drops the OLDEST events
  /// (each subscriber sees its own dropped count inline in its stream).
  std::size_t subscriber_queue = 256;
  /// Test hook: false makes the daemon answer subscribe with the generic
  /// unknown-op error, emulating a pre-telemetry daemon for client
  /// fallback tests.
  bool enable_subscribe = true;
  /// Read/write deadline applied to every accepted request/reply
  /// connection (0 = none). A client that stalls mid-frame for longer is
  /// dropped instead of pinning its connection thread forever. Subscribe
  /// streams clear the deadline when they start: an idle but healthy
  /// subscriber is normal.
  double io_timeout_seconds = 0.0;
  /// Cosmetic identity for sharded deployments (relsimd --worker-of):
  /// carried in daemon stats events so coordinator logs and event-log
  /// artifacts attribute a stream to a worker.
  std::string worker_name;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners and launches the accept + executor threads.
  void start();

  /// Stops accepting, fails queued jobs, cancels running jobs, joins all
  /// threads, removes the socket file. Idempotent. Must not be called
  /// from a connection thread (the "shutdown" op latches a flag instead).
  void stop();

  /// Graceful drain (relsimd's SIGTERM path): stop dequeuing, cancel the
  /// running jobs cooperatively so each writes its final checkpoint and
  /// publishes its "checkpointed"/"cancelled" events, wait for them to
  /// settle, then stop(). Queued jobs are failed by stop() as usual.
  /// Same threading rule as stop().
  void drain();

  const ServerOptions& options() const { return options_; }
  int tcp_port() const { return tcp_port_; }  ///< resolved ephemeral port
  /// Resolved /metrics listener port (-1 when disabled).
  int metrics_http_port() const { return http_port_; }
  EventHub& event_hub() { return hub_; }

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }
  /// Blocks until a client sends the "shutdown" op (or stop() is called).
  void wait_shutdown_requested();

  CompiledCircuitCache& cache() { return cache_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  std::shared_ptr<Job> find_job(std::uint64_t id);

  /// Handles one request frame and returns the reply frame (no trailing
  /// newline). Public so protocol tests can drive the dispatcher without
  /// sockets; never throws — protocol errors become {"ok":false,...}.
  std::string handle_frame(const std::string& line);

 private:
  void accept_loop();
  void connection_loop(int fd);
  void http_loop(int fd);
  /// Dedicates `fd` to a line-delimited event stream until the client
  /// disconnects or the server stops (the connection never returns to
  /// request/reply mode).
  void serve_subscription(int fd, std::uint64_t job_filter);
  void executor_loop();
  void execute(const std::shared_ptr<Job>& job);
  std::shared_ptr<Job> submit(const std::string& tenant, int priority,
                              JobSpec spec);
  /// Serializes + fans out one job lifecycle event (and appends it to the
  /// event log). Negative queue/run seconds are omitted from the payload.
  void publish_job_event(const std::shared_ptr<Job>& job, const char* state,
                         double queue_seconds, double run_seconds,
                         const std::string& error = std::string());
  /// Daemon-wide stats event (job_id 0: unfiltered subscribers only).
  void publish_stats();

  ServerOptions options_;
  CompiledCircuitCache cache_;
  FairShareQueue queue_;
  EventHub hub_;
  std::unique_ptr<obs::EventLog> event_log_;
  obs::MetricsExporter exporter_;
  std::atomic<int> running_jobs_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int http_fd_ = -1;
  int http_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::vector<std::thread> executors_;

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;

  std::mutex jobs_mu_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace relsim::service
