#include "service/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/socket_io.h"
#include "service/workload.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::service {

namespace {

struct CoordMetrics {
  obs::Counter& runs = obs::metrics().counter("coord.runs");
  obs::Counter& leases = obs::metrics().counter("coord.shard_leases");
  obs::Counter& reissues = obs::metrics().counter("coord.shard_reissues");
  obs::Counter& lease_expiries =
      obs::metrics().counter("coord.lease_expiries");
  obs::Counter& crashes = obs::metrics().counter("coord.worker_crashes");
  obs::Counter& speculative =
      obs::metrics().counter("coord.speculative_launches");
  obs::Counter& inprocess = obs::metrics().counter("coord.shards_inprocess");
  obs::Counter& completed = obs::metrics().counter("coord.shards_completed");
};

CoordMetrics& coord_metrics() {
  static CoordMetrics m;
  return m;
}

std::string endpoint_name(const WorkerEndpoint& ep) {
  if (!ep.name.empty()) return ep.name;
  if (!ep.socket_path.empty()) return ep.socket_path;
  return ep.host + ":" + std::to_string(ep.port);
}

Client connect_worker(const WorkerEndpoint& ep) {
  return ep.socket_path.empty() ? Client::connect_tcp(ep.host, ep.port)
                                : Client::connect_unix(ep.socket_path);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

/// Seeds a fresh attempt's checkpoint from the best partial so far; the
/// copy (not a shared path) is what lets a zombie worker from an expired
/// lease keep writing ITS file without corrupting the re-issue.
void copy_file_bytes(const std::string& from, const std::string& to) {
  std::ifstream is(from, std::ios::binary);
  if (!is) return;
  std::ofstream os(to, std::ios::binary | std::ios::trunc);
  os << is.rdbuf();
}

enum class AttemptOutcome {
  kDone,          ///< worker reported the shard job done
  kFailed,        ///< worker reported the job failed
  kCancelled,     ///< someone cancelled the job on the worker
  kLeaseExpired,  ///< no event for lease_seconds — worker presumed stuck
  kCrashed,       ///< stream ended with no terminal state (kill -9 &c.)
  kUnreachable,   ///< could not connect/submit at all
};

const char* to_string(AttemptOutcome out) {
  switch (out) {
    case AttemptOutcome::kDone:
      return "done";
    case AttemptOutcome::kFailed:
      return "failed";
    case AttemptOutcome::kCancelled:
      return "cancelled";
    case AttemptOutcome::kLeaseExpired:
      return "lease-expired";
    case AttemptOutcome::kCrashed:
      return "crashed";
    case AttemptOutcome::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

using Clock = std::chrono::steady_clock;

struct ActiveLease {
  std::size_t worker = 0;
  std::uint64_t job_id = 0;
};

struct ShardState {
  McShard shard;
  std::mutex mu;
  bool finished = false;
  bool running = false;      ///< a lease is currently live
  bool speculated = false;
  unsigned attempts = 0;     ///< leases issued (primary + speculative)
  std::string winner_path;
  std::string winner_worker;
  std::string last_worker;
  std::string last_good_path;   ///< best partial checkpoint seen so far
  std::size_t last_good_done = 0;
  std::vector<ActiveLease> active;
  Clock::time_point attempt_start{};
};

/// The whole coordination run's shared context.
struct Coordination {
  const JobSpec* spec = nullptr;
  const CoordinatorOptions* opts = nullptr;
  std::vector<std::unique_ptr<ShardState>> shards;
  std::mutex done_mu;
  std::vector<double> completed_seconds;  ///< durations of finished shards
  std::atomic<std::size_t> pending{0};    ///< shards not yet settled
  std::atomic<std::size_t> reissues{0};
  std::atomic<std::size_t> lease_expiries{0};
  std::atomic<std::size_t> crashes{0};
  std::atomic<std::size_t> speculative{0};
};

void cancel_lease(const CoordinatorOptions& opts, const ActiveLease& lease) {
  try {
    Client c = connect_worker(opts.workers[lease.worker]);
    c.set_timeout(std::max(1.0, opts.lease_seconds));
    c.cancel(lease.job_id);
  } catch (const Error&) {
    // Best-effort: the worker may be gone, which is exactly why the
    // lease is being cancelled.
  }
}

/// After cancelling an expired lease, waits (bounded) for the job to
/// settle so its final checkpoint flush lands BEFORE the partial is
/// harvested for the re-issue or the merge.
void await_terminal(const CoordinatorOptions& opts, const ActiveLease& lease) {
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  try {
    Client c = connect_worker(opts.workers[lease.worker]);
    c.set_timeout(1.0);
    while (Clock::now() < deadline) {
      const std::string state =
          c.status(lease.job_id).get_string("state", "");
      if (state != "queued" && state != "running") return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  } catch (const Error&) {
    // Worker unreachable — nothing to wait for.
  }
}

/// First-complete-wins. Complete shard checkpoints are bit-identical
/// regardless of which attempt produced them, so the race is benign for
/// results — it only decides which FILE the merge reads.
bool try_finish(Coordination& ctx, ShardState& st, const std::string& path,
                const std::string& worker, double elapsed_seconds) {
  std::vector<ActiveLease> losers;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.finished) return false;
    st.finished = true;
    st.winner_path = path;
    st.winner_worker = worker;
    losers = st.active;  // the winner already deregistered itself
  }
  {
    std::lock_guard<std::mutex> lock(ctx.done_mu);
    ctx.completed_seconds.push_back(elapsed_seconds);
  }
  for (const ActiveLease& lease : losers) cancel_lease(*ctx.opts, lease);
  coord_metrics().completed.inc();
  return true;
}

/// Runs one lease of `shard` on worker `widx`, blocking until a terminal
/// event, lease expiry or stream death. Never throws.
AttemptOutcome run_attempt(Coordination& ctx, ShardState& st,
                           std::size_t widx,
                           const std::string& ckpt_path) {
  const CoordinatorOptions& opts = *ctx.opts;
  const WorkerEndpoint& ep = opts.workers[widx];
  std::uint64_t job_id = 0;
  try {
    Client control = connect_worker(ep);
    // Submitting must not hang on a half-dead worker either.
    control.set_timeout(std::max(opts.lease_seconds, 1.0));
    JobSpec js = *ctx.spec;
    js.shard_lo = st.shard.lo;
    js.shard_hi = st.shard.hi;
    js.checkpoint_path = ckpt_path;
    js.keep_values = false;   // checkpoints carry the values
    js.manifest_path.clear();
    js.label = (js.label.empty() ? std::string("sharded") : js.label) +
               ".shard" + std::to_string(st.shard.index);
    job_id = control.submit(opts.tenant, 0, js);
  } catch (const Error&) {
    return AttemptOutcome::kUnreachable;
  }

  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.active.push_back({widx, job_id});
  }
  const auto deregister = [&] {
    std::lock_guard<std::mutex> lock(st.mu);
    st.active.erase(std::remove_if(st.active.begin(), st.active.end(),
                                   [&](const ActiveLease& l) {
                                     return l.job_id == job_id &&
                                            l.worker == widx;
                                   }),
                    st.active.end());
  };

  bool done = false;
  bool failed = false;
  bool cancelled = false;
  AttemptOutcome outcome = AttemptOutcome::kCrashed;
  try {
    Client stream = connect_worker(ep);
    // THE lease: every event (progress snapshots are the heartbeat)
    // re-arms the deadline; silence for lease_seconds raises
    // SocketTimeoutError below.
    stream.set_timeout(opts.lease_seconds);
    stream.subscribe(job_id, [&](const obs::JsonValue& event) {
      const std::string state = event.get_string("state", "");
      if (state == "done") {
        done = true;
        return false;
      }
      if (state == "failed") {
        failed = true;
        return false;
      }
      if (state == "cancelled") {
        cancelled = true;
        return false;
      }
      return true;
    });
    outcome = done        ? AttemptOutcome::kDone
              : failed    ? AttemptOutcome::kFailed
              : cancelled ? AttemptOutcome::kCancelled
                          : AttemptOutcome::kCrashed;
  } catch (const SocketTimeoutError&) {
    outcome = AttemptOutcome::kLeaseExpired;
  } catch (const Error&) {
    outcome = AttemptOutcome::kCrashed;
  }
  deregister();
  if (outcome == AttemptOutcome::kLeaseExpired) {
    // Free the (possibly merely slow) worker; its partial stays on disk.
    cancel_lease(opts, {widx, job_id});
    await_terminal(opts, {widx, job_id});
  }
  return outcome;
}

/// Folds the attempt's checkpoint into the shard's best-partial tracking.
void refresh_last_good(ShardState& st, const std::string& path) {
  McCheckpointImage image;
  try {
    if (!load_checkpoint_image(path, image)) return;
  } catch (const McCheckpointCorruptError&) {
    return;  // a torn write from a killed worker — ignore the file
  }
  const std::size_t done = image.done_count();
  std::lock_guard<std::mutex> lock(st.mu);
  if (done > st.last_good_done) {
    st.last_good_done = done;
    st.last_good_path = path;
  }
}

/// One lease of a shard end-to-end: seed the attempt file, lease, harvest.
/// Returns the outcome (kDone implies try_finish already ran).
AttemptOutcome lease_once(Coordination& ctx, ShardState& st,
                          std::size_t widx, unsigned attempt_no,
                          const char* suffix) {
  const CoordinatorOptions& opts = *ctx.opts;
  const std::string path = st.shard.checkpoint_path + ".a" +
                           std::to_string(attempt_no) + suffix;
  std::string seed_from;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    seed_from = st.last_good_path;
    st.attempts += 1;
    st.running = true;
    st.attempt_start = Clock::now();
    st.last_worker = endpoint_name(opts.workers[widx]);
  }
  if (!seed_from.empty() && seed_from != path) {
    copy_file_bytes(seed_from, path);
  }
  coord_metrics().leases.inc();
  const auto t0 = Clock::now();
  const AttemptOutcome out = run_attempt(ctx, st, widx, path);
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.running = false;
  }
  refresh_last_good(st, path);
  if (out == AttemptOutcome::kDone) {
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    try_finish(ctx, st, path, endpoint_name(opts.workers[widx]), secs);
  } else {
    log_warn("coordinator: shard ", st.shard.index, " lease on ",
             endpoint_name(opts.workers[widx]), " ended ", to_string(out));
    if (out == AttemptOutcome::kLeaseExpired) {
      ctx.lease_expiries.fetch_add(1);
      coord_metrics().lease_expiries.inc();
    } else if (out == AttemptOutcome::kCrashed ||
               out == AttemptOutcome::kUnreachable) {
      ctx.crashes.fetch_add(1);
      coord_metrics().crashes.inc();
    }
  }
  return out;
}

bool shard_finished(ShardState& st) {
  std::lock_guard<std::mutex> lock(st.mu);
  return st.finished;
}

/// Primary per-shard driver: sequential leases with exponential backoff,
/// bounded by max_reissues, rotating through the workers.
void drive_shard(Coordination& ctx, ShardState& st) {
  const CoordinatorOptions& opts = *ctx.opts;
  const std::size_t worker_count = opts.workers.size();
  for (unsigned attempt = 0; attempt <= opts.max_reissues; ++attempt) {
    if (shard_finished(st)) break;  // a speculative racer won
    if (worker_count == 0) break;   // pure in-process mode
    if (attempt > 0) {
      ctx.reissues.fetch_add(1);
      coord_metrics().reissues.inc();
      const std::uint64_t delay = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(opts.backoff_base_ms) << (attempt - 1),
          opts.backoff_cap_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      if (shard_finished(st)) break;
    }
    const std::size_t widx = (st.shard.index + attempt) % worker_count;
    if (lease_once(ctx, st, widx, attempt, "") == AttemptOutcome::kDone) {
      break;
    }
  }
  ctx.pending.fetch_sub(1);
}

/// Straggler watchdog: once enough shards completed to estimate a median
/// duration, a shard still running straggler_factor× longer gets ONE
/// duplicate lease on the next worker over; first complete attempt wins.
void speculate_loop(Coordination& ctx, std::vector<std::thread>& extra,
                    std::mutex& extra_mu) {
  const CoordinatorOptions& opts = *ctx.opts;
  const std::size_t worker_count = opts.workers.size();
  if (opts.straggler_factor <= 0.0 || worker_count < 2) return;
  while (ctx.pending.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    double median = 0.0;
    {
      std::lock_guard<std::mutex> lock(ctx.done_mu);
      if (ctx.completed_seconds.size() < opts.straggler_min_done) continue;
      std::vector<double> sorted = ctx.completed_seconds;
      std::sort(sorted.begin(), sorted.end());
      median = sorted[sorted.size() / 2];
    }
    const double limit = opts.straggler_factor * median;
    for (auto& shard_ptr : ctx.shards) {
      ShardState& st = *shard_ptr;
      unsigned attempt_no = 0;
      std::size_t widx = 0;
      {
        std::lock_guard<std::mutex> lock(st.mu);
        if (st.finished || st.speculated || !st.running) continue;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - st.attempt_start)
                .count();
        if (elapsed <= limit) continue;
        st.speculated = true;
        attempt_no = st.attempts;  // distinct attempt-file number
        widx = (st.shard.index + st.attempts) % worker_count;
      }
      ctx.speculative.fetch_add(1);
      coord_metrics().speculative.inc();
      log_info("coordinator: speculating shard ", st.shard.index, " on ",
               endpoint_name(opts.workers[widx]));
      std::lock_guard<std::mutex> lock(extra_mu);
      extra.emplace_back([&ctx, &st, widx, attempt_no] {
        lease_once(ctx, st, widx, attempt_no, ".spec");
      });
    }
  }
}

void write_coordinator_manifest(const std::string& path, const JobSpec& spec,
                                const CoordinatorResult& out) {
  std::ostringstream os;
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.kv("kind", "coordinator");
  w.kv("n", static_cast<unsigned long long>(spec.n));
  w.kv("seed", static_cast<unsigned long long>(spec.seed));
  w.kv("reissues", static_cast<unsigned long long>(out.reissues));
  w.kv("lease_expiries",
       static_cast<unsigned long long>(out.lease_expiries));
  w.kv("worker_crashes",
       static_cast<unsigned long long>(out.worker_crashes));
  w.kv("speculative_launches",
       static_cast<unsigned long long>(out.speculative_launches));
  w.kv("shards_inprocess",
       static_cast<unsigned long long>(out.shards_inprocess));
  w.kv("merged_checkpoint", out.merged_checkpoint);
  w.kv("merge_parts_found",
       static_cast<unsigned long long>(out.merge.parts_found));
  w.kv("merge_samples", static_cast<unsigned long long>(out.merge.samples));
  w.key("shards").begin_array();
  for (const ShardOutcome& s : out.shards) {
    w.begin_object();
    w.kv("index", static_cast<unsigned long long>(s.index));
    w.kv("lo", static_cast<unsigned long long>(s.lo));
    w.kv("hi", static_cast<unsigned long long>(s.hi));
    w.kv("attempts", s.attempts);
    w.kv("completed", s.completed);
    w.kv("speculated", s.speculated);
    w.kv("worker", s.worker);
    w.kv("checkpoint", s.checkpoint_path);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream f(path, std::ios::trunc);
  RELSIM_REQUIRE(bool(f), "cannot write coordinator manifest: " + path);
  f << os.str() << "\n";
}

}  // namespace

CoordinatorResult run_sharded(const JobSpec& spec,
                              const CoordinatorOptions& options) {
  RELSIM_REQUIRE(spec.n > 0, "sharded run needs a sample count (n > 0)");
  RELSIM_REQUIRE(!options.checkpoint_dir.empty(),
                 "sharded run needs a checkpoint directory");
  RELSIM_REQUIRE(spec.shard_hi == 0,
                 "the coordinator owns shard windows — submit a whole-run "
                 "spec");
  coord_metrics().runs.inc();

  const std::size_t shard_count =
      options.shards > 0 ? options.shards
                         : std::max<std::size_t>(options.workers.size(), 1);
  const std::string prefix =
      options.checkpoint_dir + "/" +
      (spec.label.empty() ? std::string("sharded") : spec.label);
  const std::vector<McShard> plan =
      make_shard_plan(spec.n, shard_count, spec.chunk, prefix);

  Coordination ctx;
  ctx.spec = &spec;
  ctx.opts = &options;
  for (const McShard& shard : plan) {
    auto st = std::make_unique<ShardState>();
    st->shard = shard;
    ctx.shards.push_back(std::move(st));
  }
  ctx.pending.store(ctx.shards.size());

  std::vector<std::thread> drivers;
  std::vector<std::thread> extra;
  std::mutex extra_mu;
  if (!options.workers.empty()) {
    drivers.reserve(ctx.shards.size());
    for (auto& st : ctx.shards) {
      drivers.emplace_back(
          [&ctx, &state = *st] { drive_shard(ctx, state); });
    }
  } else {
    ctx.pending.store(0);  // degenerate: everything goes to assembly
  }
  std::thread watchdog(
      [&ctx, &extra, &extra_mu] { speculate_loop(ctx, extra, extra_mu); });
  for (std::thread& t : drivers) t.join();
  watchdog.join();
  // No new speculative threads can start now (pending == 0): the vector
  // is stable, racers just need joining.
  for (std::thread& t : extra) t.join();

  CoordinatorResult out;
  out.reissues = ctx.reissues.load();
  out.lease_expiries = ctx.lease_expiries.load();
  out.worker_crashes = ctx.crashes.load();
  out.speculative_launches = ctx.speculative.load();

  std::vector<std::string> parts;
  for (auto& shard_ptr : ctx.shards) {
    ShardState& st = *shard_ptr;
    ShardOutcome o;
    o.index = st.shard.index;
    o.lo = st.shard.lo;
    o.hi = st.shard.hi;
    o.attempts = st.attempts;
    o.completed = st.finished;
    o.speculated = st.speculated;
    o.worker = st.finished ? st.winner_worker : st.last_worker;
    o.checkpoint_path = st.finished ? st.winner_path : st.last_good_path;
    if (st.finished) {
      parts.push_back(st.winner_path);
    } else {
      RELSIM_REQUIRE(
          options.failure_policy != ShardFailurePolicy::kAbort,
          "shard " + std::to_string(st.shard.index) +
              " exhausted its leases (policy: abort)");
      ++out.shards_inprocess;
      coord_metrics().inprocess.inc();
      // A partial from any attempt still shrinks the in-process bill.
      if (!st.last_good_path.empty()) parts.push_back(st.last_good_path);
    }
    out.shards.push_back(std::move(o));
  }

  bool any_part = false;
  for (const std::string& part : parts) {
    if (file_exists(part)) {
      any_part = true;
      break;
    }
  }
  if (any_part) {
    out.merged_checkpoint = prefix + ".merged.rsmckpt";
    out.merge = merge_checkpoints(parts, out.merged_checkpoint);
  }

  // Assembly: resume the FULL (non-windowed) run from the merged image.
  // Restored samples keep their worker-computed values; anything the
  // workers never finished is evaluated here — which is also the whole
  // run when every worker was lost before its first checkpoint. Either
  // way the result is the single-process result by construction.
  JobSpec assembly = spec;
  assembly.shard_lo = 0;
  assembly.shard_hi = 0;
  assembly.checkpoint_path = out.merged_checkpoint;
  out.result = run_job(assembly, nullptr);

  if (!options.manifest_path.empty()) {
    write_coordinator_manifest(options.manifest_path, spec, out);
  }
  return out;
}

}  // namespace relsim::service
