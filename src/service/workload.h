// JobSpec -> Monte-Carlo run. The ONE translation used by the daemon's
// executors AND by callers running a spec directly through McSession —
// sharing it is what makes the round-trip bit-identity guarantee (daemon
// result == direct result for the same spec) a property of the code
// rather than of two implementations agreeing by luck.
#pragma once

#include <functional>

#include "service/compiled_cache.h"
#include "service/job.h"

namespace relsim::service {

/// Builds the McRequest a JobSpec describes (seed, n, threads, budget,
/// chunk, eval mode, checkpoint, manifest, label). The cancel token is NOT
/// installed here — the daemon wires the job's flag, direct runs usually
/// leave it empty.
McRequest request_for(const JobSpec& spec);

/// Observer hooks a caller (the daemon) installs on a job run. All four
/// map 1:1 onto McRequest fields; none of them affects the run's results —
/// progress snapshots obey McProgress's determinism contract regardless.
struct RunHooks {
  std::function<bool()> cancel;
  std::function<void(const McProgress&)> progress;
  std::function<void()> on_checkpoint;
};

/// Runs the job to completion on the calling thread and returns its
/// McResult (throws what the evaluation throws, e.g. NetlistError on a
/// bad netlist or ConvergenceError under kAbort).
///
/// `cache` may be null: the topology is then compiled privately, which
/// changes compile-time cost only — results are identical because the
/// compiled structure is a pure function of the netlist text.
/// `cancel` (optional) is installed as McRequest::cancel.
McResult run_job(const JobSpec& spec, CompiledCircuitCache* cache,
                 std::function<bool()> cancel = {});

/// As above with the full hook set (the daemon's entry point).
McResult run_job(const JobSpec& spec, CompiledCircuitCache* cache,
                 RunHooks hooks);

/// Evaluates a dc_yield pass/fail decision on a solved DC solution:
/// every constraint's node voltage within [lo, hi]. Exposed for tests.
bool constraints_pass(const spice::Circuit& circuit, const Vector& x,
                      const std::vector<NodeConstraint>& constraints);

}  // namespace relsim::service
