#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/json_value.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/socket_io.h"
#include "service/workload.h"
#include "util/error.h"

namespace relsim::service {

namespace {

struct ServiceMetrics {
  obs::Counter& submitted = obs::metrics().counter("service.jobs_submitted");
  obs::Counter& completed = obs::metrics().counter("service.jobs_completed");
  obs::Counter& failed = obs::metrics().counter("service.jobs_failed");
  obs::Counter& cancelled = obs::metrics().counter("service.jobs_cancelled");
  obs::Counter& frames = obs::metrics().counter("service.frames");
  obs::Counter& bad_frames = obs::metrics().counter("service.bad_frames");
  obs::Counter& connections = obs::metrics().counter("service.connections");
  obs::Histogram& queue_seconds =
      obs::metrics().histogram("service.queue_seconds");
  obs::Histogram& job_seconds =
      obs::metrics().histogram("service.job_seconds");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string error_frame(const std::string& op, const std::string& message) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("ok", false);
  if (!op.empty()) w.kv("op", op);
  w.kv("error", message);
  w.end_object();
  return os.str();
}

/// Writes the shared prefix of a job-status payload (state + timings).
void write_job_status(obs::JsonWriter& w, const std::shared_ptr<Job>& job) {
  // Caller holds job->mu.
  w.kv("job_id", static_cast<unsigned long long>(job->id));
  w.kv("tenant", job->tenant);
  w.kv("state", to_string(job->state));
  if (job->state == JobState::kFailed) w.kv("job_error", job->error);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  RELSIM_REQUIRE(!options_.socket_path.empty(),
                 "Server needs a unix socket path");
  RELSIM_REQUIRE(options_.executors >= 1, "Server needs >= 1 executor");
}

Server::~Server() { stop(); }

void Server::start() {
  RELSIM_REQUIRE(!running_.load(), "Server already started");
  unix_fd_ = listen_unix(options_.socket_path);
  if (options_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(options_.tcp_port, &tcp_port_);
  }
  if (::pipe(wake_pipe_) != 0) throw Error("pipe() failed");
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  executors_.reserve(options_.executors);
  for (unsigned e = 0; e < options_.executors; ++e) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // Unblock the accept loop first: no new connections or submissions.
  (void)!::write(wake_pipe_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Resolve every job BEFORE joining connection threads: a connection
  // blocked in the "wait" op only wakes when its job reaches a terminal
  // state, so jobs must terminate first or the join below would deadlock.
  for (const std::shared_ptr<Job>& job : queue_.shutdown()) {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::kFailed;
    job->error = "server shutting down";
    job->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
    }
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Connection threads exit on read failure; join outside the lock (they
  // take conn_mu_ to deregister their fd).
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.empty()) break;
      t = std::move(connections_.back());
      connections_.pop_back();
    }
    if (t.joinable()) t.join();
  }

  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  unix_fd_ = tcp_fd_ = -1;
  ::unlink(options_.socket_path.c_str());

  // Wake anything parked in wait_shutdown_requested().
  shutdown_requested_.store(true, std::memory_order_relaxed);
  shutdown_cv_.notify_all();
}

void Server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested(); });
}

std::shared_ptr<Job> Server::find_job(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {wake_pipe_[0], POLLIN, 0};
    fds[count++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, count, -1) < 0) continue;
    if (fds[0].revents != 0) return;  // stop() woke us
    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      service_metrics().connections.inc();
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (!running_.load(std::memory_order_relaxed)) {
        ::close(client);
        return;
      }
      connection_fds_.push_back(client);
      connections_.emplace_back([this, client] { connection_loop(client); });
    }
  }
}

void Server::connection_loop(int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;  // blank keep-alive lines are fine
    const std::string reply = handle_frame(line);
    if (!write_all(fd, reply) || !write_all(fd, "\n")) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
  // The std::thread object stays in connections_ for stop() to join.
}

std::string Server::handle_frame(const std::string& line) {
  service_metrics().frames.inc();
  std::string op;
  try {
    const obs::JsonValue v = obs::JsonValue::parse(line);
    RELSIM_REQUIRE(v.is_object(), "request frame must be a JSON object");
    op = v.get_string("op", "");
    RELSIM_REQUIRE(!op.empty(), "request frame needs an \"op\"");

    std::ostringstream os;
    obs::JsonWriter w(os, 0);

    if (op == "ping") {
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.end_object();
      return os.str();
    }

    if (op == "submit") {
      const obs::JsonValue* job_v = v.find("job");
      RELSIM_REQUIRE(job_v != nullptr, "submit needs a \"job\" object");
      JobSpec spec = parse_job_spec(*job_v);
      const std::string tenant = v.get_string("tenant", "default");
      const int priority =
          static_cast<int>(v.find("priority") != nullptr
                               ? v.find("priority")->as_i64()
                               : 0);
      const std::shared_ptr<Job> job = submit(tenant, priority,
                                              std::move(spec));
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("job_id", static_cast<unsigned long long>(job->id));
      w.end_object();
      return os.str();
    }

    if (op == "status" || op == "wait" || op == "result" || op == "cancel") {
      const obs::JsonValue* id_v = v.find("job_id");
      RELSIM_REQUIRE(id_v != nullptr, "missing \"job_id\"");
      const std::uint64_t id = id_v->as_u64();
      const std::shared_ptr<Job> job = find_job(id);
      if (job == nullptr) {
        return error_frame(op, "unknown job id " + std::to_string(id));
      }

      if (op == "cancel") {
        job->cancel_requested.store(true, std::memory_order_relaxed);
        // Still queued? Pull it out and resolve it as cancelled now.
        if (queue_.remove(id) != nullptr) {
          std::lock_guard<std::mutex> lock(job->mu);
          job->state = JobState::kCancelled;
          job->queue_seconds = now_seconds() - job->queue_seconds;
          job->cv.notify_all();
          service_metrics().cancelled.inc();
        }
        w.begin_object();
        w.kv("ok", true);
        w.kv("op", op);
        w.kv("job_id", static_cast<unsigned long long>(id));
        w.end_object();
        return os.str();
      }

      std::unique_lock<std::mutex> lock(job->mu);
      if (op == "wait") {
        job->cv.wait(lock, [&job] {
          return job->state != JobState::kQueued &&
                 job->state != JobState::kRunning;
        });
      }
      const bool finished = job->state != JobState::kQueued &&
                            job->state != JobState::kRunning;
      if (op == "result" && !finished) {
        return error_frame(op, "job " + std::to_string(id) +
                                   " still " + to_string(job->state));
      }
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      write_job_status(w, job);
      if (finished && job->state != JobState::kFailed &&
          (op == "wait" || op == "result" || op == "status")) {
        w.kv("queue_seconds", job->queue_seconds);
        w.kv("run_seconds", job->run_seconds);
        w.key("result");
        write_result(w, job->result);
      }
      w.end_object();
      return os.str();
    }

    if (op == "metrics") {
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("queue_depth",
           static_cast<unsigned long long>(queue_.depth()));
      w.kv("jobs_submitted", service_metrics().submitted.value());
      w.kv("jobs_completed", service_metrics().completed.value());
      w.kv("jobs_failed", service_metrics().failed.value());
      w.kv("jobs_cancelled", service_metrics().cancelled.value());
      w.kv("cache_hits", static_cast<long long>(cache_.hits()));
      w.kv("cache_misses", static_cast<long long>(cache_.misses()));
      w.kv("cache_entries", static_cast<unsigned long long>(cache_.size()));
      w.end_object();
      return os.str();
    }

    if (op == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_.store(true, std::memory_order_relaxed);
      }
      shutdown_cv_.notify_all();
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.end_object();
      return os.str();
    }

    return error_frame(op, "unknown op '" + op + "'");
  } catch (const std::exception& e) {
    service_metrics().bad_frames.inc();
    return error_frame(op, e.what());
  }
}

std::shared_ptr<Job> Server::submit(const std::string& tenant, int priority,
                                    JobSpec spec) {
  auto job = std::make_shared<Job>();
  job->tenant = tenant;
  job->priority = priority;
  job->spec = std::move(spec);
  job->queue_seconds = now_seconds();  // holds submit time until popped
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->id = next_job_id_++;
    job->seq = next_seq_++;
    jobs_.emplace(job->id, job);
  }
  service_metrics().submitted.inc();
  if (!queue_.push(job)) {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::kFailed;
    job->error = "server shutting down";
  }
  return job;
}

void Server::executor_loop() {
  for (;;) {
    const std::shared_ptr<Job> job = queue_.pop();
    if (job == nullptr) return;  // queue shut down
    execute(job);
  }
}

void Server::execute(const std::shared_ptr<Job>& job) {
  const double start = now_seconds();
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    job->queue_seconds = start - job->queue_seconds;
    job->cv.notify_all();
  }
  service_metrics().queue_seconds.observe(job->queue_seconds);

  // Apply the server-wide per-job thread ceiling on top of the job's own.
  JobSpec spec = job->spec;
  if (options_.max_job_threads > 0) {
    spec.thread_budget = spec.thread_budget > 0
                             ? std::min(spec.thread_budget,
                                        options_.max_job_threads)
                             : options_.max_job_threads;
  }

  McResult result;
  std::string error;
  try {
    const std::shared_ptr<Job> token = job;
    result = run_job(spec, &cache_, [token] {
      return token->cancel_requested.load(std::memory_order_relaxed);
    });
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown non-standard exception";
  }

  const double elapsed = now_seconds() - start;
  service_metrics().job_seconds.observe(elapsed);
  std::lock_guard<std::mutex> lock(job->mu);
  job->run_seconds = elapsed;
  if (!error.empty()) {
    job->state = JobState::kFailed;
    job->error = error;
    service_metrics().failed.inc();
  } else if (result.run.stop_reason == McStopReason::kCancelled) {
    job->state = JobState::kCancelled;
    job->result = std::move(result);
    service_metrics().cancelled.inc();
  } else {
    job->state = JobState::kDone;
    job->result = std::move(result);
    service_metrics().completed.inc();
  }
  job->cv.notify_all();
}

}  // namespace relsim::service
