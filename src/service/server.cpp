#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "obs/json_value.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/socket_io.h"
#include "service/workload.h"
#include "util/error.h"

namespace relsim::service {

namespace {

struct ServiceMetrics {
  obs::Counter& submitted = obs::metrics().counter("service.jobs_submitted");
  obs::Counter& completed = obs::metrics().counter("service.jobs_completed");
  obs::Counter& failed = obs::metrics().counter("service.jobs_failed");
  obs::Counter& cancelled = obs::metrics().counter("service.jobs_cancelled");
  obs::Counter& frames = obs::metrics().counter("service.frames");
  obs::Counter& bad_frames = obs::metrics().counter("service.bad_frames");
  obs::Counter& connections = obs::metrics().counter("service.connections");
  obs::Counter& io_timeouts = obs::metrics().counter("service.io_timeouts");
  obs::Gauge& running = obs::metrics().gauge("service.jobs_running");
  obs::Gauge& queue_depth = obs::metrics().gauge("service.queue_depth");
  obs::Histogram& queue_seconds =
      obs::metrics().histogram("service.queue_seconds");
  obs::Histogram& job_seconds =
      obs::metrics().histogram("service.job_seconds");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock seconds for event timestamps (events are read by humans and
/// log shippers; the steady clock above is for durations only).
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void write_progress_fields(obs::JsonWriter& w, const McProgress& p) {
  w.kv("seq", static_cast<unsigned long long>(p.seq));
  w.kv("completed", static_cast<unsigned long long>(p.completed));
  w.kv("total", static_cast<unsigned long long>(p.total));
  w.kv("passed", static_cast<unsigned long long>(p.passed));
  w.kv("failed", static_cast<unsigned long long>(p.failed));
  w.kv("retried", static_cast<unsigned long long>(p.retried));
  w.kv("yield", p.interval.estimate);
  w.kv("yield_lo", p.interval.lo);
  w.kv("yield_hi", p.interval.hi);
  w.kv("ci_half_width", p.ci_half_width);
  w.kv("weighted", p.weighted);
  if (p.weighted) w.kv("ess", p.ess);
  w.kv("elapsed_seconds", p.elapsed_seconds);
  w.kv("samples_per_sec", p.samples_per_sec);
  w.kv("eta_seconds", p.eta_seconds);
}

/// True when `line` is a subscribe request; fills the optional job filter.
/// Malformed JSON returns false and falls through to handle_frame, which
/// produces the proper error reply.
bool parse_subscribe(const std::string& line, std::uint64_t* job_filter) {
  if (line.find("subscribe") == std::string::npos) return false;
  try {
    const obs::JsonValue v = obs::JsonValue::parse(line);
    if (!v.is_object() || v.get_string("op", "") != "subscribe") return false;
    *job_filter = v.get_u64("job_id", 0);
    return true;
  } catch (...) {
    return false;
  }
}

std::string error_frame(const std::string& op, const std::string& message) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("ok", false);
  if (!op.empty()) w.kv("op", op);
  w.kv("error", message);
  w.end_object();
  return os.str();
}

/// Writes the shared prefix of a job-status payload (state + timings).
void write_job_status(obs::JsonWriter& w, const std::shared_ptr<Job>& job) {
  // Caller holds job->mu.
  w.kv("job_id", static_cast<unsigned long long>(job->id));
  w.kv("tenant", job->tenant);
  w.kv("state", to_string(job->state));
  if (job->state == JobState::kFailed) w.kv("job_error", job->error);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      hub_(options_.subscriber_queue) {
  RELSIM_REQUIRE(!options_.socket_path.empty(),
                 "Server needs a unix socket path");
  RELSIM_REQUIRE(options_.executors >= 1, "Server needs >= 1 executor");
}

Server::~Server() { stop(); }

void Server::start() {
  RELSIM_REQUIRE(!running_.load(), "Server already started");
  unix_fd_ = listen_unix(options_.socket_path);
  if (options_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(options_.tcp_port, &tcp_port_);
  }
  if (options_.metrics_http_port >= 0) {
    http_fd_ = listen_tcp(options_.metrics_http_port, &http_port_);
  }
  if (!options_.event_log_path.empty()) {
    event_log_ = std::make_unique<obs::EventLog>(
        options_.event_log_path, options_.event_log_max_bytes);
  } else {
    event_log_ = obs::event_log_from_env();
  }
  if (::pipe(wake_pipe_) != 0) throw Error("pipe() failed");
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  executors_.reserve(options_.executors);
  for (unsigned e = 0; e < options_.executors; ++e) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // Unblock the accept loop first: no new connections or submissions.
  (void)!::write(wake_pipe_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Resolve every job BEFORE joining connection threads: a connection
  // blocked in the "wait" op only wakes when its job reaches a terminal
  // state, so jobs must terminate first or the join below would deadlock.
  for (const std::shared_ptr<Job>& job : queue_.shutdown()) {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::kFailed;
    job->error = "server shutting down";
    job->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
    }
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();

  // Executors are quiet: end every event stream so subscription threads
  // (which park on their queues, not on the socket) wake and exit before
  // the connection join below.
  hub_.close();

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Connection threads exit on read failure; join outside the lock (they
  // take conn_mu_ to deregister their fd).
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.empty()) break;
      t = std::move(connections_.back());
      connections_.pop_back();
    }
    if (t.joinable()) t.join();
  }

  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  unix_fd_ = tcp_fd_ = http_fd_ = -1;
  ::unlink(options_.socket_path.c_str());

  // Wake anything parked in wait_shutdown_requested().
  shutdown_requested_.store(true, std::memory_order_relaxed);
  shutdown_cv_.notify_all();
}

void Server::drain() {
  if (!running_.load(std::memory_order_relaxed)) return;
  // No new job may start: executors blocked in pop() wake with nullptr
  // and exit; the queued backlog stays intact for stop() to fail.
  queue_.pause();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
    }
  }
  // Running jobs observe the token at the next chunk boundary, write
  // their final checkpoint and publish "checkpointed" + "cancelled"
  // events on the way out. Bounded only by one chunk of work.
  while (running_jobs_.load(std::memory_order_relaxed) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop();
}

void Server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested(); });
}

std::shared_ptr<Job> Server::find_job(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd fds[4];
    nfds_t count = 0;
    fds[count++] = {wake_pipe_[0], POLLIN, 0};
    fds[count++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};
    if (http_fd_ >= 0) fds[count++] = {http_fd_, POLLIN, 0};
    if (::poll(fds, count, -1) < 0) continue;
    if (fds[0].revents != 0) return;  // stop() woke us
    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      service_metrics().connections.inc();
      const bool http = fds[i].fd == http_fd_;
      if (!http && options_.io_timeout_seconds > 0.0) {
        set_socket_timeout(client, options_.io_timeout_seconds);
      }
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (!running_.load(std::memory_order_relaxed)) {
        ::close(client);
        return;
      }
      connection_fds_.push_back(client);
      connections_.emplace_back([this, client, http] {
        http ? http_loop(client) : connection_loop(client);
      });
    }
  }
}

void Server::connection_loop(int fd) {
  LineReader reader(fd);
  std::string line;
  try {
    while (reader.read_line(line)) {
      if (line.empty()) continue;  // blank keep-alive lines are fine
      std::uint64_t job_filter = 0;
      if (options_.enable_subscribe && parse_subscribe(line, &job_filter)) {
        if (job_filter != 0 && find_job(job_filter) == nullptr) {
          const std::string reply = error_frame(
              "subscribe", "unknown job id " + std::to_string(job_filter));
          if (!write_all(fd, reply) || !write_all(fd, "\n")) break;
          continue;  // stay in request/reply mode
        }
        // A subscriber legitimately idles between requests — only its
        // event WRITES should observe the deadline, and write_all's
        // timeout path already drops a stuck consumer.
        serve_subscription(fd, job_filter);
        break;  // the stream consumed the connection
      }
      const std::string reply = handle_frame(line);
      if (!write_all(fd, reply) || !write_all(fd, "\n")) break;
    }
  } catch (const SocketTimeoutError&) {
    // io_timeout_seconds expired mid-request: the peer is stalled, not
    // protocol-broken. Drop the connection; jobs it submitted live on.
    service_metrics().io_timeouts.inc();
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
  // The std::thread object stays in connections_ for stop() to join.
}

void Server::http_loop(int fd) {
  // Minimal HTTP/1.0 responder: one request, one response, close. Enough
  // for a Prometheus scrape or `curl localhost:PORT/metrics`.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < 16384) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const bool found = request.rfind("GET /metrics", 0) == 0 ||
                     request.rfind("GET / ", 0) == 0;
  const std::string body = found ? exporter_.render() : "not found\n";
  std::string head = found ? "HTTP/1.0 200 OK\r\nContent-Type: text/plain; "
                             "version=0.0.4; charset=utf-8\r\n"
                           : "HTTP/1.0 404 Not Found\r\nContent-Type: "
                             "text/plain\r\n";
  head += "Content-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n";
  (void)(write_all(fd, head) && write_all(fd, body));
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
}

void Server::serve_subscription(int fd, std::uint64_t job_filter) {
  static obs::Counter& c_subs =
      obs::metrics().counter("service.subscriptions");
  c_subs.inc();
  const std::shared_ptr<EventHub::Subscription> sub =
      hub_.subscribe(job_filter);

  // Ack, then replay current state DIRECTLY to this fd (not through the
  // hub) so the subscriber starts from a consistent picture; live events
  // queued since subscribe() follow and simply re-assert newer state.
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("op", "subscribe");
  if (job_filter != 0) {
    w.kv("job_id", static_cast<unsigned long long>(job_filter));
  }
  w.end_object();
  bool alive = write_all(fd, os.str()) && write_all(fd, "\n");

  std::vector<std::shared_ptr<Job>> replay;
  if (job_filter != 0) {
    if (const std::shared_ptr<Job> job = find_job(job_filter)) {
      replay.push_back(job);
    }
  } else {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& [id, job] : jobs_) replay.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : replay) {
    if (!alive) break;
    std::ostringstream es;
    obs::JsonWriter ew(es, 0);
    std::unique_lock<std::mutex> lock(job->mu);
    const JobState state = job->state;
    // Unfiltered streams replay only live jobs; a single-job stream also
    // replays a terminal state so the subscriber learns it is already over.
    if (job_filter == 0 && state != JobState::kQueued &&
        state != JobState::kRunning) {
      continue;
    }
    ew.begin_object();
    ew.kv("event", "job");
    ew.kv("job_id", static_cast<unsigned long long>(job->id));
    ew.kv("tenant", job->tenant);
    ew.kv("kind", to_string(job->spec.kind));
    ew.kv("state", to_string(state));
    ew.kv("n", static_cast<unsigned long long>(job->spec.n));
    if (state != JobState::kQueued) ew.kv("queue_seconds", job->queue_seconds);
    if (state == JobState::kDone || state == JobState::kCancelled ||
        state == JobState::kFailed) {
      ew.kv("run_seconds", job->run_seconds);
    }
    if (state == JobState::kFailed) ew.kv("job_error", job->error);
    if (state == JobState::kRunning && job->has_progress) {
      ew.key("progress").begin_object();
      write_progress_fields(ew, job->progress);
      ew.end_object();
    }
    ew.kv("ts", wall_seconds());
    ew.end_object();
    lock.unlock();
    alive = write_all(fd, es.str()) && write_all(fd, "\n");
  }

  std::string event;
  while (alive) {
    if (sub->next(event, std::chrono::milliseconds(250))) {
      alive = write_all(fd, event) && write_all(fd, "\n");
      continue;
    }
    if (sub->closed()) break;  // server stopping: end of stream
    // Idle tick: probe for a vanished client so abandoned subscriptions
    // do not accumulate until shutdown.
    char probe;
    const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0) break;  // orderly close
    if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;
    }
  }
  hub_.unsubscribe(sub);
}

std::string Server::handle_frame(const std::string& line) {
  service_metrics().frames.inc();
  std::string op;
  try {
    const obs::JsonValue v = obs::JsonValue::parse(line);
    RELSIM_REQUIRE(v.is_object(), "request frame must be a JSON object");
    op = v.get_string("op", "");
    RELSIM_REQUIRE(!op.empty(), "request frame needs an \"op\"");

    std::ostringstream os;
    obs::JsonWriter w(os, 0);

    if (op == "ping") {
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.end_object();
      return os.str();
    }

    if (op == "submit") {
      const obs::JsonValue* job_v = v.find("job");
      RELSIM_REQUIRE(job_v != nullptr, "submit needs a \"job\" object");
      JobSpec spec = parse_job_spec(*job_v);
      const std::string tenant = v.get_string("tenant", "default");
      const int priority =
          static_cast<int>(v.find("priority") != nullptr
                               ? v.find("priority")->as_i64()
                               : 0);
      const std::shared_ptr<Job> job = submit(tenant, priority,
                                              std::move(spec));
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("job_id", static_cast<unsigned long long>(job->id));
      w.end_object();
      return os.str();
    }

    if (op == "status" || op == "wait" || op == "result" || op == "cancel") {
      const obs::JsonValue* id_v = v.find("job_id");
      RELSIM_REQUIRE(id_v != nullptr, "missing \"job_id\"");
      const std::uint64_t id = id_v->as_u64();
      const std::shared_ptr<Job> job = find_job(id);
      if (job == nullptr) {
        return error_frame(op, "unknown job id " + std::to_string(id));
      }

      if (op == "cancel") {
        job->cancel_requested.store(true, std::memory_order_relaxed);
        // Still queued? Pull it out and resolve it as cancelled now.
        if (queue_.remove(id) != nullptr) {
          double queued_for = 0.0;
          {
            std::lock_guard<std::mutex> lock(job->mu);
            job->state = JobState::kCancelled;
            job->queue_seconds = now_seconds() - job->queue_seconds;
            queued_for = job->queue_seconds;
            job->cv.notify_all();
          }
          service_metrics().cancelled.inc();
          publish_job_event(job, "cancelled", queued_for, 0.0);
        }
        w.begin_object();
        w.kv("ok", true);
        w.kv("op", op);
        w.kv("job_id", static_cast<unsigned long long>(id));
        w.end_object();
        return os.str();
      }

      std::unique_lock<std::mutex> lock(job->mu);
      if (op == "wait") {
        job->cv.wait(lock, [&job] {
          return job->state != JobState::kQueued &&
                 job->state != JobState::kRunning;
        });
      }
      const bool finished = job->state != JobState::kQueued &&
                            job->state != JobState::kRunning;
      if (op == "result" && !finished) {
        return error_frame(op, "job " + std::to_string(id) +
                                   " still " + to_string(job->state));
      }
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      write_job_status(w, job);
      if (job->state == JobState::kRunning && job->has_progress) {
        w.key("progress").begin_object();
        write_progress_fields(w, job->progress);
        w.end_object();
      }
      if (finished && job->state != JobState::kFailed &&
          (op == "wait" || op == "result" || op == "status")) {
        w.kv("queue_seconds", job->queue_seconds);
        w.kv("run_seconds", job->run_seconds);
        w.key("result");
        write_result(w, job->result);
      }
      w.end_object();
      return os.str();
    }

    if (op == "metrics") {
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("queue_depth",
           static_cast<unsigned long long>(queue_.depth()));
      w.kv("running", running_jobs_.load(std::memory_order_relaxed));
      w.kv("jobs_submitted", service_metrics().submitted.value());
      w.kv("jobs_completed", service_metrics().completed.value());
      w.kv("jobs_failed", service_metrics().failed.value());
      w.kv("jobs_cancelled", service_metrics().cancelled.value());
      w.kv("cache_hits", static_cast<long long>(cache_.hits()));
      w.kv("cache_misses", static_cast<long long>(cache_.misses()));
      w.kv("cache_entries", static_cast<unsigned long long>(cache_.size()));
      // Shared quantile math (obs::histogram_quantile) over the daemon's
      // latency histograms — the same numbers the Prometheus text carries.
      const obs::Histogram::Snapshot qh =
          service_metrics().queue_seconds.snapshot();
      const obs::Histogram::Snapshot jh =
          service_metrics().job_seconds.snapshot();
      w.kv("queue_seconds_p50", obs::histogram_quantile(qh, 0.50));
      w.kv("queue_seconds_p99", obs::histogram_quantile(qh, 0.99));
      w.kv("job_seconds_p50", obs::histogram_quantile(jh, 0.50));
      w.kv("job_seconds_p90", obs::histogram_quantile(jh, 0.90));
      w.kv("job_seconds_p99", obs::histogram_quantile(jh, 0.99));
      w.end_object();
      return os.str();
    }

    if (op == "metrics_text") {
      // Full registry in Prometheus text exposition format, for scrapers
      // speaking the JSON protocol (CI does exactly this mid-run).
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("content_type", "text/plain; version=0.0.4; charset=utf-8");
      w.kv("text", exporter_.render());
      w.end_object();
      return os.str();
    }

    if (op == "subscribe" && options_.enable_subscribe) {
      // Reachable only through the socket-free dispatcher (tests): on a
      // live connection the connection loop intercepts subscribe before
      // this point and dedicates the socket to the stream.
      return error_frame(op, "subscribe requires a streaming connection");
    }

    if (op == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_.store(true, std::memory_order_relaxed);
      }
      shutdown_cv_.notify_all();
      w.begin_object();
      w.kv("ok", true);
      w.kv("op", op);
      w.end_object();
      return os.str();
    }

    return error_frame(op, "unknown op '" + op + "'");
  } catch (const std::exception& e) {
    service_metrics().bad_frames.inc();
    return error_frame(op, e.what());
  }
}

std::shared_ptr<Job> Server::submit(const std::string& tenant, int priority,
                                    JobSpec spec) {
  auto job = std::make_shared<Job>();
  job->tenant = tenant;
  job->priority = priority;
  job->spec = std::move(spec);
  job->queue_seconds = now_seconds();  // holds submit time until popped
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->id = next_job_id_++;
    job->seq = next_seq_++;
    jobs_.emplace(job->id, job);
  }
  service_metrics().submitted.inc();
  // "queued" must be published BEFORE the queue push: once an executor can
  // pop the job, it may publish "running" — ordering in the stream is part
  // of the contract.
  publish_job_event(job, "queued", -1.0, -1.0);
  if (!queue_.push(job)) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->state = JobState::kFailed;
      job->error = "server shutting down";
    }
    publish_job_event(job, "failed", -1.0, -1.0, job->error);
    return job;
  }
  service_metrics().queue_depth.set(static_cast<double>(queue_.depth()));
  return job;
}

void Server::publish_job_event(const std::shared_ptr<Job>& job,
                               const char* state, double queue_seconds,
                               double run_seconds, const std::string& error) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("event", "job");
  w.kv("job_id", static_cast<unsigned long long>(job->id));
  w.kv("tenant", job->tenant);
  w.kv("kind", to_string(job->spec.kind));
  w.kv("state", state);
  w.kv("n", static_cast<unsigned long long>(job->spec.n));
  if (queue_seconds >= 0.0) w.kv("queue_seconds", queue_seconds);
  if (run_seconds >= 0.0) w.kv("run_seconds", run_seconds);
  if (!error.empty()) w.kv("job_error", error);
  w.kv("ts", wall_seconds());
  w.end_object();
  std::string line = os.str();
  if (event_log_) event_log_->append(line);
  hub_.publish(job->id, std::move(line));
  publish_stats();
}

void Server::publish_stats() {
  if (hub_.subscriber_count() == 0) return;  // lifecycle log has the rest
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("event", "stats");
  if (!options_.worker_name.empty()) w.kv("worker", options_.worker_name);
  w.kv("queue_depth", static_cast<unsigned long long>(queue_.depth()));
  w.kv("running", running_jobs_.load(std::memory_order_relaxed));
  w.kv("jobs_submitted", service_metrics().submitted.value());
  w.kv("jobs_completed", service_metrics().completed.value());
  w.kv("jobs_failed", service_metrics().failed.value());
  w.kv("jobs_cancelled", service_metrics().cancelled.value());
  w.kv("cache_hits", static_cast<long long>(cache_.hits()));
  w.kv("cache_misses", static_cast<long long>(cache_.misses()));
  w.kv("ts", wall_seconds());
  w.end_object();
  hub_.publish(0, os.str());
}

void Server::executor_loop() {
  for (;;) {
    const std::shared_ptr<Job> job = queue_.pop();
    if (job == nullptr) return;  // queue shut down
    execute(job);
  }
}

void Server::execute(const std::shared_ptr<Job>& job) {
  const double start = now_seconds();
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    job->queue_seconds = start - job->queue_seconds;
    job->cv.notify_all();
  }
  service_metrics().queue_seconds.observe(job->queue_seconds);
  service_metrics().running.set(static_cast<double>(
      running_jobs_.fetch_add(1, std::memory_order_relaxed) + 1));
  service_metrics().queue_depth.set(static_cast<double>(queue_.depth()));
  publish_job_event(job, "running", job->queue_seconds, -1.0);

  // Apply the server-wide per-job thread ceiling on top of the job's own.
  JobSpec spec = job->spec;
  if (options_.max_job_threads > 0) {
    spec.thread_budget = spec.thread_budget > 0
                             ? std::min(spec.thread_budget,
                                        options_.max_job_threads)
                             : options_.max_job_threads;
  }

  McResult result;
  std::string error;
  try {
    const std::shared_ptr<Job> token = job;
    RunHooks hooks;
    hooks.cancel = [token] {
      return token->cancel_requested.load(std::memory_order_relaxed);
    };
    // Always record the latest snapshot (a cheap struct copy under the
    // job lock: status replies carry it); serialize + fan out only when
    // someone is actually subscribed — slow or absent consumers cost the
    // executor nothing beyond this check.
    hooks.progress = [this, token](const McProgress& p) {
      {
        std::lock_guard<std::mutex> lock(token->mu);
        token->progress = p;
        token->has_progress = true;
      }
      if (hub_.subscriber_count() == 0) return;
      std::ostringstream es;
      obs::JsonWriter ew(es, 0);
      ew.begin_object();
      ew.kv("event", "progress");
      ew.kv("job_id", static_cast<unsigned long long>(token->id));
      ew.kv("tenant", token->tenant);
      write_progress_fields(ew, p);
      ew.end_object();
      hub_.publish(token->id, es.str());
    };
    hooks.on_checkpoint = [this, token] {
      double queued_for;
      {
        std::lock_guard<std::mutex> lock(token->mu);
        queued_for = token->queue_seconds;
      }
      publish_job_event(token, "checkpointed", queued_for, -1.0);
    };
    result = run_job(spec, &cache_, std::move(hooks));
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown non-standard exception";
  }

  const double elapsed = now_seconds() - start;
  service_metrics().job_seconds.observe(elapsed);
  const char* final_state;
  double queued_for;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->run_seconds = elapsed;
    queued_for = job->queue_seconds;
    if (!error.empty()) {
      job->state = JobState::kFailed;
      job->error = error;
      service_metrics().failed.inc();
    } else if (result.run.stop_reason == McStopReason::kCancelled) {
      job->state = JobState::kCancelled;
      job->result = std::move(result);
      service_metrics().cancelled.inc();
    } else {
      job->state = JobState::kDone;
      job->result = std::move(result);
      service_metrics().completed.inc();
    }
    final_state = to_string(job->state);
    job->cv.notify_all();
  }
  service_metrics().running.set(static_cast<double>(
      running_jobs_.fetch_sub(1, std::memory_order_relaxed) - 1));
  service_metrics().queue_depth.set(static_cast<double>(queue_.depth()));
  if (std::strcmp(final_state, "cancelled") == 0 &&
      !job->spec.checkpoint_path.empty()) {
    // McSession persisted the final partial checkpoint on its way out of
    // the cancelled run (outside the on_checkpoint cadence): tell
    // subscribers — the drain path and coordinators key on this event to
    // know the partial is on disk before the process exits.
    publish_job_event(job, "checkpointed", queued_for, elapsed);
  }
  publish_job_event(job, final_state, queued_for, elapsed, error);
}

}  // namespace relsim::service
