#include "service/protocol.h"

#include "util/crc32.h"
#include "util/error.h"

namespace relsim::service {

McEvalMode parse_eval_mode(const std::string& text) {
  if (text == "auto") return McEvalMode::kAuto;
  if (text == "per-sample") return McEvalMode::kPerSample;
  if (text == "batched") return McEvalMode::kBatched;
  throw Error("unknown eval_mode '" + text +
              "' (expected auto | per-sample | batched)");
}

JobKind parse_job_kind(const std::string& text) {
  if (text == "dc_yield") return JobKind::kDcYield;
  if (text == "synthetic") return JobKind::kSynthetic;
  throw Error("unknown job kind '" + text +
              "' (expected dc_yield | synthetic)");
}

JobSpec parse_job_spec(const obs::JsonValue& v) {
  RELSIM_REQUIRE(v.is_object(), "job must be a JSON object");
  JobSpec spec;
  spec.kind = parse_job_kind(v.get_string("kind", "dc_yield"));
  spec.netlist = v.get_string("netlist", "");
  spec.pass_prob = v.get_double("pass_prob", spec.pass_prob);
  spec.seed = v.get_u64("seed", spec.seed);
  spec.n = static_cast<std::size_t>(v.get_u64("n", 0));
  spec.threads = static_cast<unsigned>(v.get_u64("threads", 0));
  spec.thread_budget =
      static_cast<unsigned>(v.get_u64("thread_budget", 0));
  spec.chunk = static_cast<std::size_t>(v.get_u64("chunk", spec.chunk));
  spec.eval_mode = parse_eval_mode(v.get_string("eval_mode", "auto"));
  spec.keep_values = v.get_bool("keep_values", false);
  spec.checkpoint_path = v.get_string("checkpoint", "");
  spec.checkpoint_every = static_cast<std::size_t>(
      v.get_u64("checkpoint_every", spec.checkpoint_every));
  spec.manifest_path = v.get_string("manifest", "");
  spec.label = v.get_string("label", "");
  spec.progress_every =
      static_cast<std::size_t>(v.get_u64("progress_every", 0));
  spec.shard_lo = static_cast<std::size_t>(v.get_u64("shard_lo", 0));
  spec.shard_hi = static_cast<std::size_t>(v.get_u64("shard_hi", 0));
  if (const obs::JsonValue* cs = v.find("constraints")) {
    for (const obs::JsonValue& c : cs->as_array()) {
      NodeConstraint nc;
      nc.node = c.get_string("node", "");
      RELSIM_REQUIRE(!nc.node.empty(), "constraint needs a node name");
      nc.lo = c.get_double("lo", nc.lo);
      nc.hi = c.get_double("hi", nc.hi);
      spec.constraints.push_back(std::move(nc));
    }
  }
  RELSIM_REQUIRE(spec.n > 0, "job needs a sample count (n > 0)");
  if (spec.kind == JobKind::kDcYield) {
    RELSIM_REQUIRE(!spec.netlist.empty(), "dc_yield job needs a netlist");
    RELSIM_REQUIRE(!spec.constraints.empty(),
                   "dc_yield job needs at least one node constraint");
  }
  return spec;
}

void write_job_spec(obs::JsonWriter& w, const JobSpec& spec) {
  w.begin_object();
  w.kv("kind", to_string(spec.kind));
  if (!spec.netlist.empty()) w.kv("netlist", spec.netlist);
  if (!spec.constraints.empty()) {
    w.key("constraints").begin_array();
    for (const NodeConstraint& c : spec.constraints) {
      w.begin_object();
      w.kv("node", c.node);
      w.kv("lo", c.lo);
      w.kv("hi", c.hi);
      w.end_object();
    }
    w.end_array();
  }
  if (spec.kind == JobKind::kSynthetic) w.kv("pass_prob", spec.pass_prob);
  w.kv("seed", static_cast<unsigned long long>(spec.seed));
  w.kv("n", static_cast<unsigned long long>(spec.n));
  w.kv("threads", spec.threads);
  w.kv("thread_budget", spec.thread_budget);
  w.kv("chunk", static_cast<unsigned long long>(spec.chunk));
  w.kv("eval_mode", to_string(spec.eval_mode));
  w.kv("keep_values", spec.keep_values);
  if (!spec.checkpoint_path.empty()) {
    w.kv("checkpoint", spec.checkpoint_path);
    w.kv("checkpoint_every",
         static_cast<unsigned long long>(spec.checkpoint_every));
  }
  if (!spec.manifest_path.empty()) w.kv("manifest", spec.manifest_path);
  if (!spec.label.empty()) w.kv("label", spec.label);
  if (spec.progress_every > 0) {
    w.kv("progress_every",
         static_cast<unsigned long long>(spec.progress_every));
  }
  if (spec.shard_hi > 0) {
    w.kv("shard_lo", static_cast<unsigned long long>(spec.shard_lo));
    w.kv("shard_hi", static_cast<unsigned long long>(spec.shard_hi));
  }
  w.end_object();
}

std::uint32_t values_crc32(const McResult& result) {
  if (result.values.empty()) return 0;
  return crc32(result.values.data(),
               result.values.size() * sizeof(double));
}

void write_result(obs::JsonWriter& w, const McResult& result) {
  w.begin_object();
  w.kv("requested", static_cast<unsigned long long>(result.requested));
  w.kv("completed", static_cast<unsigned long long>(result.completed));
  w.kv("resumed", static_cast<unsigned long long>(result.resumed));
  w.kv("passed", static_cast<unsigned long long>(result.estimate.passed));
  w.kv("total", static_cast<unsigned long long>(result.estimate.total));
  w.kv("yield", result.estimate.interval.estimate);
  w.kv("yield_lo", result.estimate.interval.lo);
  w.kv("yield_hi", result.estimate.interval.hi);
  w.kv("stop_reason", to_string(result.run.stop_reason));
  w.kv("threads", result.run.threads);
  w.kv("failed_total",
       static_cast<unsigned long long>(result.run.failed_total));
  w.kv("elapsed_seconds", result.run.elapsed_seconds);
  if (!result.values.empty()) {
    w.kv("values_crc32",
         static_cast<unsigned long long>(values_crc32(result)));
    w.kv("values_count",
         static_cast<unsigned long long>(result.values.size()));
  }
  w.end_object();
}

}  // namespace relsim::service
