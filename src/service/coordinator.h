// Distributed shard coordinator: drives one Monte-Carlo job across N
// relsimd worker daemons with crash tolerance, and reassembles a result
// that is BIT-IDENTICAL to a single-process run of the same JobSpec.
//
// How the identity is kept (DESIGN.md §5e): sample i's outcome is a pure
// function of {request, i} (per-sample seed = derive_seed(seed, {i}) with
// GLOBAL indices), so the coordinator only decides WHERE samples run,
// never what they evaluate to. Each shard is a windowed job
// (JobSpec::shard_lo/shard_hi) writing a full-size RSMCKPT4 checkpoint;
// merge_checkpoints() unions the disjoint done-bitmaps; the final
// assembly run resumes from the merged image in-process, evaluating any
// samples the workers never finished. {1 process × 8 threads} and
// {4 workers × 2 threads} — including runs where workers are kill -9'd
// mid-shard — produce the same values array, crc and estimate.
//
// Fault model:
//   * lease expiry — a worker that streams no event (progress snapshots
//     are the heartbeat) for lease_seconds is presumed stuck: its job is
//     cancelled best-effort and the shard re-issued elsewhere;
//   * crash — the subscribe stream ends without a terminal state
//     (kill -9, connection refused): re-issue from the best partial
//     checkpoint any earlier attempt landed;
//   * stragglers — optional speculative duplicate of the slowest shard,
//     first complete attempt wins (identical content either way, so the
//     winner cannot affect the result);
//   * total worker loss — every attempt exhausted: the shard is left to
//     the in-process assembly run (ShardFailurePolicy::kInProcess) or the
//     whole run throws (kAbort).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/job.h"
#include "variability/mc_session.h"
#include "variability/shard.h"

namespace relsim::service {

/// One relsimd worker the coordinator may lease shards to. Unix socket
/// when `socket_path` is set, loopback TCP otherwise.
struct WorkerEndpoint {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string name;  ///< for logs/manifest; defaults to the address
};

/// What to do with a shard whose every lease attempt failed.
enum class ShardFailurePolicy : std::uint8_t {
  kInProcess = 0,  ///< assembly evaluates the leftovers locally (default)
  kAbort = 1,      ///< throw — distributed capacity was the point
};

struct CoordinatorOptions {
  std::vector<WorkerEndpoint> workers;
  /// Shard count (0 = one per worker). Shards are chunk-aligned,
  /// contiguous and balanced — see make_shard_plan().
  std::size_t shards = 0;
  /// Directory for per-attempt shard checkpoints and the merged image.
  /// Required; each attempt writes its OWN file so a zombie worker can
  /// never corrupt a re-issued attempt's checkpoint.
  std::string checkpoint_dir;
  /// Heartbeat deadline: a worker whose event stream is silent this long
  /// loses its lease. Progress events re-arm it, so size this above the
  /// worker's progress_every cadence in wall time.
  double lease_seconds = 10.0;
  /// Re-issues allowed per shard beyond the first attempt (spec included).
  unsigned max_reissues = 3;
  /// Exponential re-issue backoff: base · 2^attempt, capped (ms).
  unsigned backoff_base_ms = 100;
  unsigned backoff_cap_ms = 2000;
  ShardFailurePolicy failure_policy = ShardFailurePolicy::kInProcess;
  /// > 0 enables speculation: a shard still running after
  /// straggler_factor × the median completed-shard duration (once
  /// straggler_min_done shards completed) gets a duplicate attempt on
  /// another worker; first complete wins.
  double straggler_factor = 0.0;
  std::size_t straggler_min_done = 2;
  std::string tenant = "coordinator";
  /// Non-empty: JSON manifest of the plan, attempts and counters.
  std::string manifest_path;
};

/// Per-shard outcome for the manifest / caller diagnostics.
struct ShardOutcome {
  std::size_t index = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  unsigned attempts = 0;        ///< leases issued (including speculative)
  bool completed = false;       ///< some attempt finished on a worker
  bool speculated = false;
  std::string worker;           ///< winning (or last) worker name
  std::string checkpoint_path;  ///< winner, or best partial, or empty
};

struct CoordinatorResult {
  McResult result;  ///< assembled exactly as a single-process run
  std::vector<ShardOutcome> shards;
  std::size_t reissues = 0;          ///< re-leases after a failed attempt
  std::size_t lease_expiries = 0;
  std::size_t worker_crashes = 0;    ///< streams that died w/o a terminal
  std::size_t speculative_launches = 0;
  std::size_t shards_inprocess = 0;  ///< left to the assembly run
  McCheckpointMergeStats merge;
  std::string merged_checkpoint;     ///< empty when no part existed
};

/// Runs `spec` sharded across `options.workers` and returns the
/// assembled result (plus fault-tolerance telemetry). Blocking; throws
/// Error on an invalid plan or under ShardFailurePolicy::kAbort when a
/// shard exhausts its leases. With zero workers every shard goes straight
/// to the in-process assembly — same result, no sockets.
CoordinatorResult run_sharded(const JobSpec& spec,
                              const CoordinatorOptions& options);

}  // namespace relsim::service
