// Blocking client for the relsim service protocol.
//
// One Client == one connection == one outstanding request at a time (the
// protocol is strictly request/reply per frame). Spawn several Clients for
// concurrent traffic — relsim-cli's `drive` subcommand and bench_service
// both do exactly that.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/json_value.h"
#include "service/job.h"

namespace relsim::service {

class Client {
 public:
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();  ///< closes the connection

  /// Arms a read/write deadline on the connection (seconds <= 0 clears
  /// it). A stalled reply or subscribe stream then throws
  /// SocketTimeoutError (socket_io.h) instead of blocking forever — the
  /// coordinator's lease enforcement is built on exactly this.
  void set_timeout(double seconds);

  /// Sends one raw frame (newline appended) and parses the reply. Throws
  /// Error on transport failure or when the reply has "ok":false (the
  /// server's "error" string becomes the exception message),
  /// SocketTimeoutError when a set_timeout deadline expires first. Use
  /// this for ops without a convenience wrapper or for deliberately
  /// malformed frames in tests.
  obs::JsonValue call(const std::string& frame);

  /// Raw text of the last reply frame (before parsing) — handy for tools
  /// that print server replies verbatim.
  const std::string& last_reply() const { return last_reply_; }

  /// Submits a job; returns the server-assigned job id.
  std::uint64_t submit(const std::string& tenant, int priority,
                       const JobSpec& spec);

  /// Blocks until the job reaches a terminal state; returns the full
  /// reply ("state", and "result" for finished jobs).
  obs::JsonValue wait(std::uint64_t job_id);

  obs::JsonValue status(std::uint64_t job_id);
  obs::JsonValue result(std::uint64_t job_id);  ///< throws if still running
  obs::JsonValue cancel(std::uint64_t job_id);
  obs::JsonValue metrics();
  /// Prometheus text rendering of the daemon's metric registry (the
  /// "metrics_text" op; same bytes the /metrics HTTP listener serves).
  std::string metrics_text();
  void ping();
  void shutdown();  ///< asks the daemon to latch its shutdown flag

  /// Switches this connection into streaming mode and delivers every
  /// event frame to `on_event` until it returns false, the daemon closes
  /// the stream, or the connection drops. `job_filter` 0 subscribes to
  /// everything (all job lifecycle events + daemon stats); a nonzero id
  /// narrows the stream to that job. Throws Error if the daemon rejects
  /// the subscribe op (e.g. a pre-telemetry daemon: "unknown op"). A
  /// dropped stream returns normally; a set_timeout deadline expiring
  /// mid-stream throws SocketTimeoutError (a silent peer and a dead peer
  /// must be distinguishable for lease enforcement).
  ///
  /// The connection CANNOT return to request/reply mode afterwards —
  /// treat the Client as consumed.
  void subscribe(std::uint64_t job_filter,
                 const std::function<bool(const obs::JsonValue&)>& on_event);

 private:
  explicit Client(int fd);
  /// Reads one newline-delimited frame into last_reply_ (no parsing).
  void read_frame();

  int fd_ = -1;
  std::string read_buf_;  ///< carry-over between frames
  std::string last_reply_;
};

/// Blocks until `job_id` is terminal, preferring the streaming subscribe
/// op (each event is forwarded to `on_event` when set). Daemons that
/// predate subscribe answer "unknown op ..." — this falls back to status
/// polling spaced by poll_backoff() below. `connect` must open a FRESH
/// connection to the same daemon: subscribe consumes its connection, and
/// the terminal result is fetched over a new one. Returns the final
/// wait/status-shaped reply (includes "result" for finished jobs).
obs::JsonValue wait_with_events(
    std::uint64_t job_id, const std::function<Client()>& connect,
    const std::function<void(const obs::JsonValue&)>& on_event = {});

/// Delay before status poll number `attempt` (0-based) for `job_id`:
/// exponential from 50 ms, CAPPED at 1 s, with a deterministic ±25%
/// jitter derived from (job_id, attempt) so a fleet of waiters polling
/// the same daemon spreads out instead of thundering in lockstep. Pure
/// function of its arguments — tests pin exact values.
std::chrono::milliseconds poll_backoff(std::uint64_t job_id,
                                       unsigned attempt);

}  // namespace relsim::service
