// Blocking client for the relsim service protocol.
//
// One Client == one connection == one outstanding request at a time (the
// protocol is strictly request/reply per frame). Spawn several Clients for
// concurrent traffic — relsim-cli's `drive` subcommand and bench_service
// both do exactly that.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json_value.h"
#include "service/job.h"

namespace relsim::service {

class Client {
 public:
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();  ///< closes the connection

  /// Sends one raw frame (newline appended) and parses the reply. Throws
  /// Error on transport failure or when the reply has "ok":false (the
  /// server's "error" string becomes the exception message). Use this for
  /// ops without a convenience wrapper or for deliberately malformed
  /// frames in tests.
  obs::JsonValue call(const std::string& frame);

  /// Raw text of the last reply frame (before parsing) — handy for tools
  /// that print server replies verbatim.
  const std::string& last_reply() const { return last_reply_; }

  /// Submits a job; returns the server-assigned job id.
  std::uint64_t submit(const std::string& tenant, int priority,
                       const JobSpec& spec);

  /// Blocks until the job reaches a terminal state; returns the full
  /// reply ("state", and "result" for finished jobs).
  obs::JsonValue wait(std::uint64_t job_id);

  obs::JsonValue status(std::uint64_t job_id);
  obs::JsonValue result(std::uint64_t job_id);  ///< throws if still running
  obs::JsonValue cancel(std::uint64_t job_id);
  obs::JsonValue metrics();
  void ping();
  void shutdown();  ///< asks the daemon to latch its shutdown flag

 private:
  explicit Client(int fd);

  int fd_ = -1;
  std::string read_buf_;  ///< carry-over between frames
  std::string last_reply_;
};

}  // namespace relsim::service
